//! Umbrella crate for the DEISA reproduction.
//!
//! Re-exports the public API of every crate in the workspace so examples and
//! integration tests can `use deisa_repro::…`. See `README.md` for the tour
//! and `DESIGN.md` for the system inventory.
//!
//! The paper's core mechanism in one doctest — an analytics graph submitted
//! over **external tasks** before the producer has made any data:
//!
//! ```
//! use deisa_repro::darray::{self, ChunkGrid, DArray, Graph};
//! use deisa_repro::dtask::{Cluster, Datum, Key};
//! use deisa_repro::linalg::NDArray;
//!
//! let cluster = Cluster::new(2);
//! darray::register_array_ops(cluster.registry());
//! let client = cluster.client();
//!
//! // Two external blocks — the "simulation" owns their production.
//! let keys = vec![Key::new("b0"), Key::new("b1")];
//! client.register_external(keys.clone());
//!
//! // Analytics graph over data that does not exist yet.
//! let grid = ChunkGrid::regular(&[2, 4], &[1, 4]).unwrap();
//! let field = DArray::from_keys(grid, keys.clone()).unwrap();
//! let mut graph = Graph::new("doc");
//! let total = field.sum_all(&mut graph);
//! graph.submit(&client);
//!
//! // The external environment pushes blocks afterwards...
//! let producer = cluster.client();
//! producer.scatter_external(vec![(keys[0].clone(), Datum::from(NDArray::full(&[1, 4], 1.0)))], None);
//! producer.scatter_external(vec![(keys[1].clone(), Datum::from(NDArray::full(&[1, 4], 2.0)))], None);
//!
//! // ...and the pre-submitted graph completes.
//! assert_eq!(client.future(total).result().unwrap().as_f64(), Some(12.0));
//! ```

pub use darray;
pub use deisa_core as deisa;
pub use dml;
pub use dtask;
pub use h5lite;
pub use heat2d;
pub use insitu_sim;
pub use linalg;
pub use mpisim;
pub use netsim;
pub use pdi;
