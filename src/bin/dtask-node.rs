//! `dtask-node` — worker-process launcher for the deployment layer.
//!
//! Dials a scheduler started with [`Cluster::listen`], performs the
//! registration handshake, and serves executor slots until the hub says
//! goodbye or the connection dies. The op registry mirrors what the
//! in-process examples install: the standard ops plus the distributed-array
//! ops, so graphs built by `darray` clients run unmodified on this node.
//!
//! ```text
//! dtask-node --connect 127.0.0.1:7711 [--slots N] [--mem-budget BYTES]
//!            [--capability NAME]... [--connect-timeout-ms N]
//!            [--handshake-timeout-ms N]
//! ```
//!
//! Exit codes: `0` orderly goodbye, `1` handshake/connect failure, `2` bad
//! command line.
//!
//! [`Cluster::listen`]: deisa_repro::dtask::Cluster::listen

use deisa_repro::darray;
use deisa_repro::dtask::{run_node, NodeConfig, OpRegistry};
use std::time::Duration;

const USAGE: &str = "usage: dtask-node --connect HOST:PORT [--slots N] \
[--mem-budget BYTES] [--capability NAME]... [--connect-timeout-ms N] \
[--handshake-timeout-ms N]";

fn required(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    match args.next() {
        Some(v) => v,
        None => {
            eprintln!("dtask-node: {flag} needs a value\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn parsed<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let raw = required(args, flag);
    match raw.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("dtask-node: {flag} got unparsable value {raw:?}\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut config = NodeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => config.connect = required(&mut args, "--connect"),
            "--slots" => config.slots = parsed(&mut args, "--slots"),
            "--mem-budget" => config.mem_budget = Some(parsed(&mut args, "--mem-budget")),
            "--capability" => config
                .capabilities
                .push(required(&mut args, "--capability")),
            "--connect-timeout-ms" => {
                config.connect_timeout =
                    Duration::from_millis(parsed(&mut args, "--connect-timeout-ms"))
            }
            "--handshake-timeout-ms" => {
                config.handshake_timeout =
                    Duration::from_millis(parsed(&mut args, "--handshake-timeout-ms"))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("dtask-node: unknown argument {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let registry = OpRegistry::with_std_ops();
    darray::register_array_ops(&registry);

    eprintln!("dtask-node: connecting to {}", config.connect);
    match run_node(config, registry) {
        Ok(report) => {
            eprintln!(
                "dtask-node: worker {} ({} slots) exiting: {}",
                report.worker, report.slots, report.reason
            );
        }
        Err(e) => {
            eprintln!("dtask-node: {e}");
            std::process::exit(1);
        }
    }
}
