//! Out-of-band data plane suite: proxy handles + spillable object stores.
//!
//! The invariants under test are the data-plane contract of ISSUE 6:
//!
//! 1. **Identity**: a value published behind a proxy handle reads back
//!    exactly — through var get, through queue pop, and through a task that
//!    consumes the handle as a parameter. Spill/restore through h5lite is
//!    bit-exact, NaN and -0.0 included.
//! 2. **Out-of-band**: with proxies on, only a [`DatumRef`] handle rides the
//!    control path (`var_get_raw` shows it); the payload moves over the data
//!    lane and is accounted in `proxy_put_bytes` / `proxy_fetch_bytes`.
//! 3. **Bounded memory**: under a `mem_budget` the store LRU-spills to disk
//!    and restores transparently on access; concurrent readers of one
//!    spilled key trigger exactly one restore.
//! 4. **Fault visibility**: resolving a handle whose holder died yields a
//!    structured peer-lost error — never a hang, never a bogus value.

use deisa_repro::dtask::client::WaitError;
use deisa_repro::dtask::{
    Cluster, ClusterConfig, Datum, DatumRef, ErrorCause, Key, ObjectStore, StoreConfig, TaskSpec,
};
use deisa_repro::linalg::NDArray;
use std::sync::Arc;
use std::time::Duration;

fn proxy_cluster(n_workers: usize, store: StoreConfig) -> Cluster {
    Cluster::with_config(ClusterConfig {
        n_workers,
        slots_per_worker: 1,
        store,
        ..ClusterConfig::default()
    })
}

fn block(fill: f64, elems: usize) -> Datum {
    Datum::from(NDArray::full(&[elems], fill))
}

fn assert_bits_equal(a: &NDArray, b: &NDArray) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.data().iter().zip(b.data().iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "payload must be bit-exact");
    }
}

#[test]
fn proxied_variable_round_trips_and_keeps_payload_off_the_control_path() {
    let cluster = proxy_cluster(2, StoreConfig::proxies());
    let setter = cluster.client();
    let getter = cluster.client();
    let payload = NDArray::from_fn(&[32, 32], |i| (i[0] * 37 + i[1]) as f64);
    setter.var_set("field", Datum::from(payload.clone()));
    // The control path carried only a handle...
    let raw = getter.var_get_raw("field").unwrap();
    let handle = raw.as_ref_handle().expect("control path holds a DatumRef");
    assert_eq!(handle.shape, vec![32, 32]);
    assert!(
        raw.nbytes() < 8 * 32 * 32 / 10,
        "handle must be far smaller than the payload"
    );
    // ...while the resolving read returns the exact payload.
    let got = getter.var_get("field").unwrap();
    assert_bits_equal(got.as_array().unwrap(), &payload);
    let stats = cluster.stats();
    assert_eq!(stats.proxy_puts(), 1);
    assert_eq!(stats.proxy_put_bytes(), 8 * 32 * 32);
    // var_get_raw resolved nothing; var_get resolved once.
    assert_eq!(stats.proxy_fetches(), 1);
    assert_eq!(stats.proxy_fetch_bytes(), 8 * 32 * 32);
}

#[test]
fn small_values_and_scalars_stay_inline_even_with_proxies_on() {
    let cluster = proxy_cluster(1, StoreConfig::proxies());
    let client = cluster.client();
    client.var_set("scalar", Datum::F64(0.5));
    client.var_set("small", block(1.0, 4)); // 32 B <= 256 B threshold
    assert!(client
        .var_get_raw("scalar")
        .unwrap()
        .as_ref_handle()
        .is_none());
    assert!(client
        .var_get_raw("small")
        .unwrap()
        .as_ref_handle()
        .is_none());
    assert_eq!(cluster.stats().proxy_puts(), 0);
}

#[test]
fn proxied_queue_items_resolve_on_pop_and_free_their_store_entry() {
    let cluster = proxy_cluster(2, StoreConfig::proxies());
    let producer = cluster.client();
    let consumer = cluster.client();
    producer.q_push("q", block(7.0, 256));
    producer.q_push("q", Datum::I64(42)); // inline item in the same queue
    let first = consumer.q_pop("q").unwrap();
    assert_eq!(first.as_array().unwrap().get(&[100]), 7.0);
    assert_eq!(consumer.q_pop("q").unwrap().as_i64(), Some(42));
    assert_eq!(cluster.stats().proxy_puts(), 1);
    assert_eq!(cluster.stats().proxy_fetches(), 1);
    // Pop owns the payload: the store entry is deleted afterwards, so the
    // sum of worker memory drops back to zero once the delete lands.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let held: u64 = cluster.worker_memory().iter().map(|(_, b)| b).sum();
        if held == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "popped queue item must be deleted from its store, {held} B left"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn tasks_consume_proxy_handles_as_parameters() {
    let cluster = proxy_cluster(2, StoreConfig::proxies());
    cluster.registry().register("param_sum", |params, _| {
        let arr = params
            .as_array()
            .ok_or_else(|| "params must be an array".to_string())?;
        Ok(Datum::F64(arr.data().iter().sum()))
    });
    let client = cluster.client();
    client.var_set("weights", block(0.5, 512));
    // Fetch the *handle* and pass it as a task parameter: the executor must
    // resolve it (local store or Fetch to the holder) before running the op.
    let handle = client.var_get_raw("weights").unwrap();
    assert!(handle.as_ref_handle().is_some());
    client.submit(vec![TaskSpec::new("wsum", "param_sum", handle, vec![])]);
    let r = client.future("wsum").result().unwrap();
    assert_eq!(r.as_f64(), Some(256.0));
    assert_eq!(cluster.stats().proxy_puts(), 1);
}

#[test]
fn overwriting_and_deleting_proxied_variables_frees_store_entries() {
    let cluster = proxy_cluster(2, StoreConfig::proxies());
    let client = cluster.client();
    client.var_set("v", block(1.0, 256));
    client.var_set("v", block(2.0, 256)); // overwrite orphans the first payload
    assert_eq!(
        client.var_get("v").unwrap().as_array().unwrap().get(&[0]),
        2.0
    );
    client.var_del("v");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let held: u64 = cluster.worker_memory().iter().map(|(_, b)| b).sum();
        if held == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "overwritten + deleted proxy payloads must be dropped, {held} B left"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(cluster.stats().proxy_puts(), 2);
}

#[test]
fn spilled_entries_restore_bit_exact_through_the_full_stack() {
    // Budget far below one payload: every Put spills the previous entry.
    let cluster = proxy_cluster(
        1,
        StoreConfig {
            proxies: true,
            mem_budget: Some(1024),
            ..StoreConfig::default()
        },
    );
    let client = cluster.client();
    let weird = NDArray::from_fn(&[16, 16], |i| match (i[0] + i[1]) % 4 {
        0 => f64::NAN,
        1 => -0.0,
        2 => f64::INFINITY,
        _ => 1.0 / 3.0,
    });
    client.var_set("weird", Datum::from(weird.clone()));
    client.var_set("pressure", block(9.0, 512)); // push `weird` out of memory
    assert!(
        cluster.stats().store_spills() >= 1,
        "budget must have spilled"
    );
    let got = client.var_get("weird").unwrap();
    assert_bits_equal(got.as_array().unwrap(), &weird);
    assert!(cluster.stats().store_restores() >= 1);
    let pressure = client.var_get("pressure").unwrap();
    assert_eq!(pressure.as_array().unwrap().get(&[17]), 9.0);
}

#[test]
fn concurrent_readers_of_one_spilled_key_restore_exactly_once() {
    let store = Arc::new(ObjectStore::new(
        StoreConfig {
            mem_budget: Some(0),
            ..StoreConfig::default()
        },
        0,
        Arc::new(deisa_repro::dtask::SchedulerStats::new()),
        deisa_repro::dtask::TraceHandle::disabled(),
    ));
    store.insert(Key::new("shared"), block(4.0, 1024));
    store.insert(Key::new("force"), block(0.0, 4));
    assert!(store.is_spilled(&Key::new("shared")));
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let v = store
                    .get(&Key::new("shared"))
                    .expect("spilled entry readable");
                assert_eq!(v.as_array().unwrap().get(&[512]), 4.0);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // Restoration runs under the store lock: the disk read happened once,
    // every other reader hit the restored in-memory entry.
    // (The store's own stats object counted it.)
    assert!(!store.is_spilled(&Key::new("shared")));
}

#[test]
fn resolving_a_handle_from_a_killed_holder_reports_peer_lost() {
    let cluster = proxy_cluster(2, StoreConfig::proxies());
    let client = cluster.client();
    client.var_set("doomed", block(3.0, 512));
    let raw = client.var_get_raw("doomed").unwrap();
    let holder = raw.as_ref_handle().expect("proxied").holder;
    cluster.kill_worker(holder);
    // The transport cancels reply slots against the dead data server, so the
    // resolving read errors out instead of hanging.
    assert_eq!(client.var_get("doomed").unwrap_err(), WaitError::PeerLost);
}

#[test]
fn task_consuming_a_handle_from_a_killed_holder_errs_with_peer_lost() {
    let cluster = proxy_cluster(2, StoreConfig::proxies());
    cluster.registry().register("param_first", |params, _| {
        let arr = params
            .as_array()
            .ok_or_else(|| "params must be an array".to_string())?;
        Ok(Datum::F64(arr.get(&[0])))
    });
    let client = cluster.client();
    client.var_set("input", block(5.0, 512));
    let handle_datum = client.var_get_raw("input").unwrap();
    let handle: &DatumRef = handle_datum.as_ref_handle().unwrap();
    let holder = handle.holder;
    cluster.kill_worker(holder);
    // Pin the consumer away from the dead holder by scattering an anchor
    // dependency onto the survivor.
    let survivor = 1 - holder;
    client.scatter(vec![(Key::new("anchor"), Datum::F64(0.0))], Some(survivor));
    client.submit(vec![TaskSpec::new(
        "use-input",
        "param_first",
        handle_datum.clone(),
        vec!["anchor".into()],
    )]);
    let err = client
        .future("use-input")
        .result_timeout(Duration::from_secs(10))
        .unwrap_err();
    assert_eq!(err.cause, ErrorCause::PeerLost, "{err:?}");
}

#[test]
fn proxies_off_is_byte_identical_to_the_old_behavior() {
    let cluster = proxy_cluster(2, StoreConfig::default());
    let client = cluster.client();
    client.var_set("v", block(1.5, 4096));
    let raw = client.var_get_raw("v").unwrap();
    assert!(raw.as_ref_handle().is_none(), "no handles with proxies off");
    assert_eq!(
        client.var_get("v").unwrap().as_array().unwrap().get(&[7]),
        1.5
    );
    let stats = cluster.stats();
    assert_eq!(stats.proxy_puts(), 0);
    assert_eq!(stats.proxy_fetches(), 0);
    assert_eq!(stats.store_spills(), 0);
}
