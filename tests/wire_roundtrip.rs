//! Property-style round-trip tests for the transport wire format
//! (`dtask::wire`). Arbitrary `Key`s, `Datum`s, `TaskSpec`s, and
//! `TaskError`s — drawn from fixed seeds so runs are deterministic and
//! fully offline — must survive encode → decode bit-exactly. Any drift
//! here silently corrupts every Framed/SimNet cluster, so the generators
//! deliberately cover the nasty corners: NaN/∞ floats, empty strings,
//! unicode keys, deep nesting, and all three `ErrorCause` shapes.

use deisa_repro::dtask::msg::ErrorCause;
use deisa_repro::dtask::spec::{FusedInput, FusedStage, TaskSpec, Value};
use deisa_repro::dtask::wire::{
    decode_datum, decode_error, decode_key, decode_spec, encode_datum, encode_error, encode_key,
    encode_spec,
};
use deisa_repro::dtask::{Datum, Key, TaskError};
use deisa_repro::linalg::NDArray;
use rand::prelude::*;

const CASES: usize = 128;

// ---------- generators ----------------------------------------------------

/// Arbitrary key text: empty to 24 chars, mixing ascii, digits, separators
/// used by the DEISA naming scheme, and a few multi-byte code points.
fn arb_key(rng: &mut SmallRng) -> Key {
    let alphabet: Vec<char> = ('a'..='z')
        .chain('0'..='9')
        .chain("-_@(),.é∑".chars())
        .collect();
    let len = rng.gen_range(0usize..25);
    let text: String = (0..len)
        .map(|_| alphabet[rng.gen_range(0usize..alphabet.len())])
        .collect();
    Key::new(text)
}

/// Arbitrary f64 including the values most likely to break a codec.
fn arb_f64(rng: &mut SmallRng) -> f64 {
    match rng.gen_range(0u32..8) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => f64::MIN_POSITIVE,
        _ => rng.gen_range(-1e12..1e12),
    }
}

/// Arbitrary datum with bounded recursion for lists.
fn arb_datum(rng: &mut SmallRng, depth: usize) -> Datum {
    let top = if depth == 0 { 7 } else { 8 };
    match rng.gen_range(0u32..top) {
        0 => Datum::Null,
        1 => Datum::Bool(rng.gen()),
        2 => Datum::I64(rng.gen::<u64>() as i64),
        3 => Datum::F64(arb_f64(rng)),
        4 => {
            let len = rng.gen_range(0usize..20);
            Datum::Str(
                (0..len)
                    .map(|_| char::from(b'!' + rng.gen_range(0u32..90) as u8))
                    .collect(),
            )
        }
        5 => {
            let len = rng.gen_range(0usize..64);
            let raw: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
            Datum::Bytes(bytes::Bytes::from(raw))
        }
        6 => {
            let ndim = rng.gen_range(1usize..4);
            let shape: Vec<usize> = (0..ndim).map(|_| rng.gen_range(1usize..5)).collect();
            let n = shape.iter().product::<usize>();
            let data: Vec<f64> = (0..n).map(|_| arb_f64(rng)).collect();
            Datum::from(NDArray::from_vec(&shape, data).unwrap())
        }
        _ => {
            let len = rng.gen_range(0usize..5);
            Datum::List((0..len).map(|_| arb_datum(rng, depth - 1)).collect())
        }
    }
}

fn arb_spec(rng: &mut SmallRng) -> TaskSpec {
    let deps: Vec<Key> = (0..rng.gen_range(0usize..5))
        .map(|_| arb_key(rng))
        .collect();
    let value = if rng.gen() {
        Value::Op {
            op: format!("op{}", rng.gen_range(0u32..100)),
            params: arb_datum(rng, 2),
        }
    } else {
        let n_stages = rng.gen_range(1usize..4);
        let stages = (0..n_stages)
            .map(|s| FusedStage {
                key: arb_key(rng),
                op: format!("stage{s}"),
                params: arb_datum(rng, 1),
                inputs: (0..rng.gen_range(0usize..4))
                    .map(|_| {
                        if s > 0 && rng.gen() {
                            FusedInput::Stage(rng.gen_range(0usize..s))
                        } else if deps.is_empty() {
                            FusedInput::Stage(0)
                        } else {
                            FusedInput::Dep(rng.gen_range(0usize..deps.len()))
                        }
                    })
                    .collect(),
            })
            .collect();
        Value::Fused { stages }
    };
    TaskSpec {
        key: arb_key(rng),
        value,
        deps,
    }
}

fn arb_error(rng: &mut SmallRng) -> TaskError {
    let cause = match rng.gen_range(0u32..3) {
        0 => ErrorCause::Direct,
        1 => ErrorCause::FusedStage {
            stored_key: arb_key(rng),
        },
        _ => ErrorCause::Propagated { via: arb_key(rng) },
    };
    TaskError::new(arb_key(rng), format!("boom #{}", rng.gen_range(0u32..1000))).with_cause(cause)
}

// ---------- structural equality -------------------------------------------

/// Bit-exact datum equality (f64 compared via `to_bits` so NaN counts).
fn datum_eq(a: &Datum, b: &Datum) -> bool {
    match (a, b) {
        (Datum::Null, Datum::Null) => true,
        (Datum::Bool(x), Datum::Bool(y)) => x == y,
        (Datum::I64(x), Datum::I64(y)) => x == y,
        (Datum::F64(x), Datum::F64(y)) => x.to_bits() == y.to_bits(),
        (Datum::Str(x), Datum::Str(y)) => x == y,
        (Datum::Bytes(x), Datum::Bytes(y)) => x == y,
        (Datum::Array(x), Datum::Array(y)) => {
            x.shape() == y.shape()
                && x.data()
                    .iter()
                    .zip(y.data())
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        }
        (Datum::List(x), Datum::List(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| datum_eq(p, q))
        }
        _ => false,
    }
}

fn spec_eq(a: &TaskSpec, b: &TaskSpec) -> bool {
    if a.key != b.key || a.deps != b.deps {
        return false;
    }
    match (&a.value, &b.value) {
        (Value::Op { op: oa, params: pa }, Value::Op { op: ob, params: pb }) => {
            oa == ob && datum_eq(pa, pb)
        }
        (Value::Fused { stages: sa }, Value::Fused { stages: sb }) => {
            sa.len() == sb.len()
                && sa.iter().zip(sb).all(|(x, y)| {
                    x.key == y.key
                        && x.op == y.op
                        && x.inputs == y.inputs
                        && datum_eq(&x.params, &y.params)
                })
        }
        _ => false,
    }
}

// ---------- round-trips ----------------------------------------------------

#[test]
fn key_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x4B45);
    for _ in 0..CASES {
        let key = arb_key(&mut rng);
        let back = decode_key(&encode_key(&key)).unwrap();
        assert_eq!(back, key);
        assert_eq!(back.as_str(), key.as_str());
        // The cached hash is recomputed at decode, never trusted from the wire.
        assert_eq!(back.cached_hash(), key.cached_hash());
    }
}

#[test]
fn datum_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xDA70);
    for _ in 0..CASES {
        let datum = arb_datum(&mut rng, 3);
        let back = decode_datum(&encode_datum(&datum)).unwrap();
        assert!(
            datum_eq(&back, &datum),
            "datum drifted: {datum:?} vs {back:?}"
        );
        // Sizing must agree too: nbytes feeds locality decisions on both ends.
        assert_eq!(back.nbytes(), datum.nbytes());
    }
}

#[test]
fn spec_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x53EC);
    for _ in 0..CASES {
        let spec = arb_spec(&mut rng);
        let back = decode_spec(&encode_spec(&spec)).unwrap();
        assert!(spec_eq(&back, &spec), "spec drifted for key {:?}", spec.key);
    }
}

#[test]
fn error_roundtrip_preserves_cause() {
    let mut rng = SmallRng::seed_from_u64(0xE440);
    for _ in 0..CASES {
        let err = arb_error(&mut rng);
        let back = decode_error(&encode_error(&err)).unwrap();
        assert_eq!(back, err);
        assert_eq!(back.is_propagated(), err.is_propagated());
    }
}

#[test]
fn truncated_frames_never_panic() {
    // Every prefix of a valid frame must fail cleanly, not panic or
    // misdecode: a cut-off TCP read maps to exactly this input shape.
    let mut rng = SmallRng::seed_from_u64(0x7C47);
    for _ in 0..32 {
        let datum = arb_datum(&mut rng, 2);
        let frame = encode_datum(&datum);
        for cut in 0..frame.len() {
            assert!(decode_datum(&frame[..cut]).is_err());
        }
    }
}
