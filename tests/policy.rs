//! Scheduling-policy suite: the ISSUE 7 contract for pluggable placement.
//!
//! 1. **Result identity**: the policy only moves *where* tasks run, never
//!    what they compute — the same graph yields bit-identical values under
//!    all four policies.
//! 2. **Stealing repairs skew**: a deliberately hot worker gets its queue
//!    drained by an idle peer, observable in the `tasks_stolen` /
//!    `steal_requests` counters, the snapshot export, and `Steal` trace
//!    events.
//! 3. **Steal-under-chaos**: a task stolen from a worker that is then
//!    killed still completes — re-pointed assignments and fault recovery
//!    compose instead of fighting.

use deisa_repro::dtask::{
    Cluster, ClusterConfig, Datum, EventKind, FaultConfig, FaultPlan, HeartbeatInterval, Key,
    PolicyConfig, PolicyKind, StatsSnapshot, TaskSpec, TraceConfig,
};
use std::time::Duration;

/// A sleepy reduction op so queues actually build up behind busy slots.
fn register_slow_sum(cluster: &Cluster) {
    cluster.registry().register("slow_sum", |params, inputs| {
        let ms = params.as_i64().unwrap_or(0) as u64;
        std::thread::sleep(Duration::from_millis(ms));
        let mut total = 0.0;
        for d in inputs {
            total += d.as_f64().ok_or_else(|| "non-scalar input".to_string())?;
        }
        Ok(Datum::F64(total))
    });
}

/// Fixed diamond + chain graph over three scattered blocks; returns every
/// intermediate and final value in a fixed order.
fn graph_results(policy: PolicyConfig) -> Vec<f64> {
    let cluster = Cluster::with_config(ClusterConfig {
        n_workers: 3,
        slots_per_worker: 2,
        policy,
        ..ClusterConfig::default()
    });
    let client = cluster.client();
    for (i, k) in ["a", "b", "c"].iter().enumerate() {
        client.scatter(vec![(Key::new(*k), Datum::F64((i + 1) as f64))], Some(i));
    }
    client.submit(vec![
        TaskSpec::new(
            "s0",
            "sum_scalars",
            Datum::Null,
            vec!["a".into(), "b".into()],
        ),
        TaskSpec::new(
            "s1",
            "sum_scalars",
            Datum::Null,
            vec!["b".into(), "c".into()],
        ),
        TaskSpec::new(
            "s2",
            "sum_scalars",
            Datum::Null,
            vec!["a".into(), "c".into()],
        ),
        TaskSpec::new(
            "mid",
            "sum_scalars",
            Datum::Null,
            vec!["s0".into(), "s1".into(), "s2".into()],
        ),
        TaskSpec::new("d1", "identity", Datum::Null, vec!["mid".into()]),
        TaskSpec::new(
            "total",
            "sum_scalars",
            Datum::Null,
            vec!["d1".into(), "s0".into()],
        ),
    ]);
    ["s0", "s1", "s2", "mid", "d1", "total"]
        .iter()
        .map(|k| {
            client
                .future(*k)
                .result_timeout(Duration::from_secs(30))
                .unwrap()
                .as_f64()
                .unwrap()
        })
        .collect()
}

#[test]
fn all_policies_compute_identical_results() {
    let baseline = graph_results(PolicyConfig::locality());
    assert_eq!(
        baseline,
        vec![3.0, 5.0, 4.0, 12.0, 12.0, 15.0],
        "locality baseline values"
    );
    for policy in [
        PolicyConfig::b_level(),
        PolicyConfig::random_stealing(),
        PolicyConfig::min_eft(),
    ] {
        let name = policy.kind.name();
        assert_eq!(
            graph_results(policy),
            baseline,
            "policy {name} changed the computed values"
        );
    }
}

#[test]
fn every_policy_name_round_trips_the_env_knob() {
    for kind in [
        PolicyKind::Locality,
        PolicyKind::BLevel,
        PolicyKind::RandomStealing,
        PolicyKind::MinEft,
    ] {
        let parsed = PolicyConfig::from_name(kind.name())
            .unwrap_or_else(|| panic!("canonical name {:?} must parse", kind.name()));
        assert_eq!(parsed.kind, kind);
    }
    assert!(PolicyConfig::from_name("no-such-policy").is_none());
}

/// Locality placement with stealing switched on: every task gravitates to
/// the worker holding the hot block, so the steal path is exercised
/// deterministically — the idle peer MUST pull work over.
fn skewed_cluster() -> Cluster {
    Cluster::with_config(ClusterConfig {
        n_workers: 2,
        slots_per_worker: 1,
        trace: TraceConfig::enabled(),
        policy: PolicyConfig {
            kind: PolicyKind::Locality,
            steal_poll: Some(Duration::from_millis(2)),
            ..PolicyConfig::default()
        },
        ..ClusterConfig::default()
    })
}

const SKEW_TASKS: usize = 8;

#[test]
fn idle_worker_steals_from_skewed_queue() {
    let cluster = skewed_cluster();
    register_slow_sum(&cluster);
    let client = cluster.client();
    client.scatter_external(vec![(Key::new("hot"), Datum::F64(2.5))], Some(0));
    // All eight 40 ms tasks land on worker 0 (data gravity); worker 1 has
    // one slot, zero work, and a 2 ms steal poll.
    client.submit(
        (0..SKEW_TASKS)
            .map(|i| {
                TaskSpec::new(
                    format!("t{i}"),
                    "slow_sum",
                    Datum::I64(40),
                    vec!["hot".into()],
                )
            })
            .collect(),
    );
    for i in 0..SKEW_TASKS {
        let r = client
            .future(format!("t{i}"))
            .result_timeout(Duration::from_secs(30))
            .unwrap();
        assert_eq!(r.as_f64(), Some(2.5), "t{i} must still read the hot block");
    }
    let stats = cluster.stats();
    assert!(
        stats.tasks_stolen() >= 1,
        "an idle worker next to a 7-deep queue must steal, stole {}",
        stats.tasks_stolen()
    );
    assert!(stats.steal_requests() >= 1);
    // The counters surface in the snapshot and its JSON export.
    let snap = StatsSnapshot::capture(stats);
    assert!(snap.tasks_stolen >= 1);
    assert!(snap.to_json().to_string_compact().contains("\"steal\""));
    // Every successful steal leaves an instant in the trace.
    let log = cluster.tracer().collect();
    assert_eq!(
        log.events_of(EventKind::Steal).count() as u64,
        stats.tasks_stolen()
    );
}

/// ISSUE 7's chaos clause: a task stolen from a worker that subsequently
/// dies still completes. The hot block is replicated onto both workers, the
/// queue is skewed onto worker 0, and once the scheduler has recorded a
/// steal the victim is killed — stolen tasks finish on the thief, stranded
/// ones are resubmitted by the liveness sweep.
#[test]
fn stolen_task_from_killed_worker_completes() {
    let cluster = Cluster::with_config(ClusterConfig {
        n_workers: 2,
        slots_per_worker: 1,
        trace: TraceConfig::enabled(),
        policy: PolicyConfig {
            kind: PolicyKind::Locality,
            steal_poll: Some(Duration::from_millis(2)),
            ..PolicyConfig::default()
        },
        fault: FaultConfig {
            heartbeat_timeout: Some(Duration::from_millis(150)),
            worker_heartbeat: HeartbeatInterval::Every(Duration::from_millis(20)),
            max_retries: 5,
            retry_backoff: Duration::from_millis(5),
            plan: FaultPlan::default(),
        },
        ..ClusterConfig::default()
    });
    register_slow_sum(&cluster);
    let client = cluster.client();
    // Replica on worker 0 first: gravity pins the whole batch there.
    client.scatter_external(vec![(Key::new("hot"), Datum::F64(2.5))], Some(0));
    client.submit(
        (0..SKEW_TASKS)
            .map(|i| {
                TaskSpec::new(
                    format!("t{i}"),
                    "slow_sum",
                    Datum::I64(50),
                    vec!["hot".into()],
                )
            })
            .collect(),
    );
    // Second replica on worker 1: the kill below must not lose the block,
    // and stolen tasks resolve the dependency from their local store.
    client.scatter_external(vec![(Key::new("hot"), Datum::F64(2.5))], Some(1));
    // Wait until the scheduler has re-pointed at least one assignment.
    let stats = cluster.stats();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while stats.tasks_stolen() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "no steal fired against a 7-deep queue"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // Kill the victim: its queue dies with it, the stolen work must not.
    cluster.kill_worker(0);
    for i in 0..SKEW_TASKS {
        let r = client
            .future(format!("t{i}"))
            .result_timeout(Duration::from_secs(30))
            .unwrap();
        assert_eq!(r.as_f64(), Some(2.5), "t{i} lost to the kill");
    }
    assert!(stats.tasks_stolen() >= 1);
    assert_eq!(stats.peers_lost(), 1, "exactly the killed victim");
    let log = cluster.tracer().collect();
    assert!(log.events_of(EventKind::Steal).count() >= 1);
    assert_eq!(log.events_of(EventKind::PeerLost).count(), 1);
}
