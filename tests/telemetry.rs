//! End-to-end checks of the live telemetry plane: the HTTP exporter serves
//! valid Prometheus exposition and JSON mid-run, the flight recorder captures
//! rate samples across a sustained workload, the straggler detector flags an
//! injected outlier (and nothing else), and — the paper's invariant — none of
//! it adds a single message to the control plane.

use deisa_repro::dtask::{
    AlertKind, Cluster, ClusterConfig, Datum, EventKind, Key, TaskSpec, TelemetryConfig,
    TraceConfig,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn telemetry_cluster(telemetry: TelemetryConfig) -> Cluster {
    let cluster = Cluster::with_config(ClusterConfig {
        n_workers: 2,
        slots_per_worker: 1,
        telemetry,
        ..ClusterConfig::default()
    });
    cluster.registry().register("pause_ms", |params, inputs| {
        std::thread::sleep(Duration::from_millis(params.as_i64().unwrap_or(0) as u64));
        let mut total = 0.0;
        for d in inputs {
            total += d.as_f64().ok_or_else(|| "scalar input".to_string())?;
        }
        Ok(Datum::F64(total))
    });
    cluster
}

/// Raw HTTP GET against the exporter; returns (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect exporter");
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    let status = response.lines().next().unwrap_or("").to_string();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Drive a few rounds of short tasks so the sampler sees live completions.
fn run_rounds(cluster: &Cluster, rounds: usize, label: &str) {
    let client = cluster.client();
    for round in 0..rounds {
        client.submit(
            (0..4)
                .map(|i| {
                    TaskSpec::new(
                        format!("{label}-{round}-{i}"),
                        "pause_ms",
                        Datum::I64(5),
                        vec![],
                    )
                })
                .collect(),
        );
        for i in 0..4 {
            client
                .future(format!("{label}-{round}-{i}"))
                .result()
                .unwrap();
        }
    }
}

#[test]
fn exporter_serves_valid_prometheus_mid_run() {
    let cluster = telemetry_cluster(TelemetryConfig {
        sample_every: Duration::from_millis(5),
        ..TelemetryConfig::enabled()
    });
    let addr = cluster.telemetry_addr().expect("exporter bound");
    run_rounds(&cluster, 2, "warm");

    let (status, body) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    // Exposition-format spot checks (the full lint lives in the dtask unit
    // suite): families come as HELP/TYPE pairs, samples parse, counters
    // carry the _total suffix, and the body ends in exactly one newline.
    assert!(body.ends_with('\n') && !body.ends_with("\n\n"));
    let mut families = 0;
    let mut last_help: Option<String> = None;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            last_help = rest.split_whitespace().next().map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap();
            let kind = it.next().unwrap();
            assert_eq!(last_help.as_deref(), Some(name), "HELP precedes TYPE");
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "{line}");
            if kind == "counter" {
                assert!(name.ends_with("_total"), "counter naming: {name}");
            }
            families += 1;
        } else if !line.is_empty() {
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparseable sample: {line}");
        }
    }
    assert!(
        families >= 10,
        "expected a real metric corpus, got {families}"
    );
    // The run above completed tasks; the counters must already show them.
    assert!(
        body.lines()
            .any(|l| l.starts_with("dtask_messages_total") && !l.ends_with(" 0")),
        "mid-run scrape must see non-zero message counters"
    );
    cluster.shutdown();
}

#[test]
fn flight_endpoint_reports_live_task_rates() {
    let cluster = telemetry_cluster(TelemetryConfig {
        sample_every: Duration::from_millis(5),
        ..TelemetryConfig::enabled()
    });
    let addr = cluster.telemetry_addr().unwrap();
    run_rounds(&cluster, 4, "flight");
    // One more interval so the last completions are folded in.
    std::thread::sleep(Duration::from_millis(15));

    let (status, body) = http_get(addr, "/flight.json");
    assert!(status.contains("200"), "{status}");
    let doc = deisa_repro::dtask::Json::parse(&body).expect("valid JSON");
    let samples = doc
        .get("samples")
        .and_then(|s| s.as_arr())
        .expect("samples array");
    assert!(
        samples.len() >= 3,
        "want >= 3 samples, got {}",
        samples.len()
    );
    let task_rates: Vec<f64> = samples
        .iter()
        .filter_map(|s| s.get("tasks_per_s").and_then(|v| v.as_f64()))
        .collect();
    assert_eq!(task_rates.len(), samples.len());
    assert!(
        task_rates.iter().any(|&r| r > 0.0),
        "a live run must show non-zero task rates: {task_rates:?}"
    );

    let (status, body) = http_get(addr, "/alerts.json");
    assert!(status.contains("200"), "{status}");
    deisa_repro::dtask::Json::parse(&body).expect("valid alerts JSON");
    let (status, _) = http_get(addr, "/health");
    assert!(status.contains("200"));
    cluster.shutdown();
}

#[test]
fn injected_straggler_is_flagged_exactly_once() {
    let cluster = Cluster::with_config(ClusterConfig {
        n_workers: 1,
        slots_per_worker: 1,
        trace: TraceConfig::enabled(),
        telemetry: TelemetryConfig {
            serve_http: false,
            straggler_min_samples: 4,
            straggler_min_ns: 20_000_000,
            ..TelemetryConfig::enabled()
        },
        ..ClusterConfig::default()
    });
    cluster.registry().register("pause_ms", |params, _| {
        std::thread::sleep(Duration::from_millis(params.as_i64().unwrap_or(0) as u64));
        Ok(Datum::F64(0.0))
    });
    let client = cluster.client();
    // Baseline: eight 1 ms executions, all under the 20 ms floor.
    client.submit(
        (0..8)
            .map(|i| TaskSpec::new(format!("base-{i}"), "pause_ms", Datum::I64(1), vec![]))
            .collect(),
    );
    for i in 0..8 {
        client.future(format!("base-{i}")).result().unwrap();
    }
    client.submit(vec![TaskSpec::new(
        "outlier",
        "pause_ms",
        Datum::I64(90),
        vec![],
    )]);
    client.future("outlier").result().unwrap();

    let hub = cluster.telemetry().unwrap();
    let alerts = hub.alerts();
    assert_eq!(cluster.stats().stragglers_flagged(), 1);
    assert_eq!(alerts.len(), 1, "{alerts:?}");
    assert_eq!(alerts[0].kind, AlertKind::Straggler);
    assert_eq!(alerts[0].key.as_deref(), Some("outlier"));
    // The trace instant and the alert describe the same execution.
    let log = cluster.tracer().collect();
    let instants: Vec<_> = log.events_of(EventKind::Straggler).collect();
    assert_eq!(instants.len(), 1);
    assert_eq!(
        instants[0].1.key.as_ref().map(|k| k.as_str()),
        Some("outlier")
    );
    cluster.shutdown();
}

#[test]
fn telemetry_adds_no_control_plane_messages() {
    // The paper's message-count argument must survive observability: with
    // the full telemetry plane on, scheduler control traffic is exactly what
    // it was with telemetry off.
    let run = |telemetry: TelemetryConfig| {
        let cluster = telemetry_cluster(telemetry);
        let client = cluster.client();
        client.register_external(vec![Key::new("ext")]);
        client.submit(vec![TaskSpec::new(
            "y",
            "pause_ms",
            Datum::I64(1),
            vec!["ext".into()],
        )]);
        client.scatter_external(vec![(Key::new("ext"), Datum::F64(2.0))], Some(0));
        assert_eq!(client.future("y").result().unwrap().as_f64(), Some(2.0));
        let control = cluster.stats().scheduler_control_messages();
        let bridge = cluster.stats().bridge_metadata_messages();
        cluster.shutdown();
        (control, bridge)
    };
    let off = run(TelemetryConfig::default());
    let on = run(TelemetryConfig {
        sample_every: Duration::from_millis(2),
        ..TelemetryConfig::enabled()
    });
    assert_eq!(off, on, "telemetry must stay off the control plane");
}
