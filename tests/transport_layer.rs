//! Live-cluster integration tests for the pluggable transport layer.
//!
//! Three properties, all measured on real cluster runs (never replayed
//! schedules):
//!
//! 1. The Framed backend is observably equivalent to InProc — identical
//!    results — while every message crosses the versioned wire format and
//!    real serialized sizes land in the per-lane counters.
//! 2. Structured error causes (`ErrorCause`) survive the wire, including
//!    fused-stage attribution through the optimizer.
//! 3. The paper's §2.1 scheduler-load gap — DEISA1's `2·T·R + heartbeats`
//!    metadata stream vs DEISA3's `1 + R` contract setup — reproduces in
//!    *bytes on the wire*, measured under the SimNet backend with fat-tree
//!    delays injected into the live run.

use deisa_repro::darray::{self, Graph};
use deisa_repro::deisa::deisa1::{Adaptor1, Bridge1};
use deisa_repro::deisa::{Adaptor, Bridge, DeisaVersion, Selection, VirtualArray};
use deisa_repro::dtask::{
    Cluster, ClusterConfig, Datum, ErrorCause, FaultConfig, HeartbeatInterval, Key, MsgClass,
    OptimizeConfig, SimNetConfig, TaskSpec, TransportConfig, WireLane,
};
use deisa_repro::linalg::NDArray;
use std::time::Duration;

const STEPS: usize = 5;
const RANKS: usize = 4;

fn varray() -> VirtualArray {
    VirtualArray::new("A", &[STEPS, 4, 4], &[1, 2, 2], 0).unwrap()
}

fn cluster_with(transport: TransportConfig) -> Cluster {
    Cluster::with_config(ClusterConfig {
        n_workers: 2,
        transport,
        ..ClusterConfig::default()
    })
}

/// The DEISA3 workflow from `tests/message_accounting.rs`, on an arbitrary
/// transport: R bridges publish T steps while an adaptor's pre-submitted
/// graph sums the whole virtual array.
fn run_deisa3_on(cluster: &Cluster) -> f64 {
    darray::register_array_ops(cluster.registry());
    let analytics = {
        let client = cluster.client();
        std::thread::spawn(move || {
            let adaptor = Adaptor::new(client);
            let mut arrays = adaptor.get_deisa_arrays().unwrap();
            let v = arrays.descriptor("A").unwrap().clone();
            let a = arrays.select("A", Selection::all(&v)).unwrap();
            arrays.validate_contract().unwrap();
            let mut g = Graph::new("m");
            let k = a.sum_all(&mut g);
            g.submit(adaptor.client());
            adaptor
                .client()
                .future(k)
                .result()
                .unwrap()
                .as_f64()
                .unwrap()
        })
    };
    let mut handles = Vec::new();
    for rank in 0..RANKS {
        let client = cluster.client();
        handles.push(std::thread::spawn(move || {
            let mut b = Bridge::init(client, rank, vec![varray()]).unwrap();
            for t in 0..STEPS {
                b.publish("A", t, rank, NDArray::full(&[1, 2, 2], 1.0))
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    analytics.join().unwrap()
}

/// The DEISA1 workflow (per-step queues + classic scatter) on an arbitrary
/// transport.
fn run_deisa1_on(cluster: &Cluster) -> f64 {
    darray::register_array_ops(cluster.registry());
    let analytics = {
        let client = cluster.client();
        std::thread::spawn(move || {
            let adaptor = Adaptor1::new(client, RANKS);
            let mut total = 0.0;
            for _ in 0..STEPS {
                let metas = adaptor.collect_step().unwrap();
                let step = adaptor.step_array(&varray(), &metas).unwrap();
                let mut g = Graph::new("m1");
                let k = step.sum_all(&mut g);
                g.submit(adaptor.client());
                total += adaptor
                    .client()
                    .future(k)
                    .result()
                    .unwrap()
                    .as_f64()
                    .unwrap();
            }
            total
        })
    };
    let mut handles = Vec::new();
    for rank in 0..RANKS {
        let client = cluster.client_with_heartbeat(DeisaVersion::Deisa1.heartbeat());
        handles.push(std::thread::spawn(move || {
            let mut b = Bridge1::init(client, rank, vec![varray()]);
            for t in 0..STEPS {
                b.publish("A", t, rank, NDArray::full(&[1, 2, 2], 1.0))
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    analytics.join().unwrap()
}

// ---- backend equivalence ---------------------------------------------------

#[test]
fn framed_cluster_matches_inproc_results_and_accounts_bytes() {
    let inproc = cluster_with(TransportConfig::InProc);
    let framed = cluster_with(TransportConfig::Framed);
    let a = run_deisa3_on(&inproc);
    let b = run_deisa3_on(&framed);
    // Same workflow, same answer: every message survived the wire format.
    assert_eq!(a, b);
    assert_eq!(a, (STEPS * RANKS * 4) as f64);

    // InProc moves references; it must record zero wire traffic.
    let pi = inproc.stats();
    assert_eq!(pi.wire_total_messages(), 0);
    assert_eq!(pi.wire_total_bytes(), 0);

    // Framed pushed everything through the codec: every lane carried real
    // serialized bytes (sched commands, executor assignments, data-server
    // puts/gets, client notifications, and correlated replies).
    let pf = framed.stats();
    for lane in WireLane::ALL {
        assert!(
            pf.wire_messages(lane) > 0,
            "lane {} saw no traffic",
            lane.name()
        );
        assert!(
            pf.wire_bytes(lane) > pf.wire_messages(lane),
            "lane {} bytes must exceed one byte per message",
            lane.name()
        );
    }
    // MsgClass-level accounting is transport-independent: the §2.1 protocol
    // counts match the InProc run exactly.
    assert_eq!(pf.count(MsgClass::Variable), pi.count(MsgClass::Variable));
    assert_eq!(
        pf.count(MsgClass::UpdateDataExternal),
        pi.count(MsgClass::UpdateDataExternal)
    );
    assert_eq!(pf.count(MsgClass::GraphSubmit), 1);
}

#[test]
fn tcp_cluster_matches_inproc_results_and_accounts_bytes() {
    let inproc = cluster_with(TransportConfig::InProc);
    let tcp = cluster_with(TransportConfig::Tcp);
    let a = run_deisa3_on(&inproc);
    let b = run_deisa3_on(&tcp);
    // Same workflow, same answer: every message survived real sockets —
    // framing, partial-read reassembly, and the writer threads included.
    assert_eq!(a, b);
    assert_eq!(a, (STEPS * RANKS * 4) as f64);

    // Every lane carried real serialized bytes over TCP, with the same
    // envelope-only accounting shape Framed uses.
    let pt = tcp.stats();
    for lane in WireLane::ALL {
        assert!(
            pt.wire_messages(lane) > 0,
            "lane {} saw no traffic",
            lane.name()
        );
        assert!(
            pt.wire_bytes(lane) > pt.wire_messages(lane),
            "lane {} bytes must exceed one byte per message",
            lane.name()
        );
    }
    // Protocol-level accounting is transport-independent.
    let pi = inproc.stats();
    assert_eq!(pt.count(MsgClass::Variable), pi.count(MsgClass::Variable));
    assert_eq!(
        pt.count(MsgClass::UpdateDataExternal),
        pi.count(MsgClass::UpdateDataExternal)
    );
    assert_eq!(pt.count(MsgClass::GraphSubmit), 1);
}

// ---- error causes over the wire -------------------------------------------

#[test]
fn propagated_error_cause_survives_framed_transport() {
    let cluster = cluster_with(TransportConfig::Framed);
    cluster
        .registry()
        .register("boom", |_, _| Err("kaboom".into()));
    let client = cluster.client();
    client.submit(vec![
        TaskSpec::new("bad", "boom", Datum::Null, vec![]),
        TaskSpec::new("child", "identity", Datum::Null, vec!["bad".into()]),
    ]);
    // The origin failure is Direct…
    let direct = client.future("bad").result().unwrap_err();
    assert_eq!(direct.key.as_str(), "bad");
    assert_eq!(direct.cause, ErrorCause::Direct);
    // …and the dependent sees the same origin key, with the dependency edge
    // it arrived through — both round-tripped through the wire format.
    let err = client.future("child").result().unwrap_err();
    assert_eq!(err.key.as_str(), "bad");
    assert!(err.message.contains("kaboom"));
    assert_eq!(
        err.cause,
        ErrorCause::Propagated {
            via: Key::new("bad")
        }
    );
}

#[test]
fn fused_stage_error_cause_survives_framed_transport() {
    let cluster = Cluster::with_config(ClusterConfig {
        n_workers: 1,
        optimize: OptimizeConfig::enabled(),
        transport: TransportConfig::Framed,
        ..ClusterConfig::default()
    });
    cluster
        .registry()
        .register("boom", |_, _| Err("kaboom".into()));
    let client = cluster.client();
    // ok -> bad -> child fuses into one task stored under "child"; the
    // interior stage "bad" fails.
    client.submit(vec![
        TaskSpec::new("ok", "const", Datum::F64(1.0), vec![]),
        TaskSpec::new("bad", "boom", Datum::Null, vec!["ok".into()]),
        TaskSpec::new("child", "identity", Datum::Null, vec!["bad".into()]),
    ]);
    let err = client.future("child").result().unwrap_err();
    assert_eq!(
        err.key.as_str(),
        "bad",
        "origin attribution survives fusion"
    );
    assert_eq!(
        err.cause,
        ErrorCause::FusedStage {
            stored_key: Key::new("child")
        }
    );
    assert_eq!(cluster.stats().fused_chains(), 1);
}

// ---- 1 + R contract-setup scaling in wire bytes ----------------------------

/// DEISA2/3 contract setup only — no publishes, no analytics graph — over
/// Framed, returning the scheduler-inbound wire traffic.
fn contract_setup_traffic(ranks: usize) -> (u64, u64, u64) {
    let cluster = cluster_with(TransportConfig::Framed);
    let analytics = {
        let client = cluster.client();
        std::thread::spawn(move || {
            let adaptor = Adaptor::new(client);
            let mut arrays = adaptor.get_deisa_arrays().unwrap();
            let v = arrays.descriptor("A").unwrap().clone();
            arrays.select("A", Selection::all(&v)).unwrap();
            arrays.validate_contract().unwrap();
        })
    };
    let mut handles = Vec::new();
    for rank in 0..ranks {
        let client = cluster.client();
        handles.push(std::thread::spawn(move || {
            Bridge::init(client, rank, vec![varray()]).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    analytics.join().unwrap();
    let stats = cluster.stats();
    (
        stats.count(MsgClass::Variable),
        stats.wire_messages(WireLane::SchedIn),
        stats.wire_bytes(WireLane::SchedIn),
    )
}

#[test]
fn framed_contract_setup_bytes_scale_as_one_plus_r() {
    // The §2.1 formula: contract setup costs `1 + R`-shaped metadata. Each
    // extra rank adds a *constant* increment — one connect, one contract
    // get, one disconnect — so both scheduler-inbound message and byte
    // totals must grow affinely in R, with the same per-rank step at every
    // R. Measured on real serialized frames, not estimates.
    let (v1, m1, b1) = contract_setup_traffic(1);
    let (v2, m2, b2) = contract_setup_traffic(2);
    let (v3, m3, b3) = contract_setup_traffic(3);
    assert_eq!(v1, 3 + 1);
    assert_eq!(v2, 3 + 2);
    assert_eq!(v3, 3 + 3);
    assert!(m2 > m1 && m3 > m2);
    assert_eq!(m2 - m1, m3 - m2, "per-rank message increment must be flat");
    assert_eq!(b2 - b1, b3 - b2, "per-rank byte increment must be flat");
    // And the increment is metadata-sized: a rank costs well under a block
    // of simulation data (32 bytes) per protocol message.
    let per_rank_msgs = m2 - m1;
    let per_rank_bytes = b2 - b1;
    assert!(per_rank_bytes < per_rank_msgs * 2048);
}

// ---- the acceptance run: SimNet DEISA1 vs DEISA3 gap -----------------------

#[test]
fn simnet_live_run_reproduces_deisa1_vs_deisa3_scheduler_gap() {
    // Both versions run LIVE under the SimNet backend: every frame is
    // encoded, costed through the fat-tree model, delayed, and decoded.
    let simnet = || cluster_with(TransportConfig::SimNet(SimNetConfig::default()));

    let c3 = simnet();
    let total3 = run_deisa3_on(&c3);
    assert_eq!(total3, (STEPS * RANKS * 4) as f64);

    let c1 = simnet();
    let total1 = run_deisa1_on(&c1);
    assert_eq!(total1, (STEPS * RANKS * 4) as f64);

    let (s1, s3) = (c1.stats(), c3.stats());

    // Protocol shape (the §2.1 formulas), measured on the same runs:
    // DEISA1 pays `2·T·R + heartbeats` bridge metadata, DEISA3 pays the
    // `1 + R`-shaped contract setup and nothing per step.
    assert_eq!(s1.count(MsgClass::Queue) as usize, 2 * STEPS * RANKS);
    assert_eq!(s1.count(MsgClass::UpdateData) as usize, STEPS * RANKS);
    assert_eq!(s1.count(MsgClass::GraphSubmit) as usize, STEPS);
    assert!(s1.bridge_metadata_messages() as usize >= 2 * STEPS * RANKS);
    assert_eq!(s3.count(MsgClass::Queue), 0);
    assert_eq!(s3.count(MsgClass::Heartbeat), 0);
    assert_eq!(s3.count(MsgClass::Variable) as usize, 3 + RANKS);
    assert_eq!(s3.count(MsgClass::GraphSubmit), 1);

    // The same gap in actual wire traffic into the scheduler: DEISA1's
    // queue ops alone (2·T·R) dwarf DEISA3's whole metadata budget, so the
    // scheduler-inbound lane must show both more messages and more bytes.
    let (m1, b1) = (
        s1.wire_messages(WireLane::SchedIn),
        s1.wire_bytes(WireLane::SchedIn),
    );
    let (m3, b3) = (
        s3.wire_messages(WireLane::SchedIn),
        s3.wire_bytes(WireLane::SchedIn),
    );
    assert!(m1 > 0 && m3 > 0, "SimNet must account frames on both runs");

    // Strip the compute plane out of the inbound lane. Task reports,
    // replica notices, and external-task completions are each exactly one
    // wire frame, and the paper does not count them as metadata — what
    // remains is the §2.1 metadata stream plus per-client session setup
    // (one connect + one disconnect for each of the R bridges + 1 adaptor).
    let metadata = |s: &deisa_repro::dtask::SchedulerStats, lane_msgs: u64| {
        lane_msgs
            - s.count(MsgClass::TaskReport)
            - s.count(MsgClass::AddReplica)
            - s.count(MsgClass::UpdateDataExternal)
    };
    let meta1 = metadata(s1, m1) - s1.count(MsgClass::Heartbeat);
    let meta3 = metadata(s3, m3);
    let session = 2 * (RANKS + 1);
    // DEISA1: T·R scatter updates + 2·T·R queue ops + T submits + T result
    // waits (the paper's `2·T·R + heartbeats`, every term on the wire).
    assert_eq!(meta1 as usize, 3 * STEPS * RANKS + 2 * STEPS + session);
    // DEISA3: the `1 + R`-shaped contract setup (3 + R variable ops) plus
    // one registration, one submit, one result wait — nothing per step.
    assert_eq!(meta3 as usize, (3 + RANKS) + 3 + session);
    assert!(
        meta1 >= 3 * meta3,
        "DEISA1 metadata frames {meta1} should dwarf DEISA3's {meta3}"
    );
    assert!(
        b1 > b3,
        "DEISA1 scheduler-inbound bytes {b1} should exceed DEISA3's {b3}"
    );
}

/// The same §2.1 gap with every frame crossing real TCP sockets — the
/// acceptance bar for the socket backend: byte accounting identical in shape
/// to Framed, measured on live runs.
#[test]
fn tcp_live_run_reproduces_deisa1_vs_deisa3_scheduler_gap() {
    let c3 = cluster_with(TransportConfig::Tcp);
    let total3 = run_deisa3_on(&c3);
    assert_eq!(total3, (STEPS * RANKS * 4) as f64);

    let c1 = cluster_with(TransportConfig::Tcp);
    let total1 = run_deisa1_on(&c1);
    assert_eq!(total1, (STEPS * RANKS * 4) as f64);

    let (s1, s3) = (c1.stats(), c3.stats());
    assert_eq!(s1.count(MsgClass::Queue) as usize, 2 * STEPS * RANKS);
    assert_eq!(s3.count(MsgClass::Queue), 0);
    assert_eq!(s3.count(MsgClass::Variable) as usize, 3 + RANKS);

    let (m1, b1) = (
        s1.wire_messages(WireLane::SchedIn),
        s1.wire_bytes(WireLane::SchedIn),
    );
    let (m3, b3) = (
        s3.wire_messages(WireLane::SchedIn),
        s3.wire_bytes(WireLane::SchedIn),
    );
    assert!(m1 > 0 && m3 > 0, "TCP must account frames on both runs");

    // Same metadata extraction as the SimNet acceptance test: strip the
    // compute plane, leaving the §2.1 stream plus session setup.
    let metadata = |s: &deisa_repro::dtask::SchedulerStats, lane_msgs: u64| {
        lane_msgs
            - s.count(MsgClass::TaskReport)
            - s.count(MsgClass::AddReplica)
            - s.count(MsgClass::UpdateDataExternal)
    };
    let meta1 = metadata(s1, m1) - s1.count(MsgClass::Heartbeat);
    let meta3 = metadata(s3, m3);
    let session = 2 * (RANKS + 1);
    assert_eq!(meta1 as usize, 3 * STEPS * RANKS + 2 * STEPS + session);
    assert_eq!(meta3 as usize, (3 + RANKS) + 3 + session);
    assert!(
        meta1 >= 3 * meta3,
        "DEISA1 metadata frames {meta1} should dwarf DEISA3's {meta3} over TCP"
    );
    assert!(
        b1 > b3,
        "DEISA1 scheduler-inbound bytes {b1} should exceed DEISA3's {b3} over TCP"
    );
}

// ---- worker death under the Framed backend ---------------------------------

/// A Framed cluster with liveness on: fast worker pings, short timeout.
fn framed_fault_cluster() -> Cluster {
    Cluster::with_config(ClusterConfig {
        n_workers: 3,
        slots_per_worker: 1,
        transport: TransportConfig::Framed,
        fault: FaultConfig {
            heartbeat_timeout: Some(Duration::from_millis(150)),
            worker_heartbeat: HeartbeatInterval::Every(Duration::from_millis(20)),
            max_retries: 5,
            retry_backoff: Duration::from_millis(5),
            ..FaultConfig::default()
        },
        ..ClusterConfig::default()
    })
}

/// Kill-mid-run with every block replicated: the result over Framed must be
/// identical to an undisturbed run, because failure detection resubmits
/// stranded tasks onto survivors that hold replicas (or recomputes results
/// lost with the dead holder) — the whole recovery cycle (heartbeats, death
/// verdict, retries) crossing the wire format.
#[test]
fn framed_dead_worker_with_replicas_yields_identical_results() {
    let run = |kill: bool| -> f64 {
        let cluster = framed_fault_cluster();
        cluster.registry().register("slow_id", |_, inputs| {
            std::thread::sleep(Duration::from_millis(50));
            Ok(inputs[0].clone())
        });
        let client = cluster.client();
        for i in 0..6usize {
            let key = Key::new(format!("blk-{i}"));
            let datum = Datum::F64((i + 1) as f64);
            client.scatter_external(vec![(key.clone(), datum.clone())], Some(i % 3));
            client.scatter_external(vec![(key, datum)], Some((i + 1) % 3));
        }
        let mut specs: Vec<TaskSpec> = (0..6usize)
            .map(|i| {
                TaskSpec::new(
                    format!("slow-{i}"),
                    "slow_id",
                    Datum::Null,
                    vec![Key::new(format!("blk-{i}"))],
                )
            })
            .collect();
        specs.push(TaskSpec::new(
            "total",
            "sum_scalars",
            Datum::Null,
            (0..6usize).map(|i| Key::new(format!("slow-{i}"))).collect(),
        ));
        client.submit(specs);
        if kill {
            std::thread::sleep(Duration::from_millis(30));
            cluster.kill_worker(1);
        }
        let total = client
            .future("total")
            .result_timeout(Duration::from_secs(30))
            .unwrap()
            .as_f64()
            .unwrap();
        if kill {
            let stats = cluster.stats();
            assert_eq!(stats.peers_lost(), 1);
            // Recovery may run through resubmission (a stranded assignment
            // re-queued onto a survivor) or recomputation (a finished result
            // that died with its holder) depending on which side of the kill
            // each task was on — either counts as the cycle crossing the wire.
            assert!(stats.tasks_resubmitted() + stats.recomputes() >= 1);
        }
        total
    };
    assert_eq!(run(false), run(true));
}

/// The unrecoverable case over Framed: the only replica of an external block
/// dies and its downstream cone fails with a structured `PeerLost` cause that
/// round-trips through the wire codec to the client.
#[test]
fn framed_dead_worker_without_replicas_errs_with_peer_lost() {
    let cluster = framed_fault_cluster();
    let client = cluster.client();
    client.scatter_external(vec![(Key::new("only"), Datum::F64(7.0))], Some(1));
    assert_eq!(client.future("only").result().unwrap().as_f64(), Some(7.0));
    cluster.kill_worker(1);
    client.submit(vec![TaskSpec::new(
        "reader",
        "identity",
        Datum::Null,
        vec!["only".into()],
    )]);
    let err = client
        .future("reader")
        .result_timeout(Duration::from_secs(30))
        .unwrap_err();
    assert_eq!(err.cause, ErrorCause::PeerLost, "{err:?}");
    assert_eq!(err.key.as_str(), "only");
    assert_eq!(cluster.stats().external_blocks_lost(), 1);
}
