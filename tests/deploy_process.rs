//! Process-level deployment tests: real `dtask-node` worker processes
//! (fork/exec of the compiled binary) attached to a `Cluster::listen` hub,
//! including SIGKILL chaos — the one failure mode thread-level tests cannot
//! produce, because a killed process takes its sockets, its heartbeat
//! pinger, and its object store with it instantly.

use deisa_repro::darray::{self, ChunkGrid, DArray, Graph};
use deisa_repro::dtask::{
    Cluster, ClusterConfig, Datum, DeployConfig, FaultConfig, HeartbeatInterval, Key,
};
use deisa_repro::linalg::NDArray;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn spawn_worker(addr: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_dtask-node"))
        .args(["--connect", addr])
        .stdin(Stdio::null())
        .spawn()
        .expect("spawn dtask-node")
}

/// Spawn `n` worker processes one at a time, waiting for each to attach, so
/// child `k` is deterministically worker `k`.
fn spawn_workers(cluster: &Cluster, n: usize) -> Vec<Child> {
    let addr = cluster.deploy_addr().unwrap().to_string();
    let mut children = Vec::with_capacity(n);
    for k in 0..n {
        children.push(spawn_worker(&addr));
        let deadline = Instant::now() + Duration::from_secs(30);
        while cluster.attached_workers() < k + 1 {
            assert!(
                Instant::now() < deadline,
                "worker process {k} never attached"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    children
}

/// A hub + `n` real worker processes computes the quickstart reduction
/// bit-identically to the all-threads in-process cluster, and an orderly
/// shutdown dismisses every child with exit code 0.
#[test]
fn worker_processes_match_in_process_results() {
    let workload = |cluster: &Cluster| -> f64 {
        darray::register_array_ops(cluster.registry());
        let client = cluster.client();
        let keys: Vec<Key> = (0..4).map(|i| Key::new(format!("sim-block-{i}"))).collect();
        client.register_external(keys.clone());
        let grid = ChunkGrid::regular(&[16, 16], &[8, 8]).unwrap();
        let field = DArray::from_keys(grid, keys.clone()).unwrap();
        let mut graph = Graph::new("proc");
        let total = field.sum_all(&mut graph);
        graph.submit(&client);
        let producer = cluster.client();
        for (i, key) in keys.iter().enumerate() {
            let block = NDArray::full(&[8, 8], (i + 1) as f64);
            producer.scatter_external(vec![(key.clone(), Datum::from(block))], Some(i % 2));
        }
        client
            .future(total)
            .result_timeout(Duration::from_secs(60))
            .unwrap()
            .as_f64()
            .unwrap()
    };

    let local = workload(&Cluster::new(2));

    let cluster = Cluster::listen(
        ClusterConfig {
            n_workers: 2,
            ..ClusterConfig::default()
        },
        DeployConfig::default(),
    )
    .unwrap();
    let mut children = spawn_workers(&cluster, 2);
    let deployed = workload(&cluster);
    assert_eq!(deployed, local);
    assert_eq!(deployed, 64.0 * (1.0 + 2.0 + 3.0 + 4.0));

    drop(cluster); // Goodbye broadcast
    for (k, child) in children.iter_mut().enumerate() {
        let status = child.wait().expect("wait worker");
        assert!(
            status.success(),
            "worker process {k} must exit 0 after Goodbye, got {status:?}"
        );
    }
}

/// SIGKILL one worker process mid-workflow. With every external block
/// replicated on a surviving worker, liveness detects exactly one lost
/// peer, recovery re-runs the stranded/lost work on survivors, and the
/// final reduction is the undisturbed answer.
#[test]
fn sigkill_worker_process_recovers_with_one_peer_lost() {
    let cluster = Cluster::listen(
        ClusterConfig {
            n_workers: 3,
            fault: FaultConfig {
                heartbeat_timeout: Some(Duration::from_millis(300)),
                worker_heartbeat: HeartbeatInterval::Every(Duration::from_millis(50)),
                max_retries: 5,
                retry_backoff: Duration::from_millis(10),
                ..FaultConfig::default()
            },
            ..ClusterConfig::default()
        },
        DeployConfig::default(),
    )
    .unwrap();
    let mut children = spawn_workers(&cluster, 3);

    darray::register_array_ops(cluster.registry());
    let client = cluster.client();
    let keys: Vec<Key> = (0..4).map(|i| Key::new(format!("sim-block-{i}"))).collect();
    client.register_external(keys.clone());
    let grid = ChunkGrid::regular(&[16, 16], &[8, 8]).unwrap();
    let field = DArray::from_keys(grid, keys.clone()).unwrap();
    let mut graph = Graph::new("chaos");
    let total = field.sum_all(&mut graph);
    graph.submit(&client);

    // First two blocks, each replicated on two workers (1 is a holder).
    let producer = cluster.client();
    for (i, key) in keys.iter().take(2).enumerate() {
        let block = NDArray::full(&[8, 8], (i + 1) as f64);
        producer.scatter_external(vec![(key.clone(), Datum::from(block.clone()))], Some(i % 3));
        producer.scatter_external(vec![(key.clone(), Datum::from(block))], Some((i + 1) % 3));
    }

    // SIGKILL worker 1's process: sockets, store, and pinger die instantly.
    children[1].kill().expect("kill worker 1");
    let _ = children[1].wait();

    // Liveness must detect exactly one lost peer.
    let deadline = Instant::now() + Duration::from_secs(15);
    while cluster.stats().peers_lost() < 1 {
        assert!(
            Instant::now() < deadline,
            "scheduler never noticed the killed worker process"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(cluster.stats().peers_lost(), 1);

    // Remaining blocks go to the survivors; the pre-submitted graph then
    // completes through recovery — replicas of blocks 0/1 survive on
    // workers 0 and 2, and anything stranded on worker 1 re-runs.
    for (i, place) in [(2usize, [2usize, 0]), (3usize, [0usize, 2])] {
        let block = NDArray::full(&[8, 8], (i + 1) as f64);
        producer.scatter_external(
            vec![(keys[i].clone(), Datum::from(block.clone()))],
            Some(place[0]),
        );
        producer.scatter_external(vec![(keys[i].clone(), Datum::from(block))], Some(place[1]));
    }
    let answer = client
        .future(total)
        .result_timeout(Duration::from_secs(60))
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(answer, 64.0 * (1.0 + 2.0 + 3.0 + 4.0));

    let stats = cluster.stats();
    assert_eq!(stats.peers_lost(), 1, "exactly one peer may be lost");
    assert_eq!(
        stats.external_blocks_lost(),
        0,
        "every external block had a surviving replica"
    );

    // Orderly shutdown still works with a corpse in the worker table.
    drop(cluster);
    for (k, child) in children.iter_mut().enumerate() {
        let status = child.wait().expect("wait worker");
        if k == 1 {
            assert!(!status.success(), "worker 1 was SIGKILLed");
        } else {
            assert!(
                status.success(),
                "surviving worker {k} must exit 0, got {status:?}"
            );
        }
    }
}
