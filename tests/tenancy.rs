//! Multi-tenant serving suite (ISSUE 10).
//!
//! Invariants under test:
//!
//! 1. **Namespace isolation**: two sessions submitting graphs with
//!    *identical* key names get their own results — no cross-talk through
//!    the scheduler's task table, the variable map, the queue map, or the
//!    worker stores.
//! 2. **Clean not-found**: a tenant reading another tenant's variable sees
//!    "unset", never the other tenant's data.
//! 3. **Admission control**: a graph that would push a session past its
//!    in-flight cap is rejected whole, the rejection is surfaced to the
//!    client as [`SubmitError::Rejected`] (not silent queuing), counted,
//!    and the session recovers — the same graph is admitted once in-flight
//!    work completes.
//! 4. **No dropped notifications on the happy path**: `notifies_dropped`
//!    stays zero through a full multi-tenant workload.
//! 5. **Default-off**: with tenancy off the scheduler serves the implicit
//!    session and records no tenant counters at all.

use deisa_repro::dtask::{
    Cluster, ClusterConfig, Datum, Key, StatsSnapshot, SubmitError, TaskSpec, TenancyConfig,
};
use std::time::Duration;

fn tenant_cluster(n_workers: usize, tenancy: TenancyConfig) -> Cluster {
    Cluster::with_config(ClusterConfig {
        n_workers,
        slots_per_worker: 1,
        tenancy,
        ..ClusterConfig::default()
    })
}

/// The same graph both tenants submit: identical key names, per-tenant
/// payloads. If namespaces leak anywhere, the reductions collide.
fn tenant_graph(seed: f64) -> Vec<TaskSpec> {
    vec![
        TaskSpec::new("a", "const", Datum::F64(seed), vec![]),
        TaskSpec::new("b", "const", Datum::F64(seed * 10.0), vec![]),
        TaskSpec::new(
            "total",
            "sum_scalars",
            Datum::Null,
            vec!["a".into(), "b".into()],
        ),
    ]
}

#[test]
fn concurrent_sessions_with_identical_key_names_are_isolated() {
    let cluster = tenant_cluster(2, TenancyConfig::enabled());
    let c1 = cluster.client();
    let c2 = cluster.client();
    assert_ne!(c1.session(), c2.session(), "each client gets a session");

    // Interleave: both graphs are in flight under the same key names at
    // once before either result is gathered.
    c1.submit(tenant_graph(1.0));
    c2.submit(tenant_graph(2.0));
    let r1 = c1.future("total").result().unwrap();
    let r2 = c2.future("total").result().unwrap();
    assert_eq!(r1.as_f64(), Some(11.0), "tenant 1 sees its own reduction");
    assert_eq!(r2.as_f64(), Some(22.0), "tenant 2 sees its own reduction");

    // Scatter under a colliding name too: data-plane keys are scoped.
    c1.scatter(vec![(Key::new("blk"), Datum::F64(7.0))], Some(0));
    c2.scatter(vec![(Key::new("blk"), Datum::F64(9.0))], Some(0));
    assert_eq!(c1.future("blk").result().unwrap().as_f64(), Some(7.0));
    assert_eq!(c2.future("blk").result().unwrap().as_f64(), Some(9.0));

    // Happy path: every notification found its client.
    assert_eq!(cluster.stats().notifies_dropped(), 0);

    // Per-tenant accounting saw both sessions.
    let snap = StatsSnapshot::capture(cluster.stats());
    assert_eq!(snap.tenants.len(), 2);
    assert!(snap.tenants.iter().all(|(_, t)| t.tasks >= 3));
    let prom = snap.to_prometheus();
    assert!(prom.contains("dtask_sched_notifies_dropped_total 0"));
    assert!(prom.contains(&format!(
        "dtask_tenant_tasks_total{{session=\"{}\"}}",
        c1.session()
    )));
}

#[test]
fn cross_session_variable_and_queue_reads_are_clean_not_found() {
    let cluster = tenant_cluster(1, TenancyConfig::enabled());
    let c1 = cluster.client();
    let c2 = cluster.client();

    c1.var_set("shared", Datum::F64(42.0));
    assert_eq!(c1.var_get("shared").unwrap().as_f64(), Some(42.0));
    // Tenant 2 sees an unset variable — not tenant 1's data, not an error.
    assert!(c2.var_try_get("shared").unwrap().is_none());

    // Queues are namespaced the same way: tenant 2's pop blocks on its own
    // empty queue, so its own push (not tenant 1's) unblocks it.
    c1.q_push("q", Datum::F64(1.0));
    c2.q_push("q", Datum::F64(2.0));
    assert_eq!(c2.q_pop("q").unwrap().as_f64(), Some(2.0));
    assert_eq!(c1.q_pop("q").unwrap().as_f64(), Some(1.0));
}

#[test]
fn admission_cap_rejects_surfaces_and_recovers() {
    let cluster = tenant_cluster(1, TenancyConfig::with_cap(2));
    cluster.registry().register("slow_const", |param, _| {
        std::thread::sleep(Duration::from_millis(30));
        Ok(param.clone())
    });
    let client = cluster.client();

    // Two slow tasks fill the cap exactly and hold it: one executor slot
    // serializes them, so both stay in flight while the next graph arrives.
    client
        .try_submit(vec![
            TaskSpec::new("s0", "slow_const", Datum::F64(1.0), vec![]),
            TaskSpec::new("s1", "slow_const", Datum::F64(2.0), vec![]),
        ])
        .expect("a graph at the cap is admitted");

    // One more task cannot fit: rejected whole, with the live numbers.
    let err = client
        .try_submit(vec![TaskSpec::new("s2", "const", Datum::F64(9.0), vec![])])
        .unwrap_err();
    match err {
        SubmitError::Rejected { inflight, cap } => {
            assert_eq!(cap, 2);
            assert!(
                inflight >= 1,
                "rejection reports live in-flight: {inflight}"
            );
        }
        other => panic!("expected admission rejection, got {other:?}"),
    }
    assert_eq!(cluster.stats().admission_rejections(), 1);

    // Recovery: drain the in-flight work, then the same graph is admitted.
    assert_eq!(client.future("s0").result().unwrap().as_f64(), Some(1.0));
    assert_eq!(client.future("s1").result().unwrap().as_f64(), Some(2.0));
    client
        .try_submit(vec![TaskSpec::new("s2", "const", Datum::F64(9.0), vec![])])
        .expect("the cap frees as tasks finish");
    assert_eq!(client.future("s2").result().unwrap().as_f64(), Some(9.0));

    let snap = StatsSnapshot::capture(cluster.stats());
    assert_eq!(snap.admission_rejections, 1);
    let tenant = &snap
        .tenants
        .iter()
        .find(|(s, _)| *s == client.session())
        .unwrap()
        .1;
    assert_eq!(tenant.admission_rejections, 1);
    assert!(snap
        .to_prometheus()
        .contains("dtask_admission_rejections_total 1"));
}

#[test]
fn without_a_cap_submissions_never_wait_for_acks() {
    // Tenancy on, no cap: scoped namespaces but the seed's fire-and-forget
    // submission path (no SubmitOutcome round trip to deadlock on).
    let cluster = tenant_cluster(1, TenancyConfig::enabled());
    let client = cluster.client();
    client.try_submit(tenant_graph(3.0)).unwrap();
    assert_eq!(
        client.future("total").result().unwrap().as_f64(),
        Some(33.0)
    );
}

#[test]
fn tenancy_off_serves_the_implicit_session_with_no_tenant_counters() {
    let cluster = Cluster::new(1);
    let client = cluster.client();
    assert_eq!(client.session(), 0, "default mode: the implicit session");
    client.submit(tenant_graph(1.0));
    assert_eq!(
        client.future("total").result().unwrap().as_f64(),
        Some(11.0)
    );
    let snap = StatsSnapshot::capture(cluster.stats());
    assert!(
        snap.tenants.is_empty(),
        "single-tenant clusters record no per-session counters"
    );
    assert_eq!(snap.admission_rejections, 0);
    // The tenancy JSON section exists (schema is stable) but is empty.
    let doc = snap.to_json();
    let tenancy = doc.get("tenancy").expect("tenancy section");
    assert!(tenancy.get("sessions").is_some());
}

#[test]
fn session_teardown_releases_only_that_tenants_state() {
    let cluster = tenant_cluster(2, TenancyConfig::enabled());
    let c1 = cluster.client();
    let c2 = cluster.client();
    c1.submit(tenant_graph(1.0));
    c2.submit(tenant_graph(2.0));
    assert_eq!(c1.future("total").result().unwrap().as_f64(), Some(11.0));
    assert_eq!(c2.future("total").result().unwrap().as_f64(), Some(22.0));
    c1.var_set("v", Datum::F64(5.0));
    c2.var_set("v", Datum::F64(6.0));

    // Orderly disconnect of tenant 1 tears its session down.
    drop(c1);

    // Tenant 2 is undisturbed: its variable and results are still there.
    assert_eq!(c2.var_get("v").unwrap().as_f64(), Some(6.0));
    assert_eq!(c2.future("total").result().unwrap().as_f64(), Some(22.0));
}
