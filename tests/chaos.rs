//! Chaos suite: live clusters with injected worker kills.
//!
//! The invariants under test are the fault-tolerance contract of ISSUE 5:
//!
//! 1. **Recoverable**: when every external block has a surviving replica,
//!    killing a worker mid-run changes *nothing* about the result — the
//!    scheduler detects the death via missed heartbeats, resubmits the
//!    in-flight tasks, and recomputes results whose only replica died.
//! 2. **Unrecoverable**: when a block's only replica dies, the downstream
//!    cone fails *cleanly* — the client receives a structured
//!    [`ErrorCause::PeerLost`], never a hang and never a bogus result.
//! 3. Recovery is observable: `peers_lost` / `tasks_resubmitted` /
//!    `recomputes` / `external_blocks_lost` counters land in the stats and
//!    the snapshot export, and `PeerLost` instants land in the trace.

use deisa_repro::dtask::{
    Cluster, ClusterConfig, Datum, ErrorCause, EventKind, FaultConfig, FaultPlan,
    HeartbeatInterval, Key, StatsSnapshot, TaskError, TaskSpec, TenancyConfig, TraceConfig,
};
use deisa_repro::linalg::NDArray;
use std::time::Duration;

/// Liveness tuned for test latency: 20 ms worker pings, 150 ms timeout.
fn chaos_fault() -> FaultConfig {
    FaultConfig {
        heartbeat_timeout: Some(Duration::from_millis(150)),
        worker_heartbeat: HeartbeatInterval::Every(Duration::from_millis(20)),
        max_retries: 5,
        retry_backoff: Duration::from_millis(5),
        plan: FaultPlan::default(),
    }
}

fn chaos_cluster(n_workers: usize) -> Cluster {
    Cluster::with_config(ClusterConfig {
        n_workers,
        slots_per_worker: 1,
        trace: TraceConfig::enabled(),
        fault: chaos_fault(),
        ..ClusterConfig::default()
    })
}

const BLOCKS: usize = 6;

/// The shared pipeline: `BLOCKS` external blocks, each replicated onto two
/// workers, flow through one slow stage each into a final reduction.
/// Optionally kills `kill` mid-run, while the first wave of slow stages is
/// still executing.
fn run_reduction(cluster: &Cluster, kill: Option<usize>) -> Result<Datum, TaskError> {
    cluster.registry().register("slow_id", |_, inputs| {
        std::thread::sleep(Duration::from_millis(50));
        Ok(inputs[0].clone())
    });
    let client = cluster.client();
    let n = cluster.n_workers();
    for i in 0..BLOCKS {
        let key = Key::new(format!("blk-{i}"));
        let datum = Datum::F64((i + 1) as f64);
        // Two replicas per block: any single worker death is survivable.
        client.scatter_external(vec![(key.clone(), datum.clone())], Some(i % n));
        client.scatter_external(vec![(key, datum)], Some((i + 1) % n));
    }
    let mut specs: Vec<TaskSpec> = (0..BLOCKS)
        .map(|i| {
            TaskSpec::new(
                format!("slow-{i}"),
                "slow_id",
                Datum::Null,
                vec![Key::new(format!("blk-{i}"))],
            )
        })
        .collect();
    specs.push(TaskSpec::new(
        "total",
        "sum_scalars",
        Datum::Null,
        (0..BLOCKS).map(|i| Key::new(format!("slow-{i}"))).collect(),
    ));
    client.submit(specs);
    if let Some(worker) = kill {
        // Each worker has one slot and ~2 queued 50 ms tasks: at 30 ms every
        // worker is mid-task, so the kill is guaranteed to strand work.
        std::thread::sleep(Duration::from_millis(30));
        cluster.kill_worker(worker);
    }
    client
        .future("total")
        .result_timeout(Duration::from_secs(30))
}

#[test]
fn killed_worker_with_replicated_blocks_yields_identical_results() {
    let baseline = {
        let cluster = chaos_cluster(3);
        run_reduction(&cluster, None).unwrap()
    };
    let cluster = chaos_cluster(3);
    let chaos = run_reduction(&cluster, Some(1)).unwrap();
    assert_eq!(
        baseline.as_f64(),
        chaos.as_f64(),
        "a kill with surviving replicas must not change the result"
    );
    let stats = cluster.stats();
    assert_eq!(stats.injected_kills(), 1);
    assert_eq!(stats.peers_lost(), 1, "exactly the killed worker");
    assert!(
        stats.tasks_resubmitted() + stats.recomputes() >= 1,
        "recovery must have resubmitted or recomputed something"
    );
    // Worker pings were flowing before the kill.
    assert!(stats.peers_tracked() >= 3);
    // The loss is visible in the trace and in the snapshot export.
    let log = cluster.tracer().collect();
    assert_eq!(log.events_of(EventKind::PeerLost).count(), 1);
    let snap = StatsSnapshot::capture(stats);
    assert_eq!(snap.peers_lost, 1);
    assert_eq!(snap.injected_kills, 1);
    assert!(snap.to_json().to_string_compact().contains("\"fault\""));
}

/// A task assigned to an already-dead worker (the scheduler has not yet
/// noticed the death) must be resubmitted to a survivor once the liveness
/// sweep fires. Placement is forced deterministically: the dead worker holds
/// a replica of the task's input and has the lowest load, so data gravity
/// plus the load tie-break pick it.
#[test]
fn stranded_assignment_is_resubmitted_to_survivor() {
    let cluster = chaos_cluster(3);
    cluster.registry().register("slow_id", |_, inputs| {
        std::thread::sleep(Duration::from_millis(250));
        Ok(inputs[0].clone())
    });
    let client = cluster.client();
    // The input block lives on workers 1 and 2; an anchor pins a long task
    // onto worker 2 so worker 1 is the less-loaded replica holder.
    client.scatter_external(vec![(Key::new("b"), Datum::F64(9.0))], Some(1));
    client.scatter_external(vec![(Key::new("b"), Datum::F64(9.0))], Some(2));
    client.scatter_external(vec![(Key::new("anchor"), Datum::F64(0.0))], Some(2));
    client.submit(vec![TaskSpec::new(
        "busy",
        "slow_id",
        Datum::Null,
        vec!["anchor".into()],
    )]);
    // Worker 1 is idle: the kill returns immediately and nothing has
    // failed yet, so the scheduler still believes it alive.
    cluster.kill_worker(1);
    client.submit(vec![TaskSpec::new(
        "reader",
        "identity",
        Datum::Null,
        vec!["b".into()],
    )]);
    let r = client
        .future("reader")
        .result_timeout(Duration::from_secs(30))
        .unwrap();
    assert_eq!(r.as_f64(), Some(9.0));
    let stats = cluster.stats();
    assert_eq!(stats.peers_lost(), 1);
    assert!(
        stats.tasks_resubmitted() >= 1,
        "the stranded assignment must have been resubmitted"
    );
    let log = cluster.tracer().collect();
    assert!(log.events_of(EventKind::Resubmit).count() >= 1);
}

#[test]
fn unreplicated_block_loss_fails_downstream_cone_with_peer_lost() {
    let cluster = chaos_cluster(3);
    let client = cluster.client();
    // One lonely block, one replica, on the worker about to die.
    client.scatter_external(vec![(Key::new("lonely"), Datum::F64(9.0))], Some(1));
    assert_eq!(
        client.future("lonely").result().unwrap().as_f64(),
        Some(9.0)
    );
    cluster.kill_worker(1);
    // Consumers submitted after the kill but before detection still resolve
    // to a clean structured error once the sweep declares the worker dead.
    client.submit(vec![
        TaskSpec::new("mid", "identity", Datum::Null, vec!["lonely".into()]),
        TaskSpec::new("leaf", "identity", Datum::Null, vec!["mid".into()]),
    ]);
    let err = client
        .future("leaf")
        .result_timeout(Duration::from_secs(30))
        .unwrap_err();
    assert_eq!(
        err.cause,
        ErrorCause::PeerLost,
        "the loss attribution must survive the dependency cascade: {err:?}"
    );
    assert_eq!(err.key.as_str(), "lonely", "error names the lost block");
    assert_eq!(cluster.stats().external_blocks_lost(), 1);
    assert_eq!(cluster.stats().peers_lost(), 1);
}

#[test]
fn losing_every_worker_errs_instead_of_hanging() {
    let cluster = chaos_cluster(1);
    cluster.registry().register("slow_id", |_, inputs| {
        std::thread::sleep(Duration::from_millis(80));
        Ok(inputs[0].clone())
    });
    let client = cluster.client();
    client.scatter_external(vec![(Key::new("b"), Datum::F64(1.0))], Some(0));
    client.submit(vec![TaskSpec::new(
        "t",
        "slow_id",
        Datum::Null,
        vec!["b".into()],
    )]);
    std::thread::sleep(Duration::from_millis(20));
    cluster.kill_worker(0);
    let err = client
        .future("t")
        .result_timeout(Duration::from_secs(30))
        .unwrap_err();
    assert_eq!(err.cause, ErrorCause::PeerLost, "{err:?}");
}

/// Regression (ISSUE 10 satellite): a client that dies mid-session used to
/// leak everything it owned — the liveness sweep removed it from the client
/// table but never released its task results, variables, queues, or store
/// payloads. With session teardown wired into the sweep, a dead tenant's
/// worker-store bytes must return to baseline while the surviving tenant
/// keeps working.
#[test]
fn dead_client_session_is_fully_reclaimed_by_liveness_sweep() {
    let cluster = Cluster::with_config(ClusterConfig {
        n_workers: 2,
        slots_per_worker: 1,
        tenancy: TenancyConfig::enabled(),
        fault: chaos_fault(),
        ..ClusterConfig::default()
    });
    let survivor =
        cluster.client_with_heartbeat(HeartbeatInterval::Every(Duration::from_millis(20)));
    survivor.scatter(
        vec![(Key::new("keep"), Datum::from(NDArray::full(&[16], 1.0)))],
        Some(0),
    );
    let baseline: u64 = cluster.worker_memory().iter().map(|(_, b)| b).sum();

    let doomed = cluster.client_with_heartbeat(HeartbeatInterval::Every(Duration::from_millis(20)));
    // The doomed tenant spreads state across both planes: scattered blocks,
    // computed results, and a variable.
    doomed.scatter(
        vec![(Key::new("blk"), Datum::from(NDArray::full(&[64], 2.0)))],
        Some(0),
    );
    doomed.scatter(
        vec![(Key::new("blk2"), Datum::from(NDArray::full(&[64], 3.0)))],
        Some(1),
    );
    doomed.submit(vec![TaskSpec::new(
        "out",
        "identity",
        Datum::Null,
        vec!["blk".into()],
    )]);
    doomed.future("out").result().unwrap();
    doomed.var_set("v", Datum::F64(1.0));
    assert!(
        cluster.worker_memory().iter().map(|(_, b)| b).sum::<u64>() > baseline,
        "the doomed tenant must actually hold store bytes"
    );

    // Liveness only ever tracks peers that actually ping (silence alone is
    // not death, for clients exactly as for workers) — so let the doomed
    // client's first heartbeat land before killing it.
    let tracked_deadline = std::time::Instant::now() + Duration::from_secs(5);
    while cluster.stats().peers_tracked() < 4 {
        assert!(
            std::time::Instant::now() < tracked_deadline,
            "client heartbeats never reached the scheduler"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Death without a goodbye: pings stop, no ClientDisconnect is sent, so
    // only the liveness sweep can notice and tear the session down.
    doomed.simulate_death();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let bytes: u64 = cluster.worker_memory().iter().map(|(_, b)| b).sum();
        if bytes == baseline {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "store bytes never returned to baseline: {bytes} vs {baseline}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(cluster.stats().peers_lost() >= 1, "the sweep saw the death");

    // The surviving tenant is untouched and the cluster still serves it.
    assert_eq!(survivor.future("keep").result().unwrap().nbytes(), 16 * 8);
    survivor.submit(vec![TaskSpec::new(
        "after",
        "const",
        Datum::F64(5.0),
        vec![],
    )]);
    assert_eq!(
        survivor.future("after").result().unwrap().as_f64(),
        Some(5.0)
    );
}

#[test]
fn fault_plan_schedules_a_kill_at_a_step() {
    let mut fault = chaos_fault();
    fault.plan.kill_worker = Some((2, 3));
    let cluster = Cluster::with_config(ClusterConfig {
        n_workers: 3,
        slots_per_worker: 1,
        fault,
        ..ClusterConfig::default()
    });
    let client = cluster.client();
    let mut killed = Vec::new();
    // A step-driven workload: one replicated block and one consumer per
    // step, polling the plan like the examples' chaos mode does.
    for step in 0..5u64 {
        if let Some(w) = cluster.fault_kill_due(step) {
            cluster.kill_worker(w);
            killed.push((step, w));
        }
        let key = Key::new(format!("s{step}"));
        let datum = Datum::F64(step as f64);
        client.scatter_external(vec![(key.clone(), datum.clone())], Some(0));
        client.scatter_external(vec![(key, datum)], Some(1));
        client.submit(vec![TaskSpec::new(
            format!("out{step}"),
            "identity",
            Datum::Null,
            vec![format!("s{step}").into()],
        )]);
    }
    assert_eq!(killed, vec![(3, 2)], "kill fires once, at its step");
    for step in 0..5u64 {
        let r = client
            .future(format!("out{step}"))
            .result_timeout(Duration::from_secs(30))
            .unwrap();
        assert_eq!(r.as_f64(), Some(step as f64));
    }
    assert_eq!(cluster.stats().injected_kills(), 1);
}
