//! The paper's §2.1 message-count formulas, measured on the real runtime,
//! and the cross-check that the DES models inject the same schedules.

use deisa_repro::darray::{self, Graph};
use deisa_repro::deisa::deisa1::{Adaptor1, Bridge1};
use deisa_repro::deisa::{Adaptor, Bridge, DeisaVersion, Selection, VirtualArray};
use deisa_repro::dtask::{
    Cluster, ClusterConfig, Datum, HeartbeatInterval, IngestMode, MsgClass, OptimizeConfig,
    StoreConfig, TransportConfig, WireLane,
};
use deisa_repro::linalg::NDArray;
use deisa_repro::netsim::sizing::f64_block_bytes;
use std::time::Duration;

const STEPS: usize = 5;
const RANKS: usize = 4;

fn varray() -> VirtualArray {
    VirtualArray::new("A", &[STEPS, 4, 4], &[1, 2, 2], 0).unwrap()
}

fn run_version(version: DeisaVersion) -> Cluster {
    run_version_on(version, Cluster::new(2))
}

/// Same workflow on a cluster with the graph optimizer and batched scheduler
/// ingestion enabled — the configuration the paper's formulas must survive.
fn run_version_optimized(version: DeisaVersion) -> Cluster {
    run_version_on(
        version,
        Cluster::with_config(ClusterConfig {
            n_workers: 2,
            optimize: OptimizeConfig::enabled(),
            ingest: IngestMode::Batched { max_burst: 64 },
            ..ClusterConfig::default()
        }),
    )
}

fn run_version_on(version: DeisaVersion, cluster: Cluster) -> Cluster {
    run_version_with_heartbeat(version, cluster, version.heartbeat(), Duration::ZERO)
}

/// The version's workflow with an explicit bridge heartbeat interval — the
/// window tests scale the paper's 5 s / 60 s / ∞ down so a wall-clock slice
/// fits in a unit test. Bridges keep their connection (and pinger) alive for
/// `window` after the last publish, standing in for a long-running
/// simulation between timesteps.
fn run_version_with_heartbeat(
    version: DeisaVersion,
    cluster: Cluster,
    bridge_heartbeat: HeartbeatInterval,
    window: Duration,
) -> Cluster {
    darray::register_array_ops(cluster.registry());
    if version.uses_external_tasks() {
        let analytics = {
            let client = cluster.client();
            std::thread::spawn(move || {
                let adaptor = Adaptor::new(client);
                let mut arrays = adaptor.get_deisa_arrays().unwrap();
                let v = arrays.descriptor("A").unwrap().clone();
                let a = arrays.select("A", Selection::all(&v)).unwrap();
                arrays.validate_contract().unwrap();
                let mut g = Graph::new("m");
                let k = a.sum_all(&mut g);
                g.submit(adaptor.client());
                adaptor.client().future(k).result().unwrap();
            })
        };
        let mut handles = Vec::new();
        for rank in 0..RANKS {
            let client = cluster.client_with_heartbeat(bridge_heartbeat);
            handles.push(std::thread::spawn(move || {
                let mut b = Bridge::init(client, rank, vec![varray()]).unwrap();
                for t in 0..STEPS {
                    b.publish("A", t, rank, NDArray::full(&[1, 2, 2], 1.0))
                        .unwrap();
                }
                std::thread::sleep(window);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        analytics.join().unwrap();
    } else {
        let analytics = {
            let client = cluster.client();
            std::thread::spawn(move || {
                let adaptor = Adaptor1::new(client, RANKS);
                for _ in 0..STEPS {
                    let metas = adaptor.collect_step().unwrap();
                    let step = adaptor.step_array(&varray(), &metas).unwrap();
                    let mut g = Graph::new("m1");
                    let k = step.sum_all(&mut g);
                    g.submit(adaptor.client());
                    adaptor.client().future(k).result().unwrap();
                }
            })
        };
        let mut handles = Vec::new();
        for rank in 0..RANKS {
            let client = cluster.client_with_heartbeat(bridge_heartbeat);
            handles.push(std::thread::spawn(move || {
                let mut b = Bridge1::init(client, rank, vec![varray()]);
                for t in 0..STEPS {
                    b.publish("A", t, rank, NDArray::full(&[1, 2, 2], 1.0))
                        .unwrap();
                }
                std::thread::sleep(window);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        analytics.join().unwrap();
    }
    cluster
}

#[test]
fn deisa1_metadata_matches_2tr_formula() {
    let cluster = run_version(DeisaVersion::Deisa1);
    let stats = cluster.stats();
    // Classic scatter updates: one per rank per step.
    assert_eq!(stats.count(MsgClass::UpdateData) as usize, STEPS * RANKS);
    assert_eq!(stats.count(MsgClass::UpdateDataExternal), 0);
    // Queue ops: push (bridges) + pop (adaptor) per rank per step.
    assert_eq!(stats.count(MsgClass::Queue) as usize, 2 * STEPS * RANKS);
    // Bridge-originated metadata = updates + pushes ≥ the paper's 2·T·R
    // (pops come from the adaptor; heartbeats are time-dependent).
    assert!(stats.bridge_metadata_messages() as usize >= 2 * STEPS * RANKS);
    // One graph submission per step.
    assert_eq!(stats.count(MsgClass::GraphSubmit) as usize, STEPS);
    assert_eq!(stats.count(MsgClass::Variable), 0);
}

#[test]
fn deisa3_metadata_matches_1_plus_r_formula() {
    let cluster = run_version(DeisaVersion::Deisa3);
    let stats = cluster.stats();
    // No classic-scatter metadata, no queues, no heartbeats.
    assert_eq!(stats.count(MsgClass::UpdateData), 0);
    assert_eq!(stats.count(MsgClass::Queue), 0);
    assert_eq!(stats.count(MsgClass::Heartbeat), 0);
    // Contract setup via the 2 Variables: rank-0 set + adaptor get +
    // adaptor set + R bridge gets = 3 + R messages ≈ the paper's 1 + R
    // (they count only the bridge-side messages).
    assert_eq!(stats.count(MsgClass::Variable) as usize, 3 + RANKS);
    // External-task completions are data plane: one per block per step.
    assert_eq!(
        stats.count(MsgClass::UpdateDataExternal) as usize,
        STEPS * RANKS
    );
    // The whole analytics graph went up ONCE.
    assert_eq!(stats.count(MsgClass::GraphSubmit), 1);
    // One external registration.
    assert_eq!(stats.count(MsgClass::RegisterExternal), 1);
}

/// The `1 + R` contract-message formula is a property of the protocol, not
/// of the scheduler configuration: with cull+fusion and batched ingestion
/// enabled, every DEISA3 metadata count must be exactly what the unoptimized
/// run produces — external tasks are never fused or culled away.
#[test]
fn deisa3_formula_survives_optimizer_and_batching() {
    let cluster = run_version_optimized(DeisaVersion::Deisa3);
    let stats = cluster.stats();
    assert_eq!(stats.count(MsgClass::UpdateData), 0);
    assert_eq!(stats.count(MsgClass::Queue), 0);
    assert_eq!(stats.count(MsgClass::Heartbeat), 0);
    assert_eq!(stats.count(MsgClass::Variable) as usize, 3 + RANKS);
    assert_eq!(
        stats.count(MsgClass::UpdateDataExternal) as usize,
        STEPS * RANKS
    );
    assert_eq!(stats.count(MsgClass::GraphSubmit), 1);
    assert_eq!(stats.count(MsgClass::RegisterExternal), 1);
    // And the optimizer genuinely ran over the analytics graph.
    assert!(stats.optimize_tasks_in() > 0);
}

/// DEISA1 (per-step queues + classic scatter) under the optimized scheduler:
/// the `2·T·R` bridge-metadata shape is likewise untouched.
#[test]
fn deisa1_formula_survives_optimizer_and_batching() {
    let cluster = run_version_optimized(DeisaVersion::Deisa1);
    let stats = cluster.stats();
    assert_eq!(stats.count(MsgClass::UpdateData) as usize, STEPS * RANKS);
    assert_eq!(stats.count(MsgClass::UpdateDataExternal), 0);
    assert_eq!(stats.count(MsgClass::Queue) as usize, 2 * STEPS * RANKS);
    assert!(stats.bridge_metadata_messages() as usize >= 2 * STEPS * RANKS);
    assert_eq!(stats.count(MsgClass::GraphSubmit) as usize, STEPS);
    assert_eq!(stats.count(MsgClass::Variable), 0);
}

/// External-task traffic — completions, registrations, and payload bytes —
/// is bit-identical with and without the optimizer.
#[test]
fn external_task_counts_identical_pre_post_optimize() {
    let plain = run_version(DeisaVersion::Deisa3);
    let optimized = run_version_optimized(DeisaVersion::Deisa3);
    let (p, o) = (plain.stats(), optimized.stats());
    assert_eq!(
        p.count(MsgClass::UpdateDataExternal),
        o.count(MsgClass::UpdateDataExternal)
    );
    assert_eq!(
        p.count(MsgClass::RegisterExternal),
        o.count(MsgClass::RegisterExternal)
    );
    assert_eq!(
        p.bytes(MsgClass::ScatterData),
        o.bytes(MsgClass::ScatterData)
    );
    // The optimized run got there with fewer scheduler->worker assignment
    // messages (per-worker coalescing), never more.
    assert!(o.assign_messages() <= o.assign_tasks());
}

/// The §2.1 formulas measured with every frame crossing real TCP sockets:
/// the protocol counts are transport-invariant, and the scheduler-inbound
/// lane shows the same `2·T·R` vs `1 + R` gap in bytes that the Framed and
/// SimNet backends account — sockets add framing, never messages.
#[test]
fn tcp_lane_bytes_reproduce_deisa_formulas() {
    let tcp_cluster = || {
        Cluster::with_config(ClusterConfig {
            n_workers: 2,
            transport: TransportConfig::Tcp,
            ..ClusterConfig::default()
        })
    };
    let c1 = run_version_on(DeisaVersion::Deisa1, tcp_cluster());
    let c3 = run_version_on(DeisaVersion::Deisa3, tcp_cluster());
    let (s1, s3) = (c1.stats(), c3.stats());

    // Protocol shape, unchanged by the socket backend.
    assert_eq!(s1.count(MsgClass::Queue) as usize, 2 * STEPS * RANKS);
    assert_eq!(s1.count(MsgClass::UpdateData) as usize, STEPS * RANKS);
    assert_eq!(s3.count(MsgClass::Queue), 0);
    assert_eq!(s3.count(MsgClass::Variable) as usize, 3 + RANKS);
    assert_eq!(s3.count(MsgClass::GraphSubmit), 1);

    // And the lane accounting carries it in real serialized bytes.
    let (m1, b1) = (
        s1.wire_messages(WireLane::SchedIn),
        s1.wire_bytes(WireLane::SchedIn),
    );
    let (m3, b3) = (
        s3.wire_messages(WireLane::SchedIn),
        s3.wire_bytes(WireLane::SchedIn),
    );
    assert!(m1 > 0 && m3 > 0, "TCP runs must account scheduler frames");
    assert!(b1 > m1 && b3 > m3, "lane bytes must be real envelope sizes");
    assert!(
        m1 > m3 && b1 > b3,
        "DEISA1 scheduler lane ({m1} msgs / {b1} B) must exceed DEISA3's ({m3} msgs / {b3} B)"
    );
}

#[test]
fn deisa3_scheduler_load_is_far_below_deisa1() {
    let c1 = run_version(DeisaVersion::Deisa1);
    let c3 = run_version(DeisaVersion::Deisa3);
    let meta1 = c1.stats().bridge_metadata_messages();
    let meta3 = c3.stats().bridge_metadata_messages();
    assert!(
        meta1 >= 3 * meta3,
        "DEISA1 metadata {meta1} should dwarf DEISA3 {meta3}"
    );
}

#[test]
fn des_model_injects_matching_schedule() {
    // The DES replays the same per-class counts the real runtime produced,
    // projected to its scale. For R ranks and T steps the producer side
    // injects: DEISA3 → T·R light updates (+0 queue/heartbeat);
    // DEISA1 → T·R heavy updates + T·R pushes + T submits (+heartbeats ≥ 0).
    use deisa_repro::insitu_sim::{run_sim_side, CostModel, Mode, Scenario};
    let cost = CostModel::default();
    let t = STEPS;
    let r = RANKS;
    let d3 = run_sim_side(
        &Scenario {
            mode: Mode::Deisa3,
            n_ranks: r,
            n_workers: 2,
            block_bytes: 1 << 20,
            steps: t,
            seed: 1,
            send_permille: 1000,
        },
        &cost,
    );
    assert_eq!(d3.sched_msgs as usize, t * r);
    let d1 = run_sim_side(
        &Scenario {
            mode: Mode::Deisa1,
            n_ranks: r,
            n_workers: 2,
            block_bytes: 1 << 20,
            steps: t,
            seed: 1,
            send_permille: 1000,
        },
        &cost,
    );
    // At least updates + pushes + submits; heartbeats depend on virtual
    // runtime.
    assert!(d1.sched_msgs as usize >= 2 * t * r + t);
}

// ---- heartbeat accounting over a simulated wall-clock window --------------
//
// The paper's three configs differ in heartbeat interval: DEISA1 keeps
// Dask's 5 s default, DEISA2 stretches it to 60 s, DEISA3 disables it. The
// tests scale those intervals 1000x (5 ms / 60 ms / ∞) and keep the bridges
// connected for a 150 ms window after the last publish, so the per-version
// `MsgClass::Heartbeat` traffic is measured against the §2.1 formulas on
// real wall clock instead of being asserted away as zero.

const WINDOW: Duration = Duration::from_millis(150);

#[test]
fn deisa1_window_counts_2tr_plus_heartbeats() {
    let cluster = run_version_with_heartbeat(
        DeisaVersion::Deisa1,
        Cluster::new(2),
        HeartbeatInterval::Every(Duration::from_millis(5)),
        WINDOW,
    );
    let stats = cluster.stats();
    let heartbeats = stats.count(MsgClass::Heartbeat);
    // Metadata shape is unchanged by the pinger…
    assert_eq!(stats.count(MsgClass::UpdateData) as usize, STEPS * RANKS);
    assert_eq!(stats.count(MsgClass::Queue) as usize, 2 * STEPS * RANKS);
    // …and the bridge total is exactly updates + queue ops + heartbeats:
    // the paper's `2·T·R + heartbeats`, with every term measured.
    assert_eq!(
        stats.bridge_metadata_messages(),
        (3 * STEPS * RANKS) as u64 + heartbeats
    );
    // Each of the R bridges pings ~every 5 ms across a ≥150 ms window.
    assert!(
        heartbeats >= (RANKS * 10) as u64,
        "expected a stream of 5 ms heartbeats, saw {heartbeats}"
    );
}

#[test]
fn deisa2_window_heartbeats_are_sparse() {
    let cluster = run_version_with_heartbeat(
        DeisaVersion::Deisa2,
        Cluster::new(2),
        HeartbeatInterval::Every(Duration::from_millis(60)),
        WINDOW,
    );
    let stats = cluster.stats();
    let heartbeats = stats.count(MsgClass::Heartbeat);
    // External-task protocol: contract setup only, no per-step metadata.
    assert_eq!(stats.count(MsgClass::UpdateData), 0);
    assert_eq!(stats.count(MsgClass::Queue), 0);
    assert_eq!(stats.count(MsgClass::Variable) as usize, 3 + RANKS);
    // A 60 ms interval over a 150 ms window: every bridge pings at least
    // once, but far below DEISA1's 5 ms stream over the same window.
    assert!(
        heartbeats >= RANKS as u64,
        "every bridge should ping at least once, saw {heartbeats}"
    );
    assert!(
        heartbeats < (RANKS * 10) as u64,
        "60 ms interval should stay sparse, saw {heartbeats}"
    );
}

#[test]
fn deisa3_window_has_zero_heartbeats() {
    let cluster = run_version_with_heartbeat(
        DeisaVersion::Deisa3,
        Cluster::new(2),
        DeisaVersion::Deisa3.heartbeat(),
        WINDOW,
    );
    let stats = cluster.stats();
    // The whole point of external tasks: nothing pings, ever — the bridge
    // total collapses to the `1 + R`-shaped contract setup.
    assert_eq!(stats.count(MsgClass::Heartbeat), 0);
    assert_eq!(stats.count(MsgClass::Variable) as usize, 3 + RANKS);
    assert_eq!(
        stats.bridge_metadata_messages() as usize,
        3 + RANKS,
        "window must add no traffic at all"
    );
}

// ---- exactly-once heartbeat accounting --------------------------------------
//
// The batched scheduler drains heartbeats with a dedicated burst counter
// while single messages go through the per-message handler. Both paths must
// count each `MsgClass::Heartbeat` exactly once (and track the client's
// `last_seen` in both), or the §2.1 `2·T·R + heartbeats` budget drifts.

fn heartbeats_counted_exactly_once(ingest: IngestMode) {
    let cluster = Cluster::with_config(ClusterConfig {
        n_workers: 1,
        ingest,
        ..ClusterConfig::default()
    });
    let client = cluster.client();
    const N: usize = 25;
    for _ in 0..N {
        client.heartbeat();
    }
    // A synchronous round-trip: the scheduler has consumed everything this
    // client sent before it answers the variable get.
    client.var_set("sync", deisa_repro::dtask::Datum::F64(1.0));
    client.var_get("sync").unwrap();
    let stats = cluster.stats();
    assert_eq!(
        stats.count(MsgClass::Heartbeat) as usize,
        N,
        "each heartbeat must be counted exactly once"
    );
    // Liveness bookkeeping saw the same stream: the pinging client is
    // tracked (once), regardless of which ingest path drained it.
    assert_eq!(stats.peers_tracked(), 1);
    assert_eq!(stats.peers_lost(), 0);
}

#[test]
fn heartbeats_counted_exactly_once_per_message() {
    heartbeats_counted_exactly_once(IngestMode::PerMessage);
}

#[test]
fn heartbeats_counted_exactly_once_batched() {
    heartbeats_counted_exactly_once(IngestMode::Batched { max_burst: 64 });
}

// ---- out-of-band data plane: scheduler-lane bytes under growing blocks ----
//
// The proxy-handle plane (ISSUE 6) moves bulk variable payloads off the
// control path: the scheduler stores a fixed-size `DatumRef` while the
// payload rides the data lane between client and worker object stores. The
// §2.1 byte budget therefore splits — with proxies on, the scheduler-bound
// wire lane must stay inside a constant envelope while block sizes grow
// 100×; with proxies off, today's exact per-class byte counts reproduce.

/// A DEISA3-shaped feedback loop over the framed transport: each step a
/// producer publishes a `side`×`side` derived field as a variable and a
/// consumer reads it back. Returns the cluster plus the checksum of every
/// payload the consumer observed (for bit-exact identity across configs).
fn feedback_workload(side: usize, store: StoreConfig) -> (Cluster, f64) {
    let cluster = Cluster::with_config(ClusterConfig {
        n_workers: 2,
        transport: TransportConfig::Framed,
        store,
        ..ClusterConfig::default()
    });
    let producer = cluster.client();
    let consumer = cluster.client();
    let mut checksum = 0.0;
    for t in 0..STEPS {
        let field = NDArray::from_fn(&[side, side], |i| {
            (t * 1_000_000 + i[0] * side + i[1]) as f64 * 0.5
        });
        producer.var_set(&format!("field{t}"), Datum::from(field));
        let got = consumer.var_get(&format!("field{t}")).unwrap();
        checksum += got.as_array().unwrap().data().iter().sum::<f64>();
    }
    (cluster, checksum)
}

#[test]
fn proxies_keep_scheduler_lane_flat_as_blocks_grow_100x() {
    let (small, _) = feedback_workload(16, StoreConfig::proxies());
    let (large, _) = feedback_workload(160, StoreConfig::proxies());
    let (s, l) = (small.stats(), large.stats());
    // 100× more payload, same scheduler-lane traffic (±10% envelope: the
    // handles are fixed-size, only varint widths may wiggle).
    let (sched_s, sched_l) = (
        s.wire_bytes(WireLane::SchedIn),
        l.wire_bytes(WireLane::SchedIn),
    );
    assert!(
        sched_l as f64 <= sched_s as f64 * 1.10 && sched_l as f64 >= sched_s as f64 * 0.90,
        "scheduler lane must stay flat: {sched_s} B at 16x16 vs {sched_l} B at 160x160"
    );
    // Variable-class bytes on the scheduler are handle-sized, not
    // payload-sized — identical across the sweep.
    assert_eq!(s.bytes(MsgClass::Variable), l.bytes(MsgClass::Variable));
    assert!(s.bytes(MsgClass::Variable) < f64_block_bytes(16 * 16) * STEPS as u64);
    // The growth went to the data plane: store puts + fetch replies.
    let data = |st: &deisa_repro::dtask::SchedulerStats| {
        st.wire_bytes(WireLane::DataIn) + st.wire_bytes(WireLane::ReplyIn)
    };
    assert!(
        data(l) >= 50 * data(s),
        "data lane must carry the 100x growth: {} B vs {} B",
        data(s),
        data(l)
    );
    // And the payload accounting matches the published volume exactly.
    assert_eq!(
        l.proxy_put_bytes(),
        STEPS as u64 * f64_block_bytes(160 * 160)
    );
    assert_eq!(
        l.proxy_fetch_bytes(),
        STEPS as u64 * f64_block_bytes(160 * 160)
    );
}

#[test]
fn proxies_off_reproduces_exact_control_path_byte_counts() {
    for side in [16, 160] {
        let (cluster, _) = feedback_workload(side, StoreConfig::default());
        let stats = cluster.stats();
        // Today's behavior, untouched: every set carries the full block over
        // the control path, every get is a zero-byte request.
        assert_eq!(stats.count(MsgClass::Variable) as usize, 2 * STEPS);
        assert_eq!(
            stats.bytes(MsgClass::Variable),
            STEPS as u64 * f64_block_bytes(side * side)
        );
        assert_eq!(stats.proxy_puts(), 0);
        assert_eq!(stats.proxy_fetches(), 0);
        assert_eq!(stats.store_spills(), 0);
    }
}

#[test]
fn proxy_plane_results_are_bit_identical_to_inline_results() {
    let (_on, sum_on) = feedback_workload(160, StoreConfig::proxies());
    let (_off, sum_off) = feedback_workload(160, StoreConfig::default());
    assert_eq!(
        sum_on.to_bits(),
        sum_off.to_bits(),
        "proxy plane must not change a single bit of the results"
    );
}

// ---- scheduling policies must not perturb the protocol accounting --------
//
// ISSUE 7 factors placement behind `PolicyConfig`; the default locality
// policy is required to be byte-identical to the pre-policy scheduler. The
// protocol-deterministic message classes (everything the §2.1 formulas
// count — placement-dependent classes like `PeerFetch` are excluded) must
// match between an implicit default config and an explicitly selected
// locality policy, and no steal traffic may appear.

#[test]
fn explicit_locality_policy_reproduces_seed_counts() {
    use deisa_repro::dtask::PolicyConfig;
    let implicit = run_version(DeisaVersion::Deisa3);
    let explicit = run_version_on(
        DeisaVersion::Deisa3,
        Cluster::with_config(ClusterConfig {
            n_workers: 2,
            policy: PolicyConfig::locality(),
            ..ClusterConfig::default()
        }),
    );
    let (i, e) = (implicit.stats(), explicit.stats());
    for class in [
        MsgClass::UpdateData,
        MsgClass::UpdateDataExternal,
        MsgClass::Queue,
        MsgClass::Variable,
        MsgClass::GraphSubmit,
        MsgClass::RegisterExternal,
        MsgClass::Heartbeat,
        MsgClass::ScatterData,
    ] {
        assert_eq!(i.count(class), e.count(class), "count drifted: {class:?}");
        assert_eq!(i.bytes(class), e.bytes(class), "bytes drifted: {class:?}");
    }
    // The seed formulas hold verbatim under the explicit policy…
    assert_eq!(e.count(MsgClass::Variable) as usize, 3 + RANKS);
    assert_eq!(
        e.count(MsgClass::UpdateDataExternal) as usize,
        STEPS * RANKS
    );
    assert_eq!(e.count(MsgClass::GraphSubmit), 1);
    assert_eq!(e.bytes(MsgClass::ScatterData) as usize, STEPS * RANKS * 32);
    // …and the default policy generates zero steal traffic on either side.
    for stats in [i, e] {
        assert_eq!(stats.steal_requests(), 0);
        assert_eq!(stats.steal_misses(), 0);
        assert_eq!(stats.tasks_stolen(), 0);
    }
}

#[test]
fn scatter_bytes_track_payloads() {
    let cluster = run_version(DeisaVersion::Deisa3);
    let stats = cluster.stats();
    // Each block is 1x2x2 f64 = 32 bytes; R ranks × T steps.
    assert_eq!(
        stats.bytes(MsgClass::ScatterData) as usize,
        STEPS * RANKS * 32
    );
}
