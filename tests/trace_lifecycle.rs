//! End-to-end checks of the task-lifecycle trace: every stage of
//! submit → ready → assign → exec → report → gather shows up in order, every
//! worker gets its own track, the Chrome export is well-formed, the phase
//! report partitions the makespan, and a disabled recorder stays silent.

use deisa_repro::dtask::{
    Cluster, ClusterConfig, Datum, EventKind, Key, TaskSpec, TraceActor, TraceConfig,
};

const N_WORKERS: usize = 2;

fn traced_cluster() -> Cluster {
    Cluster::with_config(ClusterConfig {
        n_workers: N_WORKERS,
        trace: TraceConfig::enabled(),
        ..ClusterConfig::default()
    })
}

/// One block scattered to each worker plus one dependent task per block, so
/// every worker is guaranteed at least one exec span.
fn run_workload(cluster: &Cluster) {
    let client = cluster.client();
    for w in 0..N_WORKERS {
        client.scatter(
            vec![(Key::new(format!("in-{w}")), Datum::F64(w as f64))],
            Some(w),
        );
    }
    client.submit(
        (0..N_WORKERS)
            .map(|w| {
                TaskSpec::new(
                    format!("out-{w}"),
                    "identity",
                    Datum::Null,
                    vec![Key::new(format!("in-{w}"))],
                )
            })
            .collect(),
    );
    for w in 0..N_WORKERS {
        assert_eq!(
            client.future(format!("out-{w}")).result().unwrap().as_f64(),
            Some(w as f64)
        );
    }
}

#[test]
fn every_worker_records_exec_spans_on_distinct_tracks() {
    let cluster = traced_cluster();
    run_workload(&cluster);
    let log = cluster.tracer().collect();

    let mut workers_with_exec = std::collections::HashSet::new();
    for (track, event) in log.events_of(EventKind::Exec) {
        let TraceActor::WorkerSlot { worker, .. } = track.actor else {
            panic!("exec span on non-worker track {:?}", track.actor);
        };
        assert!(event.dur_ns > 0, "exec must be a span, not an instant");
        workers_with_exec.insert(worker);
    }
    assert_eq!(
        workers_with_exec.len(),
        N_WORKERS,
        "every worker must record at least one exec span"
    );
    // Scheduler and client rows exist alongside the worker slots.
    assert!(log
        .tracks
        .iter()
        .any(|t| matches!(t.actor, TraceActor::Scheduler)));
    assert!(log
        .tracks
        .iter()
        .any(|t| matches!(t.actor, TraceActor::Client { .. })));
    // Nothing was dropped at this tiny scale.
    assert!(log.tracks.iter().all(|t| t.dropped == 0));
}

#[test]
fn lifecycle_events_appear_in_causal_order() {
    let cluster = traced_cluster();
    run_workload(&cluster);
    let log = cluster.tracer().collect();

    let key = Key::new("out-0");
    let t_of = |kind: EventKind| -> u64 {
        log.events_of(kind)
            .find(|(_, e)| e.key.as_ref() == Some(&key))
            .map(|(_, e)| e.t_ns)
            .unwrap_or_else(|| panic!("no {kind:?} event for {key}"))
    };
    let ready = t_of(EventKind::TaskReady);
    let assign = t_of(EventKind::Assign);
    let report = t_of(EventKind::Report);
    let (_, exec) = log
        .events_of(EventKind::Exec)
        .find(|(_, e)| e.key.as_ref() == Some(&key))
        .expect("exec span for out-0");
    assert!(ready <= assign, "ready {ready} after assign {assign}");
    assert!(assign <= exec.t_ns, "assign {assign} after exec start");
    assert!(
        exec.t_ns + exec.dur_ns <= report,
        "exec ended after its report instant"
    );
    let (_, gather) = log
        .events_of(EventKind::GatherToClient)
        .find(|(_, e)| e.key.as_ref() == Some(&key))
        .expect("client gather span for out-0");
    assert!(
        gather.t_ns + gather.dur_ns >= exec.t_ns + exec.dur_ns,
        "client gather cannot finish before the task ran"
    );
}

#[test]
fn chrome_export_is_valid_and_phase_report_partitions_makespan() {
    let cluster = traced_cluster();
    run_workload(&cluster);
    let log = cluster.tracer().collect();

    // The export round-trips through the in-tree JSON parser-free check:
    // balanced structure, one traceEvents array, metadata rows present.
    let chrome = log.to_chrome_json();
    let events = chrome
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(events.len() >= log.n_events(), "spans + metadata rows");
    let text = chrome.to_string_pretty();
    assert!(text.contains("\"process_name\""));
    assert!(text.contains("\"thread_name\""));

    let report = log.phase_report();
    assert!(report.makespan_ns > 0);
    let total = report.phases_total_ns() as f64;
    let makespan = report.makespan_ns as f64;
    assert!(
        (total - makespan).abs() <= 0.05 * makespan,
        "phase totals {total} vs makespan {makespan}"
    );
    // An external-data-free workload must attribute no contract time.
    assert_eq!(report.contract_setup_ns, 0);
}

#[test]
fn disabled_recorder_stays_silent_and_costless() {
    let cluster = Cluster::with_config(ClusterConfig {
        n_workers: N_WORKERS,
        ..ClusterConfig::default() // trace off
    });
    run_workload(&cluster);
    let log = cluster.tracer().collect();
    assert_eq!(log.n_events(), 0);
    assert!(log.tracks.is_empty());
    assert_eq!(log.phase_report().makespan_ns, 0);
}
