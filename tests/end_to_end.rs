//! Cross-crate end-to-end correctness: the full workflow (Heat2D on mpisim →
//! PDI → DEISA bridges → dtask cluster → darray/dml IPCA) must produce the
//! same model through every path the paper compares.

use deisa_repro::darray::{self, ChunkGrid, DArray, Graph, LabeledArray};
use deisa_repro::deisa::deisa1::{Adaptor1, Bridge1};
use deisa_repro::deisa::plugin::DeisaPlugin;
use deisa_repro::deisa::{Adaptor, DeisaVersion, Selection, VirtualArray};
use deisa_repro::dml::{self, InSituIncrementalPCA, IncrementalPca, SvdSolver};
use deisa_repro::dtask::{Cluster, Datum, Key};
use deisa_repro::h5lite::{H5Reader, H5Writer, SharedWriter};
use deisa_repro::heat2d::{run_rank, HeatConfig, PostHocPlugin};
use deisa_repro::linalg::Matrix;
use deisa_repro::mpisim::World;
use deisa_repro::pdi::{parse_yaml, Pdi, Yaml};

const STEPS: usize = 4;

fn cfg() -> HeatConfig {
    HeatConfig::new((12, 12), (2, 2), STEPS).unwrap()
}

fn cluster() -> Cluster {
    let c = Cluster::new(3);
    darray::register_array_ops(c.registry());
    dml::register_ml_ops(c.registry());
    c
}

const PLUGIN_CONFIG: &str = r#"
plugins:
  PdiPluginDeisa:
    init_on: init
    time_step: $step
    deisa_arrays:
      G_temp:
        size:
          -'$max_step'
          -'$loc[0] * $proc[0]'
          -'$loc[1] * $proc[1]'
        subsize:
          -1
          -'$loc[0]'
          -'$loc[1]'
        start:
          -$step
          -'$loc[0] * ($rank / $proc[1])'
          -'$loc[1] * ($rank % $proc[1])'
        timedim: 0
    map_in:
      temp: G_temp
"#;

/// Ground truth: run the simulation serially and fit a local IPCA on the
/// per-step batches, stacked exactly like `da.stack2d` does.
fn reference_model() -> IncrementalPca {
    let cfg = cfg();
    // Write post hoc with a single rank world == global field per step.
    let dir = std::env::temp_dir().join(format!("e2e-ref-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ref.h5l");
    let writer = SharedWriter::new(H5Writer::create(&path).unwrap());
    World::run(cfg.n_ranks(), |comm| {
        let mut pdi = Pdi::new(Yaml::Null);
        pdi.register(Box::new(PostHocPlugin::new(
            writer.clone(),
            cfg.clone(),
            comm.rank(),
            "G_temp",
            "temp",
        )));
        run_rank(comm, &cfg, &mut pdi).unwrap();
    })
    .unwrap();
    writer.close().unwrap();
    let reader = H5Reader::open(&path).unwrap();
    let (gx, gy) = cfg.global;
    let mut model = IncrementalPca::new(2, SvdSolver::Full);
    for t in 0..STEPS {
        let step = reader
            .read_slice("G_temp", &[t, 0, 0], &[1, gx, gy])
            .unwrap();
        // stack2d semantics: samples = (t, Y), features = X.
        let batch = Matrix::from_fn(gy, gx, |y, x| step.get(&[0, x, y]));
        model.partial_fit(&batch).unwrap();
    }
    std::fs::remove_file(&path).ok();
    model
}

/// DEISA3 through the PDI plugin + whole-graph IPCA.
fn deisa3_model() -> IncrementalPca {
    let cfg = cfg();
    let cluster = cluster();
    let analytics = {
        let client = cluster.client();
        std::thread::spawn(move || {
            let adaptor = Adaptor::new(client);
            let mut arrays = adaptor.get_deisa_arrays().unwrap();
            let v = arrays.descriptor("G_temp").unwrap().clone();
            let gt = arrays
                .select_labeled("G_temp", Selection::all(&v), &["t", "X", "Y"])
                .unwrap();
            arrays.validate_contract().unwrap();
            let ipca = InSituIncrementalPCA::new(2, SvdSolver::Full);
            let mut g = Graph::new("e2e3");
            let fitted = ipca.fit(&mut g, &gt, "t", &["Y"], &["X"]).unwrap();
            g.submit(adaptor.client());
            fitted.fetch(adaptor.client()).unwrap()
        })
    };
    World::run(cfg.n_ranks(), |comm| {
        let yaml = parse_yaml(PLUGIN_CONFIG).unwrap();
        let mut pdi = Pdi::new(yaml.clone());
        let client = cluster.client_with_heartbeat(DeisaVersion::Deisa3.heartbeat());
        DeisaPlugin::from_yaml(&yaml, DeisaVersion::Deisa3, client)
            .unwrap()
            .install(&mut pdi);
        run_rank(comm, &cfg, &mut pdi).unwrap();
    })
    .unwrap();
    let model = analytics.join().unwrap();
    // Happy path: every client notification found a connected client — a
    // non-zero count here means results or queue items were silently lost.
    assert_eq!(cluster.stats().notifies_dropped(), 0);
    model
}

/// DEISA1 (legacy queues protocol) + per-step old IPCA.
fn deisa1_model() -> IncrementalPca {
    let cfg = cfg();
    let cluster = cluster();
    let n_ranks = cfg.n_ranks();
    let varray = {
        let (l0, l1) = cfg.local();
        VirtualArray::new(
            "G_temp",
            &[STEPS, cfg.global.0, cfg.global.1],
            &[1, l0, l1],
            0,
        )
        .unwrap()
    };
    let analytics = {
        let client = cluster.client();
        let varray = varray.clone();
        std::thread::spawn(move || {
            let adaptor = Adaptor1::new(client, n_ranks);
            let mut model = IncrementalPca::new(2, SvdSolver::Full);
            for _t in 0..STEPS {
                let metas = adaptor.collect_step().unwrap();
                let step = adaptor.step_array(&varray, &metas).unwrap();
                let gt = LabeledArray::new(step, &["t", "X", "Y"]).unwrap();
                // Old IPCA pattern: a separate graph per step assembles the
                // batch; the partial_fit state lives with the client.
                let mut g = Graph::new(format!("b{_t}"));
                let batch_keys = gt.batches_along(&mut g, "t", &["Y"], &["X"]).unwrap();
                g.submit(adaptor.client());
                let batch = adaptor
                    .client()
                    .future(batch_keys[0].clone())
                    .result()
                    .unwrap();
                let m = Matrix::from_ndarray((**batch.as_array().unwrap()).clone()).unwrap();
                model.partial_fit(&m).unwrap();
            }
            model
        })
    };
    World::run(n_ranks, |comm| {
        use deisa_repro::heat2d::solver::{hot_square, LocalSolver};
        use deisa_repro::mpisim::CartComm;
        let client = cluster.client_with_heartbeat(DeisaVersion::Deisa1.heartbeat());
        let mut bridge = Bridge1::init(client, comm.rank(), vec![varray.clone()]);
        let cart = CartComm::new(comm, &[cfg.procs.0, cfg.procs.1], &[false, false]).unwrap();
        let (l0, l1) = cfg.local();
        let mut solver = LocalSolver::new(&cfg, cfg.coords(comm.rank()), hot_square(&cfg));
        for t in 0..cfg.steps {
            solver.exchange_ghosts(&cart).unwrap();
            solver.step_stencil();
            let block = solver.interior().reshape(&[1, l0, l1]).unwrap();
            bridge.publish("G_temp", t, comm.rank(), block).unwrap();
        }
    })
    .unwrap();
    let model = analytics.join().unwrap();
    assert_eq!(cluster.stats().notifies_dropped(), 0);
    model
}

#[test]
fn deisa3_matches_reference() {
    let reference = reference_model();
    let model = deisa3_model();
    assert_eq!(model.n_samples_seen, reference.n_samples_seen);
    for (a, b) in model.singular_values.iter().zip(&reference.singular_values) {
        assert!((a - b).abs() < 1e-8, "{a} vs {b}");
    }
    assert!(
        model
            .components
            .max_abs_diff(&reference.components)
            .unwrap()
            < 1e-7
    );
    for (a, b) in model.mean.iter().zip(&reference.mean) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn deisa1_matches_reference() {
    let reference = reference_model();
    let model = deisa1_model();
    assert_eq!(model.n_samples_seen, reference.n_samples_seen);
    for (a, b) in model.singular_values.iter().zip(&reference.singular_values) {
        assert!((a - b).abs() < 1e-8, "{a} vs {b}");
    }
    assert!(
        model
            .components
            .max_abs_diff(&reference.components)
            .unwrap()
            < 1e-7
    );
}

#[test]
fn contracted_subregion_matches_local_computation() {
    // Analytics selects a window; the result must equal the same window of
    // the locally-computed global field.
    let cfg = cfg();
    let cluster = cluster();
    let (l0, l1) = cfg.local();
    let varray = VirtualArray::new(
        "G_temp",
        &[STEPS, cfg.global.0, cfg.global.1],
        &[1, l0, l1],
        0,
    )
    .unwrap();

    let analytics = {
        let client = cluster.client();
        std::thread::spawn(move || {
            let adaptor = Adaptor::new(client);
            let mut arrays = adaptor.get_deisa_arrays().unwrap();
            // Last 2 steps, top-left 6x6 window (block-aligned to 6x6).
            let sel = Selection {
                starts: vec![2, 0, 0],
                sizes: vec![2, 6, 6],
            };
            let win = arrays.select("G_temp", sel).unwrap();
            arrays.validate_contract().unwrap();
            let mut g = Graph::new("w");
            let k = win.sum_all(&mut g);
            g.submit(adaptor.client());
            adaptor
                .client()
                .future(k)
                .result()
                .unwrap()
                .as_f64()
                .unwrap()
        })
    };

    let finals = World::run(cfg.n_ranks(), |comm| {
        use deisa_repro::deisa::Bridge;
        use deisa_repro::heat2d::solver::{hot_square, LocalSolver};
        use deisa_repro::mpisim::CartComm;
        let client = cluster.client_with_heartbeat(DeisaVersion::Deisa3.heartbeat());
        let mut bridge = Bridge::init(client, comm.rank(), vec![varray.clone()]).unwrap();
        let cart = CartComm::new(comm, &[cfg.procs.0, cfg.procs.1], &[false, false]).unwrap();
        let mut solver = LocalSolver::new(&cfg, cfg.coords(comm.rank()), hot_square(&cfg));
        let mut history = Vec::new();
        for t in 0..cfg.steps {
            solver.exchange_ghosts(&cart).unwrap();
            solver.step_stencil();
            let interior = solver.interior();
            history.push(interior.clone());
            let block = interior.reshape(&[1, l0, l1]).unwrap();
            bridge.publish("G_temp", t, comm.rank(), block).unwrap();
        }
        (cfg.coords(comm.rank()), history)
    })
    .unwrap();

    let windowed_sum = analytics.join().unwrap();

    // Local reconstruction of the same window.
    let mut expected = 0.0;
    for (coords, history) in finals {
        for (t, field) in history.iter().enumerate() {
            if t < 2 {
                continue; // selection starts at t=2
            }
            for i in 0..l0 {
                for j in 0..l1 {
                    let gi = coords.0 * l0 + i;
                    let gj = coords.1 * l1 + j;
                    if gi < 6 && gj < 6 {
                        expected += field.get(&[i, j]);
                    }
                }
            }
        }
    }
    assert!(
        (windowed_sum - expected).abs() < 1e-9,
        "window sum {windowed_sum} vs local {expected}"
    );
}

#[test]
fn deisa2_version_also_works() {
    // DEISA2 = same protocol as DEISA3, 60 s heartbeats (no heartbeat fires
    // within the test's lifetime, but the wiring differs).
    let cluster = cluster();
    let varray = VirtualArray::new("A", &[2, 4, 4], &[1, 2, 2], 0).unwrap();
    let analytics = {
        let client = cluster.client();
        let v = varray.clone();
        std::thread::spawn(move || {
            let adaptor = Adaptor::new(client);
            let mut arrays = adaptor.get_deisa_arrays().unwrap();
            let a = arrays.select("A", Selection::all(&v)).unwrap();
            arrays.validate_contract().unwrap();
            let mut g = Graph::new("d2");
            let k = a.sum_all(&mut g);
            g.submit(adaptor.client());
            adaptor
                .client()
                .future(k)
                .result()
                .unwrap()
                .as_f64()
                .unwrap()
        })
    };
    let mut handles = Vec::new();
    for rank in 0..4 {
        let client = cluster.client_with_heartbeat(DeisaVersion::Deisa2.heartbeat());
        let v = varray.clone();
        handles.push(std::thread::spawn(move || {
            let mut b = deisa_repro::deisa::Bridge::init(client, rank, vec![v]).unwrap();
            for t in 0..2 {
                b.publish(
                    "A",
                    t,
                    rank,
                    deisa_repro::linalg::NDArray::full(&[1, 2, 2], 1.0),
                )
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(analytics.join().unwrap(), 32.0);
}

/// External-task arrays interoperate with ordinary darray pipelines: slice +
/// rechunk + arithmetic over data that arrives later.
#[test]
fn external_array_composes_with_darray_ops() {
    let cluster = cluster();
    let client = cluster.client();
    let keys: Vec<Key> = (0..4).map(|i| Key::new(format!("x{i}"))).collect();
    client.register_external(keys.clone());
    let grid = ChunkGrid::regular(&[4, 4], &[2, 2]).unwrap();
    let ext = DArray::from_keys(grid, keys.clone()).unwrap();
    let mut g = Graph::new("compose");
    let doubled = ext.map_blocks(
        &mut g,
        "da.affine",
        Datum::List(vec![Datum::F64(2.0), Datum::F64(0.0)]),
    );
    let rechunked = doubled.rechunk(&mut g, &[4, 1]).unwrap();
    let total = rechunked.sum_all(&mut g);
    g.submit(&client);

    let feeder = cluster.client();
    for (i, key) in keys.iter().enumerate() {
        feeder.scatter_external(
            vec![(
                key.clone(),
                Datum::from(deisa_repro::linalg::NDArray::full(&[2, 2], i as f64)),
            )],
            None,
        );
    }
    let sum = client.future(total).result().unwrap().as_f64().unwrap();
    // Σ blocks: 4 elements × i × 2 for i in 0..4 = 2*4*(0+1+2+3) = 48.
    assert_eq!(sum, 48.0);
}
