//! A workflow with TWO virtual arrays under one contract — the plugin config
//! in the paper allows several `deisa_arrays` entries; this exercises the
//! path where the analytics selects different regions from different fields
//! and the bridges filter each independently.

use deisa_repro::darray::Graph;
use deisa_repro::deisa::{Adaptor, Bridge, DeisaVersion, Selection, VirtualArray};
use deisa_repro::dtask::Cluster;
use deisa_repro::linalg::NDArray;
use deisa_repro::{darray, dml};

const STEPS: usize = 4;
const RANKS: usize = 4; // 2x2 spatial grid

fn temp() -> VirtualArray {
    VirtualArray::new("G_temp", &[STEPS, 4, 4], &[1, 2, 2], 0).unwrap()
}

fn vel() -> VirtualArray {
    VirtualArray::new("G_vel", &[STEPS, 4, 4], &[1, 2, 2], 0).unwrap()
}

#[test]
fn two_arrays_one_contract() {
    let cluster = Cluster::new(3);
    darray::register_array_ops(cluster.registry());
    dml::register_ml_ops(cluster.registry());

    let analytics = {
        let client = cluster.client();
        std::thread::spawn(move || {
            let adaptor = Adaptor::new(client);
            let mut arrays = adaptor.get_deisa_arrays().unwrap();
            let mut names = arrays.names();
            names.sort();
            assert_eq!(names, vec!["G_temp", "G_vel"]);
            // temp: everything. vel: only the last two steps, top half.
            let t = arrays.select("G_temp", Selection::all(&temp())).unwrap();
            let v = arrays
                .select(
                    "G_vel",
                    Selection {
                        starts: vec![2, 0, 0],
                        sizes: vec![2, 2, 4],
                    },
                )
                .unwrap();
            arrays.validate_contract().unwrap();

            let mut g = Graph::new("two");
            let t_sum = t.sum_all(&mut g);
            let v_sum = v.sum_all(&mut g);
            // Cross-array arithmetic: mean temp minus mean vel on the shared
            // region is well-defined through plain graph ops too.
            g.submit(adaptor.client());
            let ts = adaptor
                .client()
                .future(t_sum)
                .result()
                .unwrap()
                .as_f64()
                .unwrap();
            let vs = adaptor
                .client()
                .future(v_sum)
                .result()
                .unwrap()
                .as_f64()
                .unwrap();
            (ts, vs)
        })
    };

    let mut handles = Vec::new();
    for rank in 0..RANKS {
        let client = cluster.client_with_heartbeat(DeisaVersion::Deisa3.heartbeat());
        handles.push(std::thread::spawn(move || {
            let mut bridge = Bridge::init(client, rank, vec![temp(), vel()]).unwrap();
            let mut sent = (0u64, 0u64);
            for t in 0..STEPS {
                // temp block value = 1; vel block value = 10.
                if bridge
                    .publish("G_temp", t, rank, NDArray::full(&[1, 2, 2], 1.0))
                    .unwrap()
                {
                    sent.0 += 1;
                }
                if bridge
                    .publish("G_vel", t, rank, NDArray::full(&[1, 2, 2], 10.0))
                    .unwrap()
                {
                    sent.1 += 1;
                }
            }
            sent
        }));
    }
    let mut temp_sent = 0;
    let mut vel_sent = 0;
    for h in handles {
        let (a, b) = h.join().unwrap();
        temp_sent += a;
        vel_sent += b;
    }
    let (ts, vs) = analytics.join().unwrap();

    // temp: all 4 blocks × 4 steps flow.
    assert_eq!(temp_sent, (STEPS * RANKS) as u64);
    // vel: steps 2..4 × top block row (ranks 0, 1) only.
    assert_eq!(vel_sent, 2 * 2);
    // Sums: temp = 4 elements × 1.0 × 16 blocks; vel window = 2 steps × top
    // half (2×4 elements) × 10.
    assert_eq!(ts, 64.0);
    assert_eq!(vs, 160.0);
}

#[test]
fn per_array_contracts_filter_independently() {
    // One array fully deselected: its bridge publishes become pure no-ops.
    let cluster = Cluster::new(2);
    darray::register_array_ops(cluster.registry());
    let analytics = {
        let client = cluster.client();
        std::thread::spawn(move || {
            let adaptor = Adaptor::new(client);
            let mut arrays = adaptor.get_deisa_arrays().unwrap();
            // Select ONLY temp; vel is never mentioned in the contract.
            let t = arrays.select("G_temp", Selection::all(&temp())).unwrap();
            arrays.validate_contract().unwrap();
            let mut g = Graph::new("only-temp");
            let k = t.sum_all(&mut g);
            g.submit(adaptor.client());
            adaptor
                .client()
                .future(k)
                .result()
                .unwrap()
                .as_f64()
                .unwrap()
        })
    };
    let mut handles = Vec::new();
    for rank in 0..RANKS {
        let client = cluster.client_with_heartbeat(DeisaVersion::Deisa3.heartbeat());
        handles.push(std::thread::spawn(move || {
            let mut bridge = Bridge::init(client, rank, vec![temp(), vel()]).unwrap();
            for t in 0..STEPS {
                assert!(bridge
                    .publish("G_temp", t, rank, NDArray::full(&[1, 2, 2], 2.0))
                    .unwrap());
                // vel is not under contract: filtered locally.
                assert!(!bridge
                    .publish("G_vel", t, rank, NDArray::full(&[1, 2, 2], 99.0))
                    .unwrap());
            }
            bridge.filtered_blocks
        }));
    }
    let mut filtered = 0;
    for h in handles {
        filtered += h.join().unwrap();
    }
    assert_eq!(filtered, (STEPS * RANKS) as u64);
    assert_eq!(analytics.join().unwrap(), 128.0);
}
