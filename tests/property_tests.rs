//! Property-style tests on the core data structures and invariants that the
//! whole stack leans on. Each test sweeps many pseudo-random cases drawn from
//! a fixed seed, so runs are deterministic and fully offline.

use deisa_repro::darray::ChunkGrid;
use deisa_repro::deisa::{block_key, naming, Contract, Selection, VirtualArray};
use deisa_repro::linalg::stats::{col_mean, col_var, RunningStats};
use deisa_repro::linalg::{householder_qr, jacobi_svd, Matrix, NDArray};
use rand::prelude::*;

const CASES: usize = 64;

/// Random shape (1–3 dims of 1–5) plus a valid slice inside it.
fn shape_and_slice(rng: &mut SmallRng) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let ndim = rng.gen_range(1usize..4);
    let shape: Vec<usize> = (0..ndim).map(|_| rng.gen_range(1usize..6)).collect();
    let starts: Vec<usize> = shape.iter().map(|&s| rng.gen_range(0usize..s)).collect();
    let sizes: Vec<usize> = shape
        .iter()
        .zip(&starts)
        .map(|(&s, &st)| rng.gen_range(1usize..=s - st))
        .collect();
    (shape, starts, sizes)
}

// ---------- NDArray slice/assign ------------------------------------------

#[test]
fn slice_assign_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xA11CE);
    for _ in 0..CASES {
        let (shape, starts, sizes) = shape_and_slice(&mut rng);
        let a = NDArray::from_fn(&shape, |idx| {
            idx.iter()
                .enumerate()
                .map(|(d, &i)| (d + 1) * 100 + i)
                .sum::<usize>() as f64
        });
        let block = a.slice(&starts, &sizes).unwrap();
        assert_eq!(block.shape(), &sizes[..]);
        let mut b = NDArray::zeros(&shape);
        b.assign_slice(&starts, &block).unwrap();
        // Every element of the assigned region matches the source.
        let back = b.slice(&starts, &sizes).unwrap();
        assert_eq!(back.max_abs_diff(&block).unwrap(), 0.0);
    }
}

#[test]
fn reshape_preserves_sum() {
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..64);
        let data: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let a = NDArray::from_vec(&[n], data).unwrap();
        let sum = a.sum();
        let b = a.reshape(&[1, n]).unwrap();
        assert!((b.sum() - sum).abs() < 1e-9);
    }
}

// ---------- ChunkGrid ---------------------------------------------------

#[test]
fn chunk_grid_tiles_exactly() {
    let mut rng = SmallRng::seed_from_u64(0xC4C4);
    for _ in 0..CASES {
        let ndim = rng.gen_range(1usize..4);
        let shape: Vec<usize> = (0..ndim).map(|_| rng.gen_range(1usize..20)).collect();
        let chunk: Vec<usize> = shape
            .iter()
            .map(|&s| rng.gen_range(1usize..7).min(s))
            .collect();
        let grid = ChunkGrid::regular(&shape, &chunk).unwrap();
        // Chunks tile each dimension exactly.
        for (d, &extent) in shape.iter().enumerate() {
            let total: usize = grid.chunk_sizes(d).iter().sum();
            assert_eq!(total, extent);
        }
        // Every block's start+extent stays in bounds; blocks cover everything.
        let dims = grid.grid_dims();
        let mut covered = 0usize;
        for coord in deisa_repro::darray::array::iter_coords(&dims) {
            let start = grid.block_start(&coord);
            let extent = grid.block_extent(&coord);
            for d in 0..shape.len() {
                assert!(start[d] + extent[d] <= shape[d]);
            }
            covered += extent.iter().product::<usize>();
        }
        assert_eq!(covered, shape.iter().product::<usize>());
    }
}

// ---------- naming scheme ----------------------------------------------

#[test]
fn block_key_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    let first: Vec<char> = ('a'..='z')
        .chain('A'..='Z')
        .chain(std::iter::once('_'))
        .collect();
    let rest: Vec<char> = ('a'..='z')
        .chain('A'..='Z')
        .chain('0'..='9')
        .chain(std::iter::once('_'))
        .collect();
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..13);
        let mut name = String::new();
        name.push(first[rng.gen_range(0usize..first.len())]);
        for _ in 0..len {
            name.push(rest[rng.gen_range(0usize..rest.len())]);
        }
        let pos: Vec<usize> = (0..rng.gen_range(1usize..5))
            .map(|_| rng.gen_range(0usize..1000))
            .collect();
        let key = block_key(&name, &pos);
        let (n, p) = naming::parse_block_key(&key).unwrap();
        assert_eq!(n, name);
        assert_eq!(p, pos);
    }
}

// ---------- contracts ----------------------------------------------------

#[test]
fn selection_intersection_matches_block_ranges() {
    let mut rng = SmallRng::seed_from_u64(0x5E1);
    for _ in 0..CASES {
        let t = rng.gen_range(1usize..6);
        let grid = rng.gen_range(1usize..5);
        let block = 3usize;
        let extent = grid * block;
        let v = VirtualArray::new("A", &[t, extent, extent], &[1, block, block], 0).unwrap();
        let (s0, s1, z0, z1) = (
            rng.gen_range(0usize..100),
            rng.gen_range(0usize..100),
            rng.gen_range(1usize..100),
            rng.gen_range(1usize..100),
        );
        let starts = vec![0, s0 % extent, s1 % extent];
        let sizes = vec![
            t,
            (z0 % (extent - starts[1])).max(1).min(extent - starts[1]),
            (z1 % (extent - starts[2])).max(1).min(extent - starts[2]),
        ];
        let sel = Selection { starts, sizes };
        sel.validate(&v).unwrap();
        let ranges = sel.block_ranges(&v);
        // A block intersects the selection IFF its coordinate is inside the
        // block ranges, for every block of the grid.
        for step in 0..t {
            for b in 0..v.blocks_per_step() {
                let pos = v.block_position(step, b);
                let inside = pos.iter().zip(&ranges).all(|(&p, r)| r.contains(&p));
                assert_eq!(sel.intersects_block(&v, &pos), inside);
            }
        }
    }
}

#[test]
fn contract_datum_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xD00D);
    for _ in 0..CASES {
        let n_names = rng.gen_range(1usize..4);
        let names: Vec<String> = (0..n_names)
            .map(|_| {
                let len = rng.gen_range(1usize..9);
                (0..len)
                    .map(|_| char::from(b'a' + rng.gen_range(0u32..26) as u8))
                    .collect()
            })
            .collect();
        let dims: Vec<(usize, usize)> = (0..rng.gen_range(1usize..4))
            .map(|_| (rng.gen_range(0usize..10), rng.gen_range(1usize..10)))
            .collect();
        let mut c = Contract::new();
        for name in &names {
            let sel = Selection {
                starts: dims.iter().map(|&(s, _)| s).collect(),
                sizes: dims.iter().map(|&(_, z)| z).collect(),
            };
            c.insert(name, sel);
        }
        let back = Contract::from_datum(&c.to_datum()).unwrap();
        assert_eq!(back, c);
    }
}

// ---------- incremental statistics ---------------------------------------

#[test]
fn running_stats_equal_any_batching() {
    let mut rng = SmallRng::seed_from_u64(0x57A7);
    for _ in 0..CASES {
        let cols = 3usize;
        let len = rng.gen_range(12usize..48);
        let rows: Vec<f64> = (0..len).map(|_| rng.gen_range(-50.0..50.0)).collect();
        let split = rng.gen_range(1usize..11);
        let n = rows.len() / cols;
        if n == 0 {
            continue;
        }
        let data = &rows[..n * cols];
        let whole = Matrix::from_vec(n, cols, data.to_vec()).unwrap();
        let wm = col_mean(&whole);
        let wv = col_var(&whole, &wm);

        let mut rs = RunningStats::new(cols);
        let mut row = 0;
        while row < n {
            let h = split.min(n - row);
            let chunk =
                Matrix::from_vec(h, cols, data[row * cols..(row + h) * cols].to_vec()).unwrap();
            let m = col_mean(&chunk);
            let v = col_var(&chunk, &m);
            rs.update(h as u64, &m, &v).unwrap();
            row += h;
        }
        for j in 0..cols {
            assert!((rs.mean[j] - wm[j]).abs() < 1e-9);
            assert!((rs.var[j] - wv[j]).abs() < 1e-7);
        }
    }
}

// ---------- linear algebra ------------------------------------------------

#[test]
fn qr_always_reconstructs() {
    let mut rng = SmallRng::seed_from_u64(0x9182);
    for _ in 0..CASES {
        let m = rng.gen_range(1usize..12);
        let n = rng.gen_range(1usize..8);
        let seed = rng.gen_range(0u64..1000);
        let a = Matrix::from_fn(m, n, |i, j| {
            let x = (i as u64 * 31 + j as u64 * 17 + seed) % 101;
            x as f64 / 10.0 - 5.0
        });
        let qr = householder_qr(&a).unwrap();
        let rec = qr.q.matmul(&qr.r).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-8);
    }
}

#[test]
fn svd_singular_values_nonneg_descending_and_norm_preserving() {
    let mut rng = SmallRng::seed_from_u64(0x51D);
    for _ in 0..CASES {
        let m = rng.gen_range(1usize..10);
        let n = rng.gen_range(1usize..10);
        let seed = rng.gen_range(0u64..1000);
        let a = Matrix::from_fn(m, n, |i, j| {
            let x = (i as u64 * 13 + j as u64 * 7 + seed * 3) % 97;
            x as f64 / 7.0 - 6.0
        });
        let svd = jacobi_svd(&a).unwrap();
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-10);
        }
        for &s in &svd.s {
            assert!(s >= 0.0);
        }
        let fro2: f64 = a.frobenius_norm().powi(2);
        let ss: f64 = svd.s.iter().map(|s| s * s).sum();
        assert!((fro2 - ss).abs() < 1e-6 * fro2.max(1.0));
    }
}

// ---------- virtual arrays -------------------------------------------------

#[test]
fn varray_keys_are_unique_and_parse() {
    let mut rng = SmallRng::seed_from_u64(0x7A97);
    for _ in 0..CASES {
        let t = rng.gen_range(1usize..5);
        let gx = rng.gen_range(1usize..4);
        let gy = rng.gen_range(1usize..4);
        let v = VirtualArray::new("f", &[t, gx * 2, gy * 3], &[1, 2, 3], 0).unwrap();
        let keys = v.all_keys();
        let set: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
        assert_eq!(keys.len(), t * gx * gy);
        for key in &keys {
            assert!(naming::parse_block_key(key).is_some());
        }
    }
}
