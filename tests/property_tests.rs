//! Property-based tests (proptest) on the core data structures and
//! invariants that the whole stack leans on.

use deisa_repro::darray::ChunkGrid;
use deisa_repro::deisa::{block_key, naming, Contract, Selection, VirtualArray};
use deisa_repro::linalg::stats::{col_mean, col_var, RunningStats};
use deisa_repro::linalg::{householder_qr, jacobi_svd, Matrix, NDArray};
use proptest::prelude::*;

// ---------- NDArray slice/assign ------------------------------------------

/// Shape + a valid slice inside it.
fn shape_and_slice() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, Vec<usize>)> {
    proptest::collection::vec(1usize..6, 1..4).prop_flat_map(|shape| {
        let starts: Vec<BoxedStrategy<usize>> =
            shape.iter().map(|&s| (0..s).boxed()).collect();
        let shape2 = shape.clone();
        starts.prop_flat_map(move |starts| {
            let sizes: Vec<BoxedStrategy<usize>> = shape2
                .iter()
                .zip(&starts)
                .map(|(&s, &st)| (1..=s - st).boxed())
                .collect();
            let shape3 = shape2.clone();
            let starts2 = starts.clone();
            sizes.prop_map(move |sizes| (shape3.clone(), starts2.clone(), sizes))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn slice_assign_roundtrip((shape, starts, sizes) in shape_and_slice()) {
        let a = NDArray::from_fn(&shape, |idx| {
            idx.iter().enumerate().map(|(d, &i)| (d + 1) * 100 + i).sum::<usize>() as f64
        });
        let block = a.slice(&starts, &sizes).unwrap();
        prop_assert_eq!(block.shape(), &sizes[..]);
        let mut b = NDArray::zeros(&shape);
        b.assign_slice(&starts, &block).unwrap();
        // Every element of the assigned region matches the source.
        let back = b.slice(&starts, &sizes).unwrap();
        prop_assert_eq!(back.max_abs_diff(&block).unwrap(), 0.0);
    }

    #[test]
    fn reshape_preserves_sum(data in proptest::collection::vec(-100.0f64..100.0, 1..64)) {
        let n = data.len();
        let a = NDArray::from_vec(&[n], data).unwrap();
        let sum = a.sum();
        let b = a.reshape(&[1, n]).unwrap();
        prop_assert!((b.sum() - sum).abs() < 1e-9);
    }

    // ---------- ChunkGrid ---------------------------------------------------

    #[test]
    fn chunk_grid_tiles_exactly(
        shape in proptest::collection::vec(1usize..20, 1..4),
        chunk_seed in proptest::collection::vec(1usize..7, 1..4),
    ) {
        prop_assume!(shape.len() == chunk_seed.len());
        let chunk: Vec<usize> = shape.iter().zip(&chunk_seed).map(|(&s, &c)| c.min(s)).collect();
        let grid = ChunkGrid::regular(&shape, &chunk).unwrap();
        // Chunks tile each dimension exactly.
        for d in 0..shape.len() {
            let total: usize = grid.chunk_sizes(d).iter().sum();
            prop_assert_eq!(total, shape[d]);
        }
        // Every block's start+extent stays in bounds; blocks cover everything.
        let dims = grid.grid_dims();
        let mut covered = 0usize;
        for coord in deisa_repro::darray::array::iter_coords(&dims) {
            let start = grid.block_start(&coord);
            let extent = grid.block_extent(&coord);
            for d in 0..shape.len() {
                prop_assert!(start[d] + extent[d] <= shape[d]);
            }
            covered += extent.iter().product::<usize>();
        }
        prop_assert_eq!(covered, shape.iter().product::<usize>());
    }

    // ---------- naming scheme ----------------------------------------------

    #[test]
    fn block_key_roundtrip(name in "[a-zA-Z_][a-zA-Z0-9_]{0,12}",
                           pos in proptest::collection::vec(0usize..1000, 1..5)) {
        let key = block_key(&name, &pos);
        let (n, p) = naming::parse_block_key(&key).unwrap();
        prop_assert_eq!(n, name);
        prop_assert_eq!(p, pos);
    }

    // ---------- contracts ----------------------------------------------------

    #[test]
    fn selection_intersection_matches_block_ranges(
        t in 1usize..6,
        grid in 1usize..5,
        sel_seed in (0usize..100, 0usize..100, 1usize..100, 1usize..100),
    ) {
        let block = 3usize;
        let extent = grid * block;
        let v = VirtualArray::new("A", &[t, extent, extent], &[1, block, block], 0).unwrap();
        let (s0, s1, z0, z1) = sel_seed;
        let starts = vec![0, s0 % extent, s1 % extent];
        let sizes = vec![t,
            (z0 % (extent - starts[1])).max(1).min(extent - starts[1]),
            (z1 % (extent - starts[2])).max(1).min(extent - starts[2])];
        let sel = Selection { starts, sizes };
        sel.validate(&v).unwrap();
        let ranges = sel.block_ranges(&v);
        // A block intersects the selection IFF its coordinate is inside the
        // block ranges, for every block of the grid.
        for step in 0..t {
            for b in 0..v.blocks_per_step() {
                let pos = v.block_position(step, b);
                let inside = pos.iter().zip(&ranges).all(|(&p, r)| r.contains(&p));
                prop_assert_eq!(sel.intersects_block(&v, &pos), inside);
            }
        }
    }

    #[test]
    fn contract_datum_roundtrip(
        names in proptest::collection::vec("[a-z]{1,8}", 1..4),
        dims in proptest::collection::vec((0usize..10, 1usize..10), 1..4),
    ) {
        let mut c = Contract::new();
        for name in &names {
            let sel = Selection {
                starts: dims.iter().map(|&(s, _)| s).collect(),
                sizes: dims.iter().map(|&(_, z)| z).collect(),
            };
            c.insert(name, sel);
        }
        let back = Contract::from_datum(&c.to_datum()).unwrap();
        prop_assert_eq!(back, c);
    }

    // ---------- incremental statistics ---------------------------------------

    #[test]
    fn running_stats_equal_any_batching(
        rows in proptest::collection::vec(-50.0f64..50.0, 12..48),
        split in 1usize..11,
    ) {
        let cols = 3usize;
        let n = rows.len() / cols;
        let data = &rows[..n * cols];
        let whole = Matrix::from_vec(n, cols, data.to_vec()).unwrap();
        let wm = col_mean(&whole);
        let wv = col_var(&whole, &wm);

        let mut rs = RunningStats::new(cols);
        let mut row = 0;
        while row < n {
            let h = split.min(n - row);
            let chunk = Matrix::from_vec(h, cols, data[row * cols..(row + h) * cols].to_vec()).unwrap();
            let m = col_mean(&chunk);
            let v = col_var(&chunk, &m);
            rs.update(h as u64, &m, &v).unwrap();
            row += h;
        }
        for j in 0..cols {
            prop_assert!((rs.mean[j] - wm[j]).abs() < 1e-9);
            prop_assert!((rs.var[j] - wv[j]).abs() < 1e-7);
        }
    }

    // ---------- linear algebra ------------------------------------------------

    #[test]
    fn qr_always_reconstructs(
        m in 1usize..12,
        n in 1usize..8,
        seed in 0u64..1000,
    ) {
        let a = Matrix::from_fn(m, n, |i, j| {
            let x = (i as u64 * 31 + j as u64 * 17 + seed) % 101;
            x as f64 / 10.0 - 5.0
        });
        let qr = householder_qr(&a).unwrap();
        let rec = qr.q.matmul(&qr.r).unwrap();
        prop_assert!(rec.max_abs_diff(&a).unwrap() < 1e-8);
    }

    #[test]
    fn svd_singular_values_nonneg_descending_and_norm_preserving(
        m in 1usize..10,
        n in 1usize..10,
        seed in 0u64..1000,
    ) {
        let a = Matrix::from_fn(m, n, |i, j| {
            let x = (i as u64 * 13 + j as u64 * 7 + seed * 3) % 97;
            x as f64 / 7.0 - 6.0
        });
        let svd = jacobi_svd(&a).unwrap();
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
        for &s in &svd.s {
            prop_assert!(s >= 0.0);
        }
        let fro2: f64 = a.frobenius_norm().powi(2);
        let ss: f64 = svd.s.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - ss).abs() < 1e-6 * fro2.max(1.0));
    }

    // ---------- virtual arrays -------------------------------------------------

    #[test]
    fn varray_keys_are_unique_and_parse(
        t in 1usize..5,
        gx in 1usize..4,
        gy in 1usize..4,
    ) {
        let v = VirtualArray::new("f", &[t, gx * 2, gy * 3], &[1, 2, 3], 0).unwrap();
        let keys = v.all_keys();
        let set: std::collections::HashSet<_> = keys.iter().collect();
        prop_assert_eq!(set.len(), keys.len());
        prop_assert_eq!(keys.len(), t * gx * gy);
        for key in &keys {
            prop_assert!(naming::parse_block_key(key).is_some());
        }
    }
}
