//! Deployment-layer integration tests: a `Cluster::listen` hub serving
//! worker nodes that attach through the real TCP registration handshake.
//!
//! The nodes here run as threads calling [`run_node`] — the exact code the
//! `dtask-node` binary runs — so the whole wire path (frame preamble,
//! `Hello`/`Welcome`, star-routed worker↔worker fetches, `Goodbye`
//! shutdown) is exercised in-process where failures produce backtraces.
//! Process-level deployment (fork/exec + SIGKILL chaos) lives in
//! `tests/deploy_process.rs`.

use deisa_repro::darray::{self, ChunkGrid, DArray, Graph};
use deisa_repro::dtask::{
    run_node, Cluster, ClusterConfig, Datum, DeployConfig, Key, NodeConfig, OpRegistry,
};
use deisa_repro::linalg::NDArray;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// The quickstart workload: an analytics graph submitted over external
/// tasks before any data exists, then four blocks pushed with replicated
/// placement. Returns the reduced sum (64·(1+2+3+4) = 640).
fn run_workload(cluster: &Cluster, n_workers: usize) -> f64 {
    darray::register_array_ops(cluster.registry());
    let client = cluster.client();
    let keys: Vec<Key> = (0..4).map(|i| Key::new(format!("sim-block-{i}"))).collect();
    client.register_external(keys.clone());
    let grid = ChunkGrid::regular(&[16, 16], &[8, 8]).unwrap();
    let field = DArray::from_keys(grid, keys.clone()).unwrap();
    let mut graph = Graph::new("deploy");
    let total = field.sum_all(&mut graph);
    graph.submit(&client);

    let producer = cluster.client();
    for (i, key) in keys.iter().enumerate() {
        let block = NDArray::full(&[8, 8], (i + 1) as f64);
        producer.scatter_external(
            vec![(key.clone(), Datum::from(block.clone()))],
            Some(i % n_workers),
        );
        producer.scatter_external(
            vec![(key.clone(), Datum::from(block))],
            Some((i + 1) % n_workers),
        );
    }
    client
        .future(total)
        .result_timeout(Duration::from_secs(30))
        .unwrap()
        .as_f64()
        .unwrap()
}

fn node_registry() -> OpRegistry {
    let registry = OpRegistry::with_std_ops();
    darray::register_array_ops(&registry);
    registry
}

fn listen_cluster(n_workers: usize) -> Cluster {
    Cluster::listen(
        ClusterConfig {
            n_workers,
            ..ClusterConfig::default()
        },
        DeployConfig::default(),
    )
    .unwrap()
}

fn spawn_node(
    connect: String,
) -> std::thread::JoinHandle<Result<deisa_repro::dtask::NodeReport, String>> {
    std::thread::spawn(move || {
        run_node(
            NodeConfig {
                connect,
                ..NodeConfig::default()
            },
            node_registry(),
        )
    })
}

// ---- result identity across deployment --------------------------------------

/// The acceptance property: a hub + 2 attached nodes computes exactly what
/// the in-process cluster computes, with every executor message crossing
/// sockets, and an orderly shutdown dismisses both nodes with the hub's
/// `Goodbye` reason.
#[test]
fn deployed_cluster_matches_in_process_results() {
    let local = run_workload(&Cluster::new(2), 2);

    let cluster = listen_cluster(2);
    let addr = cluster.deploy_addr().unwrap().to_string();
    let nodes: Vec<_> = (0..2).map(|_| spawn_node(addr.clone())).collect();
    assert!(
        cluster.await_workers(Duration::from_secs(10)),
        "both nodes must attach"
    );
    assert_eq!(cluster.attached_workers(), 2);

    let deployed = run_workload(&cluster, 2);
    assert_eq!(deployed, local);
    assert_eq!(deployed, 64.0 * (1.0 + 2.0 + 3.0 + 4.0));

    // The compute plane genuinely crossed the wire: the hub accounted
    // serialized frames both ways.
    let stats = cluster.stats();
    assert!(stats.wire_total_messages() > 0);
    assert!(stats.wire_total_bytes() > stats.wire_total_messages());

    drop(cluster);
    let mut workers = Vec::new();
    for node in nodes {
        let report = node.join().unwrap().expect("node must exit cleanly");
        assert_eq!(report.reason, "cluster shutdown");
        workers.push(report.worker);
    }
    workers.sort_unstable();
    assert_eq!(workers, vec![0, 1], "hub must assign distinct worker ids");
}

// ---- handshake robustness against a live hub --------------------------------

/// Connections that die mid-handshake — a partial `Hello`, a silent probe
/// that writes nothing, pure garbage — must not consume worker slots or
/// wedge the acceptor: a real node attaching afterwards still gets a slot
/// and the cluster still computes.
#[test]
fn hub_survives_mid_handshake_disconnects() {
    let cluster = listen_cluster(1);
    let addr = cluster.deploy_addr().unwrap();

    // A valid Hello frame, cut off mid-envelope.
    let hello = deisa_repro::dtask::net::frame(
        deisa_repro::dtask::Addr::Control,
        &deisa_repro::dtask::wire::encode_node(&deisa_repro::dtask::NodeMsg::Hello {
            slots: 1,
            mem_budget: None,
            capabilities: vec![],
        }),
    );
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&hello[..hello.len() - 3]).unwrap();
    } // dropped: peer closed mid-handshake
    {
        let _probe = TcpStream::connect(addr).unwrap();
    } // dropped without writing a byte
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&[0xFF; 32]).unwrap();
    } // garbage preamble: structured reject, not a crash

    // Give the acceptor a moment to process the casualties, then attach a
    // real node into the one slot none of them may have claimed.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(cluster.attached_workers(), 0);

    let node = spawn_node(addr.to_string());
    assert!(
        cluster.await_workers(Duration::from_secs(10)),
        "real node must still attach after handshake casualties"
    );
    let total = run_workload(&cluster, 1);
    assert_eq!(total, 64.0 * (1.0 + 2.0 + 3.0 + 4.0));

    drop(cluster);
    assert_eq!(node.join().unwrap().unwrap().reason, "cluster shutdown");
}

/// A peer that completes the handshake and then vanishes without a
/// `Goodbye` (its socket just dies) must not wedge cluster shutdown: the
/// hub logs the dead peer during the goodbye broadcast and keeps going
/// instead of panicking or hanging on the write.
#[test]
fn shutdown_tolerates_already_dead_peer() {
    use std::io::Read;

    let cluster = listen_cluster(1);
    let addr = cluster.deploy_addr().unwrap();

    // A raw "node": full Hello, wait for the Welcome, then die silently.
    let hello = deisa_repro::dtask::net::frame(
        deisa_repro::dtask::Addr::Control,
        &deisa_repro::dtask::wire::encode_node(&deisa_repro::dtask::NodeMsg::Hello {
            slots: 1,
            mem_budget: None,
            capabilities: vec!["test-fake".into()],
        }),
    );
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&hello).unwrap();
        let mut buf = [0u8; 16];
        let n = s.read(&mut buf).unwrap();
        assert!(n > 0, "hub must answer the handshake with a Welcome");
    } // dropped: attached worker dies without a Goodbye

    assert!(
        cluster.await_workers(Duration::from_secs(10)),
        "the fake node completed the handshake, so it counts as attached"
    );
    // Let the hub's reader notice the EOF before we tear down, so shutdown
    // runs against a peer the hub already knows is gone.
    std::thread::sleep(Duration::from_millis(100));

    // Must return, not hang on a dead socket and not panic.
    drop(cluster);
}
