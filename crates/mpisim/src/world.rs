//! SPMD launcher: run the same closure on `n` ranks, each on its own thread.

use crate::comm::Comm;

/// Error launching or joining an SPMD world.
#[derive(Debug)]
pub enum WorldError {
    /// A rank panicked; the payload's `Display` if it was a string.
    RankPanicked {
        /// Which rank panicked.
        rank: usize,
        /// Panic message when recoverable.
        message: String,
    },
    /// Zero ranks were requested.
    EmptyWorld,
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            WorldError::EmptyWorld => write!(f, "world of zero ranks"),
        }
    }
}

impl std::error::Error for WorldError {}

/// An SPMD world. The only entry point is [`World::run`], mirroring
/// `mpiexec -n <n>`: the closure is the "main" of every rank.
pub struct World;

impl World {
    /// Run `f` on `n` ranks concurrently; returns per-rank results in rank
    /// order. If any rank panics, the first panicking rank is reported.
    pub fn run<T, F>(n: usize, f: F) -> Result<Vec<T>, WorldError>
    where
        T: Send,
        F: Fn(&Comm) -> T + Send + Sync,
    {
        if n == 0 {
            return Err(WorldError::EmptyWorld);
        }
        let comms = Comm::mesh(n);
        let f = &f;
        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    scope
                        .builder()
                        .name(format!("rank-{}", comm.rank()))
                        .spawn(move |_| f(&comm))
                        .expect("spawn rank thread")
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| {
                    h.join().map_err(|e| {
                        let message = e
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| e.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".into());
                        WorldError::RankPanicked { rank, message }
                    })
                })
                .collect::<Result<Vec<T>, WorldError>>()
        })
        .map_err(|_| WorldError::RankPanicked {
            rank: usize::MAX,
            message: "scope panicked".into(),
        })?;
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_ranks_is_an_error() {
        assert!(matches!(World::run(0, |_| ()), Err(WorldError::EmptyWorld)));
    }

    #[test]
    fn single_rank_world() {
        let r = World::run(1, |c| (c.rank(), c.size())).unwrap();
        assert_eq!(r, vec![(0, 1)]);
    }

    #[test]
    fn panic_is_reported_with_rank() {
        let err = World::run(3, |c| {
            if c.rank() == 1 {
                panic!("boom at rank 1");
            }
        })
        .unwrap_err();
        match err {
            WorldError::RankPanicked { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("boom"));
            }
            other => panic!("unexpected error {other}"),
        }
    }
}
