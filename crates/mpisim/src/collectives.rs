//! Collective operations built on point-to-point messaging.
//!
//! Algorithms follow the classic log-P formulations:
//! * barrier — dissemination algorithm (`⌈log2 P⌉` rounds),
//! * bcast — binomial tree rooted at `root`,
//! * reduce/gather — flat convergecast to `root` (fine at thread scale),
//! * allreduce — recursive doubling for power-of-two worlds, with a
//!   fold-in/fold-out step for the remainder ranks.

use crate::comm::{Comm, RecvError, SendError, Tag, COLLECTIVE_TAG_BASE};

/// Error during a collective: wraps the failing point-to-point step.
#[derive(Debug)]
pub enum CollectiveError {
    /// A send leg failed.
    Send(SendError),
    /// A receive leg failed.
    Recv(RecvError),
    /// The caller passed inconsistent arguments (e.g. wrong vector length).
    BadArgument(String),
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::Send(e) => write!(f, "collective send leg: {e}"),
            CollectiveError::Recv(e) => write!(f, "collective recv leg: {e}"),
            CollectiveError::BadArgument(m) => write!(f, "collective bad argument: {m}"),
        }
    }
}

impl std::error::Error for CollectiveError {}

impl From<SendError> for CollectiveError {
    fn from(e: SendError) -> Self {
        CollectiveError::Send(e)
    }
}

impl From<RecvError> for CollectiveError {
    fn from(e: RecvError) -> Self {
        CollectiveError::Recv(e)
    }
}

/// Barrier uses one tag per dissemination round (rounds are powers of two, so
/// at most 64 tags). Per-pair channels are FIFO, so matching on
/// `(source, round-tag)` cleanly separates successive barrier generations
/// without sense reversal.
const TAG_BARRIER_BASE: u64 = COLLECTIVE_TAG_BASE;
const TAG_BCAST: Tag = Tag(COLLECTIVE_TAG_BASE + 64);
const TAG_GATHER: Tag = Tag(COLLECTIVE_TAG_BASE + 65);
const TAG_ALLREDUCE: Tag = Tag(COLLECTIVE_TAG_BASE + 66);
const TAG_REDUCE: Tag = Tag(COLLECTIVE_TAG_BASE + 67);

impl Comm {
    /// Dissemination barrier: every rank is released only after all entered.
    pub fn barrier(&self) -> Result<(), CollectiveError> {
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        let mut round = 1usize;
        while round < p {
            let tag = Tag(TAG_BARRIER_BASE + round.trailing_zeros() as u64);
            let dest = (self.rank() + round) % p;
            let src = (self.rank() + p - round) % p;
            self.send(dest, tag, ())?;
            self.recv::<()>(src, tag)?;
            round <<= 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast from `root`. Every rank passes its (possibly
    /// received) value in and gets the root's value out.
    pub fn bcast<T: Clone + Send + 'static>(
        &self,
        root: usize,
        value: T,
    ) -> Result<T, CollectiveError> {
        let p = self.size();
        if p == 1 {
            return Ok(value);
        }
        // Re-number ranks so the root is virtual rank 0.
        let vrank = (self.rank() + p - root) % p;
        let mut val = if vrank == 0 { Some(value) } else { None };
        // Receive from parent.
        if vrank != 0 {
            let mut mask = 1usize;
            while mask < p {
                if vrank & mask != 0 {
                    let parent_v = vrank & !mask;
                    let parent = (parent_v + root) % p;
                    val = Some(self.recv::<T>(parent, TAG_BCAST)?);
                    break;
                }
                mask <<= 1;
            }
        }
        let val = val.expect("bcast value set");
        // Forward to children.
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                break;
            }
            mask <<= 1;
        }
        let mut child_mask = mask >> 1;
        while child_mask > 0 {
            let child_v = vrank | child_mask;
            if child_v < p {
                let child = (child_v + root) % p;
                self.send(child, TAG_BCAST, val.clone())?;
            }
            child_mask >>= 1;
        }
        Ok(val)
    }

    /// Gather every rank's value at `root`; returns `Some(values)` in rank
    /// order at the root, `None` elsewhere.
    pub fn gather<T: Send + 'static>(
        &self,
        root: usize,
        value: T,
    ) -> Result<Option<Vec<T>>, CollectiveError> {
        if self.rank() == root {
            // Receive from each source explicitly: per-pair FIFO then keeps
            // successive gather generations separated.
            let mut slots: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            slots[root] = Some(value);
            for (src, slot) in slots.iter_mut().enumerate() {
                if src == root {
                    continue;
                }
                *slot = Some(self.recv(src, TAG_GATHER)?);
            }
            Ok(Some(
                slots
                    .into_iter()
                    .map(|s| s.expect("all ranks gathered"))
                    .collect(),
            ))
        } else {
            self.send(root, TAG_GATHER, value)?;
            Ok(None)
        }
    }

    /// Reduce f64 vectors elementwise at `root` with `op`; `None` off-root.
    pub fn reduce_f64(
        &self,
        root: usize,
        mut value: Vec<f64>,
        op: fn(f64, f64) -> f64,
    ) -> Result<Option<Vec<f64>>, CollectiveError> {
        if self.rank() == root {
            for src in 0..self.size() {
                if src == root {
                    continue;
                }
                let v: Vec<f64> = self.recv(src, TAG_REDUCE)?;
                for (a, b) in value.iter_mut().zip(v) {
                    *a = op(*a, b);
                }
            }
            Ok(Some(value))
        } else {
            self.send(root, TAG_REDUCE, value)?;
            Ok(None)
        }
    }

    /// Recursive-doubling allreduce over f64 vectors with an elementwise `op`
    /// (commutative + associative). Handles non-power-of-two sizes with the
    /// standard fold-in/fold-out of the excess ranks.
    pub fn allreduce_f64(
        &self,
        mut value: Vec<f64>,
        op: fn(f64, f64) -> f64,
    ) -> Result<Vec<f64>, CollectiveError> {
        let p = self.size();
        if p == 1 {
            return Ok(value);
        }
        let pof2 = 1usize << (usize::BITS - 1 - p.leading_zeros());
        let rem = p - pof2;
        let rank = self.rank();
        // Phase 1: the first 2*rem ranks pair up; odd ones fold into even ones.
        let vrank: Option<usize> = if rank < 2 * rem {
            if rank % 2 == 1 {
                self.send(rank - 1, TAG_ALLREDUCE, value.clone())?;
                None
            } else {
                let other: Vec<f64> = self.recv(rank + 1, TAG_ALLREDUCE)?;
                for (a, b) in value.iter_mut().zip(other) {
                    *a = op(*a, b);
                }
                Some(rank / 2)
            }
        } else {
            Some(rank - rem)
        };
        // Phase 2: recursive doubling among the pof2 virtual ranks.
        if let Some(vr) = vrank {
            let real = |v: usize| if v < rem { v * 2 } else { v + rem };
            let mut mask = 1usize;
            while mask < pof2 {
                let peer_v = vr ^ mask;
                let peer = real(peer_v);
                self.send(peer, TAG_ALLREDUCE, value.clone())?;
                let other: Vec<f64> = self.recv(peer, TAG_ALLREDUCE)?;
                for (a, b) in value.iter_mut().zip(other) {
                    *a = op(*a, b);
                }
                mask <<= 1;
            }
        }
        // Phase 3: fold results back out to the odd ranks.
        if rank < 2 * rem {
            if rank.is_multiple_of(2) {
                self.send(rank + 1, TAG_ALLREDUCE, value.clone())?;
            } else {
                value = self.recv(rank - 1, TAG_ALLREDUCE)?;
            }
        }
        Ok(value)
    }

    /// Allreduce of a single scalar.
    pub fn allreduce_scalar(
        &self,
        value: f64,
        op: fn(f64, f64) -> f64,
    ) -> Result<f64, CollectiveError> {
        Ok(self.allreduce_f64(vec![value], op)?[0])
    }
}

#[cfg(test)]
mod tests {
    use crate::world::World;

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let entered = AtomicUsize::new(0);
        World::run(7, |comm| {
            entered.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            // After the barrier every rank must observe all 7 entries.
            assert_eq!(entered.load(Ordering::SeqCst), 7);
        })
        .unwrap();
    }

    #[test]
    fn bcast_from_every_root() {
        for root in 0..5 {
            let results = World::run(5, move |comm| {
                let v = if comm.rank() == root {
                    42u64 + root as u64
                } else {
                    0
                };
                comm.bcast(root, v).unwrap()
            })
            .unwrap();
            assert!(
                results.iter().all(|&v| v == 42 + root as u64),
                "root {root}"
            );
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results =
            World::run(6, |comm| comm.gather(2, comm.rank() * comm.rank()).unwrap()).unwrap();
        for (rank, r) in results.iter().enumerate() {
            if rank == 2 {
                assert_eq!(r.as_ref().unwrap(), &vec![0, 1, 4, 9, 16, 25]);
            } else {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn reduce_sums_at_root() {
        let results = World::run(4, |comm| {
            comm.reduce_f64(0, vec![comm.rank() as f64, 1.0], |a, b| a + b)
                .unwrap()
        })
        .unwrap();
        assert_eq!(results[0].as_ref().unwrap(), &vec![6.0, 4.0]);
    }

    #[test]
    fn allreduce_sum_power_of_two() {
        let results = World::run(8, |comm| {
            comm.allreduce_f64(vec![comm.rank() as f64], |a, b| a + b)
                .unwrap()
        })
        .unwrap();
        assert!(results.iter().all(|r| r[0] == 28.0));
    }

    #[test]
    fn allreduce_sum_non_power_of_two() {
        for p in [3usize, 5, 6, 7] {
            let results = World::run(p, |comm| {
                comm.allreduce_f64(vec![1.0, comm.rank() as f64], |a, b| a + b)
                    .unwrap()
            })
            .unwrap();
            let expect_sum = (p * (p - 1) / 2) as f64;
            for r in &results {
                assert_eq!(r[0], p as f64, "p={p}");
                assert_eq!(r[1], expect_sum, "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let results = World::run(5, |comm| {
            comm.allreduce_scalar((comm.rank() as f64 - 2.0).abs(), f64::max)
                .unwrap()
        })
        .unwrap();
        assert!(results.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn repeated_barriers_do_not_cross_talk() {
        World::run(4, |comm| {
            for _ in 0..25 {
                comm.barrier().unwrap();
            }
        })
        .unwrap();
    }
}
