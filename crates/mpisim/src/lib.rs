//! `mpisim` — a threaded SPMD runtime with an MPI-flavoured API.
//!
//! The paper couples an **MPI+X** Heat2D miniapp to Dask. We have no MPI, so
//! this crate provides the substrate: a [`World`] launches `n` ranks as
//! threads, each holding a [`Comm`] supporting tagged point-to-point
//! [`Comm::send`]/[`Comm::recv`], the collectives the miniapp needs
//! ([`Comm::barrier`], [`Comm::allreduce_f64`], [`Comm::bcast`],
//! [`Comm::gather`]) and a Cartesian topology helper ([`cart::CartComm`])
//! for 2-D domain decomposition with ghost exchange.
//!
//! Messages are typed (`Box<dyn Any>` under the hood) and matched on
//! `(source, tag)` with out-of-order buffering, like MPI's unexpected-message
//! queue. Collectives are implemented *on top of* point-to-point using
//! log-P algorithms (dissemination barrier, binomial-tree bcast/reduce,
//! recursive-doubling allreduce), so message counts resemble a real MPI.

pub mod cart;
pub mod collectives;
pub mod collectives2;
pub mod comm;
pub mod world;

pub use cart::CartComm;
pub use comm::{Comm, RecvError, SendError, Tag, ANY_SOURCE};
pub use world::{World, WorldError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_runs_all_ranks_and_collects_results() {
        let results = World::run(4, |comm| comm.rank() * 10).unwrap();
        assert_eq!(results, vec![0, 10, 20, 30]);
    }

    #[test]
    fn ring_send_recv() {
        let results = World::run(5, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, Tag(7), comm.rank()).unwrap();
            let got: usize = comm.recv(prev, Tag(7)).unwrap();
            got
        })
        .unwrap();
        assert_eq!(results, vec![4, 0, 1, 2, 3]);
    }
}
