//! Additional collectives: allgather, scan, sendrecv, alltoall.
//!
//! Same design as the core set: log-P algorithms over the tagged
//! point-to-point layer, with per-round tags (the per-pair FIFO argument in
//! `collectives.rs` keeps successive collectives separated).

use crate::collectives::CollectiveError;
use crate::comm::{Comm, Tag, COLLECTIVE_TAG_BASE};

const TAG_ALLGATHER_BASE: u64 = COLLECTIVE_TAG_BASE + 128;
const TAG_SCAN: Tag = Tag(COLLECTIVE_TAG_BASE + 192);
const TAG_SENDRECV: Tag = Tag(COLLECTIVE_TAG_BASE + 193);
const TAG_ALLTOALL: Tag = Tag(COLLECTIVE_TAG_BASE + 194);

impl Comm {
    /// Bruck-style allgather: every rank contributes `value`, everyone gets
    /// the full rank-ordered vector. `⌈log2 P⌉` rounds, doubling payloads.
    pub fn allgather<T: Clone + Send + 'static>(
        &self,
        value: T,
    ) -> Result<Vec<T>, CollectiveError> {
        let p = self.size();
        let rank = self.rank();
        // items[i] = contribution of rank (rank + i) mod p.
        let mut items: Vec<T> = vec![value];
        let mut round = 0u64;
        let mut step = 1usize;
        while step < p {
            let dest = (rank + p - step) % p;
            let src = (rank + step) % p;
            let tag = Tag(TAG_ALLGATHER_BASE + round);
            // Send what we have; receive the next window.
            let want = step.min(p - items.len());
            self.send(dest, tag, items.clone())?;
            let incoming: Vec<T> = self.recv(src, tag)?;
            items.extend(incoming.into_iter().take(want));
            step <<= 1;
            round += 1;
        }
        // Rotate so index i holds rank i's contribution.
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        for (i, v) in items.into_iter().enumerate() {
            out[(rank + i) % p] = Some(v);
        }
        Ok(out
            .into_iter()
            .map(|v| v.expect("allgather filled every slot"))
            .collect())
    }

    /// Inclusive prefix scan over f64 vectors (rank r gets op-fold of ranks
    /// 0..=r), linear pipeline.
    pub fn scan_f64(
        &self,
        mut value: Vec<f64>,
        op: fn(f64, f64) -> f64,
    ) -> Result<Vec<f64>, CollectiveError> {
        let rank = self.rank();
        if rank > 0 {
            let prefix: Vec<f64> = self.recv(rank - 1, TAG_SCAN)?;
            for (a, b) in value.iter_mut().zip(prefix) {
                *a = op(b, *a);
            }
        }
        if rank + 1 < self.size() {
            self.send(rank + 1, TAG_SCAN, value.clone())?;
        }
        Ok(value)
    }

    /// Combined send+receive (like `MPI_Sendrecv`): send `value` to `dest`,
    /// receive from `src`. Deadlock-free because sends are buffered.
    pub fn sendrecv<T: Send + 'static, U: Send + 'static>(
        &self,
        dest: usize,
        value: T,
        src: usize,
    ) -> Result<U, CollectiveError> {
        self.send(dest, TAG_SENDRECV, value)?;
        Ok(self.recv(src, TAG_SENDRECV)?)
    }

    /// All-to-all personalized exchange: `items[i]` goes to rank `i`;
    /// returns the vector of items received (index = source rank).
    pub fn alltoall<T: Send + 'static>(&self, items: Vec<T>) -> Result<Vec<T>, CollectiveError> {
        let p = self.size();
        if items.len() != p {
            return Err(CollectiveError::BadArgument(format!(
                "alltoall needs {p} items, got {}",
                items.len()
            )));
        }
        let mut slots: Vec<Option<T>> = (0..p).map(|_| None).collect();
        for (dest, item) in items.into_iter().enumerate() {
            if dest == self.rank() {
                slots[dest] = Some(item);
            } else {
                self.send(dest, TAG_ALLTOALL, item)?;
            }
        }
        let me = self.rank();
        for (src, slot) in slots.iter_mut().enumerate() {
            if src == me {
                continue;
            }
            *slot = Some(self.recv(src, TAG_ALLTOALL)?);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("alltoall filled every slot"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use crate::world::World;

    #[test]
    fn allgather_orders_by_rank() {
        for p in [1usize, 2, 3, 5, 8] {
            let results = World::run(p, |comm| comm.allgather(comm.rank() * 10).unwrap()).unwrap();
            let expect: Vec<usize> = (0..p).map(|r| r * 10).collect();
            for r in results {
                assert_eq!(r, expect, "p={p}");
            }
        }
    }

    #[test]
    fn allgather_strings() {
        let results = World::run(4, |comm| {
            comm.allgather(format!("r{}", comm.rank())).unwrap()
        })
        .unwrap();
        assert_eq!(results[2], vec!["r0", "r1", "r2", "r3"]);
    }

    #[test]
    fn scan_prefix_sums() {
        let results = World::run(6, |comm| {
            comm.scan_f64(vec![comm.rank() as f64 + 1.0], |a, b| a + b)
                .unwrap()
        })
        .unwrap();
        // Rank r gets sum of 1..=(r+1).
        for (r, v) in results.iter().enumerate() {
            assert_eq!(v[0], ((r + 1) * (r + 2) / 2) as f64);
        }
    }

    #[test]
    fn scan_max() {
        let vals = [3.0, 1.0, 7.0, 2.0];
        let results = World::run(4, |comm| {
            comm.scan_f64(vec![vals[comm.rank()]], f64::max).unwrap()
        })
        .unwrap();
        assert_eq!(
            results.iter().map(|v| v[0]).collect::<Vec<_>>(),
            vec![3.0, 3.0, 7.0, 7.0]
        );
    }

    #[test]
    fn sendrecv_ring() {
        let results = World::run(5, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            let got: usize = comm.sendrecv(next, comm.rank(), prev).unwrap();
            got
        })
        .unwrap();
        assert_eq!(results, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn alltoall_transposes() {
        let results = World::run(4, |comm| {
            let items: Vec<(usize, usize)> = (0..4).map(|dest| (comm.rank(), dest)).collect();
            comm.alltoall(items).unwrap()
        })
        .unwrap();
        for (rank, recv) in results.iter().enumerate() {
            for (src, item) in recv.iter().enumerate() {
                assert_eq!(*item, (src, rank));
            }
        }
    }

    #[test]
    fn repeated_allgathers_do_not_cross_talk() {
        World::run(3, |comm| {
            for round in 0..10usize {
                let got = comm.allgather(comm.rank() + round * 100).unwrap();
                let expect: Vec<usize> = (0..3).map(|r| r + round * 100).collect();
                assert_eq!(got, expect);
            }
        })
        .unwrap();
    }
}
