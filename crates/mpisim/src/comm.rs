//! Tagged, typed point-to-point messaging between ranks.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Message tag, like MPI's `tag` argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u64);

/// Wildcard source for [`Comm::recv_any`]-style matching.
pub const ANY_SOURCE: usize = usize::MAX;

/// Reserved tag space used internally by the collectives; user tags below
/// this bound never collide with collective traffic.
pub(crate) const COLLECTIVE_TAG_BASE: u64 = u64::MAX - 1024;

pub(crate) struct Envelope {
    pub src: usize,
    pub tag: Tag,
    pub payload: Box<dyn Any + Send>,
}

/// Error sending a message (receiver rank hung up).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError {
    /// Destination rank.
    pub dest: usize,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "send to rank {} failed: rank exited", self.dest)
    }
}

impl std::error::Error for SendError {}

/// Error receiving a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// All senders exited while we waited.
    Disconnected,
    /// A message matched (source, tag) but carried a different payload type.
    TypeMismatch {
        /// The source of the offending message.
        src: usize,
        /// The tag of the offending message.
        tag: Tag,
    },
    /// Timed out waiting for a matching message.
    Timeout,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Disconnected => write!(f, "recv failed: peers exited"),
            RecvError::TypeMismatch { src, tag } => {
                write!(
                    f,
                    "recv type mismatch for message from {} tag {:?}",
                    src, tag
                )
            }
            RecvError::Timeout => write!(f, "recv timed out"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Per-world shared message-count statistics (sends per rank).
#[derive(Debug, Default)]
pub struct CommStats {
    sends: Vec<AtomicU64>,
}

impl CommStats {
    pub(crate) fn new(n: usize) -> Self {
        CommStats {
            sends: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Total messages sent by `rank` so far.
    pub fn sends_by(&self, rank: usize) -> u64 {
        self.sends[rank].load(Ordering::Relaxed)
    }

    /// Total messages sent across all ranks.
    pub fn total_sends(&self) -> u64 {
        self.sends.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }
}

/// A rank's endpoint in the world: knows its rank, the world size, and how to
/// reach every other rank.
pub struct Comm {
    rank: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    /// Unexpected-message queue: arrived but not yet matched by a recv.
    pending: std::cell::RefCell<VecDeque<Envelope>>,
    stats: Arc<CommStats>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        senders: Vec<Sender<Envelope>>,
        receiver: Receiver<Envelope>,
        stats: Arc<CommStats>,
    ) -> Self {
        Comm {
            rank,
            senders,
            receiver,
            pending: std::cell::RefCell::new(VecDeque::new()),
            stats,
        }
    }

    /// Build the full mesh of endpoints for `n` ranks.
    pub(crate) fn mesh(n: usize) -> Vec<Comm> {
        let stats = Arc::new(CommStats::new(n));
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| Comm::new(rank, senders.clone(), rx, Arc::clone(&stats)))
            .collect()
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Shared send statistics for the world.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Send `value` to `dest` with `tag`. Non-blocking (buffered channel).
    pub fn send<T: Send + 'static>(
        &self,
        dest: usize,
        tag: Tag,
        value: T,
    ) -> Result<(), SendError> {
        self.stats.sends[self.rank].fetch_add(1, Ordering::Relaxed);
        self.senders[dest]
            .send(Envelope {
                src: self.rank,
                tag,
                payload: Box::new(value),
            })
            .map_err(|_| SendError { dest })
    }

    fn matches(env: &Envelope, src: usize, tag: Tag) -> bool {
        (src == ANY_SOURCE || env.src == src) && env.tag == tag
    }

    fn take_pending(&self, src: usize, tag: Tag) -> Option<Envelope> {
        let mut pending = self.pending.borrow_mut();
        let pos = pending.iter().position(|e| Self::matches(e, src, tag))?;
        pending.remove(pos)
    }

    fn downcast<T: 'static>(env: Envelope) -> Result<(usize, T), RecvError> {
        let src = env.src;
        let tag = env.tag;
        env.payload
            .downcast::<T>()
            .map(|b| (src, *b))
            .map_err(|_| RecvError::TypeMismatch { src, tag })
    }

    /// Blocking receive of a `T` from `src` (or [`ANY_SOURCE`]) with `tag`.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: Tag) -> Result<T, RecvError> {
        self.recv_from(src, tag).map(|(_, v)| v)
    }

    /// Blocking receive that also reports the actual source rank.
    pub fn recv_from<T: Send + 'static>(
        &self,
        src: usize,
        tag: Tag,
    ) -> Result<(usize, T), RecvError> {
        if let Some(env) = self.take_pending(src, tag) {
            return Self::downcast(env);
        }
        loop {
            let env = self.receiver.recv().map_err(|_| RecvError::Disconnected)?;
            if Self::matches(&env, src, tag) {
                return Self::downcast(env);
            }
            self.pending.borrow_mut().push_back(env);
        }
    }

    /// Receive with a timeout; useful in tests to avoid deadlocking forever.
    pub fn recv_timeout<T: Send + 'static>(
        &self,
        src: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<T, RecvError> {
        if let Some(env) = self.take_pending(src, tag) {
            return Self::downcast(env).map(|(_, v)| v);
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or(RecvError::Timeout)?;
            let env = self.receiver.recv_timeout(remaining).map_err(|e| match e {
                crossbeam::channel::RecvTimeoutError::Timeout => RecvError::Timeout,
                crossbeam::channel::RecvTimeoutError::Disconnected => RecvError::Disconnected,
            })?;
            if Self::matches(&env, src, tag) {
                return Self::downcast(env).map(|(_, v)| v);
            }
            self.pending.borrow_mut().push_back(env);
        }
    }

    /// True if a matching message is already available (like `MPI_Iprobe`).
    pub fn probe(&self, src: usize, tag: Tag) -> bool {
        if self
            .pending
            .borrow()
            .iter()
            .any(|e| Self::matches(e, src, tag))
        {
            return true;
        }
        // Drain everything currently queued into pending, then check.
        while let Ok(env) = self.receiver.try_recv() {
            self.pending.borrow_mut().push_back(env);
        }
        self.pending
            .borrow()
            .iter()
            .any(|e| Self::matches(e, src, tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn out_of_order_tags_are_buffered() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag(1), "first".to_string()).unwrap();
                comm.send(1, Tag(2), "second".to_string()).unwrap();
                String::new()
            } else {
                // Receive tag 2 before tag 1; the tag-1 message must be buffered.
                let b: String = comm.recv(0, Tag(2)).unwrap();
                let a: String = comm.recv(0, Tag(1)).unwrap();
                format!("{a}-{b}")
            }
        })
        .unwrap();
        assert_eq!(results[1], "first-second");
    }

    #[test]
    fn any_source_matches_either_sender() {
        let results = World::run(3, |comm| {
            if comm.rank() == 2 {
                let (s1, v1): (usize, u32) = comm.recv_from(ANY_SOURCE, Tag(9)).unwrap();
                let (s2, v2): (usize, u32) = comm.recv_from(ANY_SOURCE, Tag(9)).unwrap();
                assert_ne!(s1, s2);
                v1 + v2
            } else {
                comm.send(2, Tag(9), comm.rank() as u32 + 100).unwrap();
                0
            }
        })
        .unwrap();
        assert_eq!(results[2], 201);
    }

    #[test]
    fn type_mismatch_is_reported() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag(0), 42u32).unwrap();
                true
            } else {
                matches!(
                    comm.recv::<String>(0, Tag(0)),
                    Err(RecvError::TypeMismatch { src: 0, .. })
                )
            }
        })
        .unwrap();
        assert!(results[1]);
    }

    #[test]
    fn recv_timeout_fires() {
        let results = World::run(1, |comm| {
            matches!(
                comm.recv_timeout::<u8>(0, Tag(5), Duration::from_millis(10)),
                Err(RecvError::Timeout)
            )
        })
        .unwrap();
        assert!(results[0]);
    }

    #[test]
    fn probe_sees_queued_message() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag(3), 7u8).unwrap();
                true
            } else {
                // Spin until the message lands.
                while !comm.probe(0, Tag(3)) {
                    std::thread::yield_now();
                }
                comm.recv::<u8>(0, Tag(3)).unwrap() == 7
            }
        })
        .unwrap();
        assert!(results.iter().all(|&b| b));
    }

    #[test]
    fn stats_count_sends() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..5u8 {
                    comm.send(1, Tag(i as u64), i).unwrap();
                }
            } else {
                for i in 0..5u8 {
                    let _: u8 = comm.recv(0, Tag(i as u64)).unwrap();
                }
            }
            assert!(comm.stats().total_sends() <= 5);
        })
        .unwrap();
    }
}
