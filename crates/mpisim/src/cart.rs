//! Cartesian process topology for domain decomposition.
//!
//! Mirrors `MPI_Cart_create` / `MPI_Cart_shift`: ranks are laid out row-major
//! over an n-dimensional grid; [`CartComm::shift`] gives the neighbour ranks
//! used for ghost exchange in the Heat2D miniapp.

use crate::comm::Comm;

/// A Cartesian view over a [`Comm`].
pub struct CartComm<'a> {
    comm: &'a Comm,
    dims: Vec<usize>,
    periodic: Vec<bool>,
}

/// Split `size` into a near-square 2-D grid `(px, py)` with `px * py == size`,
/// like `MPI_Dims_create` for two dimensions.
pub fn dims_create_2d(size: usize) -> (usize, usize) {
    let mut px = (size as f64).sqrt() as usize;
    while px > 1 && !size.is_multiple_of(px) {
        px -= 1;
    }
    (px.max(1), size / px.max(1))
}

impl<'a> CartComm<'a> {
    /// Build a Cartesian topology; `dims` must multiply to the world size.
    pub fn new(comm: &'a Comm, dims: &[usize], periodic: &[bool]) -> Result<Self, String> {
        let total: usize = dims.iter().product();
        if total != comm.size() {
            return Err(format!(
                "cart dims {:?} product {} != world size {}",
                dims,
                total,
                comm.size()
            ));
        }
        if periodic.len() != dims.len() {
            return Err("periodic length must match dims length".into());
        }
        Ok(CartComm {
            comm,
            dims: dims.to_vec(),
            periodic: periodic.to_vec(),
        })
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        self.comm
    }

    /// Grid extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// This rank's coordinates in the grid (row-major).
    pub fn coords(&self) -> Vec<usize> {
        self.coords_of(self.comm.rank())
    }

    /// Coordinates of an arbitrary rank.
    pub fn coords_of(&self, rank: usize) -> Vec<usize> {
        let mut rest = rank;
        let mut coords = vec![0usize; self.dims.len()];
        for d in (0..self.dims.len()).rev() {
            coords[d] = rest % self.dims[d];
            rest /= self.dims[d];
        }
        coords
    }

    /// Rank of a coordinate tuple.
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        let mut rank = 0usize;
        for (dim, c) in self.dims.iter().zip(coords) {
            rank = rank * dim + c;
        }
        rank
    }

    /// Neighbour in dimension `dim` at offset `disp` (±1 usually); `None` at a
    /// non-periodic boundary, like `MPI_PROC_NULL`.
    pub fn shift(&self, dim: usize, disp: isize) -> Option<usize> {
        let mut coords = self.coords();
        let extent = self.dims[dim] as isize;
        let c = coords[dim] as isize + disp;
        let c = if self.periodic[dim] {
            c.rem_euclid(extent)
        } else {
            if c < 0 || c >= extent {
                return None;
            }
            c
        };
        coords[dim] = c as usize;
        Some(self.rank_of(&coords))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Tag;
    use crate::world::World;

    #[test]
    fn dims_create_prefers_square() {
        assert_eq!(dims_create_2d(16), (4, 4));
        assert_eq!(dims_create_2d(12), (3, 4));
        assert_eq!(dims_create_2d(7), (1, 7));
        assert_eq!(dims_create_2d(1), (1, 1));
        assert_eq!(dims_create_2d(2), (1, 2));
    }

    #[test]
    fn coords_roundtrip() {
        World::run(6, |comm| {
            let cart = CartComm::new(comm, &[2, 3], &[false, false]).unwrap();
            let coords = cart.coords();
            assert_eq!(cart.rank_of(&coords), comm.rank());
        })
        .unwrap();
    }

    #[test]
    fn bad_dims_rejected() {
        World::run(4, |comm| {
            assert!(CartComm::new(comm, &[3, 2], &[false, false]).is_err());
            assert!(CartComm::new(comm, &[2, 2], &[false]).is_err());
        })
        .unwrap();
    }

    #[test]
    fn shift_non_periodic_boundaries() {
        World::run(4, |comm| {
            let cart = CartComm::new(comm, &[2, 2], &[false, false]).unwrap();
            let coords = cart.coords();
            let up = cart.shift(0, -1);
            if coords[0] == 0 {
                assert_eq!(up, None);
            } else {
                assert_eq!(up, Some(cart.rank_of(&[coords[0] - 1, coords[1]])));
            }
        })
        .unwrap();
    }

    #[test]
    fn shift_periodic_wraps() {
        World::run(3, |comm| {
            let cart = CartComm::new(comm, &[3], &[true]).unwrap();
            let left = cart.shift(0, -1).unwrap();
            assert_eq!(left, (comm.rank() + 2) % 3);
            let right2 = cart.shift(0, 2).unwrap();
            assert_eq!(right2, (comm.rank() + 2) % 3);
        })
        .unwrap();
    }

    #[test]
    fn ghost_exchange_pattern() {
        // Each rank sends its rank id to the right neighbour and receives from
        // the left in a 1x4 grid.
        let results = World::run(4, |comm| {
            let cart = CartComm::new(comm, &[1, 4], &[false, false]).unwrap();
            if let Some(right) = cart.shift(1, 1) {
                comm.send(right, Tag(11), comm.rank()).unwrap();
            }
            if let Some(left) = cart.shift(1, -1) {
                comm.recv::<usize>(left, Tag(11)).unwrap() as isize
            } else {
                -1
            }
        })
        .unwrap();
        assert_eq!(results, vec![-1, 0, 1, 2]);
    }
}
