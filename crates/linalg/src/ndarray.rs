//! Row-major dense n-dimensional array of `f64`.
//!
//! This is the in-memory block type flowing through the whole reproduction:
//! simulation blocks, Dask-style chunks, and IPCA batches are all `NDArray`s.

use crate::{LinalgError, Result};

/// A dense, row-major n-dimensional array of `f64`.
#[derive(Clone, PartialEq)]
pub struct NDArray {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl std::fmt::Debug for NDArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "NDArray(shape={:?}, len={})",
            self.shape,
            self.data.len()
        )
    }
}

/// Number of elements implied by a shape (empty shape = scalar = 1 element).
pub fn shape_len(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for a shape.
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

impl NDArray {
    /// Create an array of `shape` filled with `value`.
    pub fn full(shape: &[usize], value: f64) -> Self {
        NDArray {
            shape: shape.to_vec(),
            data: vec![value; shape_len(shape)],
        }
    }

    /// Create an array of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Create an array from raw row-major data.
    pub fn from_vec(shape: &[usize], data: Vec<f64>) -> Result<Self> {
        if shape_len(shape) != data.len() {
            return Err(LinalgError::ShapeMismatch {
                what: format!(
                    "shape {:?} wants {} elements, got {}",
                    shape,
                    shape_len(shape),
                    data.len()
                ),
            });
        }
        Ok(NDArray {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Build an array by evaluating `f` at every multi-index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let n = shape_len(shape);
        let mut data = Vec::with_capacity(n);
        let mut idx = vec![0usize; shape.len()];
        for _ in 0..n {
            data.push(f(&idx));
            // odometer increment
            for d in (0..shape.len()).rev() {
                idx[d] += 1;
                if idx[d] < shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        NDArray {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The array's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the raw buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Flat offset of a multi-index.
    fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        let strides = strides_for(&self.shape);
        idx.iter().zip(&strides).map(|(i, s)| i * s).sum()
    }

    /// Element at a multi-index.
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[self.offset(idx)]
    }

    /// Set element at a multi-index.
    pub fn set(&mut self, idx: &[usize], value: f64) {
        let o = self.offset(idx);
        self.data[o] = value;
    }

    /// Reshape without copying; the element count must match.
    pub fn reshape(mut self, shape: &[usize]) -> Result<Self> {
        if shape_len(shape) != self.data.len() {
            return Err(LinalgError::ShapeMismatch {
                what: format!("cannot reshape {:?} into {:?}", self.shape, shape),
            });
        }
        self.shape = shape.to_vec();
        Ok(self)
    }

    /// Copy a hyper-rectangular region `starts[d]..starts[d]+sizes[d]` into a
    /// new contiguous array. This is the core of block extraction/selection.
    pub fn slice(&self, starts: &[usize], sizes: &[usize]) -> Result<NDArray> {
        if starts.len() != self.ndim() || sizes.len() != self.ndim() {
            return Err(LinalgError::ShapeMismatch {
                what: format!("slice rank {} vs array rank {}", starts.len(), self.ndim()),
            });
        }
        for d in 0..self.ndim() {
            if starts[d] + sizes[d] > self.shape[d] {
                return Err(LinalgError::InvalidArgument {
                    what: format!(
                        "slice dim {d}: {}..{} out of bounds 0..{}",
                        starts[d],
                        starts[d] + sizes[d],
                        self.shape[d]
                    ),
                });
            }
        }
        let mut out = NDArray::zeros(sizes);
        if out.is_empty() {
            return Ok(out);
        }
        // Copy row-by-row along the last dimension for contiguity.
        let last = self.ndim() - 1;
        let row = sizes[last];
        let nrows = shape_len(sizes) / row.max(1);
        let src_strides = strides_for(&self.shape);
        let mut idx = vec![0usize; self.ndim()]; // index within the slice, last dim 0
        for r in 0..nrows {
            let mut src_off = 0usize;
            for d in 0..self.ndim() {
                src_off += (starts[d] + idx[d]) * src_strides[d];
            }
            out.data[r * row..(r + 1) * row].copy_from_slice(&self.data[src_off..src_off + row]);
            for d in (0..last).rev() {
                idx[d] += 1;
                if idx[d] < sizes[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Ok(out)
    }

    /// Write `block` into the region starting at `starts` (inverse of `slice`).
    pub fn assign_slice(&mut self, starts: &[usize], block: &NDArray) -> Result<()> {
        let sizes = block.shape().to_vec();
        if starts.len() != self.ndim() || sizes.len() != self.ndim() {
            return Err(LinalgError::ShapeMismatch {
                what: format!("assign rank {} vs array rank {}", sizes.len(), self.ndim()),
            });
        }
        for d in 0..self.ndim() {
            if starts[d] + sizes[d] > self.shape[d] {
                return Err(LinalgError::InvalidArgument {
                    what: format!("assign dim {d} out of bounds"),
                });
            }
        }
        if block.is_empty() {
            return Ok(());
        }
        let last = self.ndim() - 1;
        let row = sizes[last];
        let nrows = shape_len(&sizes) / row.max(1);
        let dst_strides = strides_for(&self.shape);
        let mut idx = vec![0usize; self.ndim()];
        for r in 0..nrows {
            let mut dst_off = 0usize;
            for d in 0..self.ndim() {
                dst_off += (starts[d] + idx[d]) * dst_strides[d];
            }
            self.data[dst_off..dst_off + row].copy_from_slice(&block.data[r * row..(r + 1) * row]);
            for d in (0..last).rev() {
                idx[d] += 1;
                if idx[d] < sizes[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Ok(())
    }

    /// Element-wise binary operation; shapes must match exactly.
    pub fn zip_with(&self, other: &NDArray, f: impl Fn(f64, f64) -> f64) -> Result<NDArray> {
        if self.shape != other.shape {
            return Err(LinalgError::ShapeMismatch {
                what: format!("{:?} vs {:?}", self.shape, other.shape),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(NDArray {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> NDArray {
        NDArray {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (NaN for empty arrays).
    pub fn mean(&self) -> f64 {
        self.sum() / self.data.len() as f64
    }

    /// Maximum absolute difference to another array of the same shape.
    pub fn max_abs_diff(&self, other: &NDArray) -> Result<f64> {
        if self.shape != other.shape {
            return Err(LinalgError::ShapeMismatch {
                what: format!("{:?} vs {:?}", self.shape, other.shape),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// Stack arrays along a new leading axis; all must share a shape.
    pub fn stack(parts: &[NDArray]) -> Result<NDArray> {
        let first = parts.first().ok_or_else(|| LinalgError::InvalidArgument {
            what: "stack of zero arrays".into(),
        })?;
        let mut shape = vec![parts.len()];
        shape.extend_from_slice(first.shape());
        let mut data = Vec::with_capacity(shape_len(&shape));
        for p in parts {
            if p.shape() != first.shape() {
                return Err(LinalgError::ShapeMismatch {
                    what: format!("stack: {:?} vs {:?}", p.shape(), first.shape()),
                });
            }
            data.extend_from_slice(p.data());
        }
        Ok(NDArray { shape, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let a = NDArray::from_fn(&[2, 3], |i| (i[0] * 10 + i[1]) as f64);
        assert_eq!(a.get(&[0, 0]), 0.0);
        assert_eq!(a.get(&[0, 2]), 2.0);
        assert_eq!(a.get(&[1, 1]), 11.0);
        assert_eq!(a.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn slice_middle_block() {
        let a = NDArray::from_fn(&[4, 5], |i| (i[0] * 5 + i[1]) as f64);
        let s = a.slice(&[1, 2], &[2, 2]).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[7.0, 8.0, 12.0, 13.0]);
    }

    #[test]
    fn slice_3d_roundtrip_via_assign() {
        let a = NDArray::from_fn(&[3, 4, 5], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f64);
        let block = a.slice(&[1, 1, 2], &[2, 2, 3]).unwrap();
        let mut b = NDArray::zeros(&[3, 4, 5]);
        b.assign_slice(&[1, 1, 2], &block).unwrap();
        assert_eq!(b.get(&[1, 1, 2]), 112.0);
        assert_eq!(b.get(&[2, 2, 4]), 224.0);
        assert_eq!(b.get(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn slice_out_of_bounds_errors() {
        let a = NDArray::zeros(&[2, 2]);
        assert!(a.slice(&[1, 1], &[2, 1]).is_err());
        assert!(a.slice(&[0], &[1]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = NDArray::from_vec(&[2, 3], (0..6).map(|x| x as f64).collect()).unwrap();
        let b = a.clone().reshape(&[3, 2]).unwrap();
        assert_eq!(b.get(&[2, 1]), 5.0);
        assert!(a.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn stack_makes_leading_axis() {
        let a = NDArray::full(&[2, 2], 1.0);
        let b = NDArray::full(&[2, 2], 2.0);
        let s = NDArray::stack(&[a, b]).unwrap();
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.get(&[0, 1, 1]), 1.0);
        assert_eq!(s.get(&[1, 0, 0]), 2.0);
    }

    #[test]
    fn zip_with_shape_mismatch() {
        let a = NDArray::zeros(&[2, 2]);
        let b = NDArray::zeros(&[2, 3]);
        assert!(a.zip_with(&b, |x, y| x + y).is_err());
    }
}
