//! Dense linear algebra built from scratch for the DEISA reproduction.
//!
//! The analytics side of the paper (incremental PCA, randomized SVD) needs a
//! small but real linear-algebra stack. This crate provides:
//!
//! * [`NDArray`] — a row-major dense n-dimensional array of `f64`,
//! * [`Matrix`] — a 2-D specialization with blocked `matmul`,
//! * Householder [`qr`] and the communication-avoiding tall-skinny [`qr::tsqr`],
//! * one-sided Jacobi [`svd`] (robust for the small cores IPCA produces),
//! * [`rsvd`] — the randomized SVD used by `svd_solver='randomized'` in the
//!   paper's Listing 2,
//! * axis [`stats`] (mean / variance) used by the IPCA update.
//!
//! Everything is deterministic given a seed; no external BLAS.

pub mod matrix;
pub mod ndarray;
pub mod qr;
pub mod rsvd;
pub mod stats;
pub mod svd;

pub use matrix::{Matrix, MatrixView};
pub use ndarray::NDArray;
pub use qr::{householder_qr, householder_qr_owned, tsqr};
pub use rsvd::randomized_svd;
pub use svd::{jacobi_svd, Svd};

/// Error type for shape/argument mismatches in linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        what: String,
    },
    /// An argument was out of the valid domain (e.g. `k` larger than `min(m,n)`).
    InvalidArgument {
        /// Human-readable description of the bad argument.
        what: String,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            LinalgError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
