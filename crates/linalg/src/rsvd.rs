//! Randomized SVD (Halko–Martinsson–Tropp).
//!
//! This is the `svd_solver='randomized'` the paper's Listing 2 passes to
//! `InSituIncrementalPCA`: project onto a random Gaussian range, orthonormalize
//! with a few power iterations, then run an exact SVD on the small projected
//! matrix.

use crate::matrix::Matrix;
use crate::qr::householder_qr;
use crate::svd::{jacobi_svd, Svd};
use crate::{LinalgError, Result};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Draw an `rows×cols` matrix of (approximately) standard normal entries from
/// a seeded PRNG, via the sum-of-uniforms (Irwin–Hall) approximation which is
/// plenty for a range finder.
fn gaussian(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
        s - 6.0
    })
}

/// Randomized truncated SVD of `a` with target rank `k`.
///
/// * `oversample` — extra random directions (default choice: 10),
/// * `n_power_iter` — power iterations to sharpen the spectrum decay
///   (2 is a good default for PCA),
/// * `seed` — PRNG seed; results are deterministic per seed.
pub fn randomized_svd(
    a: &Matrix,
    k: usize,
    oversample: usize,
    n_power_iter: usize,
    seed: u64,
) -> Result<Svd> {
    let m = a.rows();
    let n = a.cols();
    if k == 0 || k > m.min(n) {
        return Err(LinalgError::InvalidArgument {
            what: format!("rank {k} out of range for {m}x{n}"),
        });
    }
    let l = (k + oversample).min(n);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Range finding: Y = A * Omega.
    let omega = gaussian(n, l, &mut rng);
    let mut y = a.matmul(&omega)?;
    // Power iterations with re-orthonormalization for stability.
    for _ in 0..n_power_iter {
        let q = householder_qr(&y)?.q;
        let z = a.t_matmul(&q)?; // A^T Q
        let qz = householder_qr(&z)?.q;
        y = a.matmul(&qz)?;
    }
    let q = householder_qr(&y)?.q; // m×l orthonormal basis of range(A)
                                   // Project: B = Q^T A (l×n), exact SVD of the small B.
    let b = q.t_matmul(a)?;
    let svd_b = jacobi_svd(&b)?;
    let svd_b = svd_b.truncate(k)?;
    Ok(Svd {
        u: q.matmul(&svd_b.u)?,
        s: svd_b.s,
        vt: svd_b.vt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Low-rank test matrix: rank `r` product of two factor matrices.
    fn low_rank(m: usize, n: usize, r: usize) -> Matrix {
        let a = Matrix::from_fn(m, r, |i, j| ((i * 13 + j * 7) % 11) as f64 * 0.3 - 1.5);
        let b = Matrix::from_fn(r, n, |i, j| ((i * 5 + j * 3) % 13) as f64 * 0.2 - 1.2);
        a.matmul(&b).unwrap()
    }

    #[test]
    fn rsvd_recovers_low_rank_matrix() {
        let a = low_rank(40, 30, 3);
        let svd = randomized_svd(&a, 3, 10, 2, 42).unwrap();
        let rec = svd.reconstruct().unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-8);
    }

    #[test]
    fn rsvd_singular_values_match_exact() {
        let a = Matrix::from_fn(25, 12, |i, j| {
            ((i * 3 + j * 5) % 7) as f64 + 0.01 * i as f64
        });
        let exact = jacobi_svd(&a).unwrap();
        let approx = randomized_svd(&a, 4, 8, 3, 7).unwrap();
        for i in 0..4 {
            let rel = (approx.s[i] - exact.s[i]).abs() / exact.s[i].max(1e-12);
            assert!(rel < 1e-6, "sigma_{i}: {} vs {}", approx.s[i], exact.s[i]);
        }
    }

    #[test]
    fn rsvd_is_deterministic_per_seed() {
        let a = low_rank(20, 15, 4);
        let s1 = randomized_svd(&a, 4, 6, 2, 123).unwrap();
        let s2 = randomized_svd(&a, 4, 6, 2, 123).unwrap();
        assert_eq!(s1.s, s2.s);
        assert!(s1.u.max_abs_diff(&s2.u).unwrap() == 0.0);
    }

    #[test]
    fn rsvd_rejects_bad_rank() {
        let a = Matrix::zeros(5, 4);
        assert!(randomized_svd(&a, 0, 2, 1, 0).is_err());
        assert!(randomized_svd(&a, 5, 2, 1, 0).is_err());
    }
}
