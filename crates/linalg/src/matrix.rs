//! 2-D matrix type with cache-blocked, band-parallel multiplication.
//!
//! `Matrix` is the working type of the QR/SVD kernels. It is deliberately a
//! plain row-major `Vec<f64>` (per the perf-book guidance: flat storage, no
//! pointer chasing) with a micro-kernel-free but cache-blocked `matmul`.
//! Large products additionally split the output into row bands and compute
//! them on scoped threads — bands of the row-major output are disjoint
//! `&mut` slices, so the parallelism needs no locks and no extra
//! dependencies.

use crate::ndarray::NDArray;
use crate::{LinalgError, Result};

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

/// Block size for the cache-blocked matmul; chosen so three blocks of
/// `B*B` f64 fit comfortably in L1/L2.
const MM_BLOCK: usize = 64;

/// Minimum work (inner-loop multiply-adds) to justify one extra thread —
/// below this, thread spawn/join overhead beats the parallel win.
const PAR_MIN_WORK: usize = 1 << 16;

/// Thread count for a kernel with `max_units` independent work units and
/// `work` total multiply-adds: capped by the machine, the units, and a
/// minimum amount of work per thread. Returns 1 on small problems.
pub(crate) fn par_threads(max_units: usize, work: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores
        .min(max_units.max(1))
        .min((work / PAR_MIN_WORK).max(1))
}

/// Cache-blocked multiply of one row band: `out` covers output rows
/// `row0 ..` (its length dictates how many), `a` is the full `m×k` left
/// operand, `b` the full `k×n` right operand.
fn matmul_band(a: &[f64], b: &[f64], out: &mut [f64], row0: usize, k: usize, n: usize) {
    let rows = out.len() / n;
    for ib in (0..rows).step_by(MM_BLOCK) {
        let imax = (ib + MM_BLOCK).min(rows);
        for kb in (0..k).step_by(MM_BLOCK) {
            let kmax = (kb + MM_BLOCK).min(k);
            for jb in (0..n).step_by(MM_BLOCK) {
                let jmax = (jb + MM_BLOCK).min(n);
                for i in ib..imax {
                    let arow = &a[(row0 + i) * k..(row0 + i) * k + k];
                    let orow = &mut out[i * n..i * n + n];
                    for kk in kb..kmax {
                        let v = arow[kk];
                        if v == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n..kk * n + n];
                        for j in jb..jmax {
                            orow[j] += v * brow[j];
                        }
                    }
                }
            }
        }
    }
}

/// Borrowed row-major matrix over an existing `f64` buffer.
///
/// Kernels that receive their operands as shared [`NDArray`]s (the worker
/// hands blocks around as `Arc<NDArray>`) can wrap the buffer in a view via
/// [`Matrix::from_ndarray_ref`] and multiply/transpose/stack without first
/// deep-copying into an owned [`Matrix`]. The only copy is the output.
#[derive(Clone, Copy)]
pub struct MatrixView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f64],
}

impl std::fmt::Debug for MatrixView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MatrixView({}x{})", self.rows, self.cols)
    }
}

/// Shared band-parallel multiply over raw row-major buffers; `threads` is
/// clamped to `[1, m]`. Both [`Matrix::matmul_par`] and
/// [`MatrixView::matmul`] bottom out here.
fn matmul_slices(a: &[f64], b: &[f64], m: usize, k: usize, n: usize, threads: usize) -> Matrix {
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return out;
    }
    let threads = threads.clamp(1, m);
    if threads == 1 {
        matmul_band(a, b, &mut out.data, 0, k, n);
    } else {
        let band = m.div_ceil(threads);
        std::thread::scope(|s| {
            for (t, chunk) in out.data.chunks_mut(band * n).enumerate() {
                s.spawn(move || matmul_band(a, b, chunk, t * band, k, n));
            }
        });
    }
    out
}

impl<'a> MatrixView<'a> {
    /// View `data` as a `rows × cols` row-major matrix.
    pub fn new(rows: usize, cols: usize, data: &'a [f64]) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                what: format!(
                    "{rows}x{cols} view wants {} elements, got {}",
                    rows * cols,
                    data.len()
                ),
            });
        }
        Ok(MatrixView { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw row-major data.
    pub fn data(&self) -> &'a [f64] {
        self.data
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy into an owned [`Matrix`] (the one explicit copy).
    pub fn to_matrix(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.to_vec(),
        }
    }

    /// Transposed copy, straight from the borrowed buffer.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Cache-blocked, band-parallel `self * rhs` without owning either
    /// operand. Same threading policy as [`Matrix::matmul`].
    pub fn matmul(&self, rhs: &MatrixView<'_>) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                what: format!("{}x{} * {}x{}", self.rows, self.cols, rhs.rows, rhs.cols),
            });
        }
        let threads = par_threads(self.rows, self.rows * self.cols * rhs.cols);
        Ok(matmul_slices(
            self.data, rhs.data, self.rows, self.cols, rhs.cols, threads,
        ))
    }

    /// Stack views vertically into an owned matrix (single output copy).
    pub fn vstack(parts: &[MatrixView<'_>]) -> Result<Matrix> {
        let first = parts.first().ok_or_else(|| LinalgError::InvalidArgument {
            what: "vstack of zero matrices".into(),
        })?;
        let cols = first.cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            if p.cols != cols {
                return Err(LinalgError::ShapeMismatch {
                    what: format!("vstack: {} cols vs {} cols", p.cols, cols),
                });
            }
            data.extend_from_slice(p.data);
        }
        Ok(Matrix { rows, cols, data })
    }
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                what: format!(
                    "{rows}x{cols} wants {} elements, got {}",
                    rows * cols,
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// View a 2-D [`NDArray`] as a matrix (copy-free move of the buffer).
    pub fn from_ndarray(a: NDArray) -> Result<Self> {
        if a.ndim() != 2 {
            return Err(LinalgError::ShapeMismatch {
                what: format!("expected 2-D array, got {:?}", a.shape()),
            });
        }
        let (r, c) = (a.shape()[0], a.shape()[1]);
        Matrix::from_vec(r, c, a.into_vec())
    }

    /// Borrow a 2-D [`NDArray`] as a [`MatrixView`] — no copy at all, unlike
    /// [`Matrix::from_ndarray`] which needs ownership of the buffer.
    pub fn from_ndarray_ref(a: &NDArray) -> Result<MatrixView<'_>> {
        if a.ndim() != 2 {
            return Err(LinalgError::ShapeMismatch {
                what: format!("expected 2-D array, got {:?}", a.shape()),
            });
        }
        MatrixView::new(a.shape()[0], a.shape()[1], a.data())
    }

    /// Borrow this matrix as a [`MatrixView`].
    pub fn as_view(&self) -> MatrixView<'_> {
        MatrixView {
            rows: self.rows,
            cols: self.cols,
            data: &self.data,
        }
    }

    /// Convert into a 2-D [`NDArray`].
    pub fn into_ndarray(self) -> NDArray {
        NDArray::from_vec(&[self.rows, self.cols], self.data).expect("consistent shape")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Cache-blocked matrix multiplication `self * rhs`, parallelized over
    /// output row bands when the product is large enough to pay for it.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        let threads = par_threads(self.rows, self.rows * self.cols * rhs.cols);
        self.matmul_par(rhs, threads)
    }

    /// [`Matrix::matmul`] with an explicit thread count (`1` = serial).
    /// Bands of output rows are computed on scoped threads; each band is a
    /// disjoint `&mut` slice of the row-major output.
    pub fn matmul_par(&self, rhs: &Matrix, threads: usize) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                what: format!("{}x{} * {}x{}", self.rows, self.cols, rhs.rows, rhs.cols),
            });
        }
        Ok(matmul_slices(
            &self.data, &rhs.data, self.rows, self.cols, rhs.cols, threads,
        ))
    }

    /// `self^T * rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                what: format!(
                    "({}x{})^T * {}x{}",
                    self.rows, self.cols, rhs.rows, rhs.cols
                ),
            });
        }
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        for kk in 0..k {
            let arow = &self.data[kk * self.cols..(kk + 1) * self.cols];
            let brow = &rhs.data[kk * n..(kk + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += a * brow[j];
                }
            }
        }
        Ok(out)
    }

    /// Scale every element in place.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Stack matrices vertically (all must share a column count).
    pub fn vstack(parts: &[&Matrix]) -> Result<Matrix> {
        let first = parts.first().ok_or_else(|| LinalgError::InvalidArgument {
            what: "vstack of zero matrices".into(),
        })?;
        let cols = first.cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            if p.cols != cols {
                return Err(LinalgError::ShapeMismatch {
                    what: format!("vstack: {} cols vs {} cols", p.cols, cols),
                });
            }
            data.extend_from_slice(&p.data);
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Copy of the first `k` columns.
    pub fn take_cols(&self, k: usize) -> Result<Matrix> {
        if k > self.cols {
            return Err(LinalgError::InvalidArgument {
                what: format!("take_cols({k}) of a {}-column matrix", self.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, k);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..k]);
        }
        Ok(out)
    }

    /// Copy of the first `k` rows.
    pub fn take_rows(&self, k: usize) -> Result<Matrix> {
        if k > self.rows {
            return Err(LinalgError::InvalidArgument {
                what: format!("take_rows({k}) of a {}-row matrix", self.rows),
            });
        }
        Ok(Matrix {
            rows: k,
            cols: self.cols,
            data: self.data[..k * self.cols].to_vec(),
        })
    }

    /// Maximum absolute difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                what: "max_abs_diff".into(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Matrix::from_fn(7, 5, |i, j| (i * 5 + j) as f64 * 0.5 - 3.0);
        let b = Matrix::from_fn(5, 9, |i, j| ((i + 2) * (j + 1)) as f64 * 0.25);
        let blocked = a.matmul(&b).unwrap();
        let naive = naive_matmul(&a, &b);
        assert!(blocked.max_abs_diff(&naive).unwrap() < 1e-12);
    }

    #[test]
    fn matmul_blocked_large() {
        let a = Matrix::from_fn(130, 70, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(70, 90, |i, j| ((i * 3 + j * 11) % 17) as f64 - 8.0);
        let blocked = a.matmul(&b).unwrap();
        let naive = naive_matmul(&a, &b);
        assert!(blocked.max_abs_diff(&naive).unwrap() < 1e-9);
    }

    #[test]
    fn matmul_par_matches_serial_any_thread_count() {
        let a = Matrix::from_fn(67, 33, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(33, 41, |i, j| ((i * 3 + j * 11) % 17) as f64 - 8.0);
        let serial = a.matmul_par(&b, 1).unwrap();
        for threads in [2, 3, 5, 8, 100] {
            let par = a.matmul_par(&b, threads).unwrap();
            assert!(
                par.max_abs_diff(&serial).unwrap() == 0.0,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn matmul_par_degenerate_shapes() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(a.matmul_par(&b, 4).unwrap().rows(), 0);
        let a = Matrix::from_fn(3, 1, |i, _| i as f64);
        let b = Matrix::from_fn(1, 1, |_, _| 2.0);
        let r = a.matmul_par(&b, 7).unwrap();
        assert_eq!(r[(2, 0)], 4.0);
    }

    #[test]
    fn t_matmul_matches_transpose_then_mul() {
        let a = Matrix::from_fn(6, 4, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(6, 3, |i, j| (i * 3 + j) as f64 * 0.1);
        let direct = a.t_matmul(&b).unwrap();
        let via_t = a.transpose().matmul(&b).unwrap();
        assert!(direct.max_abs_diff(&via_t).unwrap() < 1e-12);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let i4 = Matrix::eye(4);
        assert!(a.matmul(&i4).unwrap().max_abs_diff(&a).unwrap() < 1e-15);
        assert!(i4.matmul(&a).unwrap().max_abs_diff(&a).unwrap() < 1e-15);
    }

    #[test]
    fn vstack_and_take() {
        let a = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        let b = Matrix::from_fn(1, 3, |_, j| 100.0 + j as f64);
        let s = Matrix::vstack(&[&a, &b]).unwrap();
        assert_eq!(s.rows(), 3);
        assert_eq!(s[(2, 1)], 101.0);
        assert_eq!(s.take_rows(2).unwrap().max_abs_diff(&a).unwrap(), 0.0);
        let c = s.take_cols(2).unwrap();
        assert_eq!(c.cols(), 2);
        assert_eq!(c[(2, 1)], 101.0);
    }

    #[test]
    fn shape_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
        assert!(a.take_cols(4).is_err());
        assert!(a.take_rows(3).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn view_matmul_transpose_vstack_match_owned() {
        let a = Matrix::from_fn(9, 6, |i, j| ((i * 11 + j * 5) % 7) as f64 - 3.0);
        let b = Matrix::from_fn(6, 4, |i, j| ((i * 3 + j) % 5) as f64 * 0.5);
        let owned = a.matmul(&b).unwrap();
        let via_view = a.as_view().matmul(&b.as_view()).unwrap();
        assert_eq!(via_view.max_abs_diff(&owned).unwrap(), 0.0);
        assert_eq!(
            a.as_view()
                .transpose()
                .max_abs_diff(&a.transpose())
                .unwrap(),
            0.0
        );
        let stacked = MatrixView::vstack(&[a.as_view(), a.as_view()]).unwrap();
        assert_eq!(stacked.rows(), 18);
        assert_eq!(stacked.take_rows(9).unwrap().max_abs_diff(&a).unwrap(), 0.0);
        assert_eq!(a.as_view().to_matrix().max_abs_diff(&a).unwrap(), 0.0);
    }

    #[test]
    fn view_shape_errors() {
        assert!(MatrixView::new(2, 3, &[0.0; 5]).is_err());
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.as_view().matmul(&b.as_view()).is_err());
        assert!(MatrixView::vstack(&[a.as_view(), Matrix::zeros(1, 2).as_view()]).is_err());
        assert!(MatrixView::vstack(&[]).is_err());
        let nd3 = NDArray::zeros(&[2, 2, 2]);
        assert!(Matrix::from_ndarray_ref(&nd3).is_err());
    }

    #[test]
    fn from_ndarray_ref_borrows_without_copy() {
        let nd = NDArray::from_vec(&[2, 3], (0..6).map(|v| v as f64).collect()).unwrap();
        let v = Matrix::from_ndarray_ref(&nd).unwrap();
        assert_eq!(v.rows(), 2);
        assert_eq!(v.cols(), 3);
        assert!(std::ptr::eq(v.data().as_ptr(), nd.data().as_ptr()));
        assert_eq!(v.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn ndarray_roundtrip() {
        let a = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let nd = a.clone().into_ndarray();
        assert_eq!(nd.shape(), &[3, 2]);
        let back = Matrix::from_ndarray(nd).unwrap();
        assert_eq!(back.max_abs_diff(&a).unwrap(), 0.0);
    }
}
