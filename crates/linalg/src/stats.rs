//! Column statistics and incremental mean/variance updates.
//!
//! These are the building blocks of scikit-learn-style `IncrementalPCA`:
//! per-column means/variances of a batch and the Chan et al. pooled update
//! that merges batch statistics into running statistics.

use crate::matrix::{Matrix, MatrixView};
use crate::{LinalgError, Result};

/// Per-column mean of a samples×features matrix.
pub fn col_mean(x: &Matrix) -> Vec<f64> {
    col_mean_view(x.as_view())
}

/// [`col_mean`] over a borrowed [`MatrixView`].
pub fn col_mean_view(x: MatrixView<'_>) -> Vec<f64> {
    let n = x.rows() as f64;
    let mut mean = vec![0.0; x.cols()];
    for i in 0..x.rows() {
        for (m, v) in mean.iter_mut().zip(x.row(i)) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    mean
}

/// Per-column population variance (divisor `n`).
pub fn col_var(x: &Matrix, mean: &[f64]) -> Vec<f64> {
    col_var_view(x.as_view(), mean)
}

/// [`col_var`] over a borrowed [`MatrixView`].
pub fn col_var_view(x: MatrixView<'_>, mean: &[f64]) -> Vec<f64> {
    let n = x.rows() as f64;
    let mut var = vec![0.0; x.cols()];
    for i in 0..x.rows() {
        let row = x.row(i);
        for (j, v) in var.iter_mut().enumerate() {
            let d = row[j] - mean[j];
            *v += d * d;
        }
    }
    for v in &mut var {
        *v /= n;
    }
    var
}

/// Subtract a per-column mean from every row, returning the centered matrix.
pub fn center_columns(x: &Matrix, mean: &[f64]) -> Result<Matrix> {
    center_columns_view(x.as_view(), mean)
}

/// [`center_columns`] over a borrowed [`MatrixView`] — the output matrix is
/// the only allocation; the source buffer is never copied first.
pub fn center_columns_view(x: MatrixView<'_>, mean: &[f64]) -> Result<Matrix> {
    if mean.len() != x.cols() {
        return Err(LinalgError::ShapeMismatch {
            what: format!("mean len {} vs {} cols", mean.len(), x.cols()),
        });
    }
    let mut data = Vec::with_capacity(x.rows() * x.cols());
    for i in 0..x.rows() {
        for (j, v) in x.row(i).iter().enumerate() {
            data.push(v - mean[j]);
        }
    }
    Matrix::from_vec(x.rows(), x.cols(), data)
}

/// Running (count, mean, unnormalized variance `M2 = var*count`) per column.
#[derive(Debug, Clone, PartialEq)]
pub struct RunningStats {
    /// Number of samples seen so far.
    pub count: u64,
    /// Per-column mean over the samples seen.
    pub mean: Vec<f64>,
    /// Per-column population variance over the samples seen.
    pub var: Vec<f64>,
}

impl RunningStats {
    /// Empty statistics over `features` columns.
    pub fn new(features: usize) -> Self {
        RunningStats {
            count: 0,
            mean: vec![0.0; features],
            var: vec![0.0; features],
        }
    }

    /// Merge a batch's (count, mean, var) using the pooled/parallel update of
    /// Chan, Golub & LeVeque — the same update `sklearn`'s
    /// `_incremental_mean_and_var` performs.
    pub fn update(
        &mut self,
        batch_count: u64,
        batch_mean: &[f64],
        batch_var: &[f64],
    ) -> Result<()> {
        if batch_mean.len() != self.mean.len() || batch_var.len() != self.var.len() {
            return Err(LinalgError::ShapeMismatch {
                what: format!(
                    "stats width {} vs batch {}",
                    self.mean.len(),
                    batch_mean.len()
                ),
            });
        }
        if batch_count == 0 {
            return Ok(());
        }
        let n_a = self.count as f64;
        let n_b = batch_count as f64;
        let n = n_a + n_b;
        for j in 0..self.mean.len() {
            let delta = batch_mean[j] - self.mean[j];
            let m2_a = self.var[j] * n_a;
            let m2_b = batch_var[j] * n_b;
            let m2 = m2_a + m2_b + delta * delta * n_a * n_b / n;
            self.mean[j] += delta * n_b / n;
            self.var[j] = m2 / n;
        }
        self.count += batch_count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_mean_and_var_simple() {
        let x = Matrix::from_vec(3, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]).unwrap();
        let m = col_mean(&x);
        assert_eq!(m, vec![2.0, 20.0]);
        let v = col_var(&x, &m);
        assert!((v[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((v[1] - 200.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn centering_zeroes_the_mean() {
        let x = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64 * 1.7 - 4.0);
        let m = col_mean(&x);
        let c = center_columns(&x, &m).unwrap();
        for v in col_mean(&c) {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn running_stats_match_batch_stats() {
        // Feed a matrix in three uneven chunks; the running stats must equal
        // the whole-matrix stats.
        let x = Matrix::from_fn(10, 4, |i, j| ((i * 7 + j * 3) % 13) as f64 * 0.9 - 2.0);
        let whole_mean = col_mean(&x);
        let whole_var = col_var(&x, &whole_mean);

        let mut rs = RunningStats::new(4);
        let mut row = 0;
        for h in [3usize, 5, 2] {
            let chunk = Matrix::from_vec(h, 4, x.data()[row * 4..(row + h) * 4].to_vec()).unwrap();
            let m = col_mean(&chunk);
            let v = col_var(&chunk, &m);
            rs.update(h as u64, &m, &v).unwrap();
            row += h;
        }
        assert_eq!(rs.count, 10);
        for j in 0..4 {
            assert!((rs.mean[j] - whole_mean[j]).abs() < 1e-12);
            assert!((rs.var[j] - whole_var[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut rs = RunningStats::new(2);
        rs.update(4, &[1.0, 2.0], &[0.5, 0.5]).unwrap();
        let before = rs.clone();
        rs.update(0, &[99.0, 99.0], &[9.0, 9.0]).unwrap();
        assert_eq!(rs, before);
    }

    #[test]
    fn width_mismatch_errors() {
        let mut rs = RunningStats::new(2);
        assert!(rs.update(1, &[1.0], &[0.0]).is_err());
        let x = Matrix::zeros(2, 2);
        assert!(center_columns(&x, &[0.0]).is_err());
    }
}
