//! One-sided Jacobi SVD.
//!
//! Robust and simple: rotate column pairs of `A` until all pairs are
//! orthogonal; then column norms are the singular values, the normalized
//! columns are `U`, and the accumulated rotations give `V`. Used directly for
//! small/medium matrices and as the core factorization after QR or random
//! projection for large ones.

use crate::matrix::Matrix;
use crate::qr::householder_qr;
use crate::{LinalgError, Result};

/// Singular value decomposition `A = U diag(S) V^T`.
pub struct Svd {
    /// Left singular vectors, `m×k`.
    pub u: Matrix,
    /// Singular values, descending, length `k`.
    pub s: Vec<f64>,
    /// Right singular vectors transposed, `k×n`.
    pub vt: Matrix,
}

/// Maximum sweeps for the Jacobi iteration; convergence is normally < 15
/// sweeps even for ill-conditioned inputs.
const MAX_SWEEPS: usize = 60;

/// One-sided Jacobi SVD of `a` (thin: `k = min(m, n)`).
///
/// For `m < n` the routine factors the transpose and swaps the factors.
/// For very tall matrices a QR step first reduces the problem to `n×n`.
pub fn jacobi_svd(a: &Matrix) -> Result<Svd> {
    let m = a.rows();
    let n = a.cols();
    if m == 0 || n == 0 {
        return Err(LinalgError::InvalidArgument {
            what: "SVD of an empty matrix".into(),
        });
    }
    if m < n {
        // A^T = U' S V'^T  =>  A = V' S U'^T
        let svd_t = jacobi_svd(&a.transpose())?;
        return Ok(Svd {
            u: svd_t.vt.transpose(),
            s: svd_t.s,
            vt: svd_t.u.transpose(),
        });
    }
    if m > 2 * n {
        // Tall: QR first, SVD of R, then U = Q * U_r.
        let qr = householder_qr(a)?;
        let svd_r = jacobi_svd(&qr.r)?;
        return Ok(Svd {
            u: qr.q.matmul(&svd_r.u)?,
            s: svd_r.s,
            vt: svd_r.vt,
        });
    }

    // Work on columns of a copy of A; accumulate V.
    let mut w = a.clone();
    let mut v = Matrix::eye(n);
    let eps = 1e-14;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Compute the 2x2 Gram entries for columns p, q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let xp = w[(i, p)];
                    let xq = w[(i, q)];
                    app += xp * xp;
                    aqq += xq * xq;
                    apq += xp * xq;
                }
                let denom = (app * aqq).sqrt();
                if denom > 0.0 {
                    off = off.max(apq.abs() / denom);
                }
                if apq.abs() <= eps * denom {
                    continue;
                }
                // Jacobi rotation annihilating the off-diagonal Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let xp = w[(i, p)];
                    let xq = w[(i, q)];
                    w[(i, p)] = c * xp - s * xq;
                    w[(i, q)] = s * xp + c * xq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if off < eps {
            break;
        }
    }

    // Column norms = singular values.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigma = vec![0.0f64; n];
    for (j, s) in sigma.iter_mut().enumerate() {
        let mut norm = 0.0;
        for i in 0..m {
            norm += w[(i, j)] * w[(i, j)];
        }
        *s = norm.sqrt();
    }
    order.sort_by(|&x, &y| {
        sigma[y]
            .partial_cmp(&sigma[x])
            .expect("no NaN singular values")
    });

    let mut u = Matrix::zeros(m, n);
    let mut vt = Matrix::zeros(n, n);
    let mut s_sorted = vec![0.0f64; n];
    for (out_j, &j) in order.iter().enumerate() {
        let s = sigma[j];
        s_sorted[out_j] = s;
        if s > 0.0 {
            for i in 0..m {
                u[(i, out_j)] = w[(i, j)] / s;
            }
        } else {
            // Null space: leave a zero column (caller may not use it).
            u[(out_j.min(m - 1), out_j)] = 0.0;
        }
        for i in 0..n {
            vt[(out_j, i)] = v[(i, j)];
        }
    }
    Ok(Svd { u, s: s_sorted, vt })
}

impl Svd {
    /// Truncate to the top `k` components.
    pub fn truncate(self, k: usize) -> Result<Svd> {
        if k > self.s.len() {
            return Err(LinalgError::InvalidArgument {
                what: format!("truncate({k}) of a rank-{} SVD", self.s.len()),
            });
        }
        Ok(Svd {
            u: self.u.take_cols(k)?,
            s: self.s[..k].to_vec(),
            vt: self.vt.take_rows(k)?,
        })
    }

    /// Reconstruct `U diag(S) V^T`.
    pub fn reconstruct(&self) -> Result<Matrix> {
        let mut us = self.u.clone();
        for i in 0..us.rows() {
            for j in 0..us.cols() {
                us[(i, j)] *= self.s[j];
            }
        }
        us.matmul(&self.vt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid_svd(a: &Matrix, svd: &Svd, tol: f64) {
        // Reconstruction.
        let rec = svd.reconstruct().unwrap();
        assert!(
            rec.max_abs_diff(a).unwrap() < tol,
            "reconstruction error {}",
            rec.max_abs_diff(a).unwrap()
        );
        // Descending singular values.
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "not descending: {:?}", svd.s);
        }
        // V orthonormal rows.
        let vvt = svd.vt.matmul(&svd.vt.transpose()).unwrap();
        assert!(vvt.max_abs_diff(&Matrix::eye(svd.vt.rows())).unwrap() < tol);
    }

    #[test]
    fn svd_square() {
        let a = Matrix::from_fn(6, 6, |i, j| ((i * 7 + j * 13) % 17) as f64 - 8.0);
        let svd = jacobi_svd(&a).unwrap();
        assert_valid_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn svd_tall_triggers_qr_path() {
        let a = Matrix::from_fn(50, 4, |i, j| {
            ((i + 1) as f64).sin() * (j + 1) as f64 + 0.1 * i as f64
        });
        let svd = jacobi_svd(&a).unwrap();
        assert_eq!(svd.u.rows(), 50);
        assert_eq!(svd.u.cols(), 4);
        assert_valid_svd(&a, &svd, 1e-8);
    }

    #[test]
    fn svd_wide_via_transpose() {
        let a = Matrix::from_fn(3, 8, |i, j| ((i * 11 + j * 3) % 7) as f64 * 0.5);
        let svd = jacobi_svd(&a).unwrap();
        assert_eq!(svd.u.rows(), 3);
        assert_eq!(svd.vt.cols(), 8);
        assert_valid_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn svd_known_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        a[(2, 2)] = 2.0;
        let svd = jacobi_svd(&a).unwrap();
        assert!((svd.s[0] - 3.0).abs() < 1e-12);
        assert!((svd.s[1] - 2.0).abs() < 1e-12);
        assert!((svd.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn svd_rank_one() {
        // a = u v^T with |u| = 2, |v| = 3 => sigma_1 = 6, rest 0.
        let u = [2.0, 0.0, 0.0, 0.0];
        let v = [3.0, 0.0, 0.0];
        let a = Matrix::from_fn(4, 3, |i, j| u[i] * v[j]);
        let svd = jacobi_svd(&a).unwrap();
        assert!((svd.s[0] - 6.0).abs() < 1e-10);
        assert!(svd.s[1].abs() < 1e-10);
        assert_valid_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn svd_truncate_gives_best_rank_k() {
        // Construct a matrix with known spectrum via random-ish orthogonal mixing.
        let a = Matrix::from_fn(8, 5, |i, j| ((i * 31 + j * 17) % 19) as f64 * 0.1 - 0.9);
        let svd = jacobi_svd(&a).unwrap();
        let k = 2;
        let t = jacobi_svd(&a).unwrap().truncate(k).unwrap();
        let rec = t.reconstruct().unwrap();
        // Error of best rank-k approx in Frobenius norm = sqrt(sum of tail sigma^2).
        let mut diff = a.clone();
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                diff[(i, j)] -= rec[(i, j)];
            }
        }
        let tail: f64 = svd.s[k..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((diff.frobenius_norm() - tail).abs() < 1e-8);
    }

    #[test]
    fn svd_singular_values_match_gram_eigensqrt() {
        let a = Matrix::from_fn(5, 3, |i, j| (i as f64 - j as f64) * 0.7 + 1.0);
        let svd = jacobi_svd(&a).unwrap();
        // sum sigma_i^2 == ||A||_F^2
        let ss: f64 = svd.s.iter().map(|s| s * s).sum();
        let fro2 = a.frobenius_norm().powi(2);
        assert!((ss - fro2).abs() < 1e-9);
    }

    #[test]
    fn svd_empty_errors() {
        assert!(jacobi_svd(&Matrix::zeros(0, 3)).is_err());
    }
}
