//! Householder QR and communication-avoiding tall-skinny QR (TSQR).
//!
//! TSQR is the building block dask-ml uses for its SVD of tall-and-skinny
//! chunked arrays; we reproduce the same structure: per-chunk local QR, then a
//! reduction tree over the stacked R factors.

use crate::matrix::{par_threads, Matrix};
use crate::{LinalgError, Result};

/// Apply the Householder reflector `H = I - 2 v v^T / (v^T v)` to the block
/// `mat[pivot.., col0..]`. `v` spans rows `pivot..m`.
///
/// With `threads > 1` the update runs in two band-parallel passes over row
/// bands of the trailing block: (1) partial column dots per band, reduced on
/// the calling thread; (2) the rank-1 row updates, each band a disjoint
/// `&mut` slice of the row-major storage.
fn apply_reflector(
    mat: &mut Matrix,
    pivot: usize,
    col0: usize,
    v: &[f64],
    vnorm2: f64,
    threads: usize,
) {
    let m = mat.rows();
    let n = mat.cols();
    let ncols = n - col0;
    if ncols == 0 || m == pivot {
        return;
    }
    let nrows = m - pivot;
    let threads = threads.clamp(1, nrows);
    if threads == 1 {
        for col in col0..n {
            let mut dot = 0.0;
            for i in pivot..m {
                dot += v[i - pivot] * mat[(i, col)];
            }
            let f = 2.0 * dot / vnorm2;
            for i in pivot..m {
                mat[(i, col)] -= f * v[i - pivot];
            }
        }
        return;
    }
    let tail = &mut mat.data_mut()[pivot * n..];
    let band = nrows.div_ceil(threads);
    // Pass 1: column dots, one partial vector per row band.
    let mut dots = vec![0.0; ncols];
    {
        let tail_ro: &[f64] = tail;
        let partials: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let r0 = t * band;
                    let r1 = ((t + 1) * band).min(nrows);
                    s.spawn(move || {
                        let mut partial = vec![0.0; ncols];
                        for i in r0..r1 {
                            let vi = v[i];
                            let row = &tail_ro[i * n + col0..i * n + n];
                            for (p, x) in partial.iter_mut().zip(row) {
                                *p += vi * x;
                            }
                        }
                        partial
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("dot band panicked"))
                .collect()
        });
        for partial in partials {
            for (d, p) in dots.iter_mut().zip(partial) {
                *d += p;
            }
        }
    }
    let factors: Vec<f64> = dots.iter().map(|d| 2.0 * d / vnorm2).collect();
    // Pass 2: rank-1 update, disjoint row bands.
    std::thread::scope(|s| {
        for (t, chunk) in tail.chunks_mut(band * n).enumerate() {
            let r0 = t * band;
            let factors = &factors;
            s.spawn(move || {
                for (li, row) in chunk.chunks_mut(n).enumerate() {
                    let vi = v[r0 + li];
                    for (f, x) in factors.iter().zip(&mut row[col0..]) {
                        *x -= f * vi;
                    }
                }
            });
        }
    });
}

/// Thin QR decomposition `A = Q R` with `Q: m×k`, `R: k×n`, `k = min(m, n)`.
pub struct Qr {
    /// Orthonormal factor (thin).
    pub q: Matrix,
    /// Upper-triangular factor.
    pub r: Matrix,
}

/// Householder QR returning the thin factors.
///
/// Numerically stable for any `m >= 1`, `n >= 1`. Cost `O(m n^2)`.
pub fn householder_qr(a: &Matrix) -> Result<Qr> {
    householder_qr_owned(a.clone())
}

/// [`householder_qr`] taking ownership of `a` and factorizing in place —
/// callers that already hold a throwaway copy (e.g. one assembled from a
/// [`crate::matrix::MatrixView`]) skip the internal working-copy clone.
pub fn householder_qr_owned(a: Matrix) -> Result<Qr> {
    let m = a.rows();
    let n = a.cols();
    if m == 0 || n == 0 {
        return Err(LinalgError::InvalidArgument {
            what: "QR of an empty matrix".into(),
        });
    }
    let k = m.min(n);
    let mut r = a;
    // Store Householder vectors; v[j] has length m - j.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);
    for j in 0..k {
        // Build the Householder vector for column j below the diagonal.
        let mut norm = 0.0;
        for i in j..m {
            norm += r[(i, j)] * r[(i, j)];
        }
        norm = norm.sqrt();
        let mut v = vec![0.0; m - j];
        if norm == 0.0 {
            // Column already zero; identity reflector.
            vs.push(v);
            continue;
        }
        let alpha = if r[(j, j)] >= 0.0 { -norm } else { norm };
        for i in j..m {
            v[i - j] = r[(i, j)];
        }
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 > 0.0 {
            // Apply H = I - 2 v v^T / (v^T v) to R[j.., j..], band-parallel
            // on trailing blocks large enough to pay for it.
            let threads = par_threads(m - j, 2 * (m - j) * (n - j));
            apply_reflector(&mut r, j, j, &v, vnorm2, threads);
        }
        vs.push(v);
    }
    // Zero strict lower triangle of R and take the top k rows.
    let mut r_thin = Matrix::zeros(k, n);
    for i in 0..k {
        for jj in i..n {
            r_thin[(i, jj)] = r[(i, jj)];
        }
    }
    // Accumulate Q by applying reflectors to the first k columns of I.
    let mut q = Matrix::zeros(m, k);
    for i in 0..k {
        q[(i, i)] = 1.0;
    }
    for j in (0..k).rev() {
        let v = &vs[j];
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        let threads = par_threads(m - j, 2 * (m - j) * k);
        apply_reflector(&mut q, j, 0, v, vnorm2, threads);
    }
    Ok(Qr { q, r: r_thin })
}

/// Tall-skinny QR over row blocks.
///
/// Each block gets a local QR; the stacked `R` factors are reduced pairwise in
/// a tree until one `R` remains; local `Q`s are then back-multiplied by the
/// tree `Q` pieces. Returns thin `Q` (same row partitioning as the input,
/// concatenated) and `R`.
///
/// Requires every block to have at least as many rows as columns would be
/// ideal, but the implementation is correct for any block heights as long as
/// the *total* row count is >= the column count.
pub fn tsqr(blocks: &[Matrix]) -> Result<Qr> {
    let first = blocks.first().ok_or_else(|| LinalgError::InvalidArgument {
        what: "tsqr of zero blocks".into(),
    })?;
    let n = first.cols();
    for b in blocks {
        if b.cols() != n {
            return Err(LinalgError::ShapeMismatch {
                what: format!("tsqr block cols {} vs {}", b.cols(), n),
            });
        }
    }
    let total_rows: usize = blocks.iter().map(|b| b.rows()).sum();
    if total_rows < n {
        return Err(LinalgError::InvalidArgument {
            what: format!("tsqr: total rows {total_rows} < cols {n}"),
        });
    }
    // Level 0: local QRs — independent per block, so run them on scoped
    // threads when there is enough work.
    let level0_threads = par_threads(blocks.len(), total_rows * n * n);
    let mut qs: Vec<Matrix> = Vec::with_capacity(blocks.len());
    let mut rs: Vec<Matrix> = Vec::with_capacity(blocks.len());
    if level0_threads <= 1 {
        for b in blocks {
            let qr = householder_qr(b)?;
            qs.push(qr.q);
            rs.push(qr.r);
        }
    } else {
        let per_chunk = blocks.len().div_ceil(level0_threads);
        let chunk_results: Vec<Result<Vec<Qr>>> = std::thread::scope(|s| {
            let handles: Vec<_> = blocks
                .chunks(per_chunk)
                .map(|chunk| s.spawn(move || chunk.iter().map(householder_qr).collect()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("local QR panicked"))
                .collect()
        });
        for chunk in chunk_results {
            for qr in chunk? {
                qs.push(qr.q);
                rs.push(qr.r);
            }
        }
    }
    // Reduction tree over R factors. Track, for each original block, the chain
    // of (level, pair-slot) multiplications to apply. Simpler: at each level,
    // keep for each surviving node the list of original block indices and the
    // per-block accumulated Q factors.
    // groups[g] = (R factor, Vec<(block_idx, q_chain)>) where q_chain is the
    // matrix each original local Q must be multiplied by.
    struct Group {
        r: Matrix,
        members: Vec<(usize, Matrix)>, // (block index, accumulated right factor)
    }
    let mut groups: Vec<Group> = rs
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let k = r.rows();
            Group {
                r,
                members: vec![(i, Matrix::eye(k))],
            }
        })
        .collect();
    while groups.len() > 1 {
        let mut next: Vec<Group> = Vec::with_capacity(groups.len().div_ceil(2));
        let mut it = groups.into_iter();
        while let Some(g1) = it.next() {
            match it.next() {
                None => next.push(g1),
                Some(g2) => {
                    let stacked = Matrix::vstack(&[&g1.r, &g2.r])?;
                    let qr = householder_qr(&stacked)?;
                    // Split tree Q rows between the two children.
                    let k1 = g1.r.rows();
                    let q_top = qr.q.take_rows(k1)?;
                    let q_bot = Matrix::from_vec(
                        qr.q.rows() - k1,
                        qr.q.cols(),
                        qr.q.data()[k1 * qr.q.cols()..].to_vec(),
                    )?;
                    let mut members = Vec::with_capacity(g1.members.len() + g2.members.len());
                    for (idx, chain) in g1.members {
                        members.push((idx, chain.matmul(&q_top)?));
                    }
                    for (idx, chain) in g2.members {
                        members.push((idx, chain.matmul(&q_bot)?));
                    }
                    next.push(Group { r: qr.r, members });
                }
            }
        }
        groups = next;
    }
    let root = groups.pop().expect("one group remains");
    // Assemble Q: each block's thin local Q times its accumulated chain —
    // again independent per block, so fan the products out.
    let assembly_threads = par_threads(root.members.len(), total_rows * n * n);
    let mut finals: Vec<Option<Matrix>> = (0..blocks.len()).map(|_| None).collect();
    if assembly_threads <= 1 {
        for (idx, chain) in root.members {
            finals[idx] = Some(qs[idx].matmul_par(&chain, 1)?);
        }
    } else {
        let per_chunk = root.members.len().div_ceil(assembly_threads);
        let products: Vec<Result<Vec<(usize, Matrix)>>> = std::thread::scope(|s| {
            let handles: Vec<_> = root
                .members
                .chunks(per_chunk)
                .map(|chunk| {
                    let qs = &qs;
                    s.spawn(move || {
                        chunk
                            .iter()
                            .map(|(idx, chain)| Ok((*idx, qs[*idx].matmul_par(chain, 1)?)))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("Q assembly panicked"))
                .collect()
        });
        for chunk in products {
            for (idx, q) in chunk? {
                finals[idx] = Some(q);
            }
        }
    }
    let parts: Vec<Matrix> = finals
        .into_iter()
        .map(|m| m.expect("every block mapped"))
        .collect();
    let refs: Vec<&Matrix> = parts.iter().collect();
    Ok(Qr {
        q: Matrix::vstack(&refs)?,
        r: root.r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal_cols(q: &Matrix, tol: f64) {
        let qtq = q.t_matmul(q).unwrap();
        let eye = Matrix::eye(q.cols());
        assert!(
            qtq.max_abs_diff(&eye).unwrap() < tol,
            "Q columns not orthonormal: err {}",
            qtq.max_abs_diff(&eye).unwrap()
        );
    }

    fn assert_reconstructs(a: &Matrix, q: &Matrix, r: &Matrix, tol: f64) {
        let qr = q.matmul(r).unwrap();
        assert!(
            qr.max_abs_diff(a).unwrap() < tol,
            "QR != A: err {}",
            qr.max_abs_diff(a).unwrap()
        );
    }

    #[test]
    fn qr_square() {
        let a = Matrix::from_fn(5, 5, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let qr = householder_qr(&a).unwrap();
        assert_orthonormal_cols(&qr.q, 1e-10);
        assert_reconstructs(&a, &qr.q, &qr.r, 1e-10);
    }

    #[test]
    fn qr_tall() {
        let a = Matrix::from_fn(20, 4, |i, j| (i as f64 + 1.0).powi(j as i32));
        let qr = householder_qr(&a).unwrap();
        assert_eq!(qr.q.rows(), 20);
        assert_eq!(qr.q.cols(), 4);
        assert_eq!(qr.r.rows(), 4);
        assert_orthonormal_cols(&qr.q, 1e-9);
        assert_reconstructs(&a, &qr.q, &qr.r, 1e-8);
    }

    #[test]
    fn qr_wide() {
        let a = Matrix::from_fn(3, 6, |i, j| ((i * 13 + j * 5) % 7) as f64);
        let qr = householder_qr(&a).unwrap();
        assert_eq!(qr.q.cols(), 3);
        assert_eq!(qr.r.rows(), 3);
        assert_orthonormal_cols(&qr.q, 1e-10);
        assert_reconstructs(&a, &qr.q, &qr.r, 1e-10);
    }

    #[test]
    fn qr_r_is_upper_triangular() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i + 1) * (j + 2)) as f64 % 5.0 - 2.0);
        let qr = householder_qr(&a).unwrap();
        for i in 0..qr.r.rows() {
            for j in 0..i.min(qr.r.cols()) {
                assert!(qr.r[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qr_rank_deficient_column() {
        // Second column is zero.
        let a = Matrix::from_fn(5, 3, |i, j| if j == 1 { 0.0 } else { (i + j) as f64 + 1.0 });
        let qr = householder_qr(&a).unwrap();
        assert_reconstructs(&a, &qr.q, &qr.r, 1e-10);
    }

    #[test]
    fn tsqr_matches_direct_qr_reconstruction() {
        let a = Matrix::from_fn(24, 5, |i, j| ((i * 17 + j * 29) % 23) as f64 * 0.3 - 3.0);
        // Split into uneven row blocks.
        let blocks = vec![
            a.take_rows(7).unwrap(),
            Matrix::from_vec(9, 5, a.data()[7 * 5..16 * 5].to_vec()).unwrap(),
            Matrix::from_vec(8, 5, a.data()[16 * 5..24 * 5].to_vec()).unwrap(),
        ];
        let qr = tsqr(&blocks).unwrap();
        assert_eq!(qr.q.rows(), 24);
        assert_orthonormal_cols(&qr.q, 1e-9);
        assert_reconstructs(&a, &qr.q, &qr.r, 1e-9);
    }

    #[test]
    fn tsqr_single_block_degenerates_to_qr() {
        let a = Matrix::from_fn(10, 3, |i, j| (i * 3 + j) as f64 * 0.1 + 1.0);
        let qr = tsqr(std::slice::from_ref(&a)).unwrap();
        assert_orthonormal_cols(&qr.q, 1e-10);
        assert_reconstructs(&a, &qr.q, &qr.r, 1e-10);
    }

    #[test]
    fn tsqr_many_small_blocks() {
        let a = Matrix::from_fn(33, 4, |i, j| ((i * 5 + j * 11) % 13) as f64 - 6.0);
        let mut blocks = Vec::new();
        let mut row = 0;
        for h in [4usize, 4, 4, 4, 4, 4, 4, 5] {
            blocks.push(Matrix::from_vec(h, 4, a.data()[row * 4..(row + h) * 4].to_vec()).unwrap());
            row += h;
        }
        let qr = tsqr(&blocks).unwrap();
        assert_orthonormal_cols(&qr.q, 1e-9);
        assert_reconstructs(&a, &qr.q, &qr.r, 1e-9);
    }

    #[test]
    fn parallel_reflector_matches_serial() {
        let base = Matrix::from_fn(41, 9, |i, j| ((i * 13 + j * 29) % 19) as f64 * 0.5 - 4.0);
        let pivot = 3usize;
        let v: Vec<f64> = (0..base.rows() - pivot)
            .map(|i| ((i * 7 + 2) % 11) as f64 - 5.0)
            .collect();
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        let mut serial = base.clone();
        apply_reflector(&mut serial, pivot, 2, &v, vnorm2, 1);
        for threads in [2, 4, 9, 64] {
            let mut par = base.clone();
            apply_reflector(&mut par, pivot, 2, &v, vnorm2, threads);
            // Band-wise dot reduction reorders the sums; allow rounding.
            assert!(
                par.max_abs_diff(&serial).unwrap() < 1e-12,
                "threads={threads}"
            );
        }
        // Untouched region (rows above pivot, cols before col0) is bit-equal.
        for i in 0..pivot {
            for j in 0..base.cols() {
                assert_eq!(serial[(i, j)], base[(i, j)]);
            }
        }
    }

    #[test]
    fn tsqr_errors() {
        assert!(tsqr(&[]).is_err());
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        assert!(tsqr(&[a.clone(), b]).is_err());
        // total rows < cols
        assert!(tsqr(&[a]).is_err());
    }
}
