//! Typed value store for exposed simulation data and metadata.

use linalg::NDArray;
use std::collections::HashMap;
use std::sync::Arc;

/// A value exposed to the data interface.
#[derive(Debug, Clone)]
pub enum Value {
    /// Integer metadata (timestep, rank, …).
    Int(i64),
    /// Integer list metadata (grid dims, local sizes, …).
    IntList(Vec<i64>),
    /// Float metadata.
    Float(f64),
    /// String metadata.
    Str(String),
    /// Array data. Shared (`Arc`) so `expose` does not copy the buffer —
    /// PDI's zero-copy share semantics.
    Array(Arc<NDArray>),
}

impl Value {
    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Arc<NDArray>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<Vec<i64>> for Value {
    fn from(v: Vec<i64>) -> Self {
        Value::IntList(v)
    }
}

impl From<NDArray> for Value {
    fn from(v: NDArray) -> Self {
        Value::Array(Arc::new(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

/// Name → value map of everything currently shared with the data interface.
#[derive(Debug, Default)]
pub struct Store {
    values: HashMap<String, Value>,
}

impl Store {
    /// Empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Insert or replace a value.
    pub fn set(&mut self, name: &str, value: Value) {
        self.values.insert(name.to_string(), value);
    }

    /// Look up a value.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// Remove a value (PDI `reclaim`).
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.values.remove(name)
    }

    /// Whether a name is currently shared.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut s = Store::new();
        s.set("step", Value::Int(3));
        assert_eq!(s.get("step").unwrap().as_int(), Some(3));
        assert!(s.contains("step"));
        s.remove("step");
        assert!(!s.contains("step"));
    }

    #[test]
    fn array_share_is_zero_copy() {
        let mut s = Store::new();
        let a = Arc::new(NDArray::full(&[4, 4], 1.5));
        s.set("temp", Value::Array(Arc::clone(&a)));
        let got = s.get("temp").unwrap().as_array().unwrap();
        assert!(Arc::ptr_eq(got, &a));
    }

    #[test]
    fn from_conversions() {
        assert!(matches!(Value::from(3i64), Value::Int(3)));
        assert!(matches!(Value::from(vec![1i64, 2]), Value::IntList(_)));
        assert!(matches!(Value::from("x"), Value::Str(_)));
        assert!(matches!(Value::from(NDArray::zeros(&[1])), Value::Array(_)));
    }
}
