//! `pdi` — a PDI-style data interface.
//!
//! The paper keeps simulation code decoupled from data handling through the
//! PDI data interface ([Roussel et al. 2017]): the miniapp only *exposes*
//! named buffers and raises *events*; plugins configured in a YAML file decide
//! what happens to the data (ship it to Dask, write it to disk, ignore it).
//!
//! This crate reproduces that architecture:
//!
//! * [`yaml`] — a small YAML-subset parser for the plugin configuration
//!   (block maps, block lists, scalars, comments — everything Listing 1 of
//!   the paper uses),
//! * [`expr`] — the `$`-expression language used inside the config
//!   (`'$cfg.loc[0] * ($rank % $cfg.proc[0])'` …),
//! * [`store`] — the typed value store holding exposed metadata and data,
//! * [`plugin`] — the [`plugin::Plugin`] trait plus [`Pdi`], the per-rank
//!   instance that dispatches `share`/`event` callbacks to plugins.
//!
//! The deisa plugin itself lives in the `deisa-core` crate (it needs the
//! bridge); a file-writing plugin lives in `heat2d` (post-hoc path).

pub mod expr;
pub mod plugin;
pub mod store;
pub mod yaml;

pub use expr::{eval_expr, ExprError};
pub use plugin::{Pdi, PdiError, Plugin};
pub use store::{Store, Value};
pub use yaml::{parse_yaml, Yaml, YamlError};
