//! A small YAML-subset parser.
//!
//! Supports exactly what PDI-style plugin configurations need (see the
//! paper's Listing 1):
//!
//! * block mappings `key: value` with indentation-based nesting,
//! * block sequences `- item` (including `-item` glued form used in the
//!   paper's listing),
//! * scalars: ints, floats, booleans, bare strings, single/double-quoted
//!   strings (quotes protect `$`-expressions with spaces),
//! * inline lists `[a, b, c]`,
//! * `#` comments and blank lines.
//!
//! Anchors, multi-docs, flow mappings and block scalars are out of scope.

/// Parsed YAML node.
#[derive(Debug, Clone, PartialEq)]
pub enum Yaml {
    /// Scalar leaf, kept as the raw (unquoted) string.
    Scalar(String),
    /// Ordered mapping.
    Map(Vec<(String, Yaml)>),
    /// Sequence.
    List(Vec<Yaml>),
    /// Empty value (key with nothing after the colon and no indented block).
    Null,
}

/// Parse error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YamlError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for YamlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "yaml error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for YamlError {}

impl Yaml {
    /// Map lookup.
    pub fn get(&self, key: &str) -> Option<&Yaml> {
        match self {
            Yaml::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Scalar as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Yaml::Scalar(s) => Some(s),
            _ => None,
        }
    }

    /// Scalar parsed as i64.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_str()?.parse().ok()
    }

    /// Scalar parsed as f64.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_str()?.parse().ok()
    }

    /// Scalar parsed as bool (`true`/`false`).
    pub fn as_bool(&self) -> Option<bool> {
        match self.as_str()? {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        }
    }

    /// Sequence items.
    pub fn as_list(&self) -> Option<&[Yaml]> {
        match self {
            Yaml::List(items) => Some(items),
            _ => None,
        }
    }

    /// Map entries in order.
    pub fn as_map(&self) -> Option<&[(String, Yaml)]> {
        match self {
            Yaml::Map(entries) => Some(entries),
            _ => None,
        }
    }
}

struct Line {
    number: usize,
    indent: usize,
    content: String,
}

fn strip_comment(s: &str) -> &str {
    // A '#' starts a comment unless inside quotes.
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in s.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '#' if !in_single && !in_double => {
                // YAML requires a space before # unless at start; accept both.
                return &s[..i];
            }
            _ => {}
        }
    }
    s
}

fn logical_lines(src: &str) -> Result<Vec<Line>, YamlError> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let number = i + 1;
        if raw.contains('\t') {
            return Err(YamlError {
                line: number,
                message: "tabs are not allowed for indentation".into(),
            });
        }
        let without_comment = strip_comment(raw);
        let trimmed_end = without_comment.trim_end();
        let indent = trimmed_end.len() - trimmed_end.trim_start().len();
        let content = trimmed_end.trim_start().to_string();
        if content.is_empty() {
            continue;
        }
        out.push(Line {
            number,
            indent,
            content,
        });
    }
    Ok(out)
}

fn unquote(s: &str) -> String {
    let s = s.trim();
    if s.len() >= 2 {
        let bytes = s.as_bytes();
        if (bytes[0] == b'\'' && bytes[s.len() - 1] == b'\'')
            || (bytes[0] == b'"' && bytes[s.len() - 1] == b'"')
        {
            return s[1..s.len() - 1].to_string();
        }
    }
    s.to_string()
}

fn parse_inline(s: &str, line: usize) -> Result<Yaml, YamlError> {
    let s = s.trim();
    if s.starts_with('[') {
        if !s.ends_with(']') {
            return Err(YamlError {
                line,
                message: "unterminated inline list".into(),
            });
        }
        let inner = &s[1..s.len() - 1];
        if inner.trim().is_empty() {
            return Ok(Yaml::List(Vec::new()));
        }
        // Split on commas not inside quotes or nested brackets.
        let mut items = Vec::new();
        let mut depth = 0usize;
        let mut in_single = false;
        let mut in_double = false;
        let mut start = 0usize;
        for (i, c) in inner.char_indices() {
            match c {
                '\'' if !in_double => in_single = !in_single,
                '"' if !in_single => in_double = !in_double,
                '[' if !in_single && !in_double => depth += 1,
                ']' if !in_single && !in_double => depth = depth.saturating_sub(1),
                ',' if depth == 0 && !in_single && !in_double => {
                    items.push(parse_inline(&inner[start..i], line)?);
                    start = i + 1;
                }
                _ => {}
            }
        }
        items.push(parse_inline(&inner[start..], line)?);
        return Ok(Yaml::List(items));
    }
    Ok(Yaml::Scalar(unquote(s)))
}

/// Split a `key: value` line at the first colon outside quotes. Returns
/// `(key, rest)` where rest may be empty.
fn split_key(content: &str, line: usize) -> Result<Option<(String, String)>, YamlError> {
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in content.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            ':' if !in_single && !in_double => {
                // Must be followed by space or end-of-line to be a mapping key.
                let rest = &content[i + 1..];
                if rest.is_empty() || rest.starts_with(' ') {
                    let key = unquote(&content[..i]);
                    if key.is_empty() {
                        return Err(YamlError {
                            line,
                            message: "empty mapping key".into(),
                        });
                    }
                    return Ok(Some((key, rest.trim().to_string())));
                }
            }
            _ => {}
        }
    }
    Ok(None)
}

/// Recursive-descent block parser over `lines[*pos..]` at `min_indent`.
fn parse_block(lines: &[Line], pos: &mut usize, min_indent: usize) -> Result<Yaml, YamlError> {
    if *pos >= lines.len() {
        return Ok(Yaml::Null);
    }
    let indent = lines[*pos].indent;
    if indent < min_indent {
        return Ok(Yaml::Null);
    }
    let is_list = lines[*pos].content.starts_with('-');
    if is_list {
        let mut items = Vec::new();
        while *pos < lines.len() && lines[*pos].indent == indent {
            let line = &lines[*pos];
            if !line.content.starts_with('-') {
                break;
            }
            // Accept both "- item" and the glued "-item" of the paper's listing.
            let after = line.content[1..].trim_start().to_string();
            let number = line.number;
            *pos += 1;
            if after.is_empty() {
                // Nested block under the dash.
                items.push(parse_block(lines, pos, indent + 1)?);
            } else if let Some((key, rest)) = split_key(&after, number)? {
                // "- key: value" — a map item inside the list.
                let mut entries = Vec::new();
                let value = if rest.is_empty() {
                    parse_block(lines, pos, indent + 1)?
                } else {
                    parse_inline(&rest, number)?
                };
                entries.push((key, value));
                // Further keys of the same inline map appear indented deeper.
                while *pos < lines.len() && lines[*pos].indent > indent {
                    let l = &lines[*pos];
                    if let Some((k, r)) = split_key(&l.content, l.number)? {
                        let n = l.number;
                        *pos += 1;
                        let v = if r.is_empty() {
                            parse_block(lines, pos, l.indent + 1)?
                        } else {
                            parse_inline(&r, n)?
                        };
                        entries.push((k, v));
                    } else {
                        break;
                    }
                }
                items.push(Yaml::Map(entries));
            } else {
                items.push(parse_inline(&after, number)?);
            }
        }
        return Ok(Yaml::List(items));
    }
    // Block mapping.
    let mut entries = Vec::new();
    while *pos < lines.len() && lines[*pos].indent == indent {
        let line = &lines[*pos];
        let number = line.number;
        match split_key(&line.content, number)? {
            Some((key, rest)) => {
                *pos += 1;
                let value = if rest.is_empty() {
                    parse_block(lines, pos, indent + 1)?
                } else {
                    parse_inline(&rest, number)?
                };
                entries.push((key, value));
            }
            None => {
                if entries.is_empty() {
                    // A bare scalar document.
                    *pos += 1;
                    return parse_inline(&line.content, number);
                }
                return Err(YamlError {
                    line: number,
                    message: format!("expected 'key: value', got '{}'", line.content),
                });
            }
        }
    }
    Ok(Yaml::Map(entries))
}

/// Parse a YAML document.
pub fn parse_yaml(src: &str) -> Result<Yaml, YamlError> {
    let lines = logical_lines(src)?;
    if lines.is_empty() {
        return Ok(Yaml::Null);
    }
    let mut pos = 0usize;
    let doc = parse_block(&lines, &mut pos, 0)?;
    if pos < lines.len() {
        return Err(YamlError {
            line: lines[pos].number,
            message: "trailing content after document".into(),
        });
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_types() {
        let y = parse_yaml("a: 3\nb: 2.5\nc: hello\nd: true\ne: 'qu oted'").unwrap();
        assert_eq!(y.get("a").unwrap().as_i64(), Some(3));
        assert_eq!(y.get("b").unwrap().as_f64(), Some(2.5));
        assert_eq!(y.get("c").unwrap().as_str(), Some("hello"));
        assert_eq!(y.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(y.get("e").unwrap().as_str(), Some("qu oted"));
    }

    #[test]
    fn nested_maps() {
        let y = parse_yaml("outer:\n  inner:\n    leaf: 7\n  other: x").unwrap();
        let inner = y.get("outer").unwrap().get("inner").unwrap();
        assert_eq!(inner.get("leaf").unwrap().as_i64(), Some(7));
        assert_eq!(
            y.get("outer").unwrap().get("other").unwrap().as_str(),
            Some("x")
        );
    }

    #[test]
    fn block_list_and_glued_dash() {
        let y = parse_yaml("sizes:\n  - 1\n  -2\n  - 3").unwrap();
        let items = y.get("sizes").unwrap().as_list().unwrap();
        let vals: Vec<i64> = items.iter().map(|i| i.as_i64().unwrap()).collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn inline_list() {
        let y = parse_yaml("size: [ '$cfg.loc[0]', '$cfg.loc[1]' ]").unwrap();
        let items = y.get("size").unwrap().as_list().unwrap();
        assert_eq!(items[0].as_str(), Some("$cfg.loc[0]"));
        assert_eq!(items[1].as_str(), Some("$cfg.loc[1]"));
    }

    #[test]
    fn comments_are_stripped() {
        let y = parse_yaml("# leading\na: 1 # trailing\nb: '#notcomment'").unwrap();
        assert_eq!(y.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(y.get("b").unwrap().as_str(), Some("#notcomment"));
    }

    #[test]
    fn inline_map_value_after_colon() {
        let y = parse_yaml("metadata: { step: int, cfg: config_t, rank: int}").unwrap();
        // We keep inline-brace values as raw scalars: good enough for the
        // configs we consume, which only need the keys present check.
        assert!(y.get("metadata").is_some());
    }

    #[test]
    fn paper_listing_1_parses() {
        let src = r#"
metadata: { step: int, cfg: config_t, rank: int}
data:
  temp: # the main temperature field
    type: array
    subtype: double
    size: [ '$cfg.loc[0]', '$cfg.loc[1]' ]
plugins:
  mpi: # get MPI rank and size
  PdiPluginDeisa:
    scheduler_info: scheduler.json
    init_on: init
    time_step: $step
    deisa_arrays: # Deisa Virtual arrays
      G_temp: # Field name
        type: array
        subtype: double
        size:
          -'$cfg.max_time_step'
          -'$cfg.glob[0]'
          -'$cfg.glob[1]'
        subsize: # Chunk size
          -1
          -'$cfg.loc[0]'
          -'$cfg.loc[1]'
        start: # Chunk start
          -$step
          -'$cfg.loc[0] * ($rank % $cfg.proc[0])'
          -'$cfg.loc[1] * ($rank / $cfg.proc[0])'
        timedim: 0 # A tag for the time dimension
    map_in: # Deisa array mapping
      temp: G_temp
"#;
        let y = parse_yaml(src).unwrap();
        let deisa = y.get("plugins").unwrap().get("PdiPluginDeisa").unwrap();
        assert_eq!(
            deisa.get("scheduler_info").unwrap().as_str(),
            Some("scheduler.json")
        );
        assert_eq!(deisa.get("time_step").unwrap().as_str(), Some("$step"));
        let gtemp = deisa.get("deisa_arrays").unwrap().get("G_temp").unwrap();
        assert_eq!(gtemp.get("timedim").unwrap().as_i64(), Some(0));
        let subsize = gtemp.get("subsize").unwrap().as_list().unwrap();
        assert_eq!(subsize.len(), 3);
        assert_eq!(subsize[0].as_i64(), Some(1));
        assert_eq!(subsize[1].as_str(), Some("$cfg.loc[0]"));
        let start = gtemp.get("start").unwrap().as_list().unwrap();
        assert_eq!(
            start[2].as_str(),
            Some("$cfg.loc[1] * ($rank / $cfg.proc[0])")
        );
        assert_eq!(
            y.get("plugins")
                .unwrap()
                .get("PdiPluginDeisa")
                .unwrap()
                .get("map_in")
                .unwrap()
                .get("temp")
                .unwrap()
                .as_str(),
            Some("G_temp")
        );
    }

    #[test]
    fn empty_value_is_null() {
        let y = parse_yaml("plugins:\n  mpi:\n  other: 1").unwrap();
        assert_eq!(y.get("plugins").unwrap().get("mpi"), Some(&Yaml::Null));
    }

    #[test]
    fn tab_is_rejected() {
        let err = parse_yaml("a:\n\tb: 1").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn empty_doc_is_null() {
        assert_eq!(parse_yaml("").unwrap(), Yaml::Null);
        assert_eq!(parse_yaml("\n  \n# only a comment\n").unwrap(), Yaml::Null);
    }

    #[test]
    fn list_of_maps() {
        let y = parse_yaml("jobs:\n  - name: a\n    cores: 2\n  - name: b\n    cores: 4").unwrap();
        let jobs = y.get("jobs").unwrap().as_list().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(jobs[1].get("cores").unwrap().as_i64(), Some(4));
    }
}
