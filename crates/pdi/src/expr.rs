//! `$`-expression evaluator for plugin configurations.
//!
//! PDI configs reference exposed values with `$name` and support integer
//! arithmetic, e.g. `'$cfg.loc[0] * ($rank % $cfg.proc[0])'`. Grammar:
//!
//! ```text
//! expr   := term (('+' | '-') term)*
//! term   := factor (('*' | '/' | '%') factor)*
//! factor := INT | ref | '(' expr ')'
//! ref    := '$' ident ('.' ident)* ('[' expr ']')?
//! ```
//!
//! References resolve against a [`Store`]: `$cfg.loc[0]` looks up the value
//! named `cfg.loc` and indexes it. Division is integer division (the paper's
//! configs use `/` for rank-grid arithmetic).

use crate::store::{Store, Value};

/// Expression evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprError {
    /// What went wrong, with the offending expression fragment.
    pub message: String,
}

impl std::fmt::Display for ExprError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expression error: {}", self.message)
    }
}

impl std::error::Error for ExprError {}

fn err<T>(message: impl Into<String>) -> Result<T, ExprError> {
    Err(ExprError {
        message: message.into(),
    })
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    store: &'a Store,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn expr(&mut self) -> Result<i64, ExprError> {
        let mut acc = self.term()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    acc += self.term()?;
                }
                Some(b'-') => {
                    self.pos += 1;
                    acc -= self.term()?;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn term(&mut self) -> Result<i64, ExprError> {
        let mut acc = self.factor()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    acc *= self.factor()?;
                }
                Some(b'/') => {
                    self.pos += 1;
                    let d = self.factor()?;
                    if d == 0 {
                        return err("division by zero");
                    }
                    acc /= d;
                }
                Some(b'%') => {
                    self.pos += 1;
                    let d = self.factor()?;
                    if d == 0 {
                        return err("modulo by zero");
                    }
                    acc %= d;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn factor(&mut self) -> Result<i64, ExprError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let v = self.expr()?;
                if self.bump() != Some(b')') {
                    return err("expected ')'");
                }
                Ok(v)
            }
            Some(b'$') => {
                self.pos += 1;
                self.reference()
            }
            Some(b'-') => {
                self.pos += 1;
                Ok(-self.factor()?)
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.src[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map_or_else(|| err("bad integer literal"), Ok)
            }
            Some(c) => err(format!("unexpected character '{}'", c as char)),
            None => err("unexpected end of expression"),
        }
    }

    fn reference(&mut self) -> Result<i64, ExprError> {
        // ident ('.' ident)*
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric()
                || self.src[self.pos] == b'_'
                || self.src[self.pos] == b'.')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return err("empty reference after '$'");
        }
        let name = std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| ExprError {
            message: "non-utf8 reference".into(),
        })?;
        let value = self.store.get(name).ok_or_else(|| ExprError {
            message: format!("unknown reference '${name}'"),
        })?;
        // Optional index.
        if self.peek() == Some(b'[') {
            self.pos += 1;
            let idx = self.expr()?;
            if self.bump() != Some(b']') {
                return err("expected ']'");
            }
            let idx = usize::try_from(idx).map_err(|_| ExprError {
                message: format!("negative index {idx} into '${name}'"),
            })?;
            return match value {
                Value::IntList(items) => items.get(idx).copied().map_or_else(
                    || err(format!("index {idx} out of bounds for '${name}'")),
                    Ok,
                ),
                _ => err(format!("'${name}' is not indexable")),
            };
        }
        match value {
            Value::Int(v) => Ok(*v),
            Value::IntList(_) => err(format!("'${name}' is a list; index it")),
            Value::Float(_) => err(format!(
                "'${name}' is a float; expressions are integer-only"
            )),
            Value::Str(_) => err(format!("'${name}' is a string, not an integer")),
            Value::Array(_) => err(format!("'${name}' is an array, not an integer")),
        }
    }
}

/// Evaluate an integer `$`-expression against a store. A plain integer
/// string (no `$`) evaluates to itself.
pub fn eval_expr(src: &str, store: &Store) -> Result<i64, ExprError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
        store,
    };
    let v = p.expr()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return err(format!("trailing characters in '{src}'"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, Value};

    fn store() -> Store {
        let mut s = Store::new();
        s.set("step", Value::Int(4));
        s.set("rank", Value::Int(5));
        s.set("cfg.loc", Value::IntList(vec![100, 200]));
        s.set("cfg.proc", Value::IntList(vec![2, 3]));
        s.set("cfg.max_time_step", Value::Int(10));
        s.set("name", Value::Str("x".into()));
        s
    }

    #[test]
    fn literals_and_arithmetic() {
        let s = Store::new();
        assert_eq!(eval_expr("42", &s).unwrap(), 42);
        assert_eq!(eval_expr("2+3*4", &s).unwrap(), 14);
        assert_eq!(eval_expr("(2+3)*4", &s).unwrap(), 20);
        assert_eq!(eval_expr("7/2", &s).unwrap(), 3);
        assert_eq!(eval_expr("7%4", &s).unwrap(), 3);
        assert_eq!(eval_expr("-3 + 5", &s).unwrap(), 2);
        assert_eq!(eval_expr(" 1 + 2 ", &s).unwrap(), 3);
    }

    #[test]
    fn references_and_indexing() {
        let s = store();
        assert_eq!(eval_expr("$step", &s).unwrap(), 4);
        assert_eq!(eval_expr("$cfg.loc[0]", &s).unwrap(), 100);
        assert_eq!(eval_expr("$cfg.loc[1]", &s).unwrap(), 200);
        assert_eq!(eval_expr("$cfg.loc[$step - 3]", &s).unwrap(), 200);
    }

    #[test]
    fn paper_listing_expressions() {
        let s = store();
        // '$cfg.loc[0] * ($rank % $cfg.proc[0])' with rank=5, proc=[2,3]:
        // 100 * (5 % 2) = 100.
        assert_eq!(
            eval_expr("$cfg.loc[0] * ($rank % $cfg.proc[0])", &s).unwrap(),
            100
        );
        // '$cfg.loc[1] * ($rank / $cfg.proc[0])' = 200 * (5/2) = 400.
        assert_eq!(
            eval_expr("$cfg.loc[1] * ($rank / $cfg.proc[0])", &s).unwrap(),
            400
        );
    }

    #[test]
    fn error_cases() {
        let s = store();
        assert!(eval_expr("$missing", &s).is_err());
        assert!(eval_expr("$cfg.loc", &s).is_err());
        assert!(eval_expr("$cfg.loc[9]", &s).is_err());
        assert!(eval_expr("$step[0]", &s).is_err());
        assert!(eval_expr("$name", &s).is_err());
        assert!(eval_expr("1/0", &s).is_err());
        assert!(eval_expr("1%0", &s).is_err());
        assert!(eval_expr("2 +", &s).is_err());
        assert!(eval_expr("(1", &s).is_err());
        assert!(eval_expr("1 garbage", &s).is_err());
        assert!(eval_expr("$cfg.loc[-1]", &s).is_err());
    }
}
