//! The PDI instance: plugins subscribe to shared data and named events.
//!
//! A simulation rank owns one [`Pdi`]. It calls [`Pdi::share`] for each
//! buffer/metadata it wants visible, [`Pdi::event`] at synchronization points
//! (e.g. `init`, end of iteration), and [`Pdi::reclaim`] when it takes a
//! buffer back. Plugins get callbacks with read access to the whole store,
//! which is how the deisa plugin resolves `$`-expressions at share time.

use crate::store::{Store, Value};
use crate::yaml::Yaml;

/// Error raised by the data interface or a plugin.
#[derive(Debug)]
pub struct PdiError {
    /// Which plugin (or the core) raised the error.
    pub plugin: String,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for PdiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pdi [{}]: {}", self.plugin, self.message)
    }
}

impl std::error::Error for PdiError {}

/// A PDI plugin. Implementations receive callbacks when data is shared and
/// when events fire; `finalize` runs when the instance is dropped cleanly.
pub trait Plugin: Send {
    /// Plugin name for error reporting.
    fn name(&self) -> &str;

    /// Called after `name` was written into the store.
    fn data_available(&mut self, _name: &str, _store: &Store) -> Result<(), PdiError> {
        Ok(())
    }

    /// Called on a named event.
    fn event(&mut self, _event: &str, _store: &Store) -> Result<(), PdiError> {
        Ok(())
    }

    /// Called once at the end of the run.
    fn finalize(&mut self, _store: &Store) -> Result<(), PdiError> {
        Ok(())
    }
}

/// A per-rank PDI instance: the store plus the configured plugin chain.
pub struct Pdi {
    store: Store,
    plugins: Vec<Box<dyn Plugin>>,
    config: Yaml,
    finalized: bool,
}

impl Pdi {
    /// Create an instance from a parsed configuration document. Plugins are
    /// constructed by the caller (plugin crates know their own config
    /// sections) and registered with [`Pdi::register`].
    pub fn new(config: Yaml) -> Self {
        Pdi {
            store: Store::new(),
            plugins: Vec::new(),
            config,
            finalized: false,
        }
    }

    /// The raw configuration document.
    pub fn config(&self) -> &Yaml {
        &self.config
    }

    /// Register a plugin; callbacks fire in registration order.
    pub fn register(&mut self, plugin: Box<dyn Plugin>) {
        self.plugins.push(plugin);
    }

    /// Read access to the store (tests, diagnostics).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Share a value under `name` and notify plugins.
    pub fn share(&mut self, name: &str, value: impl Into<Value>) -> Result<(), PdiError> {
        self.store.set(name, value.into());
        for p in &mut self.plugins {
            p.data_available(name, &self.store)?;
        }
        Ok(())
    }

    /// Alias matching PDI's `expose` (share + implicit reclaim-by-replace).
    pub fn expose(&mut self, name: &str, value: impl Into<Value>) -> Result<(), PdiError> {
        self.share(name, value)
    }

    /// Raise a named event.
    pub fn event(&mut self, event: &str) -> Result<(), PdiError> {
        for p in &mut self.plugins {
            p.event(event, &self.store)?;
        }
        Ok(())
    }

    /// Take a value back from the store.
    pub fn reclaim(&mut self, name: &str) -> Option<Value> {
        self.store.remove(name)
    }

    /// Finalize all plugins explicitly (also called on drop).
    pub fn finalize(&mut self) -> Result<(), PdiError> {
        if self.finalized {
            return Ok(());
        }
        self.finalized = true;
        for p in &mut self.plugins {
            p.finalize(&self.store)?;
        }
        Ok(())
    }
}

impl Drop for Pdi {
    fn drop(&mut self) {
        let _ = self.finalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yaml::parse_yaml;
    use std::sync::{Arc, Mutex};

    /// Test plugin recording every callback.
    struct Recorder {
        log: Arc<Mutex<Vec<String>>>,
        fail_on: Option<String>,
    }

    impl Plugin for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn data_available(&mut self, name: &str, store: &Store) -> Result<(), PdiError> {
            assert!(store.contains(name));
            self.log.lock().unwrap().push(format!("data:{name}"));
            Ok(())
        }
        fn event(&mut self, event: &str, _store: &Store) -> Result<(), PdiError> {
            if self.fail_on.as_deref() == Some(event) {
                return Err(PdiError {
                    plugin: "recorder".into(),
                    message: format!("told to fail on {event}"),
                });
            }
            self.log.lock().unwrap().push(format!("event:{event}"));
            Ok(())
        }
        fn finalize(&mut self, _store: &Store) -> Result<(), PdiError> {
            self.log.lock().unwrap().push("finalize".into());
            Ok(())
        }
    }

    #[test]
    fn callbacks_fire_in_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut pdi = Pdi::new(parse_yaml("plugins:").unwrap());
        pdi.register(Box::new(Recorder {
            log: Arc::clone(&log),
            fail_on: None,
        }));
        pdi.share("step", 1i64).unwrap();
        pdi.share("temp", linalg::NDArray::zeros(&[2, 2])).unwrap();
        pdi.event("init").unwrap();
        pdi.finalize().unwrap();
        assert_eq!(
            *log.lock().unwrap(),
            vec!["data:step", "data:temp", "event:init", "finalize"]
        );
    }

    #[test]
    fn plugin_error_propagates() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut pdi = Pdi::new(Yaml::Null);
        pdi.register(Box::new(Recorder {
            log,
            fail_on: Some("boom".into()),
        }));
        assert!(pdi.event("ok").is_ok());
        let err = pdi.event("boom").unwrap_err();
        assert_eq!(err.plugin, "recorder");
    }

    #[test]
    fn drop_finalizes_once() {
        let log = Arc::new(Mutex::new(Vec::new()));
        {
            let mut pdi = Pdi::new(Yaml::Null);
            pdi.register(Box::new(Recorder {
                log: Arc::clone(&log),
                fail_on: None,
            }));
            pdi.finalize().unwrap();
        } // drop runs here; finalize must not fire twice
        assert_eq!(*log.lock().unwrap(), vec!["finalize"]);
    }

    #[test]
    fn reclaim_removes_from_store() {
        let mut pdi = Pdi::new(Yaml::Null);
        pdi.share("x", 5i64).unwrap();
        assert!(pdi.reclaim("x").is_some());
        assert!(!pdi.store().contains("x"));
        assert!(pdi.reclaim("x").is_none());
    }
}
