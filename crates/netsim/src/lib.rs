//! `netsim` — a deterministic discrete-event simulator with an HPC network
//! model.
//!
//! The paper's evaluation ran on Irene: up to 128 MPI processes × 1 GiB
//! blocks over EDR InfiniBand in a *pruned fat-tree*, against a Lustre PFS,
//! with a single centralized Dask scheduler. We cannot run that on this
//! machine, so the figure harnesses replay the DEISA protocols on a DES:
//!
//! * [`engine::Engine`] — a virtual-clock event queue (u64 nanoseconds,
//!   deterministic tie-breaking, no wall-clock reads),
//! * [`resources::FifoServer`] — single-server FIFO queueing stations
//!   (scheduler CPU, worker executors, NICs, PFS),
//! * [`network::Network`] — a two-level pruned fat-tree: per-node NICs,
//!   per-leaf-switch uplinks with a pruning factor, hop-based latency.
//!
//! The *workloads* (DEISA1/2/3 and post hoc) live in the `insitu-sim` crate;
//! their message schedules are the ones the real `dtask` runtime emits (the
//! integration tests assert the counts match).

pub mod engine;
pub mod network;
pub mod resources;
pub mod sizing;

pub use engine::{Engine, SimTime};
pub use network::{Network, NetworkConfig};
pub use resources::FifoServer;

/// Nanoseconds per second, for readable cost constants.
pub const SEC: SimTime = 1_000_000_000;
/// Nanoseconds per millisecond.
pub const MS: SimTime = 1_000_000;
/// Nanoseconds per microsecond.
pub const US: SimTime = 1_000;

/// Duration (ns) of moving `bytes` at `bytes_per_sec`.
pub fn transfer_ns(bytes: u64, bytes_per_sec: u64) -> SimTime {
    if bytes_per_sec == 0 {
        return 0;
    }
    // bytes * 1e9 / bw, in u128 to avoid overflow on GiB × 1e9.
    ((bytes as u128 * SEC as u128) / bytes_per_sec as u128) as SimTime
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_math() {
        assert_eq!(transfer_ns(1_000_000_000, 1_000_000_000), SEC);
        assert_eq!(transfer_ns(500, 1000), SEC / 2);
        assert_eq!(transfer_ns(0, 1000), 0);
        assert_eq!(transfer_ns(1000, 0), 0);
        // 1 GiB at 12.5 GB/s (100 Gb/s EDR) ≈ 85.9 ms.
        let t = transfer_ns(1 << 30, 12_500_000_000);
        assert!((t as i64 - 85_899_345).abs() < 10);
    }
}
