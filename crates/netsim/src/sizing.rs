//! Shared byte-size estimation, used by both sides of the repo.
//!
//! The real runtime (`dtask`) and the DES models (`insitu-sim`) both need to
//! turn "a block of `n` f64s" or "one control message" into a byte count —
//! for `nbytes` plumbing in `UpdateData`/`TaskFinished` on one side and
//! [`crate::transfer_ns`] costing on the other. Before this module each call
//! site did its own arithmetic; now the constants live in exactly one place,
//! so the runtime's accounting and the simulator's costing cannot drift.

/// Size of one `f64` element on the wire and in worker stores.
pub const F64_BYTES: u64 = 8;

/// Payload bytes of a dense block of `elems` f64 values (shape metadata is
/// charged to the control-message budget, not the payload).
pub fn f64_block_bytes(elems: usize) -> u64 {
    elems as u64 * F64_BYTES
}

/// Container envelope charged per variable-length value (strings, lists,
/// byte blobs, proxy handles): one length prefix plus one tag byte, rounded
/// to the codec's 8-byte alignment. Runtime `Datum::nbytes` accounting and
/// the DES cost models both charge this same constant, so store budgets and
/// simulated transfer costs cannot drift apart.
pub const CONTAINER_OVERHEAD_BYTES: u64 = 8;

/// Payload bytes of a UTF-8 string of `len` bytes including its container
/// envelope (length prefix + tag).
pub fn str_nbytes(len: usize) -> u64 {
    CONTAINER_OVERHEAD_BYTES + len as u64
}

/// Payload bytes of a heterogeneous list whose children sum to
/// `children_bytes`: the children plus one container envelope for the list
/// itself (each child already carries its own envelope where applicable).
pub fn list_nbytes(children_bytes: u64) -> u64 {
    CONTAINER_OVERHEAD_BYTES + children_bytes
}

/// Bytes of one proxy **handle** (a `DatumRef`) on the control path: the
/// referenced key, the shape dims, and the fixed metadata fields
/// (nbytes + holder + location epoch, 8 bytes each) under one container
/// envelope. This is what a proxied block "weighs" on the scheduler lane —
/// independent of the payload size, which stays on the data plane.
pub fn ref_handle_bytes(key_len: usize, ndim: usize) -> u64 {
    CONTAINER_OVERHEAD_BYTES + key_len as u64 + F64_BYTES * ndim as u64 + 3 * F64_BYTES
}

/// Nominal size of one scheduler control message (task-finished reports,
/// metadata updates, heartbeats) as charged by the DES cost models.
///
/// Calibrated against `dtask`'s Framed wire format: a typical
/// `UpdateData`/`TaskFinished`/heartbeat control message encodes to a few
/// hundred bytes up to ~2 KiB once keys, replica lists, and the envelope
/// header are included; the DES charges the upper envelope so simulated
/// scheduler load is not optimistic. `dtask`'s tests assert real framed
/// control messages stay under this bound.
pub const CTRL_MSG_BYTES: u64 = 2_048;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_sizes() {
        assert_eq!(f64_block_bytes(0), 0);
        assert_eq!(f64_block_bytes(16), 128);
        // 1 GiB block = 2^27 elements.
        assert_eq!(f64_block_bytes(1 << 27), 1 << 30);
    }
}
