//! Pruned fat-tree network model.
//!
//! Two levels, like the Irene Skylake partition's EDR InfiniBand fabric the
//! paper describes: nodes hang off leaf switches; leaf switches connect
//! through a core. "Pruned" means the leaf uplink offers less bandwidth than
//! the sum of its nodes' NICs (a pruning factor > 1). Latency grows with hop
//! count (same node < same switch < cross switch), which is exactly the
//! placement-dependent variability §3.3.2 discusses.

use crate::engine::SimTime;
use crate::resources::FifoServer;
use crate::transfer_ns;

/// Network parameters.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Nodes per leaf switch.
    pub nodes_per_switch: usize,
    /// NIC bandwidth, bytes/s (EDR ≈ 12.5 GB/s).
    pub nic_bw: u64,
    /// Pruning factor: uplink bandwidth = `nodes_per_switch * nic_bw /
    /// prune_factor`.
    pub prune_factor: u64,
    /// Per-hop latency in ns.
    pub hop_latency: SimTime,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            nodes: 16,
            nodes_per_switch: 8,
            nic_bw: 12_500_000_000, // 100 Gb/s EDR
            prune_factor: 2,
            hop_latency: 1_000, // 1 µs per hop
        }
    }
}

/// The network state: per-node NIC queues (tx and rx) and per-switch uplink
/// queues.
pub struct Network {
    config: NetworkConfig,
    tx: Vec<FifoServer>,
    rx: Vec<FifoServer>,
    uplinks: Vec<FifoServer>,
    /// Total bytes moved (for bandwidth reporting).
    bytes_moved: u64,
}

impl Network {
    /// Build from a config.
    pub fn new(config: NetworkConfig) -> Self {
        assert!(config.nodes_per_switch > 0, "nodes_per_switch must be > 0");
        let n_switches = config.nodes.div_ceil(config.nodes_per_switch);
        Network {
            tx: vec![FifoServer::new(); config.nodes],
            rx: vec![FifoServer::new(); config.nodes],
            uplinks: vec![FifoServer::new(); n_switches],
            config,
            bytes_moved: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Switch of a node.
    pub fn switch_of(&self, node: usize) -> usize {
        node / self.config.nodes_per_switch
    }

    /// Number of leaf switches.
    pub fn n_switches(&self) -> usize {
        self.uplinks.len()
    }

    /// Hop count between two nodes: 0 (same node), 2 (same switch),
    /// 4 (through the core).
    pub fn hops(&self, src: usize, dst: usize) -> u32 {
        if src == dst {
            0
        } else if self.switch_of(src) == self.switch_of(dst) {
            2
        } else {
            4
        }
    }

    /// Total bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Simulate sending `bytes` from `src` to `dst` starting at `now`;
    /// returns the arrival (fully-received) time. Occupies the sender NIC,
    /// the shared uplinks when crossing switches, and the receiver NIC, in
    /// sequence — each a FIFO station, so concurrent flows contend.
    pub fn send(&mut self, now: SimTime, src: usize, dst: usize, bytes: u64) -> SimTime {
        self.bytes_moved += bytes;
        if src == dst {
            // Loopback: memcpy-speed, modeled as NIC-speed without queueing.
            return now + transfer_ns(bytes, self.config.nic_bw * 4);
        }
        let nic_time = transfer_ns(bytes, self.config.nic_bw);
        let (_, tx_done) = self.tx[src].enqueue(now, nic_time);
        let mut t = tx_done + self.config.hop_latency; // into leaf switch
        let s_src = self.switch_of(src);
        let s_dst = self.switch_of(dst);
        if s_src != s_dst {
            let uplink_bw = self.config.nodes_per_switch as u64 * self.config.nic_bw
                / self.config.prune_factor.max(1);
            let up_time = transfer_ns(bytes, uplink_bw);
            // Source uplink (to core) then destination uplink (from core).
            let (_, up_done) = self.uplinks[s_src].enqueue(t, up_time);
            t = up_done + self.config.hop_latency;
            let (_, down_done) = self.uplinks[s_dst].enqueue(t, up_time);
            t = down_done + self.config.hop_latency;
        }
        let (_, rx_done) = self.rx[dst].enqueue(t, nic_time);
        rx_done + self.config.hop_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(NetworkConfig {
            nodes: 8,
            nodes_per_switch: 4,
            nic_bw: 1_000_000_000, // 1 GB/s for round numbers
            prune_factor: 2,
            hop_latency: 1_000,
        })
    }

    #[test]
    fn topology_mapping() {
        let n = net();
        assert_eq!(n.n_switches(), 2);
        assert_eq!(n.switch_of(3), 0);
        assert_eq!(n.switch_of(4), 1);
        assert_eq!(n.hops(1, 1), 0);
        assert_eq!(n.hops(0, 3), 2);
        assert_eq!(n.hops(0, 5), 4);
    }

    #[test]
    fn same_switch_faster_than_cross_switch() {
        let mut n = net();
        let t_same = n.send(0, 0, 1, 1_000_000);
        let mut n2 = net();
        let t_cross = n2.send(0, 0, 5, 1_000_000);
        assert!(t_cross > t_same, "{t_cross} !> {t_same}");
    }

    #[test]
    fn nic_contention_serializes() {
        let mut n = net();
        // Two 1 MB messages from the same source at the same instant.
        let t1 = n.send(0, 0, 1, 1_000_000);
        let t2 = n.send(0, 0, 2, 1_000_000);
        // 1 MB at 1 GB/s = 1 ms of NIC time; the second must wait ~1 ms more.
        assert!(t2 >= t1 + 900_000, "t1={t1} t2={t2}");
    }

    #[test]
    fn uplink_pruning_contends_cross_switch_flows() {
        // Many simultaneous cross-switch flows from distinct sources share
        // the pruned uplink; the last one lands much later than a lone flow.
        let mut lone = net();
        let t_lone = lone.send(0, 0, 4, 4_000_000);
        let mut busy = net();
        let mut last = 0;
        for src in 0..4 {
            last = last.max(busy.send(0, src, 4 + src, 4_000_000));
        }
        assert!(
            last > t_lone,
            "uplink contention should delay: {last} vs {t_lone}"
        );
        assert_eq!(busy.bytes_moved(), 16_000_000);
    }

    #[test]
    fn loopback_is_fast_and_uncontended() {
        let mut n = net();
        let t1 = n.send(0, 3, 3, 1_000_000);
        let t2 = n.send(0, 3, 3, 1_000_000);
        assert_eq!(t1, t2); // no queueing on loopback
        assert!(t1 < 1_000_000); // faster than NIC serialization
    }
}
