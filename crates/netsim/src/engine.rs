//! The event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds.
pub type SimTime = u64;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Deterministic discrete-event engine. Events of equal timestamp fire in
/// scheduling order (FIFO tie-break via a sequence number), so runs are
/// reproducible bit-for-bit.
pub struct Engine<E> {
    queue: BinaryHeap<Reverse<Scheduled<E>>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<E> Engine<E> {
    /// Empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule an event `delay` ns from now.
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedule an event at an absolute time (clamped to `now` if in the
    /// past — events cannot rewrite history).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.queue.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Pop the next event, advancing the clock.
    pub fn next_event(&mut self) -> Option<E> {
        let Reverse(s) = self.queue.pop()?;
        self.now = s.at;
        self.processed += 1;
        Some(s.event)
    }

    /// Run to completion: `handler(engine, event)` for every event, which may
    /// schedule more. `model` carries the mutable workload state.
    pub fn run<M>(&mut self, model: &mut M, mut handler: impl FnMut(&mut Engine<E>, &mut M, E)) {
        while let Some(ev) = self.next_event() {
            handler(self, model, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(50, 2);
        e.schedule(10, 1);
        e.schedule(99, 3);
        let mut seen = Vec::new();
        e.run(&mut (), |eng, _, ev| seen.push((eng.now(), ev)));
        assert_eq!(seen, vec![(10, 1), (50, 2), (99, 3)]);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut e: Engine<u32> = Engine::new();
        for i in 0..5 {
            e.schedule(7, i);
        }
        let mut seen = Vec::new();
        e.run(&mut (), |_, _, ev| seen.push(ev));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handler_can_schedule_more() {
        let mut e: Engine<u64> = Engine::new();
        e.schedule(1, 0);
        let mut count = 0u64;
        e.run(&mut count, |eng, count, ev| {
            *count += 1;
            if ev < 4 {
                eng.schedule(10, ev + 1);
            }
        });
        assert_eq!(count, 5);
        assert_eq!(e.now(), 41);
        assert_eq!(e.processed(), 5);
    }

    #[test]
    fn past_scheduling_is_clamped() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule(100, 0);
        let mut times = Vec::new();
        e.run(&mut (), |eng, _, ev| {
            times.push(eng.now());
            if ev == 0 {
                eng.schedule_at(5, 1); // in the past: clamped to now=100
            }
        });
        assert_eq!(times, vec![100, 100]);
    }
}
