//! Queueing stations.

use crate::engine::SimTime;

/// A single-server FIFO queueing station: requests occupy the server
/// back-to-back. Models a NIC serializing messages, the centralized
/// scheduler's message loop, a worker executor, or the PFS's aggregate
/// bandwidth pipe.
#[derive(Debug, Clone, Default)]
pub struct FifoServer {
    free_at: SimTime,
    busy_total: SimTime,
    served: u64,
}

impl FifoServer {
    /// Idle server.
    pub fn new() -> Self {
        FifoServer::default()
    }

    /// Enqueue a request arriving at `now` needing `service` ns. Returns
    /// `(start, finish)` — the request waits until the server frees up.
    pub fn enqueue(&mut self, now: SimTime, service: SimTime) -> (SimTime, SimTime) {
        let start = self.free_at.max(now);
        let finish = start + service;
        self.free_at = finish;
        self.busy_total += service;
        self.served += 1;
        (start, finish)
    }

    /// When the server next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total service time delivered.
    pub fn busy_total(&self) -> SimTime {
        self.busy_total
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization over an observation window ending at `horizon`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.busy_total as f64 / horizon as f64
    }
}

/// A bank of identical FIFO servers with per-index access (e.g. one NIC per
/// node, one executor per worker).
#[derive(Debug, Clone)]
pub struct ServerBank {
    servers: Vec<FifoServer>,
}

impl ServerBank {
    /// `n` idle servers.
    pub fn new(n: usize) -> Self {
        ServerBank {
            servers: vec![FifoServer::new(); n],
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Access one server.
    pub fn get_mut(&mut self, i: usize) -> &mut FifoServer {
        &mut self.servers[i]
    }

    /// Read one server.
    pub fn get(&self, i: usize) -> &FifoServer {
        &self.servers[i]
    }

    /// Index of the server that frees up earliest (least-loaded placement).
    pub fn earliest_free(&self) -> usize {
        self.servers
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.free_at())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FifoServer::new();
        let (start, finish) = s.enqueue(100, 50);
        assert_eq!((start, finish), (100, 150));
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut s = FifoServer::new();
        s.enqueue(0, 100);
        let (start, finish) = s.enqueue(10, 100);
        assert_eq!((start, finish), (100, 200));
        // Arriving after the server freed: no wait.
        let (start, _) = s.enqueue(500, 10);
        assert_eq!(start, 500);
        assert_eq!(s.served(), 3);
        assert_eq!(s.busy_total(), 210);
    }

    #[test]
    fn utilization_math() {
        let mut s = FifoServer::new();
        s.enqueue(0, 250);
        assert!((s.utilization(1000) - 0.25).abs() < 1e-12);
        assert_eq!(s.utilization(0), 0.0);
    }

    #[test]
    fn bank_least_loaded() {
        let mut b = ServerBank::new(3);
        b.get_mut(0).enqueue(0, 100);
        b.get_mut(1).enqueue(0, 50);
        assert_eq!(b.earliest_free(), 2);
        b.get_mut(2).enqueue(0, 500);
        assert_eq!(b.earliest_free(), 1);
        assert_eq!(b.len(), 3);
    }
}
