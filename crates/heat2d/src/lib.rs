//! `heat2d` — the Heat2D miniapp used in the paper's evaluation.
//!
//! An explicit 5-point-stencil solver for the 2-D heat equation, domain-
//! decomposed over `mpisim` ranks with ghost exchange, instrumented through
//! PDI: each iteration the rank exposes its timestep and local field; what
//! happens next is decided by the configured plugin —
//!
//! * the **deisa plugin** (`deisa-core`) ships blocks in transit, or
//! * the [`posthoc::PostHocPlugin`] writes `h5lite` chunks (the paper's
//!   HDF5-to-Lustre baseline), or
//! * nothing (pure simulation, for the weak/strong-scaling `Simulation`
//!   series of Figs. 2–4).
//!
//! Boundary condition: insulated (zero-flux Neumann), so total heat is
//! conserved — handy for validation.

pub mod config;
pub mod posthoc;
pub mod solver;

pub use config::HeatConfig;
pub use posthoc::PostHocPlugin;
pub use solver::{run_rank, LocalSolver};
