//! Miniapp configuration.

/// Heat2D run parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatConfig {
    /// Global grid height (rows).
    pub global: (usize, usize),
    /// Process grid `(p0, p1)`; `p0 * p1` must equal the world size.
    pub procs: (usize, usize),
    /// Number of timesteps.
    pub steps: usize,
    /// Diffusivity.
    pub alpha: f64,
    /// Time step; stability needs `alpha * dt / dx² ≤ 1/4` (dx = 1 here).
    pub dt: f64,
}

impl HeatConfig {
    /// Validated constructor.
    pub fn new(
        global: (usize, usize),
        procs: (usize, usize),
        steps: usize,
    ) -> Result<Self, String> {
        let cfg = HeatConfig {
            global,
            procs,
            steps,
            alpha: 1.0,
            dt: 0.2,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Check divisibility and stability.
    pub fn validate(&self) -> Result<(), String> {
        let (gx, gy) = self.global;
        let (p0, p1) = self.procs;
        if p0 == 0 || p1 == 0 || gx == 0 || gy == 0 || self.steps == 0 {
            return Err("zero extent in config".into());
        }
        if gx % p0 != 0 || gy % p1 != 0 {
            return Err(format!(
                "global {}x{} not divisible by proc grid {}x{}",
                gx, gy, p0, p1
            ));
        }
        if self.alpha * self.dt > 0.25 {
            return Err(format!(
                "unstable: alpha*dt = {} > 0.25",
                self.alpha * self.dt
            ));
        }
        Ok(())
    }

    /// Local block size per rank.
    pub fn local(&self) -> (usize, usize) {
        (self.global.0 / self.procs.0, self.global.1 / self.procs.1)
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.procs.0 * self.procs.1
    }

    /// Rank's coordinates in the (row-major) process grid.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.procs.1, rank % self.procs.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(HeatConfig::new((8, 8), (2, 2), 3).is_ok());
        assert!(HeatConfig::new((8, 9), (2, 2), 3).is_err());
        assert!(HeatConfig::new((8, 8), (0, 2), 3).is_err());
        assert!(HeatConfig::new((8, 8), (2, 2), 0).is_err());
        let mut c = HeatConfig::new((8, 8), (2, 2), 1).unwrap();
        c.dt = 0.3;
        assert!(c.validate().is_err());
    }

    #[test]
    fn geometry() {
        let c = HeatConfig::new((12, 8), (3, 2), 1).unwrap();
        assert_eq!(c.local(), (4, 4));
        assert_eq!(c.n_ranks(), 6);
        assert_eq!(c.coords(0), (0, 0));
        assert_eq!(c.coords(1), (0, 1));
        assert_eq!(c.coords(5), (2, 1));
    }
}
