//! Post-hoc PDI plugin: write each exposed field block to `h5lite`.
//!
//! This reproduces the paper's baseline pipeline: the simulation writes every
//! timestep to a chunked container on the (parallel) filesystem; plain Dask
//! later reads it back for analysis. One shared writer per run, one chunk
//! per rank per step — chunked exactly like the simulation decomposition, so
//! the analytics "used the same chunking" (§3.3.1).

use crate::config::HeatConfig;
use h5lite::SharedWriter;
use pdi::{PdiError, Plugin, Store};

fn perr(message: impl Into<String>) -> PdiError {
    PdiError {
        plugin: "PostHoc".into(),
        message: message.into(),
    }
}

/// PDI plugin writing `temp` exposures into a shared h5lite container.
pub struct PostHocPlugin {
    writer: SharedWriter,
    cfg: HeatConfig,
    rank: usize,
    dataset: String,
    local_name: String,
    /// Chunks written by this rank.
    pub chunks_written: u64,
}

impl PostHocPlugin {
    /// Build a writer plugin for one rank. `dataset` is the container
    /// dataset name; `local_name` the exposed buffer to capture.
    pub fn new(
        writer: SharedWriter,
        cfg: HeatConfig,
        rank: usize,
        dataset: &str,
        local_name: &str,
    ) -> PostHocPlugin {
        PostHocPlugin {
            writer,
            cfg,
            rank,
            dataset: dataset.to_string(),
            local_name: local_name.to_string(),
            chunks_written: 0,
        }
    }
}

impl Plugin for PostHocPlugin {
    fn name(&self) -> &str {
        "PostHoc"
    }

    fn event(&mut self, event: &str, _store: &Store) -> Result<(), PdiError> {
        if event == "init" {
            let (l0, l1) = self.cfg.local();
            let shape = [self.cfg.steps, self.cfg.global.0, self.cfg.global.1];
            let chunks = [1usize, l0, l1];
            self.writer
                .ensure_dataset(&self.dataset, &shape, &chunks)
                .map_err(|e| perr(e.to_string()))?;
        }
        Ok(())
    }

    fn data_available(&mut self, name: &str, store: &Store) -> Result<(), PdiError> {
        if name != self.local_name {
            return Ok(());
        }
        let step = store
            .get("step")
            .and_then(|v| v.as_int())
            .ok_or_else(|| perr("'step' must be exposed"))? as usize;
        let value = store
            .get(name)
            .and_then(|v| v.as_array())
            .ok_or_else(|| perr(format!("'{name}' is not an array")))?;
        let (l0, l1) = self.cfg.local();
        if value.shape() != [l0, l1] {
            return Err(perr(format!(
                "'{name}' shape {:?} != local {:?}",
                value.shape(),
                (l0, l1)
            )));
        }
        let (ci, cj) = self.cfg.coords(self.rank);
        let block = (**value)
            .clone()
            .reshape(&[1, l0, l1])
            .map_err(|e| perr(e.to_string()))?;
        self.writer
            .write_chunk(&self.dataset, &[step, ci, cj], &block)
            .map_err(|e| perr(e.to_string()))?;
        self.chunks_written += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::run_rank;
    use h5lite::{H5Reader, H5Writer};
    use mpisim::World;
    use pdi::{Pdi, Yaml};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("heat2d-ph-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn posthoc_run_writes_all_chunks_and_matches_simulation() {
        let path = tmp("run.h5l");
        let cfg = HeatConfig::new((8, 8), (2, 2), 3).unwrap();
        let writer = SharedWriter::new(H5Writer::create(&path).unwrap());

        let finals = {
            let writer = &writer;
            let cfg = &cfg;
            World::run(4, move |comm| {
                let mut pdi = Pdi::new(Yaml::Null);
                pdi.register(Box::new(PostHocPlugin::new(
                    writer.clone(),
                    cfg.clone(),
                    comm.rank(),
                    "G_temp",
                    "temp",
                )));
                let s = run_rank(comm, cfg, &mut pdi).unwrap();
                (cfg.coords(comm.rank()), s.interior())
            })
            .unwrap()
        };
        writer.close().unwrap();

        let reader = H5Reader::open(&path).unwrap();
        let meta = reader.dataset("G_temp").unwrap();
        assert_eq!(meta.shape, vec![3, 8, 8]);
        assert_eq!(meta.chunks.len(), 3 * 4);
        // The last written step equals the final in-memory fields.
        let last = reader.read_slice("G_temp", &[2, 0, 0], &[1, 8, 8]).unwrap();
        for ((ci, cj), block) in finals {
            let sub = last.slice(&[0, ci * 4, cj * 4], &[1, 4, 4]).unwrap();
            let block3 = block.reshape(&[1, 4, 4]).unwrap();
            assert_eq!(sub.max_abs_diff(&block3).unwrap(), 0.0);
        }
    }

    #[test]
    fn wrong_shape_is_reported() {
        let path = tmp("bad.h5l");
        let cfg = HeatConfig::new((8, 8), (2, 2), 2).unwrap();
        let writer = SharedWriter::new(H5Writer::create(&path).unwrap());
        let mut plugin = PostHocPlugin::new(writer, cfg, 0, "d", "temp");
        let mut store = pdi::Store::new();
        store.set("step", pdi::Value::Int(0));
        store.set("temp", pdi::Value::from(linalg::NDArray::zeros(&[3, 3])));
        plugin.event("init", &store).unwrap();
        assert!(plugin.data_available("temp", &store).is_err());
        // Unrelated exposure is ignored.
        assert!(plugin.data_available("other", &store).is_ok());
    }
}
