//! The domain-decomposed solver.

use crate::config::HeatConfig;
use linalg::NDArray;
use mpisim::{CartComm, Comm, Tag};
use pdi::Pdi;

const TAG_UP: Tag = Tag(100);
const TAG_DOWN: Tag = Tag(101);
const TAG_LEFT: Tag = Tag(102);
const TAG_RIGHT: Tag = Tag(103);

/// One rank's solver state: the local field with a one-cell ghost frame.
pub struct LocalSolver {
    nx: usize,
    ny: usize,
    /// (nx+2) × (ny+2) including ghosts, row-major.
    field: Vec<f64>,
    next: Vec<f64>,
    alpha_dt: f64,
}

impl LocalSolver {
    /// Initialize with `f(global_row, global_col)` evaluated on the interior.
    pub fn new(
        cfg: &HeatConfig,
        coords: (usize, usize),
        f: impl Fn(usize, usize) -> f64,
    ) -> LocalSolver {
        let (nx, ny) = cfg.local();
        let w = ny + 2;
        let mut field = vec![0.0; (nx + 2) * w];
        for i in 0..nx {
            for j in 0..ny {
                field[(i + 1) * w + (j + 1)] = f(coords.0 * nx + i, coords.1 * ny + j);
            }
        }
        LocalSolver {
            nx,
            ny,
            next: field.clone(),
            field,
            alpha_dt: cfg.alpha * cfg.dt,
        }
    }

    fn w(&self) -> usize {
        self.ny + 2
    }

    /// Interior as a fresh `(nx, ny)` array (what PDI exposes each step).
    pub fn interior(&self) -> NDArray {
        let w = self.w();
        let mut data = Vec::with_capacity(self.nx * self.ny);
        for i in 0..self.nx {
            let row = &self.field[(i + 1) * w + 1..(i + 1) * w + 1 + self.ny];
            data.extend_from_slice(row);
        }
        NDArray::from_vec(&[self.nx, self.ny], data).expect("interior shape")
    }

    /// Sum of the interior (for conservation checks).
    pub fn heat(&self) -> f64 {
        let w = self.w();
        let mut s = 0.0;
        for i in 0..self.nx {
            for j in 0..self.ny {
                s += self.field[(i + 1) * w + (j + 1)];
            }
        }
        s
    }

    /// Exchange ghost rows/columns with Cartesian neighbours; insulated
    /// (copy-edge) ghosts at physical boundaries.
    pub fn exchange_ghosts(&mut self, cart: &CartComm<'_>) -> Result<(), String> {
        let comm = cart.comm();
        let w = self.w();
        let up = cart.shift(0, -1);
        let down = cart.shift(0, 1);
        let left = cart.shift(1, -1);
        let right = cart.shift(1, 1);

        // Rows (contiguous).
        let top_row: Vec<f64> = self.field[w + 1..w + 1 + self.ny].to_vec();
        let bottom_row: Vec<f64> = self.field[self.nx * w + 1..self.nx * w + 1 + self.ny].to_vec();
        if let Some(r) = up {
            comm.send(r, TAG_UP, top_row).map_err(|e| e.to_string())?;
        }
        if let Some(r) = down {
            comm.send(r, TAG_DOWN, bottom_row)
                .map_err(|e| e.to_string())?;
        }
        // Columns (strided copies).
        let left_col: Vec<f64> = (0..self.nx).map(|i| self.field[(i + 1) * w + 1]).collect();
        let right_col: Vec<f64> = (0..self.nx)
            .map(|i| self.field[(i + 1) * w + self.ny])
            .collect();
        if let Some(r) = left {
            comm.send(r, TAG_LEFT, left_col)
                .map_err(|e| e.to_string())?;
        }
        if let Some(r) = right {
            comm.send(r, TAG_RIGHT, right_col)
                .map_err(|e| e.to_string())?;
        }

        // Receive into ghosts; physical boundaries copy the edge (Neumann).
        match up {
            Some(r) => {
                let row: Vec<f64> = comm.recv(r, TAG_DOWN).map_err(|e| e.to_string())?;
                self.field[1..1 + self.ny].copy_from_slice(&row);
            }
            None => {
                let (dst, src) = self.field.split_at_mut(w);
                dst[1..1 + self.ny].copy_from_slice(&src[1..1 + self.ny]);
            }
        }
        match down {
            Some(r) => {
                let row: Vec<f64> = comm.recv(r, TAG_UP).map_err(|e| e.to_string())?;
                self.field[(self.nx + 1) * w + 1..(self.nx + 1) * w + 1 + self.ny]
                    .copy_from_slice(&row);
            }
            None => {
                for j in 1..=self.ny {
                    self.field[(self.nx + 1) * w + j] = self.field[self.nx * w + j];
                }
            }
        }
        match left {
            Some(r) => {
                let col: Vec<f64> = comm.recv(r, TAG_RIGHT).map_err(|e| e.to_string())?;
                for (i, &c) in col.iter().enumerate().take(self.nx) {
                    self.field[(i + 1) * w] = c;
                }
            }
            None => {
                for i in 0..self.nx {
                    self.field[(i + 1) * w] = self.field[(i + 1) * w + 1];
                }
            }
        }
        match right {
            Some(r) => {
                let col: Vec<f64> = comm.recv(r, TAG_LEFT).map_err(|e| e.to_string())?;
                for (i, &c) in col.iter().enumerate().take(self.nx) {
                    self.field[(i + 1) * w + self.ny + 1] = c;
                }
            }
            None => {
                for i in 0..self.nx {
                    self.field[(i + 1) * w + self.ny + 1] = self.field[(i + 1) * w + self.ny];
                }
            }
        }
        Ok(())
    }

    /// One explicit Euler step (ghosts must be current).
    pub fn step_stencil(&mut self) {
        let w = self.w();
        for i in 1..=self.nx {
            for j in 1..=self.ny {
                let c = self.field[i * w + j];
                let lap = self.field[(i - 1) * w + j]
                    + self.field[(i + 1) * w + j]
                    + self.field[i * w + j - 1]
                    + self.field[i * w + j + 1]
                    - 4.0 * c;
                self.next[i * w + j] = c + self.alpha_dt * lap;
            }
        }
        std::mem::swap(&mut self.field, &mut self.next);
    }
}

/// Default initial condition: a hot square in the domain centre.
pub fn hot_square(cfg: &HeatConfig) -> impl Fn(usize, usize) -> f64 + '_ {
    let (gx, gy) = cfg.global;
    move |i, j| {
        let in_x = i >= gx / 4 && i < 3 * gx / 4;
        let in_y = j >= gy / 4 && j < 3 * gy / 4;
        if in_x && in_y {
            100.0
        } else {
            0.0
        }
    }
}

/// Run the miniapp on one rank: init PDI metadata, raise `init`, then per
/// timestep exchange ghosts, step the stencil, and expose `step` + `temp`.
/// The `pdi` instance decides where the data goes (deisa plugin, post-hoc
/// writer plugin, or nothing).
pub fn run_rank(comm: &Comm, cfg: &HeatConfig, pdi: &mut Pdi) -> Result<LocalSolver, String> {
    cfg.validate()?;
    if comm.size() != cfg.n_ranks() {
        return Err(format!(
            "world size {} != proc grid {}x{}",
            comm.size(),
            cfg.procs.0,
            cfg.procs.1
        ));
    }
    let cart = CartComm::new(comm, &[cfg.procs.0, cfg.procs.1], &[false, false])?;
    let coords = cfg.coords(comm.rank());
    let (l0, l1) = cfg.local();
    let mut solver = LocalSolver::new(cfg, coords, hot_square(cfg));

    // Metadata for the plugins ($-expressions in the deisa config).
    let e = |err: pdi::PdiError| err.to_string();
    pdi.share("rank", comm.rank() as i64).map_err(e)?;
    pdi.share("size", comm.size() as i64).map_err(e)?;
    pdi.share("max_step", cfg.steps as i64).map_err(e)?;
    pdi.share("loc", vec![l0 as i64, l1 as i64]).map_err(e)?;
    pdi.share("proc", vec![cfg.procs.0 as i64, cfg.procs.1 as i64])
        .map_err(e)?;
    pdi.share("step", 0i64).map_err(e)?;
    pdi.event("init").map_err(e)?;

    for step in 0..cfg.steps {
        solver.exchange_ghosts(&cart)?;
        solver.step_stencil();
        pdi.share("step", step as i64).map_err(e)?;
        pdi.share("temp", solver.interior()).map_err(e)?;
        pdi.event("iteration").map_err(e)?;
    }
    pdi.event("finalization").map_err(e)?;
    Ok(solver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::World;
    use pdi::Yaml;

    fn bare_pdi() -> Pdi {
        Pdi::new(Yaml::Null)
    }

    #[test]
    fn uniform_field_is_a_fixed_point() {
        let cfg = HeatConfig::new((8, 8), (2, 2), 5).unwrap();
        World::run(4, |comm| {
            let cart = CartComm::new(comm, &[2, 2], &[false, false]).unwrap();
            let mut s = LocalSolver::new(&cfg, cfg.coords(comm.rank()), |_, _| 7.0);
            for _ in 0..5 {
                s.exchange_ghosts(&cart).unwrap();
                s.step_stencil();
            }
            let interior = s.interior();
            for &v in interior.data() {
                assert!((v - 7.0).abs() < 1e-12);
            }
        })
        .unwrap();
    }

    #[test]
    fn heat_is_conserved_with_neumann_boundaries() {
        let cfg = HeatConfig::new((12, 12), (2, 2), 8).unwrap();
        let results = World::run(4, |comm| {
            let mut pdi = bare_pdi();
            let solver = run_rank(comm, &cfg, &mut pdi).unwrap();
            solver.heat()
        })
        .unwrap();
        let total: f64 = results.iter().sum();
        // Initial heat: hot square 6x6 at 100.
        let initial = 36.0 * 100.0;
        assert!(
            (total - initial).abs() < 1e-8,
            "heat {total} != initial {initial}"
        );
    }

    #[test]
    fn peak_decays_and_stays_positive() {
        let cfg = HeatConfig::new((8, 8), (1, 1), 10).unwrap();
        World::run(1, |comm| {
            let mut pdi = bare_pdi();
            let solver = run_rank(comm, &cfg, &mut pdi).unwrap();
            let interior = solver.interior();
            let max = interior.data().iter().cloned().fold(f64::MIN, f64::max);
            let min = interior.data().iter().cloned().fold(f64::MAX, f64::min);
            assert!(max < 100.0, "peak should decay, got {max}");
            assert!(min > 0.0, "diffusion should warm the cold region");
        })
        .unwrap();
    }

    #[test]
    fn parallel_matches_serial() {
        // The decisive ghost-exchange test: 1 rank vs 4 ranks, same global
        // field after N steps.
        let cfg1 = HeatConfig::new((8, 12), (1, 1), 6).unwrap();
        let serial = World::run(1, |comm| {
            let mut pdi = bare_pdi();
            run_rank(comm, &cfg1, &mut pdi).unwrap().interior()
        })
        .unwrap()
        .pop()
        .unwrap();

        let cfg4 = HeatConfig::new((8, 12), (2, 2), 6).unwrap();
        let blocks = World::run(4, |comm| {
            let mut pdi = bare_pdi();
            let s = run_rank(comm, &cfg4, &mut pdi).unwrap();
            (cfg4.coords(comm.rank()), s.interior())
        })
        .unwrap();

        let mut parallel = NDArray::zeros(&[8, 12]);
        let (l0, l1) = cfg4.local();
        for ((ci, cj), block) in blocks {
            parallel.assign_slice(&[ci * l0, cj * l1], &block).unwrap();
        }
        let diff = serial.max_abs_diff(&parallel).unwrap();
        assert!(diff < 1e-12, "serial vs parallel diff {diff}");
    }

    #[test]
    fn run_rank_rejects_bad_world_size() {
        let cfg = HeatConfig::new((8, 8), (2, 2), 2).unwrap();
        World::run(2, |comm| {
            let mut pdi = bare_pdi();
            assert!(run_rank(comm, &cfg, &mut pdi).is_err());
        })
        .unwrap();
    }

    #[test]
    fn symmetric_initial_condition_stays_symmetric() {
        // The hot square is symmetric under 180-degree rotation of the
        // domain; diffusion must preserve that symmetry.
        let cfg = HeatConfig::new((8, 8), (1, 1), 6).unwrap();
        World::run(1, |comm| {
            let mut pdi = bare_pdi();
            let s = run_rank(comm, &cfg, &mut pdi).unwrap();
            let f = s.interior();
            for i in 0..8 {
                for j in 0..8 {
                    let a = f.get(&[i, j]);
                    let b = f.get(&[7 - i, 7 - j]);
                    assert!((a - b).abs() < 1e-12, "asymmetry at ({i},{j})");
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn different_decompositions_agree() {
        // 1x4, 4x1 and 2x2 rank grids all produce the same global field.
        let run = |p0: usize, p1: usize| {
            let cfg = HeatConfig::new((8, 8), (p0, p1), 5).unwrap();
            let blocks = World::run(p0 * p1, |comm| {
                let mut pdi = bare_pdi();
                let s = run_rank(comm, &cfg, &mut pdi).unwrap();
                (cfg.coords(comm.rank()), s.interior())
            })
            .unwrap();
            let (l0, l1) = cfg.local();
            let mut full = NDArray::zeros(&[8, 8]);
            for ((ci, cj), b) in blocks {
                full.assign_slice(&[ci * l0, cj * l1], &b).unwrap();
            }
            full
        };
        let a = run(1, 4);
        let b = run(4, 1);
        let c = run(2, 2);
        assert!(a.max_abs_diff(&b).unwrap() < 1e-12);
        assert!(a.max_abs_diff(&c).unwrap() < 1e-12);
    }
}
