//! Distributed PCA over a tall-skinny chunked array (dask-ml's `PCA`).
//!
//! dask-ml computes PCA of a row-chunked dask array with a tall-skinny QR
//! (TSQR) under the hood (§3.1 of the paper: "a parallel implementation of
//! the PCA based on the singular value decomposition"). The key observation
//! that makes the task graph compact: the left factor is never needed —
//! `AᵀA = RᵀR`, so the SVD of the final small `R` already yields the
//! components and singular values. The graph is:
//!
//! ```text
//! per block:   col-sums ──┐                      ┌─ R_of(centered block) ─┐
//!              (tree sum) ├─ mean ── center ─────┤        (tree R-merge)  ├─ SVD(R) → model
//! per block:   ───────────┘                      └────────────────────────┘
//! ```
//!
//! Everything is lazy graph construction; submit once, fetch once.

use crate::pca::sign_flip_rows;
use darray::{DArray, Graph};
use dtask::{Client, Datum, Key, OpRegistry, TaskSpec};
use linalg::{householder_qr_owned, jacobi_svd, Matrix, MatrixView, NDArray};

/// Register the `ml.pca_*` kernels (called from [`crate::register_ml_ops`]).
pub(crate) fn register_dpca_ops(registry: &OpRegistry) {
    // Block (m×n) → List[col_sums (1×n), m].
    registry.register("ml.pca_colsums", |_p, deps| {
        let a = deps
            .first()
            .and_then(|d| d.as_array())
            .ok_or("ml.pca_colsums: array input required")?;
        if a.ndim() != 2 {
            return Err("ml.pca_colsums: 2-D input required".into());
        }
        let (m, n) = (a.shape()[0], a.shape()[1]);
        let mut sums = vec![0.0; n];
        for i in 0..m {
            for (j, s) in sums.iter_mut().enumerate() {
                *s += a.get(&[i, j]);
            }
        }
        Ok(Datum::List(vec![
            Datum::from(NDArray::from_vec(&[1, n], sums).expect("sum shape")),
            Datum::I64(m as i64),
        ]))
    });

    // Merge any number of List[sums, count] partials.
    registry.register("ml.pca_mergesums", |_p, deps| {
        let mut acc: Option<(NDArray, i64)> = None;
        for d in deps {
            let l = d.as_list().ok_or("ml.pca_mergesums: list inputs")?;
            let sums = l
                .first()
                .and_then(|v| v.as_array())
                .ok_or("ml.pca_mergesums: missing sums")?;
            let count = l
                .get(1)
                .and_then(|v| v.as_i64())
                .ok_or("ml.pca_mergesums: missing count")?;
            acc = Some(match acc {
                None => ((**sums).clone(), count),
                Some((a, c)) => (
                    a.zip_with(sums, |x, y| x + y).map_err(|e| e.to_string())?,
                    c + count,
                ),
            });
        }
        let (sums, count) = acc.ok_or("ml.pca_mergesums: no inputs")?;
        Ok(Datum::List(vec![Datum::from(sums), Datum::I64(count)]))
    });

    // List[sums, count] → mean row (1×n).
    registry.register("ml.pca_mean", |_p, deps| {
        let l = deps
            .first()
            .and_then(|d| d.as_list())
            .ok_or("ml.pca_mean: list input")?;
        let sums = l
            .first()
            .and_then(|v| v.as_array())
            .ok_or("ml.pca_mean: missing sums")?;
        let count = l
            .get(1)
            .and_then(|v| v.as_i64())
            .ok_or("ml.pca_mean: missing count")? as f64;
        if count <= 0.0 {
            return Err("ml.pca_mean: empty data".into());
        }
        Ok(Datum::from(sums.map(|x| x / count)))
    });

    // deps [block (m×n), mean (1×n)] → centered block.
    registry.register("ml.pca_center", |_p, deps| {
        let a = deps
            .first()
            .and_then(|d| d.as_array())
            .ok_or("ml.pca_center: block input")?;
        let mean = deps
            .get(1)
            .and_then(|d| d.as_array())
            .ok_or("ml.pca_center: mean input")?;
        let (m, n) = (a.shape()[0], a.shape()[1]);
        if mean.shape() != [1, n] {
            return Err(format!(
                "ml.pca_center: mean shape {:?} vs {n} features",
                mean.shape()
            ));
        }
        let out = NDArray::from_fn(&[m, n], |idx| a.get(idx) - mean.get(&[0, idx[1]]));
        Ok(Datum::from(out))
    });

    // Centered block → its R factor (k×n upper triangular, k = min(m, n)).
    registry.register("ml.pca_r_of", |_p, deps| {
        let a = deps
            .first()
            .and_then(|d| d.as_array())
            .ok_or("ml.pca_r_of: block input")?;
        // One working copy total: the view borrows the shared block and the
        // owned QR factorizes its copy in place.
        let m = Matrix::from_ndarray_ref(a).map_err(|e| e.to_string())?;
        let qr = householder_qr_owned(m.to_matrix()).map_err(|e| e.to_string())?;
        Ok(Datum::from(qr.r.into_ndarray()))
    });

    // Merge R factors: stack vertically, QR, keep R (the TSQR tree node).
    registry.register("ml.pca_r_merge", |_p, deps| {
        let mut views = Vec::with_capacity(deps.len());
        for d in deps {
            let a = d.as_array().ok_or("ml.pca_r_merge: array inputs")?;
            views.push(Matrix::from_ndarray_ref(a).map_err(|e| e.to_string())?);
        }
        // Stack straight from the borrowed buffers; QR works in place on it.
        let stacked = MatrixView::vstack(&views).map_err(|e| e.to_string())?;
        let qr = householder_qr_owned(stacked).map_err(|e| e.to_string())?;
        Ok(Datum::from(qr.r.into_ndarray()))
    });

    // deps [R, mean], params [k, n_samples] → fitted model as
    // List[components (k×n), singvals (k), expl_var (k), expl_var_ratio (k),
    //      mean (1×n)].
    registry.register("ml.pca_finish", |params, deps| {
        let l = params.as_list().ok_or("ml.pca_finish: params list")?;
        let k = l
            .first()
            .and_then(|v| v.as_i64())
            .ok_or("ml.pca_finish: missing k")? as usize;
        let n_samples = l
            .get(1)
            .and_then(|v| v.as_i64())
            .ok_or("ml.pca_finish: missing n_samples")? as f64;
        let r = deps
            .first()
            .and_then(|d| d.as_array())
            .ok_or("ml.pca_finish: R input")?;
        let mean = deps
            .get(1)
            .and_then(|d| d.as_array())
            .ok_or("ml.pca_finish: mean input")?;
        let rm = Matrix::from_ndarray_ref(r)
            .map_err(|e| e.to_string())?
            .to_matrix();
        let svd = jacobi_svd(&rm).map_err(|e| e.to_string())?;
        if k == 0 || k > svd.s.len() {
            return Err(format!("ml.pca_finish: k={k} out of range"));
        }
        let total_var: f64 = svd.s.iter().map(|s| s * s).sum::<f64>() / (n_samples - 1.0).max(1.0);
        let mut svd = svd.truncate(k).map_err(|e| e.to_string())?;
        sign_flip_rows(&mut svd.vt);
        let ev: Vec<f64> = svd
            .s
            .iter()
            .map(|s| s * s / (n_samples - 1.0).max(1.0))
            .collect();
        let evr: Vec<f64> = ev
            .iter()
            .map(|v| if total_var > 0.0 { v / total_var } else { 0.0 })
            .collect();
        Ok(Datum::List(vec![
            Datum::from(svd.vt.into_ndarray()),
            Datum::from(NDArray::from_vec(&[k], svd.s).expect("singvals")),
            Datum::from(NDArray::from_vec(&[k], ev).expect("ev")),
            Datum::from(NDArray::from_vec(&[k], evr).expect("evr")),
            Datum::from((**mean).clone()),
        ]))
    });
}

/// A fitted distributed PCA (fetch with [`DPcaFitted::fetch`]).
#[derive(Debug, Clone)]
pub struct DPcaFitted {
    /// Key of the finishing task.
    pub model_key: Key,
    /// Number of row blocks reduced.
    pub n_blocks: usize,
}

/// The fetched model.
#[derive(Debug, Clone)]
pub struct DPcaModel {
    /// Principal axes (k × features).
    pub components: Matrix,
    /// Top-k singular values of the centered data.
    pub singular_values: Vec<f64>,
    /// Variance explained per component.
    pub explained_variance: Vec<f64>,
    /// Fraction of total variance per component.
    pub explained_variance_ratio: Vec<f64>,
    /// Per-feature mean.
    pub mean: Vec<f64>,
}

impl DPcaFitted {
    /// Gather the fitted model.
    pub fn fetch(&self, client: &Client) -> Result<DPcaModel, String> {
        let datum = client
            .future(self.model_key.clone())
            .result()
            .map_err(|e| e.to_string())?;
        let l = datum.as_list().ok_or("model is not a list")?;
        let arr = |i: usize| -> Result<NDArray, String> {
            l.get(i)
                .and_then(|d| d.as_array())
                .map(|a| (**a).clone())
                .ok_or_else(|| format!("model[{i}] missing"))
        };
        let comps = arr(0)?;
        let (k, f) = (comps.shape()[0], comps.shape()[1]);
        Ok(DPcaModel {
            components: Matrix::from_vec(k, f, comps.into_vec()).map_err(|e| e.to_string())?,
            singular_values: arr(1)?.into_vec(),
            explained_variance: arr(2)?.into_vec(),
            explained_variance_ratio: arr(3)?.into_vec(),
            mean: arr(4)?.into_vec(),
        })
    }
}

/// Distributed PCA over a 2-D row-chunked array.
#[derive(Debug, Clone)]
pub struct DistributedPca {
    /// Number of components to keep.
    pub n_components: usize,
    /// Fan-in of the reduction trees.
    pub tree_arity: usize,
}

impl DistributedPca {
    /// PCA with `k` components (tree arity 4).
    pub fn new(n_components: usize) -> Self {
        DistributedPca {
            n_components,
            tree_arity: 4,
        }
    }

    fn tree_reduce(&self, graph: &mut Graph, mut keys: Vec<Key>, op: &str, stem: &str) -> Key {
        while keys.len() > 1 {
            let mut next = Vec::with_capacity(keys.len().div_ceil(self.tree_arity));
            for group in keys.chunks(self.tree_arity) {
                if group.len() == 1 {
                    next.push(group[0].clone());
                    continue;
                }
                let key = graph.fresh_key(stem);
                graph.add(TaskSpec::new(key.clone(), op, Datum::Null, group.to_vec()));
                next.push(key);
            }
            keys = next;
        }
        keys.pop().expect("non-empty reduction")
    }

    /// Build the fit graph over `x` (samples × features, chunked along rows
    /// only). Returns the handle; submit the graph, then fetch.
    pub fn fit(&self, graph: &mut Graph, x: &DArray) -> Result<DPcaFitted, String> {
        if x.grid().ndim() != 2 {
            return Err("DistributedPca: input must be 2-D".into());
        }
        if x.grid().grid_dims()[1] != 1 {
            return Err("DistributedPca: features must not be chunked (rechunk first)".into());
        }
        let n_samples = x.shape()[0];
        let n_features = x.shape()[1];
        if self.n_components == 0 || self.n_components > n_features.min(n_samples) {
            return Err(format!(
                "DistributedPca: k={} out of range for {}x{}",
                self.n_components, n_samples, n_features
            ));
        }
        let blocks: Vec<Key> = x.keys().to_vec();

        // Stage 1: column sums per block, tree-merged into the mean.
        let sum_keys: Vec<Key> = blocks
            .iter()
            .map(|b| {
                let key = graph.fresh_key("colsum");
                graph.add(TaskSpec::new(
                    key.clone(),
                    "ml.pca_colsums",
                    Datum::Null,
                    vec![b.clone()],
                ));
                key
            })
            .collect();
        let merged = self.tree_reduce(graph, sum_keys, "ml.pca_mergesums", "msum");
        let mean_key = graph.fresh_key("mean");
        graph.add(TaskSpec::new(
            mean_key.clone(),
            "ml.pca_mean",
            Datum::Null,
            vec![merged],
        ));

        // Stage 2: center each block, take its R factor, tree-merge Rs.
        let r_keys: Vec<Key> = blocks
            .iter()
            .map(|b| {
                let centered = graph.fresh_key("center");
                graph.add(TaskSpec::new(
                    centered.clone(),
                    "ml.pca_center",
                    Datum::Null,
                    vec![b.clone(), mean_key.clone()],
                ));
                let r = graph.fresh_key("rfac");
                graph.add(TaskSpec::new(
                    r.clone(),
                    "ml.pca_r_of",
                    Datum::Null,
                    vec![centered],
                ));
                r
            })
            .collect();
        let r_final = self.tree_reduce(graph, r_keys, "ml.pca_r_merge", "rmrg");

        // Stage 3: SVD of the final R.
        let model_key = graph.fresh_key("pca-model");
        graph.add(TaskSpec::new(
            model_key.clone(),
            "ml.pca_finish",
            Datum::List(vec![
                Datum::I64(self.n_components as i64),
                Datum::I64(n_samples as i64),
            ]),
            vec![r_final, mean_key],
        ));
        Ok(DPcaFitted {
            model_key,
            n_blocks: blocks.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::Pca;
    use darray::register_array_ops;
    use dtask::Cluster;

    fn cluster() -> Cluster {
        let c = Cluster::new(3);
        register_array_ops(c.registry());
        crate::register_ml_ops(c.registry());
        c
    }

    fn local_matrix(n: usize, f: usize) -> Matrix {
        Matrix::from_fn(n, f, |i, j| {
            (i as f64 * 0.37 + 1.0).sin() * (j + 1) as f64 + ((i * 13 + j * 7) % 11) as f64 * 0.21
        })
    }

    #[test]
    fn distributed_pca_matches_local_pca() {
        let cluster = cluster();
        let client = cluster.client();
        let m = local_matrix(40, 5);
        // Fresh keys via scatter only (no placeholder tasks needed).
        let grid = darray::ChunkGrid::regular(&[40, 5], &[7, 5]).unwrap();
        let mut keys = Vec::new();
        for (i, _) in (0..grid.n_chunks()).enumerate() {
            let coord = vec![i, 0];
            let start = grid.block_start(&coord);
            let extent = grid.block_extent(&coord);
            let block = NDArray::from_fn(&extent, |idx| m[(start[0] + idx[0], idx[1])]);
            let key = Key::new(format!("pca-in-{i}"));
            client.scatter(vec![(key.clone(), Datum::from(block))], None);
            keys.push(key);
        }
        let x = DArray::from_keys(grid, keys).unwrap();

        let dpca = DistributedPca::new(3);
        let mut g = Graph::new("dpca");
        let fitted = dpca.fit(&mut g, &x).unwrap();
        g.submit(&client);
        let model = fitted.fetch(&client).unwrap();

        let reference = Pca::fit(&m, 3).unwrap();
        for (a, b) in model.singular_values.iter().zip(&reference.singular_values) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        assert!(
            model
                .components
                .max_abs_diff(&reference.components)
                .unwrap()
                < 1e-7
        );
        for (a, b) in model.mean.iter().zip(&reference.mean) {
            assert!((a - b).abs() < 1e-10);
        }
        for (a, b) in model
            .explained_variance_ratio
            .iter()
            .zip(&reference.explained_variance_ratio)
        {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn distributed_pca_many_small_blocks_tree() {
        let cluster = cluster();
        let client = cluster.client();
        let m = local_matrix(66, 4);
        let grid = darray::ChunkGrid::regular(&[66, 4], &[5, 4]).unwrap();
        let mut keys = Vec::new();
        for i in 0..grid.n_chunks() {
            let coord = vec![i, 0];
            let start = grid.block_start(&coord);
            let extent = grid.block_extent(&coord);
            let block = NDArray::from_fn(&extent, |idx| m[(start[0] + idx[0], idx[1])]);
            let key = Key::new(format!("pcab-{i}"));
            client.scatter(vec![(key.clone(), Datum::from(block))], None);
            keys.push(key);
        }
        let x = DArray::from_keys(grid, keys).unwrap();
        let dpca = DistributedPca::new(2);
        let mut g = Graph::new("dpca2");
        let fitted = dpca.fit(&mut g, &x).unwrap();
        assert_eq!(fitted.n_blocks, 14); // multi-level tree exercised
        g.submit(&client);
        let model = fitted.fetch(&client).unwrap();
        let reference = Pca::fit(&m, 2).unwrap();
        for (a, b) in model.singular_values.iter().zip(&reference.singular_values) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn distributed_pca_validation_errors() {
        let cluster = cluster();
        let _client = cluster.client();
        let mut g = Graph::new("v");
        // 3-D input rejected.
        let a3 = DArray::fill(&mut g, &[2, 2, 2], &[1, 2, 2], 0.0).unwrap();
        assert!(DistributedPca::new(1).fit(&mut g, &a3).is_err());
        // Feature-chunked input rejected.
        let a2 = DArray::fill(&mut g, &[4, 4], &[2, 2], 0.0).unwrap();
        assert!(DistributedPca::new(1).fit(&mut g, &a2).is_err());
        // k out of range.
        let tall = DArray::fill(&mut g, &[8, 3], &[4, 3], 0.0).unwrap();
        assert!(DistributedPca::new(0).fit(&mut g, &tall).is_err());
        assert!(DistributedPca::new(4).fit(&mut g, &tall).is_err());
        assert!(DistributedPca::new(3).fit(&mut g, &tall).is_ok());
    }

    #[test]
    fn works_over_external_blocks_submitted_ahead() {
        // Distributed PCA graph over external tasks, submitted before data.
        let cluster = cluster();
        let client = cluster.client();
        let m = local_matrix(24, 4);
        let grid = darray::ChunkGrid::regular(&[24, 4], &[8, 4]).unwrap();
        let keys: Vec<Key> = (0..3).map(|i| Key::new(format!("pcax-{i}"))).collect();
        client.register_external(keys.clone());
        let x = DArray::from_keys(grid.clone(), keys.clone()).unwrap();
        let mut g = Graph::new("ahead");
        let fitted = DistributedPca::new(2).fit(&mut g, &x).unwrap();
        g.submit(&client);
        // Data arrives afterwards.
        let feeder = cluster.client();
        for (i, key) in keys.iter().enumerate() {
            let start = grid.block_start(&[i, 0]);
            let extent = grid.block_extent(&[i, 0]);
            let block = NDArray::from_fn(&extent, |idx| m[(start[0] + idx[0], idx[1])]);
            feeder.scatter_external(vec![(key.clone(), Datum::from(block))], None);
        }
        let model = fitted.fetch(&client).unwrap();
        let reference = Pca::fit(&m, 2).unwrap();
        for (a, b) in model.singular_values.iter().zip(&reference.singular_values) {
            assert!((a - b).abs() < 1e-8);
        }
    }
}
