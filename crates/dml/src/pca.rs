//! Exact PCA on a local matrix — the correctness reference for IPCA.

use linalg::stats::{center_columns, col_mean};
use linalg::{jacobi_svd, LinalgError, Matrix};

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Principal axes, `k × n_features`, rows ordered by variance.
    pub components: Matrix,
    /// Top `k` singular values of the centered data.
    pub singular_values: Vec<f64>,
    /// Variance explained by each component (`S² / (n-1)`).
    pub explained_variance: Vec<f64>,
    /// Fraction of total variance per component.
    pub explained_variance_ratio: Vec<f64>,
    /// Per-feature mean of the training data.
    pub mean: Vec<f64>,
}

impl Pca {
    /// Fit PCA with `k` components on `x` (samples × features).
    pub fn fit(x: &Matrix, k: usize) -> Result<Pca, LinalgError> {
        let n = x.rows();
        if n < 2 {
            return Err(LinalgError::InvalidArgument {
                what: "PCA needs at least 2 samples".into(),
            });
        }
        if k == 0 || k > x.cols().min(n) {
            return Err(LinalgError::InvalidArgument {
                what: format!("k={k} out of range for {}x{}", n, x.cols()),
            });
        }
        let mean = col_mean(x);
        let centered = center_columns(x, &mean)?;
        let svd = jacobi_svd(&centered)?;
        let total_var: f64 = svd.s.iter().map(|s| s * s).sum::<f64>() / (n as f64 - 1.0);
        let mut svd = svd.truncate(k)?;
        sign_flip_rows(&mut svd.vt);
        let explained_variance: Vec<f64> = svd.s.iter().map(|s| s * s / (n as f64 - 1.0)).collect();
        let explained_variance_ratio = explained_variance
            .iter()
            .map(|v| if total_var > 0.0 { v / total_var } else { 0.0 })
            .collect();
        Ok(Pca {
            components: svd.vt,
            singular_values: svd.s,
            explained_variance,
            explained_variance_ratio,
            mean,
        })
    }

    /// Project samples onto the principal axes: `(X - mean) @ componentsᵀ`.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix, LinalgError> {
        let centered = center_columns(x, &self.mean)?;
        centered.matmul(&self.components.transpose())
    }
}

/// Deterministic sign convention: make the largest-|.|
/// element of each row positive (scikit-learn's `svd_flip` with
/// `u_based_decision=False`).
pub fn sign_flip_rows(vt: &mut Matrix) {
    for i in 0..vt.rows() {
        let row = vt.row(i);
        let mut best = 0usize;
        for (j, v) in row.iter().enumerate() {
            if v.abs() > row[best].abs() {
                best = j;
            }
        }
        if row[best] < 0.0 {
            for v in vt.row_mut(i) {
                *v = -*v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Correlated 2-feature data whose first principal axis is ~(1,1)/√2.
    fn correlated(n: usize) -> Matrix {
        Matrix::from_fn(n, 2, |i, j| {
            let t = i as f64 / n as f64 * 6.0 - 3.0;
            let noise = ((i * 37 + j * 11) % 7) as f64 / 7.0 - 0.5;
            if j == 0 {
                t + 0.05 * noise
            } else {
                t - 0.05 * noise
            }
        })
    }

    #[test]
    fn first_axis_of_correlated_data() {
        let x = correlated(64);
        let pca = Pca::fit(&x, 2).unwrap();
        let c0 = pca.components.row(0);
        let expect = 1.0 / 2.0_f64.sqrt();
        assert!((c0[0].abs() - expect).abs() < 0.01, "{c0:?}");
        assert!((c0[1].abs() - expect).abs() < 0.01);
        // Dominant component explains almost everything.
        assert!(pca.explained_variance_ratio[0] > 0.99);
        // Ratios sum to <= 1.
        let sum: f64 = pca.explained_variance_ratio.iter().sum();
        assert!(sum <= 1.0 + 1e-9);
    }

    #[test]
    fn components_are_orthonormal() {
        let x = Matrix::from_fn(30, 5, |i, j| ((i * 13 + j * 7) % 11) as f64 - 5.0);
        let pca = Pca::fit(&x, 3).unwrap();
        let g = pca.components.matmul(&pca.components.transpose()).unwrap();
        assert!(g.max_abs_diff(&Matrix::eye(3)).unwrap() < 1e-9);
    }

    #[test]
    fn transform_centers_and_projects() {
        let x = correlated(40);
        let pca = Pca::fit(&x, 1).unwrap();
        let z = pca.transform(&x).unwrap();
        assert_eq!(z.rows(), 40);
        assert_eq!(z.cols(), 1);
        // Projected scores have ~zero mean.
        let mean: f64 = (0..40).map(|i| z[(i, 0)]).sum::<f64>() / 40.0;
        assert!(mean.abs() < 1e-10);
        // Variance of scores equals explained variance of component 0.
        let var: f64 = (0..40).map(|i| z[(i, 0)] * z[(i, 0)]).sum::<f64>() / 39.0;
        assert!((var - pca.explained_variance[0]).abs() / var < 1e-9);
    }

    #[test]
    fn sign_convention_is_deterministic() {
        let x = correlated(32);
        let p1 = Pca::fit(&x, 2).unwrap();
        let mut x_neg = x.clone();
        x_neg.scale(-1.0);
        // PCA of -X has the same axes; the flip must give identical signs.
        let p2 = Pca::fit(&x_neg, 2).unwrap();
        assert!(p1.components.max_abs_diff(&p2.components).unwrap() < 1e-9);
    }

    #[test]
    fn invalid_arguments() {
        let x = Matrix::zeros(1, 3);
        assert!(Pca::fit(&x, 1).is_err());
        let x = Matrix::zeros(10, 3);
        assert!(Pca::fit(&x, 0).is_err());
        assert!(Pca::fit(&x, 4).is_err());
    }
}
