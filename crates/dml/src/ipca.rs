//! Incremental PCA (scikit-learn's `partial_fit` algorithm).
//!
//! Memory is constant in the number of batches: the state is `(count, mean,
//! var, k components, k singular values)`. Each `partial_fit` builds the
//! augmented matrix
//!
//! ```text
//! A = [ diag(S) · V   ]   k rows      (previous spectrum)
//!     [ X - batch_mean ]  n rows      (centered new batch)
//!     [ mean_correction ] 1 row       (running-mean drift)
//! ```
//!
//! and keeps the top-`k` SVD of `A`. This is exactly what the paper runs in
//! situ — the property that matters there is that each batch is *one more
//! task* in a chain, which external tasks let Dask schedule ahead of time.

use crate::pca::sign_flip_rows;
use linalg::stats::{center_columns_view, col_mean_view, col_var_view, RunningStats};
use linalg::{jacobi_svd, randomized_svd, LinalgError, Matrix, MatrixView, Svd};

/// Which SVD backs `partial_fit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvdSolver {
    /// Exact one-sided Jacobi SVD.
    Full,
    /// Randomized SVD (the paper's Listing 2 passes
    /// `svd_solver='randomized'`); deterministic per seed.
    Randomized {
        /// PRNG seed for the range finder.
        seed: u64,
    },
}

/// Incremental PCA state.
#[derive(Debug, Clone)]
pub struct IncrementalPca {
    /// Requested number of components.
    pub n_components: usize,
    /// SVD backend.
    pub solver: SvdSolver,
    /// Samples consumed so far.
    pub n_samples_seen: u64,
    /// Running per-feature mean.
    pub mean: Vec<f64>,
    /// Running per-feature variance.
    pub var: Vec<f64>,
    /// Principal axes (k × features); empty before the first batch.
    pub components: Matrix,
    /// Singular values (length k).
    pub singular_values: Vec<f64>,
    /// Variance explained per component.
    pub explained_variance: Vec<f64>,
    /// Fraction of total variance per component.
    pub explained_variance_ratio: Vec<f64>,
}

impl IncrementalPca {
    /// Fresh model.
    pub fn new(n_components: usize, solver: SvdSolver) -> Self {
        IncrementalPca {
            n_components,
            solver,
            n_samples_seen: 0,
            mean: Vec::new(),
            var: Vec::new(),
            components: Matrix::zeros(0, 0),
            singular_values: Vec::new(),
            explained_variance: Vec::new(),
            explained_variance_ratio: Vec::new(),
        }
    }

    fn svd(&self, a: &Matrix, k: usize) -> Result<Svd, LinalgError> {
        match self.solver {
            SvdSolver::Full => jacobi_svd(a)?.truncate(k),
            SvdSolver::Randomized { seed } => {
                // Derive a fresh seed per call so successive batches use
                // different projections, deterministically.
                let call_seed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(self.n_samples_seen);
                randomized_svd(a, k, 10, 4, call_seed)
            }
        }
    }

    /// Consume one batch (samples × features).
    pub fn partial_fit(&mut self, x: &Matrix) -> Result<(), LinalgError> {
        self.partial_fit_view(x.as_view())
    }

    /// [`IncrementalPca::partial_fit`] over a borrowed [`MatrixView`] —
    /// lets callers holding shared buffers (e.g. `Arc<NDArray>` blocks) feed
    /// the model without deep-copying the batch first.
    pub fn partial_fit_view(&mut self, x: MatrixView<'_>) -> Result<(), LinalgError> {
        let n_batch = x.rows() as u64;
        let n_features = x.cols();
        if n_batch == 0 {
            return Ok(());
        }
        if self.n_samples_seen == 0 {
            if self.n_components > n_features.min(x.rows()) {
                return Err(LinalgError::InvalidArgument {
                    what: format!(
                        "n_components={} > min(first batch {}x{})",
                        self.n_components,
                        x.rows(),
                        n_features
                    ),
                });
            }
            self.mean = vec![0.0; n_features];
            self.var = vec![0.0; n_features];
        } else if n_features != self.mean.len() {
            return Err(LinalgError::ShapeMismatch {
                what: format!(
                    "batch has {n_features} features, model has {}",
                    self.mean.len()
                ),
            });
        }

        let batch_mean = col_mean_view(x);
        let batch_var = col_var_view(x, &batch_mean);
        let mut stats = RunningStats {
            count: self.n_samples_seen,
            mean: self.mean.clone(),
            var: self.var.clone(),
        };
        stats.update(n_batch, &batch_mean, &batch_var)?;
        let n_total = stats.count;

        // Build the augmented matrix.
        let centered = center_columns_view(x, &batch_mean)?;
        let a = if self.n_samples_seen == 0 {
            centered
        } else {
            let mut scaled = self.components.clone();
            for i in 0..scaled.rows() {
                let s = self.singular_values[i];
                for v in scaled.row_mut(i) {
                    *v *= s;
                }
            }
            let corr_scale =
                ((self.n_samples_seen as f64 * n_batch as f64) / n_total as f64).sqrt();
            let correction = Matrix::from_fn(1, n_features, |_, j| {
                corr_scale * (self.mean[j] - batch_mean[j])
            });
            Matrix::vstack(&[&scaled, &centered, &correction])?
        };

        let k = self.n_components.min(a.rows()).min(n_features);
        let mut svd = self.svd(&a, k)?;
        sign_flip_rows(&mut svd.vt);

        let denom = (n_total as f64 - 1.0).max(1.0);
        self.explained_variance = svd.s.iter().map(|s| s * s / denom).collect();
        let total_var: f64 = stats.var.iter().sum::<f64>() * n_total as f64 / denom;
        self.explained_variance_ratio = self
            .explained_variance
            .iter()
            .map(|v| if total_var > 0.0 { v / total_var } else { 0.0 })
            .collect();
        self.components = svd.vt;
        self.singular_values = svd.s;
        self.mean = stats.mean;
        self.var = stats.var;
        self.n_samples_seen = n_total;
        Ok(())
    }

    /// Fit from scratch over row batches of `batch_rows`.
    pub fn fit_in_batches(&mut self, x: &Matrix, batch_rows: usize) -> Result<(), LinalgError> {
        if batch_rows == 0 {
            return Err(LinalgError::InvalidArgument {
                what: "batch_rows must be positive".into(),
            });
        }
        let mut row = 0;
        while row < x.rows() {
            let h = batch_rows.min(x.rows() - row);
            let chunk =
                MatrixView::new(h, x.cols(), &x.data()[row * x.cols()..(row + h) * x.cols()])?;
            self.partial_fit_view(chunk)?;
            row += h;
        }
        Ok(())
    }

    /// Project samples onto the fitted axes.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix, LinalgError> {
        self.transform_view(x.as_view())
    }

    /// [`IncrementalPca::transform`] over a borrowed [`MatrixView`].
    pub fn transform_view(&self, x: MatrixView<'_>) -> Result<Matrix, LinalgError> {
        let centered = center_columns_view(x, &self.mean)?;
        centered.matmul(&self.components.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::Pca;

    fn data(n: usize, f: usize) -> Matrix {
        Matrix::from_fn(n, f, |i, j| {
            let t = i as f64 / n as f64;
            (t * (j + 1) as f64 * 2.2).sin() + 0.3 * ((i * 31 + j * 17) % 13) as f64 / 13.0
        })
    }

    #[test]
    fn single_batch_equals_pca() {
        // With one batch covering everything and k = full rank, IPCA == PCA.
        let x = data(24, 4);
        let pca = Pca::fit(&x, 4).unwrap();
        let mut ipca = IncrementalPca::new(4, SvdSolver::Full);
        ipca.partial_fit(&x).unwrap();
        assert_eq!(ipca.n_samples_seen, 24);
        for i in 0..4 {
            assert!(
                (ipca.singular_values[i] - pca.singular_values[i]).abs() < 1e-8,
                "sigma_{i}"
            );
        }
        assert!(ipca.components.max_abs_diff(&pca.components).unwrap() < 1e-7);
    }

    #[test]
    fn multi_batch_full_rank_matches_pca() {
        // k = n_features keeps the update exact: batched == whole.
        let x = data(40, 3);
        let pca = Pca::fit(&x, 3).unwrap();
        let mut ipca = IncrementalPca::new(3, SvdSolver::Full);
        ipca.fit_in_batches(&x, 7).unwrap();
        for i in 0..3 {
            let rel = (ipca.singular_values[i] - pca.singular_values[i]).abs()
                / pca.singular_values[i].max(1e-12);
            assert!(
                rel < 1e-6,
                "sigma_{i}: {} vs {}",
                ipca.singular_values[i],
                pca.singular_values[i]
            );
        }
        assert!(ipca.components.max_abs_diff(&pca.components).unwrap() < 1e-5);
        // Means agree with the full-data means.
        let mean = linalg::stats::col_mean(&x);
        for (got, want) in ipca.mean.iter().zip(&mean).take(3) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn truncated_ipca_tracks_leading_subspace() {
        // Data with a clearly dominant direction (near rank-1 plus weaker
        // secondary structure), so the leading axis is well defined.
        let x = Matrix::from_fn(60, 6, |i, j| {
            let t = i as f64 / 60.0 * 4.0 - 2.0;
            let w = (j as f64 + 1.0) / 3.0;
            let minor = (i as f64 * 0.7).cos() * if j % 2 == 0 { 0.2 } else { -0.2 };
            t * w + minor + 0.01 * ((i * 31 + j * 17) % 13) as f64 / 13.0
        });
        let pca = Pca::fit(&x, 2).unwrap();
        let mut ipca = IncrementalPca::new(2, SvdSolver::Full);
        ipca.fit_in_batches(&x, 10).unwrap();
        // Leading singular value within a few percent.
        let rel = (ipca.singular_values[0] - pca.singular_values[0]).abs() / pca.singular_values[0];
        assert!(rel < 0.05, "rel err {rel}");
        // Leading axes nearly collinear: |cos| close to 1.
        let dot: f64 = ipca
            .components
            .row(0)
            .iter()
            .zip(pca.components.row(0))
            .map(|(a, b)| a * b)
            .sum();
        assert!(dot.abs() > 0.99, "cos = {dot}");
    }

    #[test]
    fn randomized_solver_close_to_full() {
        let x = data(50, 5);
        let mut full = IncrementalPca::new(2, SvdSolver::Full);
        full.fit_in_batches(&x, 10).unwrap();
        let mut rnd = IncrementalPca::new(2, SvdSolver::Randomized { seed: 9 });
        rnd.fit_in_batches(&x, 10).unwrap();
        for i in 0..2 {
            let rel = (full.singular_values[i] - rnd.singular_values[i]).abs()
                / full.singular_values[i].max(1e-12);
            assert!(rel < 1e-3, "sigma_{i} rel {rel}");
        }
    }

    #[test]
    fn randomized_solver_is_deterministic() {
        let x = data(30, 4);
        let mut a = IncrementalPca::new(2, SvdSolver::Randomized { seed: 5 });
        a.fit_in_batches(&x, 8).unwrap();
        let mut b = IncrementalPca::new(2, SvdSolver::Randomized { seed: 5 });
        b.fit_in_batches(&x, 8).unwrap();
        assert_eq!(a.singular_values, b.singular_values);
        assert!(a.components.max_abs_diff(&b.components).unwrap() == 0.0);
    }

    #[test]
    fn empty_batch_is_noop_and_errors_are_clean() {
        let mut ipca = IncrementalPca::new(2, SvdSolver::Full);
        ipca.partial_fit(&Matrix::zeros(0, 4)).unwrap();
        assert_eq!(ipca.n_samples_seen, 0);
        // First batch smaller than k.
        assert!(ipca.partial_fit(&Matrix::zeros(1, 4)).is_err());
        // Fit properly, then wrong width.
        ipca.partial_fit(&data(8, 4)).unwrap();
        assert!(ipca.partial_fit(&Matrix::zeros(3, 5)).is_err());
        assert!(IncrementalPca::new(2, SvdSolver::Full)
            .fit_in_batches(&data(8, 4), 0)
            .is_err());
    }

    #[test]
    fn transform_dimensionality_reduction() {
        let x = data(36, 5);
        let mut ipca = IncrementalPca::new(2, SvdSolver::Full);
        ipca.fit_in_batches(&x, 9).unwrap();
        let z = ipca.transform(&x).unwrap();
        assert_eq!(z.rows(), 36);
        assert_eq!(z.cols(), 2);
    }
}
