//! `dml` — machine-learning algorithms over `darray` (the dask-ml stand-in).
//!
//! The paper's analytics workload is dimensionality reduction with
//! **incremental PCA** (dask-ml's `IncrementalPCA`, extended by the authors
//! into a multidimensional, whole-graph version — their fork is cited as
//! `github.com/GueroudjiAmal/dask-ml`). This crate reproduces that stack:
//!
//! * [`pca`] — exact reference PCA (center + SVD) on local matrices,
//! * [`ipca`] — scikit-learn's `IncrementalPCA.partial_fit` algorithm
//!   (incremental mean/variance + augmented SVD), local, both `Full` and
//!   `Randomized` solvers,
//! * [`dipca`] — the distributed versions:
//!   [`dipca::InSituIncrementalPCA`] mirrors the paper's Listing 2 interface
//!   (`fit(gt, ["t","X","Y"], ["X"], ["Y"])`) and supports the two execution
//!   styles the evaluation compares:
//!   - **old IPCA** ([`dipca::InSituIncrementalPCA::fit_stepwise`]): one
//!     `partial_fit` graph submitted and awaited per batch,
//!   - **new IPCA** ([`dipca::InSituIncrementalPCA::fit`]): the `partial_fit`
//!     chain for *all* timesteps built ahead of time and submitted as a
//!     single graph — which is what external tasks make possible in transit.

pub mod dipca;
pub mod dpca;
pub mod ipca;
pub mod pca;

pub use dipca::{register_ml_ops, FittedIpca, InSituIncrementalPCA};
pub use dpca::{DPcaModel, DistributedPca};
pub use ipca::{IncrementalPca, SvdSolver};
pub use pca::Pca;
