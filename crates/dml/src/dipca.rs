//! Distributed incremental PCA over task graphs.
//!
//! The model state travels between tasks as a `Datum`; each `ml.partial_fit`
//! task consumes `(state, batch)` and produces the next state. Two drivers:
//!
//! * [`InSituIncrementalPCA::fit`] — the paper's **new IPCA**: the whole
//!   chain over every timestep is built and submitted as ONE graph (possible
//!   ahead of data arrival thanks to external tasks);
//! * [`InSituIncrementalPCA::fit_stepwise`] — the **old IPCA**: one graph per
//!   batch, submitted and awaited step by step (what DEISA1/post-hoc plain
//!   Dask had to do).

use crate::ipca::{IncrementalPca, SvdSolver};
use darray::{Graph, LabeledArray};
use dtask::{Client, Datum, Key, OpRegistry, TaskSpec};
use linalg::{Matrix, NDArray};

/// Encode the IPCA state as a `Datum` (list layout, stable order).
fn encode_state(m: &IncrementalPca) -> Datum {
    let k = m.components.rows();
    let f = m.components.cols();
    let (solver_tag, seed) = match m.solver {
        SvdSolver::Full => (0i64, 0i64),
        SvdSolver::Randomized { seed } => (1i64, seed as i64),
    };
    Datum::List(vec![
        Datum::I64(m.n_components as i64),
        Datum::I64(solver_tag),
        Datum::I64(seed),
        Datum::I64(m.n_samples_seen as i64),
        Datum::from(NDArray::from_vec(&[m.mean.len()], m.mean.clone()).expect("mean shape")),
        Datum::from(NDArray::from_vec(&[m.var.len()], m.var.clone()).expect("var shape")),
        Datum::from(
            NDArray::from_vec(&[k, f], m.components.data().to_vec()).expect("components shape"),
        ),
        Datum::from(
            NDArray::from_vec(&[m.singular_values.len()], m.singular_values.clone())
                .expect("singvals shape"),
        ),
        Datum::from(
            NDArray::from_vec(&[m.explained_variance.len()], m.explained_variance.clone())
                .expect("ev shape"),
        ),
        Datum::from(
            NDArray::from_vec(
                &[m.explained_variance_ratio.len()],
                m.explained_variance_ratio.clone(),
            )
            .expect("evr shape"),
        ),
    ])
}

/// Decode a state `Datum` back into the model.
fn decode_state(d: &Datum) -> Result<IncrementalPca, String> {
    let l = d.as_list().ok_or("state must be a list")?;
    let geti = |i: usize| -> Result<i64, String> {
        l.get(i)
            .and_then(|v| v.as_i64())
            .ok_or_else(|| format!("state[{i}] not an integer"))
    };
    let geta = |i: usize| -> Result<&std::sync::Arc<NDArray>, String> {
        l.get(i)
            .and_then(|v| v.as_array())
            .ok_or_else(|| format!("state[{i}] not an array"))
    };
    let n_components = geti(0)? as usize;
    let solver = match geti(1)? {
        0 => SvdSolver::Full,
        1 => SvdSolver::Randomized {
            seed: geti(2)? as u64,
        },
        t => return Err(format!("unknown solver tag {t}")),
    };
    let comps = geta(6)?;
    let (k, f) = if comps.ndim() == 2 {
        (comps.shape()[0], comps.shape()[1])
    } else {
        (0, 0)
    };
    Ok(IncrementalPca {
        n_components,
        solver,
        n_samples_seen: geti(3)? as u64,
        mean: geta(4)?.data().to_vec(),
        var: geta(5)?.data().to_vec(),
        components: Matrix::from_vec(k, f, comps.data().to_vec()).map_err(|e| e.to_string())?,
        singular_values: geta(7)?.data().to_vec(),
        explained_variance: geta(8)?.data().to_vec(),
        explained_variance_ratio: geta(9)?.data().to_vec(),
    })
}

/// Register the `ml.*` ops (`ml.ipca_init`, `ml.partial_fit`, and the
/// distributed-PCA kernels). Idempotent.
pub fn register_ml_ops(registry: &OpRegistry) {
    crate::dpca::register_dpca_ops(registry);
    // params: [n_components, solver_tag, seed] -> fresh state
    registry.register("ml.ipca_init", |params, _deps| {
        let l = params
            .as_list()
            .ok_or("ml.ipca_init: params must be a list")?;
        let k = l
            .first()
            .and_then(|v| v.as_i64())
            .ok_or("ml.ipca_init: missing n_components")? as usize;
        let solver = match l.get(1).and_then(|v| v.as_i64()).unwrap_or(0) {
            0 => SvdSolver::Full,
            _ => SvdSolver::Randomized {
                seed: l.get(2).and_then(|v| v.as_i64()).unwrap_or(0) as u64,
            },
        };
        Ok(encode_state(&IncrementalPca::new(k, solver)))
    });

    // deps: [state, batch (samples×features)] -> projected batch (samples×k):
    // (X - mean) @ componentsᵀ — the compressed representation.
    registry.register("ml.project", |_params, deps| {
        let state = deps.first().ok_or("ml.project: missing state")?;
        let batch = deps
            .get(1)
            .and_then(|d| d.as_array())
            .ok_or("ml.project: missing batch array")?;
        let model = decode_state(state)?;
        // Borrow the shared batch block — only the projection is allocated.
        let x = Matrix::from_ndarray_ref(batch).map_err(|e| e.to_string())?;
        let z = model.transform_view(x).map_err(|e| e.to_string())?;
        Ok(Datum::from(z.into_ndarray()))
    });

    // deps: [state, batch(2-D samples×features)] -> next state
    registry.register("ml.partial_fit", |_params, deps| {
        let state = deps.first().ok_or("ml.partial_fit: missing state")?;
        let batch = deps
            .get(1)
            .and_then(|d| d.as_array())
            .ok_or("ml.partial_fit: missing batch array")?;
        if batch.ndim() != 2 {
            return Err(format!(
                "ml.partial_fit: batch must be 2-D, got {:?}",
                batch.shape()
            ));
        }
        let mut model = decode_state(state)?;
        let x = Matrix::from_ndarray_ref(batch).map_err(|e| e.to_string())?;
        model.partial_fit_view(x).map_err(|e| e.to_string())?;
        Ok(encode_state(&model))
    });
}

/// The fitted result handle: the key of the final state task.
#[derive(Debug, Clone)]
pub struct FittedIpca {
    /// Key of the final IPCA state.
    pub state_key: Key,
    /// Number of `partial_fit` stages in the chain.
    pub n_batches: usize,
}

impl FittedIpca {
    /// Gather the fitted model (blocks until the chain completes — in transit
    /// this means until the simulation has produced every timestep).
    pub fn fetch(&self, client: &Client) -> Result<IncrementalPca, String> {
        let state = client
            .future(self.state_key.clone())
            .result()
            .map_err(|e| e.to_string())?;
        decode_state(&state)
    }
}

/// The paper's `InSituIncrementalPCA` (Listing 2): multidimensional
/// incremental PCA with a sequential-PCA-like interface.
#[derive(Debug, Clone)]
pub struct InSituIncrementalPCA {
    /// Number of principal components to keep.
    pub n_components: usize,
    /// SVD backend.
    pub svd_solver: SvdSolver,
}

impl InSituIncrementalPCA {
    /// `InSituIncrementalPCA(n_components=…, svd_solver=…)`.
    pub fn new(n_components: usize, svd_solver: SvdSolver) -> Self {
        InSituIncrementalPCA {
            n_components,
            svd_solver,
        }
    }

    fn init_spec(&self, graph: &mut Graph) -> Key {
        let (tag, seed) = match self.svd_solver {
            SvdSolver::Full => (0i64, 0i64),
            SvdSolver::Randomized { seed } => (1i64, seed as i64),
        };
        let key = graph.fresh_key("ipca-state");
        graph.add(TaskSpec::new(
            key.clone(),
            "ml.ipca_init",
            Datum::List(vec![
                Datum::I64(self.n_components as i64),
                Datum::I64(tag),
                Datum::I64(seed),
            ]),
            vec![],
        ));
        key
    }

    /// Chain `partial_fit` tasks over pre-built batch keys into `graph`.
    pub fn fit_batches(&self, graph: &mut Graph, batches: &[Key]) -> FittedIpca {
        let mut state = self.init_spec(graph);
        for batch in batches {
            let next = graph.fresh_key("ipca-state");
            graph.add(TaskSpec::new(
                next.clone(),
                "ml.partial_fit",
                Datum::Null,
                vec![state, batch.clone()],
            ));
            state = next;
        }
        // The final state is the product a caller fetches: protect it from
        // the graph optimizer (cull keeps its whole chain; fuse never
        // swallows it as an interior stage).
        graph.mark_output(&state);
        FittedIpca {
            state_key: state,
            n_batches: batches.len(),
        }
    }

    /// **New IPCA** (paper §3.2): one call builds the whole graph — batch
    /// assembly per timestep plus the full `partial_fit` chain — into
    /// `graph`; submit it once with `graph.submit(&client)`. Mirrors
    /// `ipca.fit(gt, ["t","X","Y"], ["X"], ["Y"])` from Listing 2.
    pub fn fit(
        &self,
        graph: &mut Graph,
        gt: &LabeledArray,
        time_label: &str,
        sample_labels: &[&str],
        feature_labels: &[&str],
    ) -> Result<FittedIpca, String> {
        let batches = gt
            .batches_along(graph, time_label, sample_labels, feature_labels)
            .map_err(|e| e.to_string())?;
        Ok(self.fit_batches(graph, &batches))
    }

    /// Project per-timestep batches onto a fitted state: appends one
    /// `ml.project` task per batch (depending on `state_key`) and returns the
    /// keys of the compressed `(samples × k)` outputs — the in-transit
    /// dimensionality-reduction product.
    pub fn transform_batches(
        &self,
        graph: &mut Graph,
        state_key: &Key,
        batches: &[Key],
    ) -> Vec<Key> {
        batches
            .iter()
            .map(|b| {
                let out = graph.fresh_key("proj");
                graph.add(TaskSpec::new(
                    out.clone(),
                    "ml.project",
                    Datum::Null,
                    vec![state_key.clone(), b.clone()],
                ));
                // Compressed outputs are fetched by the analytics client —
                // keep them visible to the optimizer as requested results.
                graph.mark_output(&out);
                out
            })
            .collect()
    }

    /// **Old IPCA**: submit one graph per batch and wait for each state
    /// before building the next — the per-timestep submission pattern of the
    /// original dask-ml `IncrementalPCA` driven step by step. Returns the
    /// final model directly. `graph_count` reports how many submissions
    /// happened (for the message-accounting tests).
    pub fn fit_stepwise(
        &self,
        client: &Client,
        gt: &LabeledArray,
        time_label: &str,
        sample_labels: &[&str],
        feature_labels: &[&str],
    ) -> Result<(IncrementalPca, usize), String> {
        let tdim = gt.dim_index(time_label).map_err(|e| e.to_string())?;
        let t_extent = gt.array().shape()[tdim];
        let mut submissions = 0usize;
        // Initial state graph.
        let mut g = Graph::new("ipca-sw-init".to_string());
        let mut state_key = self.init_spec(&mut g);
        g.submit(client);
        submissions += 1;
        for t in 0..t_extent {
            let mut g = Graph::new(format!("ipca-sw-{t}"));
            // Assemble only this timestep's batch.
            let batch_keys = {
                // Build a 1-step labeled slice by reusing batches_along on a
                // sliced view would rebuild all steps; instead assemble the
                // cross-section directly.
                let rank = gt.array().grid().ndim();
                let shape = gt.array().shape().to_vec();
                let mut starts = vec![0usize; rank];
                starts[tdim] = t;
                let mut sizes = shape.clone();
                sizes[tdim] = 1;
                let xsec = gt
                    .array()
                    .slice_chunked(&mut g, &starts, &sizes, &sizes)
                    .map_err(|e| e.to_string())?;
                let mut sample_axes: Vec<usize> = vec![tdim];
                for l in sample_labels {
                    sample_axes.push(gt.dim_index(l).map_err(|e| e.to_string())?);
                }
                let mut feature_axes = Vec::new();
                for l in feature_labels {
                    feature_axes.push(gt.dim_index(l).map_err(|e| e.to_string())?);
                }
                let bkey = g.fresh_key("batch");
                g.add(TaskSpec::new(
                    bkey.clone(),
                    "da.stack2d",
                    Datum::List(vec![
                        darray::ops::ilist(&sample_axes),
                        darray::ops::ilist(&feature_axes),
                    ]),
                    vec![xsec.keys()[0].clone()],
                ));
                bkey
            };
            let next = g.fresh_key("state");
            g.add(TaskSpec::new(
                next.clone(),
                "ml.partial_fit",
                Datum::Null,
                vec![state_key.clone(), batch_keys],
            ));
            g.submit(client);
            submissions += 1;
            // Old behaviour: wait for this step's state before continuing.
            client
                .future(next.clone())
                .wait()
                .map_err(|e| e.to_string())?;
            state_key = next;
        }
        let model = FittedIpca {
            state_key,
            n_batches: t_extent,
        }
        .fetch(client)?;
        Ok((model, submissions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::Pca;
    use darray::{register_array_ops, DArray};
    use dtask::Cluster;

    fn cluster() -> Cluster {
        let c = Cluster::new(3);
        register_array_ops(c.registry());
        register_ml_ops(c.registry());
        c
    }

    #[test]
    fn state_encode_decode_roundtrip() {
        let mut m = IncrementalPca::new(2, SvdSolver::Randomized { seed: 7 });
        let x = Matrix::from_fn(12, 4, |i, j| (i * 4 + j) as f64 * 0.3);
        m.partial_fit(&x).unwrap();
        let back = decode_state(&encode_state(&m)).unwrap();
        assert_eq!(back.n_samples_seen, 12);
        assert_eq!(back.solver, m.solver);
        assert_eq!(back.mean, m.mean);
        assert_eq!(back.singular_values, m.singular_values);
        assert!(back.components.max_abs_diff(&m.components).unwrap() == 0.0);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_state(&Datum::Null).is_err());
        assert!(decode_state(&Datum::List(vec![Datum::I64(2)])).is_err());
    }

    /// Build a (T, X, Y) linear-pattern array and the matching local batches.
    fn setup(t: usize, x: usize, y: usize) -> (Cluster, LabeledArray, Vec<Matrix>) {
        let c = cluster();
        let client = c.client();
        let mut g = Graph::new("setup");
        let a = DArray::linear(&mut g, &[t, x, y], &[1, x.div_ceil(2), y.div_ceil(2)]).unwrap();
        g.submit(&client);
        // Local reference batches: batch_t[yy, xx] = value at (t, xx, yy).
        let mut batches = Vec::new();
        for tt in 0..t {
            batches.push(Matrix::from_fn(y, x, |yy, xx| {
                ((tt * x + xx) * y + yy) as f64
            }));
        }
        let la = LabeledArray::new(a, &["t", "X", "Y"]).unwrap();
        drop(client);
        (c, la, batches)
    }

    #[test]
    fn whole_graph_fit_matches_local_ipca() {
        let (cluster, gt, batches) = setup(4, 3, 5);
        let client = cluster.client();
        let ipca = InSituIncrementalPCA::new(2, SvdSolver::Full);
        let mut g = Graph::new("fit");
        let fitted = ipca.fit(&mut g, &gt, "t", &["Y"], &["X"]).unwrap();
        assert_eq!(fitted.n_batches, 4);
        g.submit(&client);
        let model = fitted.fetch(&client).unwrap();

        let mut local = IncrementalPca::new(2, SvdSolver::Full);
        for b in &batches {
            local.partial_fit(b).unwrap();
        }
        assert_eq!(model.n_samples_seen, local.n_samples_seen);
        for (a, b) in model.singular_values.iter().zip(&local.singular_values) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!(model.components.max_abs_diff(&local.components).unwrap() < 1e-9);
    }

    #[test]
    fn stepwise_fit_matches_whole_graph() {
        let (cluster, gt, _batches) = setup(3, 4, 4);
        let client = cluster.client();
        let ipca = InSituIncrementalPCA::new(2, SvdSolver::Full);

        let (sw_model, submissions) = ipca
            .fit_stepwise(&client, &gt, "t", &["Y"], &["X"])
            .unwrap();
        assert_eq!(submissions, 4); // init + 3 steps

        let mut g = Graph::new("whole");
        let fitted = ipca.fit(&mut g, &gt, "t", &["Y"], &["X"]).unwrap();
        g.submit(&client);
        let wg_model = fitted.fetch(&client).unwrap();

        assert_eq!(sw_model.n_samples_seen, wg_model.n_samples_seen);
        for (a, b) in sw_model
            .singular_values
            .iter()
            .zip(&wg_model.singular_values)
        {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(
            sw_model
                .components
                .max_abs_diff(&wg_model.components)
                .unwrap()
                < 1e-9
        );
    }

    #[test]
    fn in_situ_external_tasks_whole_graph_before_data() {
        // The headline behaviour: analytics graph over external blocks is
        // submitted BEFORE the simulation produces anything.
        let cluster = cluster();
        let client = cluster.client();
        let (t, x, y) = (3usize, 2usize, 4usize);
        // External keys, one block per timestep (block covers the whole
        // spatial domain here; deisa-core tests cover multi-block).
        let keys: Vec<dtask::Key> = (0..t)
            .map(|i| dtask::Key::new(format!("sim-{i}")))
            .collect();
        client.register_external(keys.clone());
        let grid = darray::ChunkGrid::regular(&[t, x, y], &[1, x, y]).unwrap();
        let a = DArray::from_keys(grid, keys.clone()).unwrap();
        let gt = LabeledArray::new(a, &["t", "X", "Y"]).unwrap();

        let ipca = InSituIncrementalPCA::new(2, SvdSolver::Full);
        let mut g = Graph::new("insitu");
        let fitted = ipca.fit(&mut g, &gt, "t", &["Y"], &["X"]).unwrap();
        g.submit(&client); // submitted; nothing can run yet

        // Simulation produces blocks over time.
        let bridge = cluster.client();
        for (tt, key) in keys.iter().enumerate() {
            let block = NDArray::from_fn(&[1, x, y], |idx| {
                ((tt * x + idx[1]) * y + idx[2]) as f64 * 0.5 + (tt as f64)
            });
            bridge.scatter_external(vec![(key.clone(), Datum::from(block))], None);
        }
        let model = fitted.fetch(&client).unwrap();
        assert_eq!(model.n_samples_seen, (t * y) as u64);

        // Reference local computation.
        let mut local = IncrementalPca::new(2, SvdSolver::Full);
        for tt in 0..t {
            let b = Matrix::from_fn(y, x, |yy, xx| {
                ((tt * x + xx) * y + yy) as f64 * 0.5 + tt as f64
            });
            local.partial_fit(&b).unwrap();
        }
        assert!(model.components.max_abs_diff(&local.components).unwrap() < 1e-9);
    }

    #[test]
    fn whole_graph_fit_with_optimizer_and_batching_matches() {
        // Same computation as `whole_graph_fit_matches_local_ipca`, but on a
        // cluster with the graph optimizer and batched ingestion enabled —
        // the fused/culled/coalesced path must be numerically identical.
        let c = dtask::Cluster::with_config(dtask::ClusterConfig {
            n_workers: 3,
            optimize: dtask::OptimizeConfig::enabled(),
            ingest: dtask::IngestMode::Batched { max_burst: 64 },
            ..Default::default()
        });
        register_array_ops(c.registry());
        register_ml_ops(c.registry());
        let client = c.client();
        let (t, x, y) = (4usize, 3usize, 5usize);
        let mut g = Graph::new("setup");
        let a = DArray::linear(&mut g, &[t, x, y], &[1, x.div_ceil(2), y.div_ceil(2)]).unwrap();
        g.submit(&client);
        let gt = LabeledArray::new(a, &["t", "X", "Y"]).unwrap();

        let ipca = InSituIncrementalPCA::new(2, SvdSolver::Full);
        let mut g = Graph::new("fit");
        let fitted = ipca.fit(&mut g, &gt, "t", &["Y"], &["X"]).unwrap();
        g.submit(&client);
        let model = fitted.fetch(&client).unwrap();

        let mut local = IncrementalPca::new(2, SvdSolver::Full);
        for tt in 0..t {
            let b = Matrix::from_fn(y, x, |yy, xx| ((tt * x + xx) * y + yy) as f64);
            local.partial_fit(&b).unwrap();
        }
        assert_eq!(model.n_samples_seen, local.n_samples_seen);
        assert!(model.components.max_abs_diff(&local.components).unwrap() < 1e-9);
        // The optimizer actually ran over the submitted graphs.
        assert!(c.stats().optimize_tasks_in() > 0);
    }

    #[test]
    fn distributed_matches_exact_pca_at_full_rank() {
        let (cluster, gt, batches) = setup(5, 3, 4);
        let client = cluster.client();
        let ipca = InSituIncrementalPCA::new(3, SvdSolver::Full);
        let mut g = Graph::new("exact");
        let fitted = ipca.fit(&mut g, &gt, "t", &["Y"], &["X"]).unwrap();
        g.submit(&client);
        let model = fitted.fetch(&client).unwrap();

        // Stack every batch into one matrix for reference PCA.
        let refs: Vec<&Matrix> = batches.iter().collect();
        let all = Matrix::vstack(&refs).unwrap();
        let pca = Pca::fit(&all, 3).unwrap();
        for (a, b) in model.singular_values.iter().zip(&pca.singular_values) {
            // Absolute tolerance covers exact-zero trailing singular values
            // (the linear pattern is affine, hence rank 2 after centering).
            assert!((a - b).abs() < 1e-8 + 1e-6 * b, "{a} vs {b}");
        }
    }

    #[test]
    fn transform_batches_match_local_projection() {
        let (cluster, gt, batches) = setup(3, 3, 4);
        let client = cluster.client();
        let ipca = InSituIncrementalPCA::new(2, SvdSolver::Full);
        let mut g = Graph::new("proj");
        let batch_keys = gt.batches_along(&mut g, "t", &["Y"], &["X"]).unwrap();
        let fitted = ipca.fit_batches(&mut g, &batch_keys);
        let projected = ipca.transform_batches(&mut g, &fitted.state_key, &batch_keys);
        g.submit(&client);
        let model = fitted.fetch(&client).unwrap();

        let mut local = IncrementalPca::new(2, SvdSolver::Full);
        for b in &batches {
            local.partial_fit(b).unwrap();
        }
        for (t, key) in projected.iter().enumerate() {
            let z = client.future(key.clone()).result().unwrap();
            let z = z.as_array().unwrap();
            assert_eq!(z.shape(), &[4, 2]); // Y samples × k
            let expect = local.transform(&batches[t]).unwrap();
            let got = Matrix::from_ndarray((**z).clone()).unwrap();
            assert!(got.max_abs_diff(&expect).unwrap() < 1e-9);
        }
        // Reconstruction sanity: projecting reduces dimension 3 -> 2.
        assert_eq!(model.components.rows(), 2);
    }
}
