//! `h5lite` — a chunked multidimensional array container file format.
//!
//! The paper's post-hoc baseline writes each timestep to HDF5 on a Lustre
//! parallel filesystem, then plain Dask reads the chunked datasets back. We
//! have no HDF5, so this crate implements the features that path needs:
//!
//! * one file holds many named **datasets**,
//! * a dataset is an n-D `f64` array with a fixed **chunk shape**; chunks are
//!   written independently (each rank writes its own block per timestep),
//! * readers fetch single chunks or arbitrary hyper-rectangular **slices**
//!   assembled from the covering chunks — the same chunk-aligned access Dask
//!   uses ("We have chunked the HDF5 files and used the same chunking in the
//!   analytics", §3.3.1).
//!
//! ## On-disk layout
//!
//! ```text
//! [magic "H5LITE\0\1"] [chunk payloads ...] [index] [index offset: u64] [magic]
//! ```
//!
//! Chunks are appended as raw little-endian `f64`; the index (dataset table +
//! per-chunk offsets) is written at close, footer-pointer style, so writers
//! never seek backwards — mirroring append-friendly PFS usage.

pub mod format;
pub mod reader;
pub mod writer;

pub use format::{ChunkCoord, DatasetMeta, FormatError};
pub use reader::H5Reader;
pub use writer::{H5Writer, SharedWriter};

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::NDArray;

    #[test]
    fn end_to_end_roundtrip() {
        let dir = std::env::temp_dir().join(format!("h5lite-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.h5l");

        let mut w = H5Writer::create(&path).unwrap();
        w.create_dataset("temp", &[4, 6], &[2, 3]).unwrap();
        for ci in 0..2 {
            for cj in 0..2 {
                let chunk =
                    NDArray::from_fn(&[2, 3], |i| (ci * 100 + cj * 10 + i[0] * 3 + i[1]) as f64);
                w.write_chunk("temp", &[ci, cj], &chunk).unwrap();
            }
        }
        w.close().unwrap();

        let r = H5Reader::open(&path).unwrap();
        assert_eq!(r.dataset_names(), vec!["temp".to_string()]);
        let meta = r.dataset("temp").unwrap();
        assert_eq!(meta.shape, vec![4, 6]);
        let c = r.read_chunk("temp", &[1, 1]).unwrap();
        assert_eq!(c.get(&[0, 0]), 110.0);
        // Cross-chunk slice.
        let s = r.read_slice("temp", &[1, 2], &[2, 2]).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.get(&[0, 0]), 5.0); // chunk (0,0) element (1,2)
        assert_eq!(s.get(&[1, 1]), 110.0); // chunk (1,1) element (0,0)
        std::fs::remove_file(&path).unwrap();
    }
}
