//! On-disk format structures and binary (de)serialization of the index.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashMap;

/// File magic, 8 bytes (name + format version).
pub const MAGIC: &[u8; 8] = b"H5LITE\0\x01";

/// Chunk grid coordinates of a chunk within a dataset.
pub type ChunkCoord = Vec<usize>;

/// Errors reading or writing the container format.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not an h5lite container or is corrupt.
    Corrupt(String),
    /// Caller error: unknown dataset, bad chunk coordinates, shape mismatch…
    BadRequest(String),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "h5lite io: {e}"),
            FormatError::Corrupt(m) => write!(f, "h5lite corrupt file: {m}"),
            FormatError::BadRequest(m) => write!(f, "h5lite bad request: {m}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        FormatError::Io(e)
    }
}

/// Metadata of one dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetMeta {
    /// Global array shape.
    pub shape: Vec<usize>,
    /// Chunk shape; each dimension divides into ceil(shape/chunk) chunks.
    pub chunk_shape: Vec<usize>,
    /// Byte offset and length of each written chunk.
    pub chunks: HashMap<ChunkCoord, (u64, u64)>,
}

impl DatasetMeta {
    /// Number of chunks along each dimension.
    pub fn chunk_grid(&self) -> Vec<usize> {
        self.shape
            .iter()
            .zip(&self.chunk_shape)
            .map(|(&s, &c)| s.div_ceil(c))
            .collect()
    }

    /// Actual shape of the chunk at `coord` (edge chunks may be smaller).
    pub fn chunk_extent(&self, coord: &[usize]) -> Result<Vec<usize>, FormatError> {
        if coord.len() != self.shape.len() {
            return Err(FormatError::BadRequest(format!(
                "chunk coord rank {} vs dataset rank {}",
                coord.len(),
                self.shape.len()
            )));
        }
        let grid = self.chunk_grid();
        let mut extent = Vec::with_capacity(coord.len());
        for d in 0..coord.len() {
            if coord[d] >= grid[d] {
                return Err(FormatError::BadRequest(format!(
                    "chunk coord {:?} outside grid {:?}",
                    coord, grid
                )));
            }
            let start = coord[d] * self.chunk_shape[d];
            extent.push(self.chunk_shape[d].min(self.shape[d] - start));
        }
        Ok(extent)
    }

    /// Element offset (per dimension) of the chunk at `coord`.
    pub fn chunk_start(&self, coord: &[usize]) -> Vec<usize> {
        coord
            .iter()
            .zip(&self.chunk_shape)
            .map(|(&c, &s)| c * s)
            .collect()
    }
}

fn put_usize_list(buf: &mut BytesMut, list: &[usize]) {
    buf.put_u32_le(list.len() as u32);
    for &v in list {
        buf.put_u64_le(v as u64);
    }
}

fn get_usize_list(buf: &mut Bytes) -> Result<Vec<usize>, FormatError> {
    if buf.remaining() < 4 {
        return Err(FormatError::Corrupt("truncated list length".into()));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 8 {
        return Err(FormatError::Corrupt("truncated list".into()));
    }
    Ok((0..n).map(|_| buf.get_u64_le() as usize).collect())
}

/// Serialize the dataset table into the index payload.
pub fn encode_index(datasets: &[(String, DatasetMeta)]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(datasets.len() as u32);
    for (name, meta) in datasets {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
        put_usize_list(&mut buf, &meta.shape);
        put_usize_list(&mut buf, &meta.chunk_shape);
        buf.put_u32_le(meta.chunks.len() as u32);
        // Deterministic order for reproducible files.
        let mut entries: Vec<_> = meta.chunks.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for (coord, (off, len)) in entries {
            put_usize_list(&mut buf, coord);
            buf.put_u64_le(*off);
            buf.put_u64_le(*len);
        }
    }
    buf.freeze()
}

/// Parse the index payload back into the dataset table.
pub fn decode_index(mut buf: Bytes) -> Result<Vec<(String, DatasetMeta)>, FormatError> {
    if buf.remaining() < 4 {
        return Err(FormatError::Corrupt("truncated index".into()));
    }
    let n_datasets = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n_datasets);
    for _ in 0..n_datasets {
        if buf.remaining() < 4 {
            return Err(FormatError::Corrupt("truncated name length".into()));
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len {
            return Err(FormatError::Corrupt("truncated name".into()));
        }
        let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
            .map_err(|_| FormatError::Corrupt("non-utf8 dataset name".into()))?;
        let shape = get_usize_list(&mut buf)?;
        let chunk_shape = get_usize_list(&mut buf)?;
        if shape.len() != chunk_shape.len() {
            return Err(FormatError::Corrupt("rank mismatch in index".into()));
        }
        if buf.remaining() < 4 {
            return Err(FormatError::Corrupt("truncated chunk count".into()));
        }
        let n_chunks = buf.get_u32_le() as usize;
        let mut chunks = HashMap::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            let coord = get_usize_list(&mut buf)?;
            if buf.remaining() < 16 {
                return Err(FormatError::Corrupt("truncated chunk entry".into()));
            }
            let off = buf.get_u64_le();
            let len = buf.get_u64_le();
            chunks.insert(coord, (off, len));
        }
        out.push((
            name,
            DatasetMeta {
                shape,
                chunk_shape,
                chunks,
            },
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> DatasetMeta {
        let mut chunks = HashMap::new();
        chunks.insert(vec![0, 0], (8, 48));
        chunks.insert(vec![1, 2], (56, 48));
        DatasetMeta {
            shape: vec![5, 9],
            chunk_shape: vec![2, 3],
            chunks,
        }
    }

    #[test]
    fn index_roundtrip() {
        let table = vec![("temp".to_string(), meta()), ("vel".to_string(), meta())];
        let decoded = decode_index(encode_index(&table)).unwrap();
        assert_eq!(decoded, table);
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = encode_index(&[("x".to_string(), meta())]);
        for cut in [0usize, 3, 7, bytes.len() - 1] {
            assert!(decode_index(bytes.slice(..cut)).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn chunk_grid_and_extents() {
        let m = meta();
        assert_eq!(m.chunk_grid(), vec![3, 3]);
        // Interior chunk: full size.
        assert_eq!(m.chunk_extent(&[0, 0]).unwrap(), vec![2, 3]);
        // Edge chunk: dimension 0 has 5 rows => last chunk is 1 row tall.
        assert_eq!(m.chunk_extent(&[2, 0]).unwrap(), vec![1, 3]);
        assert!(m.chunk_extent(&[3, 0]).is_err());
        assert!(m.chunk_extent(&[0]).is_err());
        assert_eq!(m.chunk_start(&[1, 2]), vec![2, 6]);
    }
}
