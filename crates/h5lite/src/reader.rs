//! Container reader with chunk and slice access.

use crate::format::{decode_index, DatasetMeta, FormatError, MAGIC};
use bytes::Bytes;
use linalg::NDArray;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Mutex;

/// Reader over a closed h5lite container.
pub struct H5Reader {
    file: Mutex<File>,
    datasets: Vec<(String, DatasetMeta)>,
    by_name: HashMap<String, usize>,
    /// Total bytes of chunk payload fetched, for I/O accounting in benches.
    bytes_read: std::sync::atomic::AtomicU64,
}

impl H5Reader {
    /// Open and validate a container, loading the index.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, FormatError> {
        let mut file = File::open(path)?;
        let total = file.seek(SeekFrom::End(0))?;
        let footer_len = (8 + MAGIC.len()) as u64;
        if total < (MAGIC.len() as u64) * 2 + 8 {
            return Err(FormatError::Corrupt("file too small".into()));
        }
        // Leading magic.
        let mut head = [0u8; 8];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        if &head != MAGIC {
            return Err(FormatError::Corrupt("bad leading magic".into()));
        }
        // Footer: [index offset u64][magic].
        file.seek(SeekFrom::End(-(footer_len as i64)))?;
        let mut footer = vec![0u8; footer_len as usize];
        file.read_exact(&mut footer)?;
        if &footer[8..] != MAGIC {
            return Err(FormatError::Corrupt(
                "bad trailing magic (file not closed?)".into(),
            ));
        }
        let index_offset = u64::from_le_bytes(footer[..8].try_into().expect("8 bytes"));
        if index_offset >= total - footer_len {
            return Err(FormatError::Corrupt("index offset out of range".into()));
        }
        let index_len = total - footer_len - index_offset;
        file.seek(SeekFrom::Start(index_offset))?;
        let mut index_bytes = vec![0u8; index_len as usize];
        file.read_exact(&mut index_bytes)?;
        let datasets = decode_index(Bytes::from(index_bytes))?;
        let by_name = datasets
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.clone(), i))
            .collect();
        Ok(H5Reader {
            file: Mutex::new(file),
            datasets,
            by_name,
            bytes_read: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Names of all datasets, in creation order.
    pub fn dataset_names(&self) -> Vec<String> {
        self.datasets.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Metadata of one dataset.
    pub fn dataset(&self, name: &str) -> Option<&DatasetMeta> {
        self.by_name.get(name).map(|&i| &self.datasets[i].1)
    }

    /// Total chunk payload bytes fetched so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Read one chunk into an array of the chunk's extent.
    pub fn read_chunk(&self, name: &str, coord: &[usize]) -> Result<NDArray, FormatError> {
        let meta = self
            .dataset(name)
            .ok_or_else(|| FormatError::BadRequest(format!("unknown dataset '{name}'")))?;
        let extent = meta.chunk_extent(coord)?;
        let (off, len) = *meta.chunks.get(coord).ok_or_else(|| {
            FormatError::BadRequest(format!("chunk {:?} was never written", coord))
        })?;
        let expected = (extent.iter().product::<usize>() * 8) as u64;
        if len != expected {
            return Err(FormatError::Corrupt(format!(
                "chunk {:?} payload {} bytes, expected {}",
                coord, len, expected
            )));
        }
        let mut payload = vec![0u8; len as usize];
        {
            let mut file = self.file.lock().expect("reader lock");
            file.seek(SeekFrom::Start(off))?;
            file.read_exact(&mut payload)?;
        }
        self.bytes_read
            .fetch_add(len, std::sync::atomic::Ordering::Relaxed);
        let data: Vec<f64> = payload
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
            .collect();
        NDArray::from_vec(&extent, data).map_err(|e| FormatError::Corrupt(e.to_string()))
    }

    /// Read an arbitrary hyper-rectangular slice, assembling from all covering
    /// chunks. Errors if any needed chunk was never written.
    pub fn read_slice(
        &self,
        name: &str,
        starts: &[usize],
        sizes: &[usize],
    ) -> Result<NDArray, FormatError> {
        let meta = self
            .dataset(name)
            .ok_or_else(|| FormatError::BadRequest(format!("unknown dataset '{name}'")))?
            .clone();
        let rank = meta.shape.len();
        if starts.len() != rank || sizes.len() != rank {
            return Err(FormatError::BadRequest("slice rank mismatch".into()));
        }
        for d in 0..rank {
            if starts[d] + sizes[d] > meta.shape[d] {
                return Err(FormatError::BadRequest(format!(
                    "slice dim {d} out of bounds"
                )));
            }
        }
        let mut out = NDArray::zeros(sizes);
        // Chunk coordinate ranges covered by the slice.
        let lo: Vec<usize> = (0..rank).map(|d| starts[d] / meta.chunk_shape[d]).collect();
        let hi: Vec<usize> = (0..rank)
            .map(|d| (starts[d] + sizes[d] - 1) / meta.chunk_shape[d])
            .collect();
        // Iterate the chunk hyper-rectangle with an odometer.
        let mut coord = lo.clone();
        loop {
            let chunk = self.read_chunk(name, &coord)?;
            let cstart = meta.chunk_start(&coord);
            let cextent = chunk.shape().to_vec();
            // Intersection of chunk and slice, in global coordinates.
            let mut istart = vec![0usize; rank];
            let mut isize = vec![0usize; rank];
            for d in 0..rank {
                let g0 = cstart[d].max(starts[d]);
                let g1 = (cstart[d] + cextent[d]).min(starts[d] + sizes[d]);
                istart[d] = g0;
                isize[d] = g1 - g0;
            }
            let local_start: Vec<usize> = (0..rank).map(|d| istart[d] - cstart[d]).collect();
            let block = chunk
                .slice(&local_start, &isize)
                .map_err(|e| FormatError::Corrupt(e.to_string()))?;
            let out_start: Vec<usize> = (0..rank).map(|d| istart[d] - starts[d]).collect();
            out.assign_slice(&out_start, &block)
                .map_err(|e| FormatError::Corrupt(e.to_string()))?;
            // Odometer over chunk coords lo..=hi.
            let mut d = rank;
            loop {
                if d == 0 {
                    return Ok(out);
                }
                d -= 1;
                coord[d] += 1;
                if coord[d] <= hi[d] {
                    break;
                }
                coord[d] = lo[d];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::H5Writer;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("h5lite-r-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_grid(path: &std::path::Path, shape: &[usize], chunk: &[usize]) {
        let mut w = H5Writer::create(path).unwrap();
        w.create_dataset("d", shape, chunk).unwrap();
        let meta = DatasetMeta {
            shape: shape.to_vec(),
            chunk_shape: chunk.to_vec(),
            chunks: Default::default(),
        };
        let grid = meta.chunk_grid();
        let mut coord = vec![0usize; shape.len()];
        loop {
            let extent = meta.chunk_extent(&coord).unwrap();
            let start = meta.chunk_start(&coord);
            let block = NDArray::from_fn(&extent, |i| {
                // Global linear index as the value.
                let mut v = 0usize;
                for d in 0..shape.len() {
                    v = v * shape[d] + start[d] + i[d];
                }
                v as f64
            });
            w.write_chunk("d", &coord, &block).unwrap();
            let mut d = shape.len();
            loop {
                if d == 0 {
                    w.close().unwrap();
                    return;
                }
                d -= 1;
                coord[d] += 1;
                if coord[d] < grid[d] {
                    break;
                }
                coord[d] = 0;
            }
        }
    }

    #[test]
    fn slice_equals_direct_index_2d() {
        let path = tmp("slice2d.h5l");
        write_grid(&path, &[7, 9], &[3, 4]);
        let r = H5Reader::open(&path).unwrap();
        let s = r.read_slice("d", &[2, 3], &[4, 5]).unwrap();
        for i in 0..4 {
            for j in 0..5 {
                assert_eq!(s.get(&[i, j]), ((2 + i) * 9 + 3 + j) as f64);
            }
        }
    }

    #[test]
    fn slice_equals_direct_index_3d() {
        let path = tmp("slice3d.h5l");
        write_grid(&path, &[4, 5, 6], &[2, 2, 3]);
        let r = H5Reader::open(&path).unwrap();
        let s = r.read_slice("d", &[1, 1, 2], &[2, 3, 3]).unwrap();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..3 {
                    assert_eq!(
                        s.get(&[i, j, k]),
                        (((1 + i) * 5 + 1 + j) * 6 + 2 + k) as f64
                    );
                }
            }
        }
    }

    #[test]
    fn whole_array_slice() {
        let path = tmp("whole.h5l");
        write_grid(&path, &[6, 6], &[4, 4]);
        let r = H5Reader::open(&path).unwrap();
        let s = r.read_slice("d", &[0, 0], &[6, 6]).unwrap();
        assert_eq!(s.get(&[5, 5]), 35.0);
        assert!(r.bytes_read() >= 36 * 8);
    }

    #[test]
    fn missing_chunk_is_an_error() {
        let path = tmp("missing.h5l");
        let mut w = H5Writer::create(&path).unwrap();
        w.create_dataset("d", &[4, 4], &[2, 2]).unwrap();
        w.write_chunk("d", &[0, 0], &NDArray::zeros(&[2, 2]))
            .unwrap();
        w.close().unwrap();
        let r = H5Reader::open(&path).unwrap();
        assert!(r.read_chunk("d", &[1, 1]).is_err());
        assert!(r.read_slice("d", &[0, 0], &[4, 4]).is_err());
        // But the written corner works.
        assert!(r.read_slice("d", &[0, 0], &[2, 2]).is_ok());
    }

    #[test]
    fn unclosed_file_is_rejected() {
        let path = tmp("unclosed.h5l");
        {
            let mut w = H5Writer::create(&path).unwrap();
            w.create_dataset("d", &[2, 2], &[2, 2]).unwrap();
            w.write_chunk("d", &[0, 0], &NDArray::zeros(&[2, 2]))
                .unwrap();
            // dropped without close()
        }
        assert!(matches!(
            H5Reader::open(&path),
            Err(FormatError::Corrupt(_))
        ));
    }

    #[test]
    fn not_a_container_is_rejected() {
        let path = tmp("garbage.h5l");
        std::fs::write(&path, b"definitely not an h5lite file, but long enough").unwrap();
        assert!(H5Reader::open(&path).is_err());
    }

    #[test]
    fn slice_bounds_checked() {
        let path = tmp("bounds.h5l");
        write_grid(&path, &[4, 4], &[2, 2]);
        let r = H5Reader::open(&path).unwrap();
        assert!(r.read_slice("d", &[3, 3], &[2, 2]).is_err());
        assert!(r.read_slice("d", &[0], &[1]).is_err());
        assert!(r.read_slice("nope", &[0, 0], &[1, 1]).is_err());
    }
}
