//! Append-only container writer.

use crate::format::{encode_index, DatasetMeta, FormatError, MAGIC};
use linalg::NDArray;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// Writer for a new h5lite container. Chunks append sequentially; the index
/// goes at the end on [`H5Writer::close`]. Dropping without closing loses the
/// index (like crashing before `H5Fclose`), which tests cover.
pub struct H5Writer {
    file: BufWriter<File>,
    offset: u64,
    datasets: Vec<(String, DatasetMeta)>,
    by_name: HashMap<String, usize>,
    closed: bool,
}

impl H5Writer {
    /// Create (truncate) a container at `path` and write the magic.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, FormatError> {
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(MAGIC)?;
        Ok(H5Writer {
            file,
            offset: MAGIC.len() as u64,
            datasets: Vec::new(),
            by_name: HashMap::new(),
            closed: false,
        })
    }

    /// Declare a dataset with its global shape and chunk shape.
    pub fn create_dataset(
        &mut self,
        name: &str,
        shape: &[usize],
        chunk_shape: &[usize],
    ) -> Result<(), FormatError> {
        if self.by_name.contains_key(name) {
            return Err(FormatError::BadRequest(format!(
                "dataset '{name}' already exists"
            )));
        }
        if shape.len() != chunk_shape.len() || shape.is_empty() {
            return Err(FormatError::BadRequest(format!(
                "bad shapes: {:?} chunked {:?}",
                shape, chunk_shape
            )));
        }
        if chunk_shape.contains(&0) || shape.contains(&0) {
            return Err(FormatError::BadRequest("zero-sized dimension".into()));
        }
        self.by_name.insert(name.to_string(), self.datasets.len());
        self.datasets.push((
            name.to_string(),
            DatasetMeta {
                shape: shape.to_vec(),
                chunk_shape: chunk_shape.to_vec(),
                chunks: HashMap::new(),
            },
        ));
        Ok(())
    }

    /// Append one chunk. `data`'s shape must equal the chunk extent at
    /// `coord` (edge chunks are smaller). Rewriting a chunk is allowed; the
    /// last write wins (the index points at the newest payload).
    pub fn write_chunk(
        &mut self,
        dataset: &str,
        coord: &[usize],
        data: &NDArray,
    ) -> Result<(), FormatError> {
        let idx = *self
            .by_name
            .get(dataset)
            .ok_or_else(|| FormatError::BadRequest(format!("unknown dataset '{dataset}'")))?;
        let meta = &mut self.datasets[idx].1;
        let extent = meta.chunk_extent(coord)?;
        if data.shape() != extent.as_slice() {
            return Err(FormatError::BadRequest(format!(
                "chunk {:?} wants shape {:?}, got {:?}",
                coord,
                extent,
                data.shape()
            )));
        }
        let len = (data.len() * 8) as u64;
        let off = self.offset;
        for &v in data.data() {
            self.file.write_all(&v.to_le_bytes())?;
        }
        self.offset += len;
        meta.chunks.insert(coord.to_vec(), (off, len));
        Ok(())
    }

    /// Bytes appended so far (payload only), for I/O accounting in benches.
    pub fn bytes_written(&self) -> u64 {
        self.offset - MAGIC.len() as u64
    }

    /// Write the index + footer and flush. Must be called exactly once.
    pub fn close(mut self) -> Result<(), FormatError> {
        let index = encode_index(&self.datasets);
        let index_offset = self.offset;
        self.file.write_all(&index)?;
        self.file.write_all(&index_offset.to_le_bytes())?;
        self.file.write_all(MAGIC)?;
        self.file.flush()?;
        self.closed = true;
        Ok(())
    }
}

/// A writer shared by many simulation ranks (threads): one file, one lock —
/// which is exactly the serialization a single PFS object store stripe
/// imposes, and what the post-hoc baseline measures.
#[derive(Clone)]
pub struct SharedWriter {
    inner: Arc<Mutex<Option<H5Writer>>>,
}

impl SharedWriter {
    /// Wrap a writer for concurrent use.
    pub fn new(writer: H5Writer) -> Self {
        SharedWriter {
            inner: Arc::new(Mutex::new(Some(writer))),
        }
    }

    /// Declare a dataset (idempotent: concurrent ranks may race to declare;
    /// the first wins and later identical declarations are accepted).
    pub fn ensure_dataset(
        &self,
        name: &str,
        shape: &[usize],
        chunk_shape: &[usize],
    ) -> Result<(), FormatError> {
        let mut guard = self.inner.lock();
        let w = guard
            .as_mut()
            .ok_or_else(|| FormatError::BadRequest("writer already closed".into()))?;
        if let Some(&idx) = w.by_name.get(name) {
            let meta = &w.datasets[idx].1;
            if meta.shape == shape && meta.chunk_shape == chunk_shape {
                return Ok(());
            }
            return Err(FormatError::BadRequest(format!(
                "dataset '{name}' re-declared with different shape"
            )));
        }
        w.create_dataset(name, shape, chunk_shape)
    }

    /// Write one chunk under the lock.
    pub fn write_chunk(
        &self,
        dataset: &str,
        coord: &[usize],
        data: &NDArray,
    ) -> Result<(), FormatError> {
        let mut guard = self.inner.lock();
        let w = guard
            .as_mut()
            .ok_or_else(|| FormatError::BadRequest("writer already closed".into()))?;
        w.write_chunk(dataset, coord, data)
    }

    /// Close the underlying writer (first caller wins; later calls error).
    pub fn close(&self) -> Result<(), FormatError> {
        let w = self
            .inner
            .lock()
            .take()
            .ok_or_else(|| FormatError::BadRequest("writer already closed".into()))?;
        w.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::H5Reader;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("h5lite-w-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn duplicate_dataset_rejected() {
        let mut w = H5Writer::create(tmp("dup.h5l")).unwrap();
        w.create_dataset("a", &[2, 2], &[1, 1]).unwrap();
        assert!(w.create_dataset("a", &[2, 2], &[1, 1]).is_err());
    }

    #[test]
    fn wrong_chunk_shape_rejected() {
        let mut w = H5Writer::create(tmp("shape.h5l")).unwrap();
        w.create_dataset("a", &[4, 4], &[2, 2]).unwrap();
        let bad = NDArray::zeros(&[2, 3]);
        assert!(w.write_chunk("a", &[0, 0], &bad).is_err());
        assert!(w.write_chunk("missing", &[0, 0], &bad).is_err());
        assert!(w
            .write_chunk("a", &[5, 0], &NDArray::zeros(&[2, 2]))
            .is_err());
    }

    #[test]
    fn rewrite_chunk_last_wins() {
        let path = tmp("rewrite.h5l");
        let mut w = H5Writer::create(&path).unwrap();
        w.create_dataset("a", &[2, 2], &[2, 2]).unwrap();
        w.write_chunk("a", &[0, 0], &NDArray::full(&[2, 2], 1.0))
            .unwrap();
        w.write_chunk("a", &[0, 0], &NDArray::full(&[2, 2], 9.0))
            .unwrap();
        w.close().unwrap();
        let r = H5Reader::open(&path).unwrap();
        assert_eq!(r.read_chunk("a", &[0, 0]).unwrap().get(&[1, 1]), 9.0);
    }

    #[test]
    fn edge_chunks_are_smaller() {
        let path = tmp("edge.h5l");
        let mut w = H5Writer::create(&path).unwrap();
        w.create_dataset("a", &[3, 5], &[2, 2]).unwrap();
        // grid is 2x3; chunk (1,2) has extent (1,1)
        w.write_chunk("a", &[1, 2], &NDArray::full(&[1, 1], 7.0))
            .unwrap();
        w.close().unwrap();
        let r = H5Reader::open(&path).unwrap();
        assert_eq!(r.read_chunk("a", &[1, 2]).unwrap().get(&[0, 0]), 7.0);
    }

    #[test]
    fn shared_writer_many_threads() {
        let path = tmp("shared.h5l");
        let w = SharedWriter::new(H5Writer::create(&path).unwrap());
        w.ensure_dataset("temp", &[4, 4], &[1, 4]).unwrap();
        crossbeam_scope(&w);
        w.close().unwrap();
        assert!(w.close().is_err());
        let r = H5Reader::open(&path).unwrap();
        for row in 0..4 {
            assert_eq!(
                r.read_chunk("temp", &[row, 0]).unwrap().get(&[0, 2]),
                row as f64
            );
        }

        fn crossbeam_scope(w: &SharedWriter) {
            std::thread::scope(|s| {
                for row in 0..4usize {
                    let w = w.clone();
                    s.spawn(move || {
                        w.ensure_dataset("temp", &[4, 4], &[1, 4]).unwrap();
                        w.write_chunk("temp", &[row, 0], &NDArray::full(&[1, 4], row as f64))
                            .unwrap();
                    });
                }
            });
        }
    }

    #[test]
    fn redeclare_with_other_shape_fails() {
        let w = SharedWriter::new(H5Writer::create(tmp("redecl.h5l")).unwrap());
        w.ensure_dataset("a", &[2, 2], &[1, 1]).unwrap();
        assert!(w.ensure_dataset("a", &[2, 2], &[2, 2]).is_err());
    }
}
