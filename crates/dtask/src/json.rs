//! Minimal JSON document model and writer.
//!
//! The workspace builds fully offline (every third-party dependency is an
//! in-tree shim), so instead of `serde`/`serde_json` this module provides the
//! one thing the runtime needs: a small ordered JSON value type with a
//! correct, escaping writer. [`crate::snapshot::StatsSnapshot`] and the
//! Chrome-trace exporter ([`crate::trace`]) both serialize through it, so
//! bench output and runtime snapshots share one schema and one writer.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so exported documents are
/// deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert/append a field (builder style; does not deduplicate keys).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(fields) = &mut self {
            fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array elements, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_str(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * step {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..depth * step {
                out.push(' ');
            }
        }
    }
    out.push(close);
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj()
            .set("name", "trace")
            .set("n", 3u64)
            .set("ok", true)
            .set("items", Json::Arr(vec![Json::Num(1.5), Json::Null]));
        assert_eq!(
            doc.to_string_compact(),
            r#"{"name":"trace","n":3,"ok":true,"items":[1.5,null]}"#
        );
        let pretty = doc.to_string_pretty();
        assert!(pretty.contains("\n  \"name\": \"trace\""));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn integral_floats_render_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string_compact(), "42");
        assert_eq!(Json::Num(0.25).to_string_compact(), "0.25");
    }

    #[test]
    fn get_and_as_accessors() {
        let doc = Json::obj().set("x", 7u64);
        assert_eq!(doc.get("x").and_then(Json::as_f64), Some(7.0));
        assert!(doc.get("y").is_none());
    }
}
