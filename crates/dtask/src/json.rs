//! Minimal JSON document model and writer.
//!
//! The workspace builds fully offline (every third-party dependency is an
//! in-tree shim), so instead of `serde`/`serde_json` this module provides the
//! one thing the runtime needs: a small ordered JSON value type with a
//! correct, escaping writer. [`crate::snapshot::StatsSnapshot`] and the
//! Chrome-trace exporter ([`crate::trace`]) both serialize through it, so
//! bench output and runtime snapshots share one schema and one writer.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so exported documents are
/// deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert/append a field (builder style; does not deduplicate keys).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(fields) = &mut self {
            fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array elements, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document (strict: exactly one value, nothing but
    /// whitespace after it). Numbers parse to `f64`; `null`/`true`/`false`,
    /// strings with the standard escapes (incl. `\uXXXX` and surrogate
    /// pairs), arrays, and objects are all supported. Errors carry a byte
    /// offset. This is the read half of the snapshot schema: everything
    /// [`Json::to_string_compact`] writes parses back to an equal value.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_str(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * step {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..depth * step {
                out.push(' ');
            }
        }
    }
    out.push(close);
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- recursive-descent parser ----------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The skipped run is valid UTF-8 (input is &str and we stopped
            // only on ASCII boundaries).
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(format!(
                                        "invalid low surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => return Err(format!("control byte in string at {}", self.pos)),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "non-ascii \\u escape".to_string())?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape at {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj()
            .set("name", "trace")
            .set("n", 3u64)
            .set("ok", true)
            .set("items", Json::Arr(vec![Json::Num(1.5), Json::Null]));
        assert_eq!(
            doc.to_string_compact(),
            r#"{"name":"trace","n":3,"ok":true,"items":[1.5,null]}"#
        );
        let pretty = doc.to_string_pretty();
        assert!(pretty.contains("\n  \"name\": \"trace\""));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.to_string_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn integral_floats_render_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string_compact(), "42");
        assert_eq!(Json::Num(0.25).to_string_compact(), "0.25");
    }

    #[test]
    fn get_and_as_accessors() {
        let doc = Json::obj().set("x", 7u64);
        assert_eq!(doc.get("x").and_then(Json::as_f64), Some(7.0));
        assert!(doc.get("y").is_none());
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::obj()
            .set("name", "snap\"shot\\\n")
            .set("n", 3u64)
            .set("x", 0.25)
            .set("neg", -17i64)
            .set("ok", true)
            .set("none", Json::Null)
            .set("items", Json::Arr(vec![Json::Num(1.5), Json::Null]))
            .set("nested", Json::obj().set("deep", Json::Arr(vec![])));
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parse_escapes_and_unicode() {
        assert_eq!(
            Json::parse(r#""a\u0041\n\t\" \u00e9""#).unwrap(),
            Json::Str("aA\n\t\" é".into())
        );
        // Surrogate pair → one astral char.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Json::parse("-0.5e2").unwrap(), Json::Num(-50.0));
        assert_eq!(Json::parse("1e-3").unwrap(), Json::Num(0.001));
        assert_eq!(
            Json::parse("9007199254740991").unwrap(),
            Json::Num(9.007199254740991e15)
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{a:1}",
            "[1]extra",
            "\"\\ud800\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
