//! Per-node object store: the out-of-band data plane's payload home.
//!
//! The paper's scalability argument is about keeping bulk data off the
//! control path. [`crate::datum::DatumRef`] handles travel through the
//! scheduler in place of payloads; the payloads themselves live here, one
//! [`ObjectStore`] per worker, shared by the worker's data server and every
//! executor slot:
//!
//! * **Zero-copy intra-process.** Entries hold [`Datum`]s whose arrays are
//!   `Arc`-shared, so a `get` on the holding node never copies the buffer.
//! * **Inter-node resolution.** Remote consumers resolve a handle with a
//!   framed `DataMsg::Fetch` to the holder's data server, which answers from
//!   this store (`DataReply::Value` on the reply lane — data plane, never
//!   the scheduler).
//! * **LRU eviction + spill.** Under a configurable memory budget
//!   ([`StoreConfig::mem_budget`]) the least-recently-used spillable entries
//!   are written to disk as single-chunk [`h5lite`] containers — the same
//!   I/O path as the paper's post-hoc baseline — and restored (bit-exact,
//!   NaN included) on next access. Restoration happens under the store lock,
//!   so concurrent gets of one spilled key restore it exactly once.
//!
//! Everything here is **off by default**: a store built from
//! [`StoreConfig::default`] is an unbounded in-memory map and no proxy
//! handles are ever produced, so default-config clusters behave — and
//! count messages — exactly as before.

use crate::datum::Datum;
use crate::key::Key;
use crate::stats::SchedulerStats;
use crate::trace::{EventKind, TraceHandle};
use linalg::NDArray;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Object-store / proxy-plane configuration (part of
/// [`crate::ClusterConfig`]). The default disables proxies and bounds
/// nothing, reproducing the pre-store behavior byte for byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Publish large control-path values (variables, queue items, task
    /// params) out-of-band as [`crate::datum::DatumRef`] handles? Off by
    /// default; consumers always know how to *resolve* handles either way.
    pub proxies: bool,
    /// Per-worker memory budget in payload bytes; entries beyond it are
    /// LRU-spilled to disk. `None` (default) never spills.
    pub mem_budget: Option<u64>,
    /// Values at or under this many payload bytes stay inline on the
    /// control path even with `proxies` on — a handle would be bigger.
    pub inline_threshold: u64,
    /// Spill directory; `None` (default) uses a per-store temp directory
    /// that is removed when the store drops.
    pub spill_dir: Option<PathBuf>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            proxies: false,
            mem_budget: None,
            inline_threshold: 256,
            spill_dir: None,
        }
    }
}

impl StoreConfig {
    /// Proxies on with the default threshold and no spill budget.
    pub fn proxies() -> Self {
        StoreConfig {
            proxies: true,
            ..StoreConfig::default()
        }
    }

    /// Should `value` ride the control path inline (scalars, small values),
    /// or be published out-of-band behind a handle?
    pub fn keep_inline(&self, value: &Datum) -> bool {
        !self.proxies
            || value.nbytes() <= self.inline_threshold
            || !matches!(value, Datum::Array(_))
    }
}

/// One resident entry: in memory, or spilled to its own h5lite container.
enum Entry {
    Mem(Datum),
    Spilled {
        path: PathBuf,
        shape: Vec<usize>,
        nbytes: u64,
    },
}

impl Entry {
    fn nbytes(&self) -> u64 {
        match self {
            Entry::Mem(d) => d.nbytes(),
            Entry::Spilled { nbytes, .. } => *nbytes,
        }
    }
}

struct Inner {
    entries: HashMap<Key, Entry>,
    /// Keys from least- to most-recently used (touched on get/insert).
    lru: Vec<Key>,
    /// Payload bytes currently held in memory (spilled entries excluded).
    mem_bytes: u64,
    /// Monotonic spill-file sequence (also the restored entries' freshness).
    spill_seq: u64,
    /// Lazily created spill directory (removed on drop unless user-chosen).
    dir: Option<PathBuf>,
}

/// Distinguishes spill dirs of stores created in the same process.
static STORE_INSTANCE: AtomicUsize = AtomicUsize::new(0);

/// A worker's spillable object store. See the module docs.
pub struct ObjectStore {
    worker: usize,
    config: StoreConfig,
    stats: Arc<SchedulerStats>,
    trace: TraceHandle,
    instance: usize,
    inner: Mutex<Inner>,
}

impl ObjectStore {
    /// Build one worker's store.
    pub fn new(
        config: StoreConfig,
        worker: usize,
        stats: Arc<SchedulerStats>,
        trace: TraceHandle,
    ) -> Self {
        ObjectStore {
            worker,
            config,
            stats,
            trace,
            instance: STORE_INSTANCE.fetch_add(1, Ordering::Relaxed),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                lru: Vec::new(),
                mem_bytes: 0,
                spill_seq: 0,
                dir: None,
            }),
        }
    }

    /// An unbounded, untraced store (tests and standalone use).
    pub fn unbounded() -> Self {
        ObjectStore::new(
            StoreConfig::default(),
            0,
            Arc::new(SchedulerStats::new()),
            TraceHandle::disabled(),
        )
    }

    /// This store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Insert (or replace) an entry, then enforce the memory budget.
    pub fn insert(&self, key: Key, value: Datum) {
        let mut inner = self.inner.lock();
        self.remove_locked(&mut inner, &key);
        inner.mem_bytes += value.nbytes();
        inner.entries.insert(key.clone(), Entry::Mem(value));
        inner.lru.push(key.clone());
        self.evict_over_budget(&mut inner, Some(&key));
    }

    /// Look up an entry, restoring it from disk if it was spilled. Arrays
    /// come back `Arc`-shared — no copy on the holding node. Restoration
    /// runs under the store lock: concurrent gets of one spilled key do the
    /// disk read exactly once.
    pub fn get(&self, key: &Key) -> Option<Datum> {
        let mut inner = self.inner.lock();
        if !inner.entries.contains_key(key) {
            self.stats.record_store_miss();
            self.trace.instant(EventKind::StoreMiss, Some(key), 0);
            return None;
        }
        self.touch(&mut inner, key);
        if let Some(Entry::Mem(value)) = inner.entries.get(key) {
            self.stats.record_store_hit();
            return Some(value.clone());
        }
        // Spilled: restore, re-admit as most-recently-used, re-balance the
        // budget against everything *else* (never re-spill what we return).
        let Some(Entry::Spilled {
            path,
            shape,
            nbytes,
        }) = inner.entries.remove(key)
        else {
            unreachable!("checked above");
        };
        let t0 = self.trace.start();
        let restored = read_spill(&path, &shape)
            .unwrap_or_else(|e| panic!("store w{}: restoring {key} failed: {e}", self.worker));
        let _ = std::fs::remove_file(&path);
        self.stats.record_store_restore();
        self.stats.record_store_hit();
        self.trace
            .span(EventKind::StoreRestore, t0, Some(key), nbytes);
        let value = Datum::Array(Arc::new(restored));
        inner.mem_bytes += value.nbytes();
        inner.entries.insert(key.clone(), Entry::Mem(value.clone()));
        self.evict_over_budget(&mut inner, Some(key));
        Some(value)
    }

    /// Remove entries (dropping any spill files). Returns how many existed.
    pub fn remove(&self, keys: &[Key]) -> usize {
        let mut inner = self.inner.lock();
        keys.iter()
            .filter(|k| self.remove_locked(&mut inner, k))
            .count()
    }

    /// Remove every entry belonging to one tenant session (teardown sweep).
    /// Proxy payloads published by that session's client land here without
    /// the scheduler ever tracking a key for them, so teardown broadcasts a
    /// sweep instead of enumerating. Returns how many entries were dropped.
    pub fn remove_session(&self, session: crate::key::SessionId) -> usize {
        let mut inner = self.inner.lock();
        let doomed: Vec<Key> = inner
            .entries
            .keys()
            .filter(|k| k.session() == session)
            .cloned()
            .collect();
        doomed
            .iter()
            .filter(|k| self.remove_locked(&mut inner, k))
            .count()
    }

    /// Entry count, spilled entries included.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes, memory-resident and spilled together (what the
    /// worker memory report counts — spilling must not "free" data).
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().entries.values().map(Entry::nbytes).sum()
    }

    /// Payload bytes currently resident in memory.
    pub fn mem_bytes(&self) -> u64 {
        self.inner.lock().mem_bytes
    }

    /// Keys currently spilled to disk (oldest-spill order not guaranteed).
    pub fn spilled_keys(&self) -> Vec<Key> {
        let inner = self.inner.lock();
        inner
            .entries
            .iter()
            .filter(|(_, e)| matches!(e, Entry::Spilled { .. }))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Is this key present but spilled?
    pub fn is_spilled(&self, key: &Key) -> bool {
        matches!(
            self.inner.lock().entries.get(key),
            Some(Entry::Spilled { .. })
        )
    }

    /// Is this key present (in memory or spilled)?
    pub fn contains(&self, key: &Key) -> bool {
        self.inner.lock().entries.contains_key(key)
    }

    /// Trace a served proxy fetch (the data-server side of
    /// [`crate::msg::DataMsg::Fetch`]); requester-side byte accounting lives
    /// with the requester ([`SchedulerStats::record_proxy_fetch`]).
    pub fn note_fetch_served(&self, key: &Key, bytes: u64) {
        self.trace.instant(EventKind::StoreFetch, Some(key), bytes);
    }

    /// Worker memory report: entry count and total payload bytes (spilled
    /// entries included on both counts).
    pub fn report(&self) -> (usize, u64) {
        let inner = self.inner.lock();
        let bytes = inner.entries.values().map(Entry::nbytes).sum();
        (inner.entries.len(), bytes)
    }

    // ---- internals ---------------------------------------------------------

    /// Move `key` to the most-recently-used end.
    fn touch(&self, inner: &mut Inner, key: &Key) {
        if let Some(pos) = inner.lru.iter().position(|k| k == key) {
            let k = inner.lru.remove(pos);
            inner.lru.push(k);
        }
    }

    fn remove_locked(&self, inner: &mut Inner, key: &Key) -> bool {
        let Some(entry) = inner.entries.remove(key) else {
            return false;
        };
        match &entry {
            Entry::Mem(d) => inner.mem_bytes -= d.nbytes(),
            Entry::Spilled { path, .. } => {
                let _ = std::fs::remove_file(path);
            }
        }
        if let Some(pos) = inner.lru.iter().position(|k| k == key) {
            inner.lru.remove(pos);
        }
        true
    }

    /// Spill least-recently-used array entries until memory fits the
    /// budget. Non-array entries (scalars, lists, strings) and `protect`
    /// are never spilled; if only those remain, the store runs over budget
    /// rather than losing data.
    fn evict_over_budget(&self, inner: &mut Inner, protect: Option<&Key>) {
        let Some(budget) = self.config.mem_budget else {
            return;
        };
        let mut scan = 0usize;
        while inner.mem_bytes > budget && scan < inner.lru.len() {
            let key = inner.lru[scan].clone();
            if Some(&key) == protect {
                scan += 1;
                continue;
            }
            let spillable = matches!(
                inner.entries.get(&key),
                Some(Entry::Mem(Datum::Array(a))) if !a.shape().is_empty() && !a.is_empty()
            );
            if !spillable {
                scan += 1;
                continue;
            }
            let Some(Entry::Mem(Datum::Array(array))) = inner.entries.remove(&key) else {
                unreachable!("matched above");
            };
            let nbytes = netsim::sizing::f64_block_bytes(array.len());
            let seq = inner.spill_seq;
            inner.spill_seq += 1;
            let dir = self.spill_dir(inner);
            let path = dir.join(format!("spill-{seq}.h5l"));
            let t0 = self.trace.start();
            write_spill(&path, &array)
                .unwrap_or_else(|e| panic!("store w{}: spilling {key} failed: {e}", self.worker));
            self.stats.record_store_spill(nbytes);
            self.trace
                .span(EventKind::StoreSpill, t0, Some(&key), nbytes);
            inner.mem_bytes -= nbytes;
            inner.entries.insert(
                key,
                Entry::Spilled {
                    path,
                    shape: array.shape().to_vec(),
                    nbytes,
                },
            );
            // The key stays in the LRU list at its position: a restored
            // entry re-enters via `get`, which re-pushes it as MRU.
        }
    }

    /// The spill directory, created on first use.
    fn spill_dir(&self, inner: &mut Inner) -> PathBuf {
        if let Some(dir) = &inner.dir {
            return dir.clone();
        }
        let dir = self.config.spill_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "dtask-store-{}-{}-w{}",
                std::process::id(),
                self.instance,
                self.worker
            ))
        });
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("store w{}: creating {dir:?} failed: {e}", self.worker));
        inner.dir = Some(dir.clone());
        dir
    }
}

impl Drop for ObjectStore {
    fn drop(&mut self) {
        // Only auto-created temp dirs are removed; a user-chosen spill_dir
        // outlives the store.
        let inner = self.inner.get_mut();
        if self.config.spill_dir.is_none() {
            if let Some(dir) = inner.dir.take() {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }
}

impl std::fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ObjectStore")
            .field("worker", &self.worker)
            .field("entries", &inner.entries.len())
            .field("mem_bytes", &inner.mem_bytes)
            .finish()
    }
}

/// Write one array as a single-chunk h5lite container (the paper's post-hoc
/// I/O path): dataset `data`, chunk shape == array shape.
fn write_spill(path: &std::path::Path, array: &NDArray) -> Result<(), h5lite::FormatError> {
    let mut w = h5lite::H5Writer::create(path)?;
    let shape = array.shape().to_vec();
    w.create_dataset("data", &shape, &shape)?;
    w.write_chunk("data", &vec![0; shape.len()], array)?;
    w.close()
}

/// Read back a spill file written by [`write_spill`]. f64 payloads round-trip
/// as raw IEEE bits, so NaN and -0.0 survive bit-exactly.
fn read_spill(path: &std::path::Path, shape: &[usize]) -> Result<NDArray, h5lite::FormatError> {
    let r = h5lite::H5Reader::open(path)?;
    r.read_chunk("data", &vec![0; shape.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Key {
        Key::new(s)
    }

    fn block(fill: f64, elems: usize) -> Datum {
        Datum::Array(Arc::new(NDArray::full(&[elems], fill)))
    }

    #[test]
    fn default_config_is_inert() {
        let c = StoreConfig::default();
        assert!(!c.proxies);
        assert_eq!(c.mem_budget, None);
        assert!(c.keep_inline(&block(1.0, 1 << 20)));
    }

    #[test]
    fn inline_threshold_gates_proxying() {
        let c = StoreConfig::proxies();
        assert!(c.keep_inline(&block(1.0, 4)), "32 B <= 256 B threshold");
        assert!(!c.keep_inline(&block(1.0, 64)), "512 B > 256 B threshold");
        assert!(
            c.keep_inline(&Datum::F64(1.0)),
            "scalars always stay inline"
        );
        assert!(
            c.keep_inline(&Datum::Str("x".repeat(4096))),
            "only arrays are proxied"
        );
    }

    #[test]
    fn unbounded_store_never_spills() {
        let store = ObjectStore::unbounded();
        for i in 0..64 {
            store.insert(key(&format!("k{i}")), block(i as f64, 128));
        }
        assert_eq!(store.len(), 64);
        assert_eq!(store.mem_bytes(), 64 * 1024);
        assert!(store.spilled_keys().is_empty());
    }

    #[test]
    fn arrays_come_back_arc_shared() {
        let store = ObjectStore::unbounded();
        let a = Arc::new(NDArray::full(&[8], 3.0));
        store.insert(key("a"), Datum::Array(Arc::clone(&a)));
        let got = store.get(&key("a")).unwrap();
        assert!(Arc::ptr_eq(got.as_array().unwrap(), &a), "zero-copy get");
    }

    #[test]
    fn lru_eviction_spills_oldest_first() {
        let stats = Arc::new(SchedulerStats::new());
        let store = ObjectStore::new(
            StoreConfig {
                mem_budget: Some(2 * 1024),
                ..StoreConfig::default()
            },
            0,
            Arc::clone(&stats),
            TraceHandle::disabled(),
        );
        // Three 1 KiB blocks under a 2 KiB budget: inserting the third must
        // spill exactly the oldest.
        store.insert(key("a"), block(1.0, 128));
        store.insert(key("b"), block(2.0, 128));
        // Touch `a` so `b` becomes the LRU candidate.
        store.get(&key("a")).unwrap();
        store.insert(key("c"), block(3.0, 128));
        assert!(store.is_spilled(&key("b")), "LRU entry spills first");
        assert!(!store.is_spilled(&key("a")));
        assert!(!store.is_spilled(&key("c")));
        assert_eq!(stats.store_spills(), 1);
        assert_eq!(stats.store_spill_bytes(), 1024);
        assert_eq!(store.mem_bytes(), 2 * 1024);
        assert_eq!(store.total_bytes(), 3 * 1024, "spilling frees no data");
        // Access the spilled entry: restored bit-exact, another entry spills.
        let b = store.get(&key("b")).unwrap();
        assert_eq!(b.as_array().unwrap().get(&[5]), 2.0);
        assert_eq!(stats.store_restores(), 1);
        assert!(
            store.is_spilled(&key("a")) || store.is_spilled(&key("c")),
            "restoring over budget re-balances onto another entry"
        );
    }

    #[test]
    fn remove_drops_spill_files_and_dir_cleans_on_drop() {
        let store = ObjectStore::new(
            StoreConfig {
                mem_budget: Some(0),
                ..StoreConfig::default()
            },
            7,
            Arc::new(SchedulerStats::new()),
            TraceHandle::disabled(),
        );
        store.insert(key("x"), block(1.0, 16));
        store.insert(key("y"), block(2.0, 16));
        // Budget 0: everything (except the freshly inserted protected key)
        // spills as soon as the next insert arrives.
        assert!(store.is_spilled(&key("x")));
        let spilled = store.spilled_keys();
        let dir = store.inner.lock().dir.clone().unwrap();
        assert!(dir.exists());
        store.remove(&spilled);
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "remove deletes spill files"
        );
        drop(store);
        assert!(!dir.exists(), "temp spill dir removed on drop");
    }

    #[test]
    fn miss_counts_and_non_arrays_survive_pressure() {
        let stats = Arc::new(SchedulerStats::new());
        let store = ObjectStore::new(
            StoreConfig {
                mem_budget: Some(8),
                ..StoreConfig::default()
            },
            0,
            Arc::clone(&stats),
            TraceHandle::disabled(),
        );
        assert!(store.get(&key("nope")).is_none());
        assert_eq!(stats.store_misses(), 1);
        store.insert(key("s"), Datum::Str("not spillable".into()));
        store.insert(key("l"), Datum::List(vec![Datum::F64(0.5)]));
        // Over budget but nothing spillable: data is kept, not dropped.
        assert_eq!(store.len(), 2);
        assert!(store.spilled_keys().is_empty());
        assert_eq!(
            store.get(&key("s")).unwrap().as_str(),
            Some("not spillable")
        );
    }

    #[test]
    fn remove_session_sweeps_only_that_tenant() {
        let store = ObjectStore::unbounded();
        store.insert(Key::scoped(1, "a"), block(1.0, 16));
        store.insert(Key::scoped(1, "b"), block(2.0, 16));
        store.insert(Key::scoped(2, "a"), block(3.0, 16));
        store.insert(key("a"), block(4.0, 16));
        assert_eq!(store.remove_session(1), 2);
        assert_eq!(store.len(), 2);
        assert!(store.get(&Key::scoped(1, "a")).is_none());
        assert!(store.get(&Key::scoped(2, "a")).is_some());
        assert!(store.get(&key("a")).is_some(), "default session untouched");
        assert_eq!(store.remove_session(3), 0);
    }

    #[test]
    fn spill_restore_is_bit_exact_for_nan_and_negzero() {
        let store = ObjectStore::new(
            StoreConfig {
                mem_budget: Some(0),
                ..StoreConfig::default()
            },
            0,
            Arc::new(SchedulerStats::new()),
            TraceHandle::disabled(),
        );
        let weird = NDArray::from_fn(&[2, 2], |i| match (i[0], i[1]) {
            (0, 0) => f64::NAN,
            (0, 1) => -0.0,
            (1, 0) => f64::INFINITY,
            _ => 1.0 / 3.0,
        });
        store.insert(key("w"), Datum::from(weird));
        store.insert(key("force"), block(0.0, 4));
        assert!(store.is_spilled(&key("w")));
        let back = store.get(&key("w")).unwrap();
        let arr = back.as_array().unwrap();
        assert!(arr.get(&[0, 0]).is_nan());
        assert!(arr.get(&[0, 1]) == 0.0 && arr.get(&[0, 1]).is_sign_negative());
        assert_eq!(arr.get(&[1, 0]), f64::INFINITY);
        assert_eq!(arr.get(&[1, 1]), 1.0 / 3.0);
    }
}
