//! Versioned wire format for every inter-actor message.
//!
//! The Framed and SimNet transport backends (see [`crate::transport`]) push
//! each [`Payload`] through this codec, so the byte counts recorded in
//! [`crate::stats::SchedulerStats`] are *real serialized sizes*, not
//! estimates, and a decode on the far side proves the message survives a
//! transport hop intact.
//!
//! ## Envelope
//!
//! Every message is `header ‖ body`:
//!
//! | bytes | field            |
//! |-------|------------------|
//! | 0..2  | magic `0xD7 0x4B`|
//! | 2     | version (`1`)    |
//! | 3     | payload kind     |
//! | 4..8  | body length (LE) |
//!
//! ## Versioning rules
//!
//! * The header layout itself is frozen; only `version` changes meaning of
//!   the body.
//! * A decoder accepts exactly its own [`WIRE_VERSION`] and rejects anything
//!   else with [`WireError::BadVersion`] — in-process transports are always
//!   version-homogeneous, so a mismatch is a build error, not a negotiation.
//! * Within a version, enum tags are append-only: new variants take fresh
//!   tags, existing tags never change meaning. A tag bump requires a
//!   `WIRE_VERSION` bump.
//!
//! All integers are little-endian; `f64` travels as its IEEE-754 bit
//! pattern, so numeric payloads round-trip bit-exactly (the CI quickstart
//! A/B relies on this).

use crate::datum::{Datum, DatumRef};
use crate::key::Key;
use crate::msg::{Assignment, ClientMsg, DataMsg, ErrorCause, ExecMsg, SchedMsg, TaskError};
use crate::spec::{FusedInput, FusedStage, TaskSpec, Value};
use crate::transport::{Addr, DataReply, Payload, ReplyTo};
use linalg::NDArray;
use std::sync::Arc;
use std::time::Instant;

/// Current wire-format version.
pub const WIRE_VERSION: u8 = 1;

/// Envelope header size in bytes.
pub const HEADER_BYTES: usize = 8;

pub(crate) const MAGIC: [u8; 2] = [0xD7, 0x4B];

/// A malformed or incompatible wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Body ended before a field was complete.
    Truncated,
    /// The two magic bytes did not match.
    BadMagic,
    /// Header version differs from [`WIRE_VERSION`].
    BadVersion(u8),
    /// Unknown enum tag.
    BadTag {
        /// Which type was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    Utf8,
    /// A structurally invalid value (e.g. array shape/data mismatch).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire message truncated"),
            WireError::BadMagic => write!(f, "bad wire magic"),
            WireError::BadVersion(v) => {
                write!(f, "wire version {v} (this build speaks {WIRE_VERSION})")
            }
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::Utf8 => write!(f, "non-UTF-8 string field"),
            WireError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---- primitive writers -----------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn len(&mut self, v: usize) {
        self.u32(v as u32);
    }

    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.len(b.len());
        self.buf.extend_from_slice(b);
    }
}

// ---- primitive readers -----------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, WireError> {
        Ok(self.u64()? as usize)
    }

    fn len(&mut self) -> Result<usize, WireError> {
        Ok(self.u32()? as usize)
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.len()?;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_owned)
            .map_err(|_| WireError::Utf8)
    }

    fn byte_vec(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---- component codecs ------------------------------------------------------

/// Length sentinel marking a session-scoped key. A real key text can never
/// reach 4 GiB (the whole frame is length-checked against the body first),
/// so default-session keys keep the seed's bare length-prefixed encoding
/// byte-for-byte while scoped keys get `MARK ‖ session ‖ text` appended
/// behind it — old frames (always session 0) decode unchanged.
const SCOPED_KEY_MARK: u32 = u32::MAX;

fn put_key(e: &mut Enc, k: &Key) {
    if k.session() == 0 {
        e.str(k.as_str());
    } else {
        e.u32(SCOPED_KEY_MARK);
        e.u32(k.session());
        e.str(k.as_str());
    }
}

fn get_key(d: &mut Dec) -> Result<Key, WireError> {
    let n = d.u32()?;
    if n == SCOPED_KEY_MARK {
        let session = d.u32()?;
        Ok(Key::scoped(session, d.str()?))
    } else {
        let text = std::str::from_utf8(d.take(n as usize)?).map_err(|_| WireError::Utf8)?;
        Ok(Key::new(text))
    }
}

fn put_datum(e: &mut Enc, v: &Datum) {
    match v {
        Datum::F64(x) => {
            e.u8(0);
            e.f64(*x);
        }
        Datum::I64(x) => {
            e.u8(1);
            e.u64(*x as u64);
        }
        Datum::Bool(b) => {
            e.u8(2);
            e.u8(*b as u8);
        }
        Datum::Str(s) => {
            e.u8(3);
            e.str(s);
        }
        Datum::Array(a) => {
            e.u8(4);
            e.len(a.shape().len());
            for dim in a.shape() {
                e.usize(*dim);
            }
            for x in a.data() {
                e.f64(*x);
            }
        }
        Datum::List(items) => {
            e.u8(5);
            e.len(items.len());
            for item in items {
                put_datum(e, item);
            }
        }
        Datum::Bytes(b) => {
            e.u8(6);
            e.bytes(b);
        }
        Datum::Null => e.u8(7),
        Datum::Ref(r) => {
            e.u8(8);
            put_key(e, &r.key);
            e.len(r.shape.len());
            for dim in &r.shape {
                e.usize(*dim);
            }
            e.u64(r.nbytes);
            e.usize(r.holder);
            e.u64(r.epoch);
        }
    }
}

fn get_datum(d: &mut Dec) -> Result<Datum, WireError> {
    let tag = d.u8()?;
    Ok(match tag {
        0 => Datum::F64(d.f64()?),
        1 => Datum::I64(d.u64()? as i64),
        2 => Datum::Bool(d.u8()? != 0),
        3 => Datum::Str(d.str()?),
        4 => {
            let ndim = d.len()?;
            let mut shape = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                shape.push(d.usize()?);
            }
            let n: usize = shape.iter().product();
            // Bound the element count by the remaining body before
            // allocating, so a corrupt length can't balloon memory.
            if n.saturating_mul(8) > d.buf.len() - d.pos {
                return Err(WireError::Truncated);
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(d.f64()?);
            }
            Datum::Array(Arc::new(
                NDArray::from_vec(&shape, data).map_err(|_| WireError::Malformed("array"))?,
            ))
        }
        5 => {
            let n = d.len()?;
            let mut items = Vec::with_capacity(n.min(d.buf.len() - d.pos));
            for _ in 0..n {
                items.push(get_datum(d)?);
            }
            Datum::List(items)
        }
        6 => Datum::Bytes(d.byte_vec()?.into()),
        7 => Datum::Null,
        8 => {
            let key = get_key(d)?;
            let ndim = d.len()?;
            let mut shape = Vec::with_capacity(ndim.min(d.buf.len() - d.pos));
            for _ in 0..ndim {
                shape.push(d.usize()?);
            }
            Datum::Ref(DatumRef {
                key,
                shape,
                nbytes: d.u64()?,
                holder: d.usize()?,
                epoch: d.u64()?,
            })
        }
        tag => return Err(WireError::BadTag { what: "datum", tag }),
    })
}

fn put_spec(e: &mut Enc, s: &TaskSpec) {
    put_key(e, &s.key);
    match &s.value {
        Value::Op { op, params } => {
            e.u8(0);
            e.str(op);
            put_datum(e, params);
        }
        Value::Fused { stages } => {
            e.u8(1);
            e.len(stages.len());
            for st in stages {
                put_key(e, &st.key);
                e.str(&st.op);
                put_datum(e, &st.params);
                e.len(st.inputs.len());
                for input in &st.inputs {
                    match input {
                        FusedInput::Dep(i) => {
                            e.u8(0);
                            e.usize(*i);
                        }
                        FusedInput::Stage(i) => {
                            e.u8(1);
                            e.usize(*i);
                        }
                    }
                }
            }
        }
    }
    e.len(s.deps.len());
    for dep in &s.deps {
        put_key(e, dep);
    }
}

fn get_spec(d: &mut Dec) -> Result<TaskSpec, WireError> {
    let key = get_key(d)?;
    let value = match d.u8()? {
        0 => {
            let op = d.str()?;
            let params = get_datum(d)?;
            Value::Op { op, params }
        }
        1 => {
            let n = d.len()?;
            let mut stages = Vec::with_capacity(n.min(d.buf.len() - d.pos));
            for _ in 0..n {
                let key = get_key(d)?;
                let op = d.str()?;
                let params = get_datum(d)?;
                let n_inputs = d.len()?;
                let mut inputs = Vec::with_capacity(n_inputs.min(d.buf.len() - d.pos));
                for _ in 0..n_inputs {
                    inputs.push(match d.u8()? {
                        0 => FusedInput::Dep(d.usize()?),
                        1 => FusedInput::Stage(d.usize()?),
                        tag => {
                            return Err(WireError::BadTag {
                                what: "fused input",
                                tag,
                            })
                        }
                    });
                }
                stages.push(FusedStage {
                    key,
                    op,
                    params,
                    inputs,
                });
            }
            Value::Fused { stages }
        }
        tag => return Err(WireError::BadTag { what: "value", tag }),
    };
    let n_deps = d.len()?;
    let mut deps = Vec::with_capacity(n_deps.min(d.buf.len() - d.pos));
    for _ in 0..n_deps {
        deps.push(get_key(d)?);
    }
    Ok(TaskSpec { key, value, deps })
}

fn put_error(e: &mut Enc, err: &TaskError) {
    put_key(e, &err.key);
    e.str(&err.message);
    match &err.cause {
        ErrorCause::Direct => e.u8(0),
        ErrorCause::FusedStage { stored_key } => {
            e.u8(1);
            put_key(e, stored_key);
        }
        ErrorCause::Propagated { via } => {
            e.u8(2);
            put_key(e, via);
        }
        ErrorCause::PeerLost => e.u8(3),
    }
}

fn get_error(d: &mut Dec) -> Result<TaskError, WireError> {
    let key = get_key(d)?;
    let message = d.str()?;
    let cause = match d.u8()? {
        0 => ErrorCause::Direct,
        1 => ErrorCause::FusedStage {
            stored_key: get_key(d)?,
        },
        2 => ErrorCause::Propagated { via: get_key(d)? },
        3 => ErrorCause::PeerLost,
        tag => {
            return Err(WireError::BadTag {
                what: "error cause",
                tag,
            })
        }
    };
    Ok(TaskError {
        key,
        message,
        cause,
    })
}

fn put_addr(e: &mut Enc, a: Addr) {
    match a {
        Addr::Scheduler => e.u8(0),
        Addr::WorkerData(w) => {
            e.u8(1);
            e.usize(w);
        }
        Addr::WorkerExec(w) => {
            e.u8(2);
            e.usize(w);
        }
        Addr::Client(c) => {
            e.u8(3);
            e.usize(c);
        }
        Addr::Control => e.u8(4),
    }
}

fn get_addr(d: &mut Dec) -> Result<Addr, WireError> {
    Ok(match d.u8()? {
        0 => Addr::Scheduler,
        1 => Addr::WorkerData(d.usize()?),
        2 => Addr::WorkerExec(d.usize()?),
        3 => Addr::Client(d.usize()?),
        4 => Addr::Control,
        tag => return Err(WireError::BadTag { what: "addr", tag }),
    })
}

fn put_reply_to(e: &mut Enc, r: &ReplyTo) {
    put_addr(e, r.addr);
    e.u64(r.corr);
}

fn get_reply_to(d: &mut Dec) -> Result<ReplyTo, WireError> {
    Ok(ReplyTo {
        addr: get_addr(d)?,
        corr: d.u64()?,
    })
}

fn put_assignment(e: &mut Enc, a: &Assignment) {
    put_spec(e, &a.spec);
    e.len(a.dep_locations.len());
    for (key, holders) in &a.dep_locations {
        put_key(e, key);
        e.len(holders.len());
        for w in holders {
            e.usize(*w);
        }
    }
    // `assigned_at` deliberately stays off the wire (see `Assignment` docs).
}

fn get_assignment(d: &mut Dec) -> Result<Assignment, WireError> {
    let spec = Arc::new(get_spec(d)?);
    let n = d.len()?;
    let mut dep_locations = Vec::with_capacity(n.min(d.buf.len() - d.pos));
    for _ in 0..n {
        let key = get_key(d)?;
        let n_holders = d.len()?;
        let mut holders = Vec::with_capacity(n_holders.min(d.buf.len() - d.pos));
        for _ in 0..n_holders {
            holders.push(d.usize()?);
        }
        dep_locations.push((key, holders));
    }
    Ok(Assignment {
        spec,
        dep_locations,
        assigned_at: Instant::now(),
    })
}

fn put_sched(e: &mut Enc, m: &SchedMsg) {
    match m {
        SchedMsg::ClientConnect { client } => {
            e.u8(0);
            e.usize(*client);
        }
        SchedMsg::ClientDisconnect { client } => {
            e.u8(1);
            e.usize(*client);
        }
        SchedMsg::SubmitGraph { client, specs } => {
            e.u8(2);
            e.usize(*client);
            e.len(specs.len());
            for s in specs {
                put_spec(e, s);
            }
        }
        SchedMsg::RegisterExternal { client, keys } => {
            e.u8(3);
            e.usize(*client);
            e.len(keys.len());
            for k in keys {
                put_key(e, k);
            }
        }
        SchedMsg::UpdateData {
            client,
            entries,
            external,
        } => {
            e.u8(4);
            e.usize(*client);
            e.len(entries.len());
            for (k, w, nbytes) in entries {
                put_key(e, k);
                e.usize(*w);
                e.u64(*nbytes);
            }
            e.u8(*external as u8);
        }
        SchedMsg::TaskFinished {
            worker,
            key,
            nbytes,
        } => {
            e.u8(5);
            e.usize(*worker);
            put_key(e, key);
            e.u64(*nbytes);
        }
        SchedMsg::AddReplica { worker, entries } => {
            e.u8(6);
            e.usize(*worker);
            e.len(entries.len());
            for (k, nbytes) in entries {
                put_key(e, k);
                e.u64(*nbytes);
            }
        }
        SchedMsg::TaskErred {
            worker,
            stored_key,
            error,
            failed_peer,
        } => {
            e.u8(7);
            e.usize(*worker);
            put_key(e, stored_key);
            put_error(e, error);
            match failed_peer {
                None => e.u8(0),
                Some(peer) => {
                    e.u8(1);
                    e.usize(*peer);
                }
            }
        }
        SchedMsg::WantResult { client, key } => {
            e.u8(8);
            e.usize(*client);
            put_key(e, key);
        }
        SchedMsg::ReleaseKeys { keys } => {
            e.u8(9);
            e.len(keys.len());
            for k in keys {
                put_key(e, k);
            }
        }
        SchedMsg::VariableSet { name, value } => {
            e.u8(10);
            e.str(name);
            put_datum(e, value);
        }
        SchedMsg::VariableGet { client, name, wait } => {
            e.u8(11);
            e.usize(*client);
            e.str(name);
            e.u8(*wait as u8);
        }
        SchedMsg::VariableDel { name } => {
            e.u8(12);
            e.str(name);
        }
        SchedMsg::QueuePush { name, value } => {
            e.u8(13);
            e.str(name);
            put_datum(e, value);
        }
        SchedMsg::QueuePop { client, name } => {
            e.u8(14);
            e.usize(*client);
            e.str(name);
        }
        SchedMsg::Heartbeat { client } => {
            e.u8(15);
            e.usize(*client);
        }
        SchedMsg::Shutdown => e.u8(16),
        SchedMsg::WorkerHeartbeat { worker } => {
            e.u8(17);
            e.usize(*worker);
        }
        SchedMsg::StealRequest { worker } => {
            e.u8(18);
            e.usize(*worker);
        }
        SchedMsg::Stolen {
            victim,
            thief,
            keys,
        } => {
            e.u8(19);
            e.usize(*victim);
            e.usize(*thief);
            e.len(keys.len());
            for k in keys {
                put_key(e, k);
            }
        }
        SchedMsg::RegisterWorker { worker, slots } => {
            e.u8(20);
            e.usize(*worker);
            e.usize(*slots);
        }
        SchedMsg::Scoped { session, inner } => {
            e.u8(21);
            e.u32(*session);
            put_sched(e, inner);
        }
    }
}

fn get_sched(d: &mut Dec) -> Result<SchedMsg, WireError> {
    Ok(match d.u8()? {
        0 => SchedMsg::ClientConnect { client: d.usize()? },
        1 => SchedMsg::ClientDisconnect { client: d.usize()? },
        2 => {
            let client = d.usize()?;
            let n = d.len()?;
            let mut specs = Vec::with_capacity(n.min(d.buf.len() - d.pos));
            for _ in 0..n {
                specs.push(get_spec(d)?);
            }
            SchedMsg::SubmitGraph { client, specs }
        }
        3 => {
            let client = d.usize()?;
            let n = d.len()?;
            let mut keys = Vec::with_capacity(n.min(d.buf.len() - d.pos));
            for _ in 0..n {
                keys.push(get_key(d)?);
            }
            SchedMsg::RegisterExternal { client, keys }
        }
        4 => {
            let client = d.usize()?;
            let n = d.len()?;
            let mut entries = Vec::with_capacity(n.min(d.buf.len() - d.pos));
            for _ in 0..n {
                let k = get_key(d)?;
                let w = d.usize()?;
                let nbytes = d.u64()?;
                entries.push((k, w, nbytes));
            }
            let external = d.u8()? != 0;
            SchedMsg::UpdateData {
                client,
                entries,
                external,
            }
        }
        5 => SchedMsg::TaskFinished {
            worker: d.usize()?,
            key: get_key(d)?,
            nbytes: d.u64()?,
        },
        6 => {
            let worker = d.usize()?;
            let n = d.len()?;
            let mut entries = Vec::with_capacity(n.min(d.buf.len() - d.pos));
            for _ in 0..n {
                let k = get_key(d)?;
                let nbytes = d.u64()?;
                entries.push((k, nbytes));
            }
            SchedMsg::AddReplica { worker, entries }
        }
        7 => SchedMsg::TaskErred {
            worker: d.usize()?,
            stored_key: get_key(d)?,
            error: get_error(d)?,
            failed_peer: match d.u8()? {
                0 => None,
                1 => Some(d.usize()?),
                tag => {
                    return Err(WireError::BadTag {
                        what: "failed_peer",
                        tag,
                    })
                }
            },
        },
        8 => SchedMsg::WantResult {
            client: d.usize()?,
            key: get_key(d)?,
        },
        9 => {
            let n = d.len()?;
            let mut keys = Vec::with_capacity(n.min(d.buf.len() - d.pos));
            for _ in 0..n {
                keys.push(get_key(d)?);
            }
            SchedMsg::ReleaseKeys { keys }
        }
        10 => SchedMsg::VariableSet {
            name: d.str()?,
            value: get_datum(d)?,
        },
        11 => SchedMsg::VariableGet {
            client: d.usize()?,
            name: d.str()?,
            wait: d.u8()? != 0,
        },
        12 => SchedMsg::VariableDel { name: d.str()? },
        13 => SchedMsg::QueuePush {
            name: d.str()?,
            value: get_datum(d)?,
        },
        14 => SchedMsg::QueuePop {
            client: d.usize()?,
            name: d.str()?,
        },
        15 => SchedMsg::Heartbeat { client: d.usize()? },
        16 => SchedMsg::Shutdown,
        17 => SchedMsg::WorkerHeartbeat { worker: d.usize()? },
        18 => SchedMsg::StealRequest { worker: d.usize()? },
        19 => {
            let victim = d.usize()?;
            let thief = d.usize()?;
            let n = d.len()?;
            let mut keys = Vec::with_capacity(n.min(d.buf.len() - d.pos));
            for _ in 0..n {
                keys.push(get_key(d)?);
            }
            SchedMsg::Stolen {
                victim,
                thief,
                keys,
            }
        }
        20 => SchedMsg::RegisterWorker {
            worker: d.usize()?,
            slots: d.usize()?,
        },
        21 => SchedMsg::Scoped {
            session: d.u32()?,
            inner: Box::new(get_sched(d)?),
        },
        tag => {
            return Err(WireError::BadTag {
                what: "sched msg",
                tag,
            })
        }
    })
}

fn put_exec(e: &mut Enc, m: &ExecMsg) {
    match m {
        ExecMsg::Execute(a) => {
            e.u8(0);
            put_assignment(e, a);
        }
        ExecMsg::ExecuteBatch { tasks } => {
            e.u8(1);
            e.len(tasks.len());
            for a in tasks {
                put_assignment(e, a);
            }
        }
        ExecMsg::Shutdown => e.u8(2),
        ExecMsg::Steal { thief, max } => {
            e.u8(3);
            e.usize(*thief);
            e.usize(*max);
        }
    }
}

fn get_exec(d: &mut Dec) -> Result<ExecMsg, WireError> {
    Ok(match d.u8()? {
        0 => ExecMsg::Execute(get_assignment(d)?),
        1 => {
            let n = d.len()?;
            let mut tasks = Vec::with_capacity(n.min(d.buf.len() - d.pos));
            for _ in 0..n {
                tasks.push(get_assignment(d)?);
            }
            ExecMsg::ExecuteBatch { tasks }
        }
        2 => ExecMsg::Shutdown,
        3 => ExecMsg::Steal {
            thief: d.usize()?,
            max: d.usize()?,
        },
        tag => {
            return Err(WireError::BadTag {
                what: "exec msg",
                tag,
            })
        }
    })
}

fn put_data(e: &mut Enc, m: &DataMsg) {
    match m {
        DataMsg::Put { key, value, ack } => {
            e.u8(0);
            put_key(e, key);
            put_datum(e, value);
            put_reply_to(e, ack);
        }
        DataMsg::Get { key, reply } => {
            e.u8(1);
            put_key(e, key);
            put_reply_to(e, reply);
        }
        DataMsg::Delete { keys } => {
            e.u8(2);
            e.len(keys.len());
            for k in keys {
                put_key(e, k);
            }
        }
        DataMsg::Stats { reply } => {
            e.u8(3);
            put_reply_to(e, reply);
        }
        DataMsg::Shutdown => e.u8(4),
        DataMsg::Fetch { key, reply } => {
            e.u8(5);
            put_key(e, key);
            put_reply_to(e, reply);
        }
        DataMsg::Sweep { session } => {
            e.u8(6);
            e.u32(*session);
        }
    }
}

fn get_data(d: &mut Dec) -> Result<DataMsg, WireError> {
    Ok(match d.u8()? {
        0 => DataMsg::Put {
            key: get_key(d)?,
            value: get_datum(d)?,
            ack: get_reply_to(d)?,
        },
        1 => DataMsg::Get {
            key: get_key(d)?,
            reply: get_reply_to(d)?,
        },
        2 => {
            let n = d.len()?;
            let mut keys = Vec::with_capacity(n.min(d.buf.len() - d.pos));
            for _ in 0..n {
                keys.push(get_key(d)?);
            }
            DataMsg::Delete { keys }
        }
        3 => DataMsg::Stats {
            reply: get_reply_to(d)?,
        },
        4 => DataMsg::Shutdown,
        5 => DataMsg::Fetch {
            key: get_key(d)?,
            reply: get_reply_to(d)?,
        },
        6 => DataMsg::Sweep { session: d.u32()? },
        tag => {
            return Err(WireError::BadTag {
                what: "data msg",
                tag,
            })
        }
    })
}

fn put_client(e: &mut Enc, m: &ClientMsg) {
    match m {
        ClientMsg::KeyReady { key, location } => {
            e.u8(0);
            put_key(e, key);
            match location {
                Ok(w) => {
                    e.u8(0);
                    e.usize(*w);
                }
                Err(err) => {
                    e.u8(1);
                    put_error(e, err);
                }
            }
        }
        ClientMsg::VariableValue { name, value, found } => {
            e.u8(1);
            e.str(name);
            put_datum(e, value);
            e.u8(*found as u8);
        }
        ClientMsg::QueueItem { name, value } => {
            e.u8(2);
            e.str(name);
            put_datum(e, value);
        }
        ClientMsg::SubmitOutcome {
            accepted,
            inflight,
            cap,
        } => {
            e.u8(3);
            e.u8(*accepted as u8);
            e.u64(*inflight);
            e.u64(*cap);
        }
    }
}

fn get_client(d: &mut Dec) -> Result<ClientMsg, WireError> {
    Ok(match d.u8()? {
        0 => {
            let key = get_key(d)?;
            let location = match d.u8()? {
                0 => Ok(d.usize()?),
                1 => Err(get_error(d)?),
                tag => {
                    return Err(WireError::BadTag {
                        what: "key location",
                        tag,
                    })
                }
            };
            ClientMsg::KeyReady { key, location }
        }
        1 => ClientMsg::VariableValue {
            name: d.str()?,
            value: get_datum(d)?,
            found: d.u8()? != 0,
        },
        2 => ClientMsg::QueueItem {
            name: d.str()?,
            value: get_datum(d)?,
        },
        3 => ClientMsg::SubmitOutcome {
            accepted: d.u8()? != 0,
            inflight: d.u64()?,
            cap: d.u64()?,
        },
        tag => {
            return Err(WireError::BadTag {
                what: "client msg",
                tag,
            })
        }
    })
}

fn put_data_reply(e: &mut Enc, r: &DataReply) {
    match r {
        DataReply::PutAck => e.u8(0),
        DataReply::Value(Ok(v)) => {
            e.u8(1);
            put_datum(e, v);
        }
        DataReply::Value(Err(msg)) => {
            e.u8(2);
            e.str(msg);
        }
        DataReply::Stats { keys, bytes } => {
            e.u8(3);
            e.u64(*keys);
            e.u64(*bytes);
        }
    }
}

fn get_data_reply(d: &mut Dec) -> Result<DataReply, WireError> {
    Ok(match d.u8()? {
        0 => DataReply::PutAck,
        1 => DataReply::Value(Ok(get_datum(d)?)),
        2 => DataReply::Value(Err(d.str()?)),
        3 => DataReply::Stats {
            keys: d.u64()?,
            bytes: d.u64()?,
        },
        tag => {
            return Err(WireError::BadTag {
                what: "data reply",
                tag,
            })
        }
    })
}

// ---- envelope --------------------------------------------------------------

fn payload_kind(p: &Payload) -> u8 {
    match p {
        Payload::Sched(_) => 0,
        Payload::Exec(_) => 1,
        Payload::Data(_) => 2,
        Payload::Client(_) => 3,
        Payload::Reply { .. } => 4,
    }
}

/// Serialize one transport payload into a framed envelope.
pub fn encode(p: &Payload) -> Vec<u8> {
    let mut body = Enc::new();
    match p {
        Payload::Sched(m) => put_sched(&mut body, m),
        Payload::Exec(m) => put_exec(&mut body, m),
        Payload::Data(m) => put_data(&mut body, m),
        Payload::Client(m) => put_client(&mut body, m),
        Payload::Reply { corr, reply } => {
            body.u64(*corr);
            put_data_reply(&mut body, reply);
        }
    }
    let mut out = Vec::with_capacity(HEADER_BYTES + body.buf.len());
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(payload_kind(p));
    out.extend_from_slice(&(body.buf.len() as u32).to_le_bytes());
    out.extend_from_slice(&body.buf);
    out
}

/// Parse a framed envelope back into a transport payload.
pub fn decode(bytes: &[u8]) -> Result<Payload, WireError> {
    if bytes.len() < HEADER_BYTES {
        return Err(WireError::Truncated);
    }
    if bytes[0..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if bytes[2] != WIRE_VERSION {
        return Err(WireError::BadVersion(bytes[2]));
    }
    let kind = bytes[3];
    let body_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    if bytes.len() != HEADER_BYTES + body_len {
        return Err(WireError::Truncated);
    }
    let mut d = Dec::new(&bytes[HEADER_BYTES..]);
    let payload = match kind {
        0 => Payload::Sched(get_sched(&mut d)?),
        1 => Payload::Exec(get_exec(&mut d)?),
        2 => Payload::Data(get_data(&mut d)?),
        3 => Payload::Client(get_client(&mut d)?),
        4 => Payload::Reply {
            corr: d.u64()?,
            reply: get_data_reply(&mut d)?,
        },
        tag => {
            return Err(WireError::BadTag {
                what: "payload kind",
                tag,
            })
        }
    };
    if !d.done() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(payload)
}

// ---- deployment control messages -------------------------------------------

/// Envelope payload kind of [`NodeMsg`] control frames. Kinds `0..=4` carry
/// the in-cluster [`Payload`] variants; kind `5` is deployment-plane control
/// traffic (registration handshake, teardown, remote reply cancellation) and
/// never reaches [`decode`] — socket readers peek the kind byte and route
/// kind-5 envelopes to [`decode_node`] instead.
pub const NODE_KIND: u8 = 5;

/// Deployment-plane control messages exchanged between a worker process
/// (`dtask-node`) and the cluster hub. These ride the same versioned
/// envelope as [`Payload`] (kind [`NODE_KIND`]) so version/magic checking is
/// uniform, but they are *not* part of the in-cluster message flow and are
/// excluded from per-lane wire accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeMsg {
    /// First frame a dialing worker process sends: announce capacity. The
    /// hub answers with `Welcome` (assigning the worker id) or `Goodbye`.
    Hello {
        /// Executor slots this process will run.
        slots: usize,
        /// Store memory budget in bytes (`None` = unbounded).
        mem_budget: Option<u64>,
        /// Free-form capability strings (forward-compatible; the hub
        /// currently records but does not interpret them).
        capabilities: Vec<String>,
    },
    /// Hub → node: registration accepted; cluster config the node needs to
    /// size its local runtime.
    Welcome {
        /// Assigned worker id.
        worker: usize,
        /// Total worker count in the cluster (sizes peer routing tables).
        n_workers: usize,
        /// Executor slots the node must run (hub may clamp the announced
        /// value).
        slots: usize,
        /// Worker heartbeat interval in milliseconds; `0` disables pinging.
        heartbeat_ms: u64,
        /// Store memory budget the hub wants applied (`None` = keep the
        /// node's own setting).
        mem_budget: Option<u64>,
    },
    /// Either side announces orderly teardown (hub → node at cluster
    /// shutdown; hub → node at handshake rejection).
    Goodbye {
        /// Human-readable reason, logged by the receiver.
        reason: String,
    },
    /// Hub → node: a reply slot the node is waiting on can never be
    /// fulfilled (the target process died). The node cancels the local
    /// correlation so the waiter observes the standard hung-peer error.
    Cancel {
        /// Correlation id in the *receiving node's* reply space.
        corr: u64,
    },
}

/// Serialize one [`NodeMsg`] into a framed kind-5 envelope.
pub fn encode_node(m: &NodeMsg) -> Vec<u8> {
    let mut body = Enc::new();
    match m {
        NodeMsg::Hello {
            slots,
            mem_budget,
            capabilities,
        } => {
            body.u8(0);
            body.usize(*slots);
            match mem_budget {
                None => body.u8(0),
                Some(b) => {
                    body.u8(1);
                    body.u64(*b);
                }
            }
            body.len(capabilities.len());
            for c in capabilities {
                body.str(c);
            }
        }
        NodeMsg::Welcome {
            worker,
            n_workers,
            slots,
            heartbeat_ms,
            mem_budget,
        } => {
            body.u8(1);
            body.usize(*worker);
            body.usize(*n_workers);
            body.usize(*slots);
            body.u64(*heartbeat_ms);
            match mem_budget {
                None => body.u8(0),
                Some(b) => {
                    body.u8(1);
                    body.u64(*b);
                }
            }
        }
        NodeMsg::Goodbye { reason } => {
            body.u8(2);
            body.str(reason);
        }
        NodeMsg::Cancel { corr } => {
            body.u8(3);
            body.u64(*corr);
        }
    }
    let mut out = Vec::with_capacity(HEADER_BYTES + body.buf.len());
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(NODE_KIND);
    out.extend_from_slice(&(body.buf.len() as u32).to_le_bytes());
    out.extend_from_slice(&body.buf);
    out
}

/// Parse a framed kind-5 envelope back into a [`NodeMsg`].
pub fn decode_node(bytes: &[u8]) -> Result<NodeMsg, WireError> {
    if bytes.len() < HEADER_BYTES {
        return Err(WireError::Truncated);
    }
    if bytes[0..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if bytes[2] != WIRE_VERSION {
        return Err(WireError::BadVersion(bytes[2]));
    }
    if bytes[3] != NODE_KIND {
        return Err(WireError::BadTag {
            what: "node payload kind",
            tag: bytes[3],
        });
    }
    let body_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    if bytes.len() != HEADER_BYTES + body_len {
        return Err(WireError::Truncated);
    }
    let mut d = Dec::new(&bytes[HEADER_BYTES..]);
    let msg = match d.u8()? {
        0 => {
            let slots = d.usize()?;
            let mem_budget = match d.u8()? {
                0 => None,
                1 => Some(d.u64()?),
                tag => {
                    return Err(WireError::BadTag {
                        what: "mem_budget",
                        tag,
                    })
                }
            };
            let n = d.len()?;
            let mut capabilities = Vec::with_capacity(n.min(d.buf.len() - d.pos));
            for _ in 0..n {
                capabilities.push(d.str()?);
            }
            NodeMsg::Hello {
                slots,
                mem_budget,
                capabilities,
            }
        }
        1 => {
            let worker = d.usize()?;
            let n_workers = d.usize()?;
            let slots = d.usize()?;
            let heartbeat_ms = d.u64()?;
            let mem_budget = match d.u8()? {
                0 => None,
                1 => Some(d.u64()?),
                tag => {
                    return Err(WireError::BadTag {
                        what: "mem_budget",
                        tag,
                    })
                }
            };
            NodeMsg::Welcome {
                worker,
                n_workers,
                slots,
                heartbeat_ms,
                mem_budget,
            }
        }
        2 => NodeMsg::Goodbye { reason: d.str()? },
        3 => NodeMsg::Cancel { corr: d.u64()? },
        tag => {
            return Err(WireError::BadTag {
                what: "node msg",
                tag,
            })
        }
    };
    if !d.done() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(msg)
}

// ---- standalone codecs (test surface) --------------------------------------

/// Encode a bare [`Key`] (length-prefixed text).
pub fn encode_key(k: &Key) -> Vec<u8> {
    let mut e = Enc::new();
    put_key(&mut e, k);
    e.buf
}

/// Decode a bare [`Key`].
pub fn decode_key(bytes: &[u8]) -> Result<Key, WireError> {
    let mut d = Dec::new(bytes);
    let k = get_key(&mut d)?;
    if !d.done() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(k)
}

/// Encode a bare [`Datum`].
pub fn encode_datum(v: &Datum) -> Vec<u8> {
    let mut e = Enc::new();
    put_datum(&mut e, v);
    e.buf
}

/// Decode a bare [`Datum`].
pub fn decode_datum(bytes: &[u8]) -> Result<Datum, WireError> {
    let mut d = Dec::new(bytes);
    let v = get_datum(&mut d)?;
    if !d.done() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(v)
}

/// Encode a bare [`TaskSpec`].
pub fn encode_spec(s: &TaskSpec) -> Vec<u8> {
    let mut e = Enc::new();
    put_spec(&mut e, s);
    e.buf
}

/// Decode a bare [`TaskSpec`].
pub fn decode_spec(bytes: &[u8]) -> Result<TaskSpec, WireError> {
    let mut d = Dec::new(bytes);
    let s = get_spec(&mut d)?;
    if !d.done() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(s)
}

/// Encode a bare [`TaskError`] (including its structured cause).
pub fn encode_error(err: &TaskError) -> Vec<u8> {
    let mut e = Enc::new();
    put_error(&mut e, err);
    e.buf
}

/// Decode a bare [`TaskError`].
pub fn decode_error(bytes: &[u8]) -> Result<TaskError, WireError> {
    let mut d = Dec::new(bytes);
    let err = get_error(&mut d)?;
    if !d.done() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    Ok(err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::ErrorCause;

    #[test]
    fn envelope_round_trip_and_header_checks() {
        let msg = Payload::Sched(SchedMsg::Heartbeat { client: 7 });
        let bytes = encode(&msg);
        assert_eq!(&bytes[0..2], &MAGIC);
        assert_eq!(bytes[2], WIRE_VERSION);
        match decode(&bytes).unwrap() {
            Payload::Sched(SchedMsg::Heartbeat { client }) => assert_eq!(client, 7),
            _ => panic!("wrong payload"),
        }

        let mut bad = bytes.clone();
        bad[2] = WIRE_VERSION + 1;
        assert_eq!(
            decode(&bad).err(),
            Some(WireError::BadVersion(WIRE_VERSION + 1))
        );
        let mut bad = bytes.clone();
        bad[0] = 0;
        assert_eq!(decode(&bad).err(), Some(WireError::BadMagic));
        assert_eq!(decode(&bytes[..4]).err(), Some(WireError::Truncated));
    }

    #[test]
    fn datum_round_trips_bit_exactly() {
        let arr = NDArray::from_fn(&[3, 2], |idx| idx[0] as f64 * 10.0 + idx[1] as f64);
        let v = Datum::List(vec![
            Datum::F64(-0.0),
            Datum::F64(f64::MIN_POSITIVE),
            Datum::I64(-42),
            Datum::Bool(true),
            Datum::Str("schrödinger".into()),
            Datum::Array(Arc::new(arr)),
            Datum::Bytes(vec![0, 255, 7].into()),
            Datum::Null,
        ]);
        let bytes = encode_datum(&v);
        let back = decode_datum(&bytes).unwrap();
        // Datum has no PartialEq; a deterministic encoder makes re-encoding
        // a faithful equality check.
        assert_eq!(encode_datum(&back), bytes);
        let Datum::List(items) = back else {
            panic!("list expected")
        };
        assert_eq!(items[0].as_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        let Datum::Array(a) = &items[5] else {
            panic!("array expected")
        };
        assert_eq!(a.shape(), &[3, 2]);
        assert_eq!(a.get(&[2, 1]), 21.0);
    }

    #[test]
    fn error_cause_survives_round_trip() {
        for cause in [
            ErrorCause::Direct,
            ErrorCause::FusedStage {
                stored_key: Key::new("tail"),
            },
            ErrorCause::Propagated {
                via: Key::new("mid"),
            },
            ErrorCause::PeerLost,
        ] {
            let err = TaskError::new("origin", "kaboom").with_cause(cause.clone());
            let back = decode_error(&encode_error(&err)).unwrap();
            assert_eq!(back, err);
            assert_eq!(back.cause, cause);
        }
    }

    #[test]
    fn worker_heartbeat_round_trips() {
        let bytes = encode(&Payload::Sched(SchedMsg::WorkerHeartbeat { worker: 3 }));
        match decode(&bytes).unwrap() {
            Payload::Sched(SchedMsg::WorkerHeartbeat { worker }) => assert_eq!(worker, 3),
            _ => panic!("wrong payload"),
        }
    }

    #[test]
    fn steal_messages_round_trip_and_stay_control_sized() {
        let bytes = encode(&Payload::Sched(SchedMsg::StealRequest { worker: 5 }));
        match decode(&bytes).unwrap() {
            Payload::Sched(SchedMsg::StealRequest { worker }) => assert_eq!(worker, 5),
            _ => panic!("wrong payload"),
        }

        let stolen = Payload::Sched(SchedMsg::Stolen {
            victim: 2,
            thief: 7,
            keys: (0..8)
                .map(|i| Key::new(format!("block-{i}-step-42")))
                .collect(),
        });
        let bytes = encode(&stolen);
        match decode(&bytes).unwrap() {
            Payload::Sched(SchedMsg::Stolen {
                victim,
                thief,
                keys,
            }) => {
                assert_eq!((victim, thief), (2, 7));
                assert_eq!(keys.len(), 8);
                assert_eq!(keys[3].as_str(), "block-3-step-42");
            }
            _ => panic!("wrong payload"),
        }
        assert!(
            (bytes.len() as u64) <= netsim::sizing::CTRL_MSG_BYTES,
            "steal reports are control-sized"
        );

        let bytes = encode(&Payload::Exec(ExecMsg::Steal { thief: 1, max: 4 }));
        match decode(&bytes).unwrap() {
            Payload::Exec(ExecMsg::Steal { thief, max }) => assert_eq!((thief, max), (1, 4)),
            _ => panic!("wrong payload"),
        }
        assert!((bytes.len() as u64) <= netsim::sizing::CTRL_MSG_BYTES);
    }

    #[test]
    fn register_worker_round_trips() {
        let bytes = encode(&Payload::Sched(SchedMsg::RegisterWorker {
            worker: 4,
            slots: 3,
        }));
        match decode(&bytes).unwrap() {
            Payload::Sched(SchedMsg::RegisterWorker { worker, slots }) => {
                assert_eq!((worker, slots), (4, 3));
            }
            _ => panic!("wrong payload"),
        }
    }

    #[test]
    fn node_msgs_round_trip_on_kind_5() {
        let msgs = [
            NodeMsg::Hello {
                slots: 2,
                mem_budget: Some(1 << 20),
                capabilities: vec!["darray".into(), "h5".into()],
            },
            NodeMsg::Welcome {
                worker: 1,
                n_workers: 3,
                slots: 2,
                heartbeat_ms: 50,
                mem_budget: None,
            },
            NodeMsg::Goodbye {
                reason: "cluster shutdown".into(),
            },
            NodeMsg::Cancel { corr: 99 },
        ];
        for m in &msgs {
            let bytes = encode_node(m);
            assert_eq!(bytes[3], NODE_KIND);
            assert_eq!(&decode_node(&bytes).unwrap(), m);
            // Kind 5 is deployment-plane only: the in-cluster decoder must
            // reject it rather than alias some Payload variant.
            assert_eq!(
                decode(&bytes).err(),
                Some(WireError::BadTag {
                    what: "payload kind",
                    tag: NODE_KIND,
                })
            );
        }
    }

    #[test]
    fn fused_spec_round_trips() {
        let spec = TaskSpec::fused(
            "tail",
            vec![
                FusedStage {
                    key: Key::new("head"),
                    op: "identity".into(),
                    params: Datum::Null,
                    inputs: vec![FusedInput::Dep(0)],
                },
                FusedStage {
                    key: Key::new("tail"),
                    op: "bump".into(),
                    params: Datum::F64(2.0),
                    inputs: vec![FusedInput::Stage(0), FusedInput::Dep(1)],
                },
            ],
            vec![Key::new("ext-a"), Key::new("ext-b")],
        );
        let back = decode_spec(&encode_spec(&spec)).unwrap();
        assert_eq!(back.key, spec.key);
        assert_eq!(back.deps, spec.deps);
        let Value::Fused { stages } = &back.value else {
            panic!("fused expected")
        };
        assert_eq!(stages.len(), 2);
        assert_eq!(
            stages[1].inputs,
            vec![FusedInput::Stage(0), FusedInput::Dep(1)]
        );
        assert_eq!(encode_spec(&back), encode_spec(&spec));
    }

    #[test]
    fn ref_handle_and_fetch_round_trip() {
        // Tag 8: a proxy handle nested in a list — exactly how it rides in
        // VariableSet / task params.
        let handle = DatumRef {
            key: Key::new("proxy:c3:17"),
            shape: vec![160, 160],
            nbytes: 160 * 160 * 8,
            holder: 2,
            epoch: 17,
        };
        let v = Datum::List(vec![Datum::Ref(handle.clone()), Datum::F64(1.5)]);
        let bytes = encode_datum(&v);
        let back = decode_datum(&bytes).unwrap();
        assert_eq!(encode_datum(&back), bytes);
        assert_eq!(back.as_list().unwrap()[0].as_ref_handle(), Some(&handle));
        // The handle is control-path small regardless of the payload size.
        assert!(
            (bytes.len() as u64) < handle.nbytes / 100,
            "handle must be tiny next to its payload"
        );
        for cut in 0..bytes.len() {
            assert!(decode_datum(&bytes[..cut]).is_err(), "cut at {cut}");
        }

        // Tag 5 on the data lane: the resolution request.
        let msg = Payload::Data(DataMsg::Fetch {
            key: Key::new("proxy:c3:17"),
            reply: ReplyTo {
                addr: Addr::WorkerData(1),
                corr: 99,
            },
        });
        let framed = encode(&msg);
        match decode(&framed).unwrap() {
            Payload::Data(DataMsg::Fetch { key, reply }) => {
                assert_eq!(key.as_str(), "proxy:c3:17");
                assert_eq!(reply.addr, Addr::WorkerData(1));
                assert_eq!(reply.corr, 99);
            }
            _ => panic!("wrong payload"),
        }
        assert!(
            (framed.len() as u64) <= netsim::sizing::CTRL_MSG_BYTES,
            "fetch requests are control-sized"
        );
    }

    #[test]
    fn default_session_key_encodes_as_bare_string() {
        // The seed wire format was `u32 len ‖ text`; session-0 keys must
        // stay byte-identical so pre-tenancy frames and accounting hold.
        let k = Key::new("sim-block-3");
        let bytes = encode_key(&k);
        let mut seed = ("sim-block-3".len() as u32).to_le_bytes().to_vec();
        seed.extend_from_slice(b"sim-block-3");
        assert_eq!(bytes, seed);
        assert_eq!(decode_key(&bytes).unwrap(), k);
    }

    #[test]
    fn scoped_keys_round_trip_with_session() {
        let k = Key::scoped(7, "sink");
        let bytes = encode_key(&k);
        let back = decode_key(&bytes).unwrap();
        assert_eq!(back, k);
        assert_eq!(back.session(), 7);
        assert_eq!(back.as_str(), "sink");
        // The scoped encoding is distinguishable from any bare string.
        assert_ne!(bytes, encode_key(&Key::new("sink")));
        for cut in 0..bytes.len() {
            assert!(decode_key(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn scoped_sched_msgs_round_trip() {
        let inner = SchedMsg::SubmitGraph {
            client: 3,
            specs: vec![TaskSpec::new(
                "t",
                "identity",
                Datum::Null,
                vec![Key::scoped(5, "dep")],
            )],
        };
        let msg = Payload::Sched(SchedMsg::Scoped {
            session: 5,
            inner: Box::new(inner),
        });
        let bytes = encode(&msg);
        match decode(&bytes).unwrap() {
            Payload::Sched(SchedMsg::Scoped { session, inner }) => {
                assert_eq!(session, 5);
                match *inner {
                    SchedMsg::SubmitGraph { client, specs } => {
                        assert_eq!(client, 3);
                        assert_eq!(specs[0].deps[0], Key::scoped(5, "dep"));
                    }
                    _ => panic!("wrong inner"),
                }
            }
            _ => panic!("wrong payload"),
        }
    }

    #[test]
    fn submit_outcome_and_sweep_round_trip() {
        let bytes = encode(&Payload::Client(ClientMsg::SubmitOutcome {
            accepted: false,
            inflight: 512,
            cap: 256,
        }));
        match decode(&bytes).unwrap() {
            Payload::Client(ClientMsg::SubmitOutcome {
                accepted,
                inflight,
                cap,
            }) => {
                assert!(!accepted);
                assert_eq!((inflight, cap), (512, 256));
            }
            _ => panic!("wrong payload"),
        }
        assert!((bytes.len() as u64) <= netsim::sizing::CTRL_MSG_BYTES);

        let bytes = encode(&Payload::Data(DataMsg::Sweep { session: 9 }));
        match decode(&bytes).unwrap() {
            Payload::Data(DataMsg::Sweep { session }) => assert_eq!(session, 9),
            _ => panic!("wrong payload"),
        }
        assert!((bytes.len() as u64) <= netsim::sizing::CTRL_MSG_BYTES);
    }

    #[test]
    fn truncated_and_garbage_bodies_error_out() {
        let spec = TaskSpec::new("k", "op", Datum::F64(1.0), vec![Key::new("d")]);
        let bytes = encode_spec(&spec);
        for cut in 0..bytes.len() {
            assert!(decode_spec(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert!(matches!(
            decode_datum(&[99]),
            Err(WireError::BadTag { what: "datum", .. })
        ));
    }

    #[test]
    fn control_messages_fit_the_shared_ctrl_budget() {
        // The DES cost models charge `netsim::sizing::CTRL_MSG_BYTES` per
        // control message; typical framed control traffic must stay under
        // that envelope or the simulations are lying about scheduler load.
        let samples = [
            Payload::Sched(SchedMsg::Heartbeat { client: 3 }),
            Payload::Sched(SchedMsg::TaskFinished {
                worker: 1,
                key: Key::new("block-x-0017-step-00042"),
                nbytes: 1 << 20,
            }),
            Payload::Sched(SchedMsg::UpdateData {
                client: 2,
                entries: (0..16)
                    .map(|i| (Key::new(format!("sim-block-{i}-step-7")), i % 4, 1 << 20))
                    .collect(),
                external: true,
            }),
        ];
        for p in &samples {
            let n = encode(p).len() as u64;
            assert!(
                n <= netsim::sizing::CTRL_MSG_BYTES,
                "control message encoded to {n} bytes, budget {}",
                netsim::sizing::CTRL_MSG_BYTES
            );
        }
    }
}
