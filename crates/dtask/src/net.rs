//! Socket plane for the [`crate::TransportConfig::Tcp`] backend and the
//! cross-process deployment layer.
//!
//! Every byte on a socket is a **routed frame**:
//!
//! | bytes   | field                                           |
//! |---------|-------------------------------------------------|
//! | 0       | destination [`Addr`] tag (same tags as the wire codec) |
//! | 1..9    | destination index (worker/client id, LE; `0` otherwise) |
//! | 9..     | a standard [`crate::wire`] envelope (header ‖ body)     |
//!
//! The 9-byte preamble is pure routing — per-lane byte accounting counts
//! only the envelope, so a Tcp cluster reports byte totals identical to the
//! Framed backend.
//!
//! Three plane shapes share this module:
//!
//! * **Loopback** — the `TransportConfig::Tcp` in-process backend: one
//!   listener, one dialed connection per destination node, every message
//!   crossing a real socket with partial-read reassembly.
//! * **Hub** — the deployment listener inside [`crate::Cluster::listen`]:
//!   accepts `dtask-node` worker processes, runs the `Hello`/`Welcome`
//!   registration handshake, and star-routes worker↔worker traffic.
//! * **Node** — the worker-process side (see [`crate::node`]): one
//!   connection to the hub carrying everything.
//!
//! Reply-slot lifetimes across processes: the hub tracks every data request
//! it forwards to a remote node as `(origin, corr) → target`. When a node
//! dies, pending requests against it are cancelled — locally (dropping the
//! reply sender, so the waiter unblocks with a disconnect) when the
//! requester is hub-side, or with a [`NodeMsg::Cancel`] control frame when
//! the requester is another node. That reproduces exactly the in-process
//! dead-worker contract: a requester observes "peer hung up", never a hang.

use crate::stats::WireLane;
use crate::transport::Addr;
use crate::wire::{self, NodeMsg, WireError, HEADER_BYTES, NODE_KIND, WIRE_VERSION};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard upper bound on one envelope's body length. A length field beyond
/// this is treated as a malformed frame (protects against reading garbage
/// or hostile lengths as a multi-gigabyte allocation).
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Routing preamble size: destination tag byte + u64 index.
pub const PREAMBLE_BYTES: usize = 9;

/// Full frame header: routing preamble + envelope header.
pub const FRAME_HEADER_BYTES: usize = PREAMBLE_BYTES + HEADER_BYTES;

/// Socket read granularity and poll interval for stop-flag checks.
const READ_POLL: Duration = Duration::from_millis(50);

/// How often dial/accept loops nap when idle.
const IDLE_NAP: Duration = Duration::from_millis(2);

// ---- frame codec ------------------------------------------------------------

fn addr_parts(a: Addr) -> (u8, u64) {
    match a {
        Addr::Scheduler => (0, 0),
        Addr::WorkerData(w) => (1, w as u64),
        Addr::WorkerExec(w) => (2, w as u64),
        Addr::Client(c) => (3, c as u64),
        Addr::Control => (4, 0),
    }
}

fn addr_from(tag: u8, idx: u64) -> Option<Addr> {
    Some(match tag {
        0 => Addr::Scheduler,
        1 => Addr::WorkerData(idx as usize),
        2 => Addr::WorkerExec(idx as usize),
        3 => Addr::Client(idx as usize),
        4 => Addr::Control,
        _ => return None,
    })
}

/// Build one routed frame: preamble + envelope.
pub fn frame(to: Addr, envelope: &[u8]) -> Vec<u8> {
    let (tag, idx) = addr_parts(to);
    let mut out = Vec::with_capacity(PREAMBLE_BYTES + envelope.len());
    out.push(tag);
    out.extend_from_slice(&idx.to_le_bytes());
    out.extend_from_slice(envelope);
    out
}

/// One parsed routed frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Destination actor.
    pub to: Addr,
    /// The complete wire envelope (header ‖ body).
    pub envelope: Vec<u8>,
}

/// Incremental frame parser with partial-read reassembly: push whatever a
/// socket read produced, pull complete frames out. Header fields are
/// validated as soon as their bytes arrive, so garbage is rejected with a
/// structured [`WireError`] instead of being buffered until a bogus length
/// "completes".
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Append raw socket bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to parse the next complete frame. `Ok(None)` means "need more
    /// bytes"; errors are structural and poison the stream (the caller
    /// should drop the connection).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let n = self.buf.len();
        if n == 0 {
            return Ok(None);
        }
        // Validate header bytes as they become visible.
        if self.buf[0] > 4 {
            return Err(WireError::BadTag {
                what: "socket addr",
                tag: self.buf[0],
            });
        }
        if n > PREAMBLE_BYTES && self.buf[PREAMBLE_BYTES] != wire::MAGIC[0] {
            return Err(WireError::BadMagic);
        }
        if n > PREAMBLE_BYTES + 1 && self.buf[PREAMBLE_BYTES + 1] != wire::MAGIC[1] {
            return Err(WireError::BadMagic);
        }
        if n > PREAMBLE_BYTES + 2 && self.buf[PREAMBLE_BYTES + 2] != WIRE_VERSION {
            return Err(WireError::BadVersion(self.buf[PREAMBLE_BYTES + 2]));
        }
        if n > PREAMBLE_BYTES + 3 && self.buf[PREAMBLE_BYTES + 3] > NODE_KIND {
            return Err(WireError::BadTag {
                what: "payload kind",
                tag: self.buf[PREAMBLE_BYTES + 3],
            });
        }
        if n < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(
            self.buf[PREAMBLE_BYTES + 4..FRAME_HEADER_BYTES]
                .try_into()
                .unwrap(),
        ) as usize;
        if body_len > MAX_FRAME_BYTES {
            return Err(WireError::Malformed("oversized frame"));
        }
        let total = FRAME_HEADER_BYTES + body_len;
        if n < total {
            return Ok(None);
        }
        let idx = u64::from_le_bytes(self.buf[1..PREAMBLE_BYTES].try_into().unwrap());
        let to = addr_from(self.buf[0], idx).expect("tag validated above");
        let envelope = self.buf[PREAMBLE_BYTES..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Frame { to, envelope }))
    }

    /// The stream ended: a partially buffered frame is a truncation error,
    /// a clean boundary is fine.
    pub fn at_eof(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Truncated)
        }
    }
}

/// Map an envelope kind byte onto its accounting lane (kinds `0..=4`).
fn lane_of(kind: u8) -> Option<WireLane> {
    Some(match kind {
        0 => WireLane::SchedIn,
        1 => WireLane::ExecIn,
        2 => WireLane::DataIn,
        3 => WireLane::ClientIn,
        4 => WireLane::ReplyIn,
        _ => return None,
    })
}

/// Which plane node an actor address lives on: `0` is the hub process
/// (scheduler, control handle, and every client/bridge), `1 + w` is worker
/// `w`'s process.
pub(crate) fn to_node(a: Addr) -> u64 {
    match a {
        Addr::Scheduler | Addr::Control | Addr::Client(_) => 0,
        Addr::WorkerData(w) | Addr::WorkerExec(w) => 1 + w as u64,
    }
}

/// Correlation id peeked out of a kind-4 (`Reply`) envelope without a full
/// decode: the corr is the first body field.
fn peek_reply_corr(envelope: &[u8]) -> Option<u64> {
    envelope
        .get(HEADER_BYTES..HEADER_BYTES + 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
}

/// Correlation id of a kind-2 (`Data`) envelope, if the message is a
/// request carrying a reply slot. Needs a full decode (the `ReplyTo`
/// position varies per variant).
fn data_request_corr(envelope: &[u8]) -> Option<u64> {
    use crate::msg::DataMsg;
    match wire::decode(envelope) {
        Ok(crate::transport::Payload::Data(
            DataMsg::Put { ack: r, .. }
            | DataMsg::Get { reply: r, .. }
            | DataMsg::Fetch { reply: r, .. }
            | DataMsg::Stats { reply: r },
        )) => Some(r.corr),
        _ => None,
    }
}

// ---- plane ------------------------------------------------------------------

/// Envelope delivery callback installed by the router: decode and hand the
/// frame to the in-process fabric at the given address.
type DeliverFn = Box<dyn Fn(Addr, &[u8]) + Send + Sync>;

/// Dispatch-side metadata the router attaches to a routed envelope so the
/// plane can track cross-process reply lifetimes without re-decoding.
pub(crate) enum RouteMeta {
    /// No reply slot rides this message.
    Plain,
    /// A data request whose reply slot `corr` must be cancelled if the
    /// target dies before answering.
    Request {
        /// The requester-side correlation id.
        corr: u64,
    },
    /// A reply resolving `corr`.
    Reply {
        /// The correlation id being resolved.
        corr: u64,
    },
}

/// Outcome of routing one envelope.
pub(crate) enum RouteOutcome {
    /// Queued onto a live socket.
    Sent,
    /// Destination is this process: the caller must deliver locally.
    Local,
    /// Destination's process is gone: the caller must cancel any reply slot
    /// riding the message (the dead-worker contract).
    PeerGone,
}

enum FrameAction {
    Continue,
    Close,
}

/// Hub-side deployment state.
struct HubState {
    n_workers: usize,
    /// Slot count imposed on nodes that announce `0`.
    default_slots: usize,
    /// Worker heartbeat interval pushed to nodes (`0` = off).
    heartbeat_ms: u64,
    /// Store budget pushed to nodes (`None` = keep node-local setting).
    mem_budget: Option<u64>,
    handshake_timeout: Duration,
    /// Per-worker-id slot claims; an id is assigned once and never reused
    /// (a dead worker's recovery story is resubmission, not resurrection).
    /// Claimed at Hello, released only by pre-registration casualties.
    claimed: Mutex<Vec<bool>>,
    /// Per-worker-id attach flags, set strictly *after* the scheduler
    /// registration is enqueued — `await_workers` returning must imply the
    /// scheduler's inbox already carries every `RegisterWorker`.
    attached: Mutex<Vec<bool>>,
    /// Delivers a [`crate::msg::SchedMsg::RegisterWorker`] into the
    /// scheduler; installed by the cluster right after router construction.
    register: OnceLock<Box<dyn Fn(usize, usize) + Send + Sync>>,
    /// Outstanding cross-process data requests: `(origin node, corr)` →
    /// target node. Entries die with the reply that resolves them or with
    /// either endpoint's process.
    pending: Mutex<HashMap<(u64, u64), u64>>,
}

enum Mode {
    Loopback,
    Hub(HubState),
    Node {
        self_node: u64,
        /// Teardown signal into [`crate::node::run_node`]: a `Goodbye`
        /// reason, or a synthesized message when the hub connection drops.
        goodbye_tx: Sender<String>,
    },
}

/// State shared by every socket thread of one plane. The owning
/// [`SocketPlane`] keeps the thread handles; threads keep only this.
pub struct PlaneShared {
    mode: Mode,
    stop: AtomicBool,
    /// Live outbound connections by destination node id. Dropping a sender
    /// retires its writer thread.
    writers: Mutex<HashMap<u64, Sender<Vec<u8>>>>,
    /// Where the plane's listener is bound (loopback and hub modes).
    listen_addr: Option<SocketAddr>,
    /// Decode an envelope and hand it to the local delivery fabric.
    /// Installed by the router (the fabric is transport-private).
    deliver: OnceLock<DeliverFn>,
    /// Cancel a local reply slot by correlation id.
    cancel: OnceLock<Box<dyn Fn(u64) + Send + Sync>>,
    /// Per-lane accounting for frames received by hub readers.
    account: OnceLock<Box<dyn Fn(WireLane, u64) + Send + Sync>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl PlaneShared {
    fn new(mode: Mode, listen_addr: Option<SocketAddr>) -> Arc<Self> {
        Arc::new(PlaneShared {
            mode,
            stop: AtomicBool::new(false),
            writers: Mutex::new(HashMap::new()),
            listen_addr,
            deliver: OnceLock::new(),
            cancel: OnceLock::new(),
            account: OnceLock::new(),
            threads: Mutex::new(Vec::new()),
        })
    }

    /// Install the router-side callbacks. Called exactly once, before any
    /// traffic is dispatched; reader threads wait for it.
    pub(crate) fn install(
        &self,
        deliver: DeliverFn,
        cancel: Box<dyn Fn(u64) + Send + Sync>,
        account: Box<dyn Fn(WireLane, u64) + Send + Sync>,
    ) {
        let _ = self.deliver.set(deliver);
        let _ = self.cancel.set(cancel);
        let _ = self.account.set(account);
    }

    /// Hub only: install the scheduler-registration hook.
    pub(crate) fn install_register(&self, register: Box<dyn Fn(usize, usize) + Send + Sync>) {
        if let Mode::Hub(hub) = &self.mode {
            let _ = hub.register.set(register);
        }
    }

    /// Wait until the router installed its callbacks (or the plane is
    /// stopping). Readers call this once before touching any frame.
    fn wait_ready(&self) -> bool {
        while self.deliver.get().is_none() {
            if self.stop.load(Ordering::SeqCst) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Where the listener is bound (loopback and hub planes).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listen_addr
    }

    /// Hub: how many worker processes have completed the handshake.
    pub fn attached_workers(&self) -> usize {
        match &self.mode {
            Mode::Hub(hub) => hub.attached.lock().iter().filter(|a| **a).count(),
            _ => 0,
        }
    }

    /// Hub: worker ids whose node still holds a live connection — attached
    /// and not seen disconnecting. A SIGKILLed worker process leaves this
    /// set as soon as its socket dies, before any liveness verdict.
    pub fn live_workers(&self) -> Vec<usize> {
        match &self.mode {
            Mode::Hub(_) => {
                let mut ids: Vec<usize> = self
                    .writers
                    .lock()
                    .keys()
                    .filter(|&&node| node > 0)
                    .map(|&node| (node - 1) as usize)
                    .collect();
                ids.sort_unstable();
                ids
            }
            _ => Vec::new(),
        }
    }

    /// Hub: block until every worker slot is attached, or `timeout`.
    pub fn await_workers(&self, timeout: Duration) -> bool {
        let Mode::Hub(hub) = &self.mode else {
            return true;
        };
        let deadline = Instant::now() + timeout;
        loop {
            if hub.attached.lock().iter().all(|a| *a) {
                return true;
            }
            if Instant::now() >= deadline || self.stopping() {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Hub: announce orderly teardown to every attached node. Writes to
    /// already-dead peers fail inside their writer threads, which log and
    /// drain — the teardown sequence itself never blocks or panics.
    pub fn goodbye_all(&self, reason: &str) {
        let env = wire::encode_node(&NodeMsg::Goodbye {
            reason: reason.to_string(),
        });
        let buf = frame(Addr::Control, &env);
        for (node, tx) in self.writers.lock().iter() {
            if *node == 0 {
                continue;
            }
            if tx.send(buf.clone()).is_err() {
                eprintln!("dtask-net: goodbye to node {node} skipped (writer already gone)");
            }
        }
    }

    /// Stop every plane thread: writers retire when their senders drop,
    /// readers and accept loops observe the flag within one poll interval.
    /// Joining happens in [`SocketPlane::drop`].
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.writers.lock().clear();
    }

    /// Route one dispatched envelope toward `to`.
    pub(crate) fn route(
        self: &Arc<Self>,
        to: Addr,
        envelope: &[u8],
        meta: RouteMeta,
    ) -> RouteOutcome {
        let dest = to_node(to);
        match &self.mode {
            Mode::Loopback => {
                let tx = match self.loopback_writer(dest) {
                    Some(tx) => tx,
                    // Plane is shutting down: deliver locally so teardown
                    // messages still land.
                    None => return RouteOutcome::Local,
                };
                if tx.send(frame(to, envelope)).is_err() {
                    return RouteOutcome::Local;
                }
                RouteOutcome::Sent
            }
            Mode::Hub(hub) => {
                if dest == 0 {
                    if let RouteMeta::Reply { corr } = meta {
                        // Hub-local reply to a hub-local requester: nothing
                        // pending, but keep the invariant tidy.
                        hub.pending.lock().remove(&(0, corr));
                    }
                    return RouteOutcome::Local;
                }
                if let RouteMeta::Reply { corr } = &meta {
                    hub.pending.lock().remove(&(dest, *corr));
                }
                let tx = self.writers.lock().get(&dest).cloned();
                let sent = match tx {
                    Some(tx) => tx.send(frame(to, envelope)).is_ok(),
                    None => false,
                };
                if sent {
                    if let RouteMeta::Request { corr } = meta {
                        hub.pending.lock().insert((0, corr), dest);
                    }
                    RouteOutcome::Sent
                } else {
                    // Unattached or dead worker process: same contract as a
                    // closed in-process channel.
                    RouteOutcome::PeerGone
                }
            }
            Mode::Node { self_node, .. } => {
                if dest == *self_node {
                    return RouteOutcome::Local;
                }
                // Everything else — scheduler, clients, peer workers — rides
                // the hub connection (star topology; the hub forwards).
                let tx = self.writers.lock().get(&0).cloned();
                match tx {
                    Some(tx) if tx.send(frame(to, envelope)).is_ok() => RouteOutcome::Sent,
                    _ => RouteOutcome::PeerGone,
                }
            }
        }
    }

    /// Loopback: connection to destination node `dest`, dialing it (and
    /// spawning its writer) on first use.
    fn loopback_writer(self: &Arc<Self>, dest: u64) -> Option<Sender<Vec<u8>>> {
        let mut writers = self.writers.lock();
        if let Some(tx) = writers.get(&dest) {
            return Some(tx.clone());
        }
        if self.stopping() {
            return None;
        }
        let addr = self.listen_addr?;
        let stream = TcpStream::connect(addr).ok()?;
        let _ = stream.set_nodelay(true);
        let (tx, rx) = unbounded();
        let label = format!("loopback node {dest}");
        let handle = std::thread::Builder::new()
            .name(format!("dtask-net-w{dest}"))
            .spawn(move || writer_loop(stream, rx, label))
            .ok()?;
        self.threads.lock().push(handle);
        writers.insert(dest, tx.clone());
        Some(tx)
    }

    /// Handle one complete inbound frame. `peer` is the sending node when
    /// known (hub readers; `None` on loopback).
    fn handle_frame(self: &Arc<Self>, peer: Option<u64>, f: Frame) -> FrameAction {
        let kind = f.envelope[3];
        match &self.mode {
            Mode::Loopback => {
                if let Some(deliver) = self.deliver.get() {
                    deliver(f.to, &f.envelope);
                }
                FrameAction::Continue
            }
            Mode::Hub(hub) => {
                if kind == NODE_KIND {
                    return match wire::decode_node(&f.envelope) {
                        Ok(NodeMsg::Goodbye { reason }) => {
                            eprintln!("dtask-net: node {} leaving: {reason}", peer.unwrap_or(0));
                            FrameAction::Close
                        }
                        Ok(_) => FrameAction::Continue,
                        Err(e) => {
                            eprintln!("dtask-net: bad control frame: {e}");
                            FrameAction::Close
                        }
                    };
                }
                if let (Some(account), Some(lane)) = (self.account.get(), lane_of(kind)) {
                    account(lane, f.envelope.len() as u64);
                }
                let dest = to_node(f.to);
                if dest == 0 {
                    if kind == 4 {
                        if let Some(corr) = peek_reply_corr(&f.envelope) {
                            hub.pending.lock().remove(&(0, corr));
                        }
                    }
                    if let Some(deliver) = self.deliver.get() {
                        deliver(f.to, &f.envelope);
                    }
                    return FrameAction::Continue;
                }
                // Star forwarding: node → node via this hub.
                if kind == 4 {
                    if let Some(corr) = peek_reply_corr(&f.envelope) {
                        hub.pending.lock().remove(&(dest, corr));
                    }
                }
                let tx = self.writers.lock().get(&dest).cloned();
                let sent = match tx {
                    Some(tx) => tx.send(frame(f.to, &f.envelope)).is_ok(),
                    None => false,
                };
                if sent {
                    if kind == 2 {
                        if let Some(corr) = data_request_corr(&f.envelope) {
                            hub.pending.lock().insert((peer.unwrap_or(0), corr), dest);
                        }
                    }
                } else if kind == 2 {
                    // Request against a dead process: cancel at the origin.
                    if let Some(corr) = data_request_corr(&f.envelope) {
                        self.cancel_at(peer, corr);
                    }
                }
                FrameAction::Continue
            }
            Mode::Node { goodbye_tx, .. } => {
                if kind == NODE_KIND {
                    return match wire::decode_node(&f.envelope) {
                        Ok(NodeMsg::Cancel { corr }) => {
                            if let Some(cancel) = self.cancel.get() {
                                cancel(corr);
                            }
                            FrameAction::Continue
                        }
                        Ok(NodeMsg::Goodbye { reason }) => {
                            // Retire the hub writer first: anything routed
                            // after this fails fast as PeerGone instead of
                            // queueing onto a connection that is going away.
                            self.writers.lock().clear();
                            let _ = goodbye_tx.send(reason);
                            FrameAction::Close
                        }
                        Ok(_) => FrameAction::Continue,
                        Err(e) => {
                            eprintln!("dtask-net: bad control frame from hub: {e}");
                            FrameAction::Close
                        }
                    };
                }
                if let Some(deliver) = self.deliver.get() {
                    deliver(f.to, &f.envelope);
                }
                FrameAction::Continue
            }
        }
    }

    /// Cancel a pending request's reply slot where it lives: locally when
    /// the requester is hub-side, with a control frame when it is a node.
    fn cancel_at(&self, origin: Option<u64>, corr: u64) {
        match origin {
            None | Some(0) => {
                if let Some(cancel) = self.cancel.get() {
                    cancel(corr);
                }
            }
            Some(o) => {
                let env = wire::encode_node(&NodeMsg::Cancel { corr });
                let tx = self.writers.lock().get(&o).cloned();
                if let Some(tx) = tx {
                    let _ = tx.send(frame(Addr::Control, &env));
                }
            }
        }
    }

    /// Hub: a worker process's connection is gone. Retire its writer and
    /// resolve every pending request that can no longer complete.
    fn node_down(&self, node: u64) {
        let Mode::Hub(hub) = &self.mode else {
            return;
        };
        let had_writer = self.writers.lock().remove(&node).is_some();
        if had_writer && !self.stopping() {
            eprintln!("dtask-net: worker node {node} disconnected");
        }
        let mut local = Vec::new();
        let mut remote = Vec::new();
        hub.pending.lock().retain(|&(origin, corr), &mut target| {
            if target == node {
                if origin == 0 {
                    local.push(corr);
                } else {
                    remote.push((origin, corr));
                }
                false
            } else {
                // Requests *from* the dead node can never consume their
                // reply; drop the bookkeeping.
                origin != node
            }
        });
        for corr in local {
            if let Some(cancel) = self.cancel.get() {
                cancel(corr);
            }
        }
        for (origin, corr) in remote {
            self.cancel_at(Some(origin), corr);
        }
    }
}

// ---- threads ----------------------------------------------------------------

/// Per-connection writer: drains its queue onto the socket. A write error
/// means the peer is gone — log once, then keep draining so no sender ever
/// blocks on a corpse (the dependency-ordered teardown relies on this).
fn writer_loop(mut stream: TcpStream, rx: Receiver<Vec<u8>>, label: String) {
    let mut dead = false;
    while let Ok(buf) = rx.recv() {
        if dead {
            continue;
        }
        if let Err(e) = stream.write_all(&buf) {
            eprintln!("dtask-net: write to {label} failed ({e}); peer treated as gone");
            dead = true;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Per-connection reader: reassemble frames, hand them to the plane. On
/// EOF/error, run the mode's peer-death bookkeeping.
fn reader_loop(
    shared: Arc<PlaneShared>,
    mut stream: TcpStream,
    peer: Option<u64>,
    mut fr: FrameReader,
    label: String,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut chunk = vec![0u8; 64 * 1024];
    let mut graceful = false;
    if shared.wait_ready() {
        'outer: loop {
            if shared.stopping() {
                graceful = true;
                break;
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    if let Err(e) = fr.at_eof() {
                        eprintln!("dtask-net: {label}: stream ended mid-frame: {e}");
                    }
                    break;
                }
                Ok(n) => {
                    fr.push(&chunk[..n]);
                    loop {
                        match fr.next_frame() {
                            Ok(Some(f)) => {
                                if matches!(shared.handle_frame(peer, f), FrameAction::Close) {
                                    graceful = true;
                                    break 'outer;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                eprintln!("dtask-net: {label}: malformed frame: {e}");
                                break 'outer;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue;
                }
                Err(e) => {
                    if !shared.stopping() {
                        eprintln!("dtask-net: {label}: read failed: {e}");
                    }
                    break;
                }
            }
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    match (&shared.mode, peer) {
        (Mode::Hub(_), Some(node)) => shared.node_down(node),
        (Mode::Node { goodbye_tx, .. }, _) => {
            // Hub link is gone either way: retire the writer so later
            // routes fail fast (PeerGone), then — if this was not an
            // orderly Goodbye — wake the node runtime.
            shared.writers.lock().clear();
            if !graceful && !shared.stopping() {
                let _ = goodbye_tx.send("connection to hub lost".into());
            }
        }
        _ => {}
    }
}

/// Read exactly one frame with an overall deadline (handshake paths).
fn read_one_frame(
    stream: &mut TcpStream,
    fr: &mut FrameReader,
    timeout: Duration,
) -> Result<Frame, String> {
    let deadline = Instant::now() + timeout;
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(f) = fr.next_frame().map_err(|e| e.to_string())? {
            return Ok(f);
        }
        if Instant::now() >= deadline {
            return Err("handshake timed out".into());
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(match fr.at_eof() {
                    Err(e) => format!("peer closed mid-handshake: {e}"),
                    Ok(()) => "peer closed during handshake".into(),
                })
            }
            Ok(n) => fr.push(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(e) => return Err(format!("handshake read failed: {e}")),
        }
    }
}

/// Hub side of one accepted connection: registration handshake, then the
/// normal reader loop. Any handshake failure logs a structured error and
/// abandons only this connection — the accept loop keeps serving.
fn hub_conn(shared: Arc<PlaneShared>, mut stream: TcpStream, peer_sock: SocketAddr) {
    let Mode::Hub(hub) = &shared.mode else {
        return;
    };
    let _ = stream.set_nodelay(true);
    let mut fr = FrameReader::new();
    let first = match read_one_frame(&mut stream, &mut fr, hub.handshake_timeout) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dtask-net: handshake with {peer_sock} failed: {e}");
            return;
        }
    };
    let (slots_announced, _mem, capabilities) = match wire::decode_node(&first.envelope) {
        Ok(NodeMsg::Hello {
            slots,
            mem_budget,
            capabilities,
        }) => (slots, mem_budget, capabilities),
        Ok(other) => {
            eprintln!("dtask-net: {peer_sock} sent {other:?} before Hello; dropping");
            return;
        }
        Err(e) => {
            eprintln!("dtask-net: handshake with {peer_sock} failed: {e}");
            return;
        }
    };
    let worker = {
        let mut claimed = hub.claimed.lock();
        match claimed.iter().position(|a| !*a) {
            Some(w) => {
                claimed[w] = true;
                w
            }
            None => {
                let env = wire::encode_node(&NodeMsg::Goodbye {
                    reason: "no free worker slot".into(),
                });
                let _ = stream.write_all(&frame(Addr::Control, &env));
                eprintln!("dtask-net: {peer_sock} rejected: no free worker slot");
                return;
            }
        }
    };
    let slots = if slots_announced > 0 {
        slots_announced
    } else {
        hub.default_slots
    };
    // Writer first, then the scheduler registration, then the Welcome and
    // the attach flag — so `await_workers` returning implies the
    // scheduler's inbox already carries the registration, and nothing the
    // node sends after Welcome can outrace its own `RegisterWorker`.
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dtask-net: {peer_sock}: socket clone failed: {e}");
            hub.claimed.lock()[worker] = false;
            return;
        }
    };
    let (tx, rx) = unbounded();
    let node = 1 + worker as u64;
    let label = format!("worker node {node}");
    match std::thread::Builder::new()
        .name(format!("dtask-net-w{node}"))
        .spawn({
            let label = label.clone();
            move || writer_loop(write_stream, rx, label)
        }) {
        Ok(h) => shared.threads.lock().push(h),
        Err(e) => {
            eprintln!("dtask-net: {peer_sock}: writer spawn failed: {e}");
            hub.claimed.lock()[worker] = false;
            return;
        }
    }
    shared.writers.lock().insert(node, tx.clone());
    // The registration hook is installed by the cluster moments after the
    // plane starts listening; wait it out rather than dropping an attach.
    let register = loop {
        if let Some(r) = hub.register.get() {
            break r;
        }
        if shared.stopping() {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    register(worker, slots);
    let env = wire::encode_node(&NodeMsg::Welcome {
        worker,
        n_workers: hub.n_workers,
        slots,
        heartbeat_ms: hub.heartbeat_ms,
        mem_budget: hub.mem_budget,
    });
    let _ = tx.send(frame(Addr::Control, &env));
    hub.attached.lock()[worker] = true;
    if capabilities.is_empty() {
        eprintln!("dtask-net: worker {worker} attached from {peer_sock} ({slots} slots)");
    } else {
        eprintln!(
            "dtask-net: worker {worker} attached from {peer_sock} ({slots} slots, caps: {})",
            capabilities.join(",")
        );
    }
    reader_loop(shared, stream, Some(node), fr, label);
}

/// Accept loop shared by loopback and hub planes.
fn accept_loop(shared: Arc<PlaneShared>, listener: TcpListener) {
    loop {
        if shared.stopping() {
            break;
        }
        match listener.accept() {
            Ok((stream, peer_sock)) => {
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("dtask-net-conn".into())
                    .spawn(move || match conn_shared.mode {
                        Mode::Loopback => {
                            let _ = stream.set_nodelay(true);
                            let label = format!("loopback peer {peer_sock}");
                            reader_loop(conn_shared, stream, None, FrameReader::new(), label);
                        }
                        Mode::Hub(_) => hub_conn(conn_shared, stream, peer_sock),
                        Mode::Node { .. } => {}
                    });
                match spawned {
                    Ok(h) => shared.threads.lock().push(h),
                    Err(e) => eprintln!("dtask-net: connection thread spawn failed: {e}"),
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(IDLE_NAP),
            Err(_) => std::thread::sleep(IDLE_NAP),
        }
    }
}

// ---- plane handles ----------------------------------------------------------

/// Owning handle of one socket plane: shared state plus its threads.
/// Dropping it stops and joins everything.
pub struct SocketPlane {
    shared: Arc<PlaneShared>,
}

/// Hub construction parameters (see [`crate::Cluster::listen`]).
pub(crate) struct HubParams {
    pub n_workers: usize,
    pub default_slots: usize,
    pub heartbeat_ms: u64,
    pub mem_budget: Option<u64>,
    pub handshake_timeout: Duration,
}

/// The cluster config a node receives in its `Welcome`.
#[derive(Debug, Clone)]
pub struct NodeWelcome {
    /// Assigned worker id.
    pub worker: usize,
    /// Cluster-wide worker count.
    pub n_workers: usize,
    /// Executor slots this node must run.
    pub slots: usize,
    /// Worker heartbeat interval in ms (`0` = off).
    pub heartbeat_ms: u64,
    /// Store budget pushed by the hub (`None` = node-local default).
    pub mem_budget: Option<u64>,
}

impl SocketPlane {
    /// In-process loopback plane for `TransportConfig::Tcp`: everything a
    /// router dispatches crosses a real 127.0.0.1 socket and is delivered
    /// back into the local fabric by an accept-side reader.
    pub(crate) fn loopback() -> std::io::Result<SocketPlane> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = PlaneShared::new(Mode::Loopback, Some(addr));
        let accept_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("dtask-net-accept".into())
            .spawn(move || accept_loop(accept_shared, listener))?;
        shared.threads.lock().push(handle);
        Ok(SocketPlane { shared })
    }

    /// Deployment hub plane: listen for `dtask-node` worker processes.
    pub(crate) fn hub(bind: &str, params: HubParams) -> std::io::Result<SocketPlane> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = PlaneShared::new(
            Mode::Hub(HubState {
                n_workers: params.n_workers,
                default_slots: params.default_slots,
                heartbeat_ms: params.heartbeat_ms,
                mem_budget: params.mem_budget,
                handshake_timeout: params.handshake_timeout,
                claimed: Mutex::new(vec![false; params.n_workers]),
                attached: Mutex::new(vec![false; params.n_workers]),
                register: OnceLock::new(),
                pending: Mutex::new(HashMap::new()),
            }),
            Some(addr),
        );
        let accept_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("dtask-net-accept".into())
            .spawn(move || accept_loop(accept_shared, listener))?;
        shared.threads.lock().push(handle);
        Ok(SocketPlane { shared })
    }

    /// Node plane: dial the hub (retrying while it comes up), run the
    /// registration handshake, and return the plane plus the assigned
    /// cluster config and the teardown signal channel.
    pub(crate) fn connect_node(
        connect: &str,
        slots: usize,
        mem_budget: Option<u64>,
        capabilities: Vec<String>,
        connect_timeout: Duration,
        handshake_timeout: Duration,
    ) -> Result<(SocketPlane, NodeWelcome, Receiver<String>), String> {
        let deadline = Instant::now() + connect_timeout;
        let mut stream = loop {
            match TcpStream::connect(connect) {
                Ok(s) => break s,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(format!("connect to {connect} failed: {e}"));
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        };
        let _ = stream.set_nodelay(true);
        let hello = wire::encode_node(&NodeMsg::Hello {
            slots,
            mem_budget,
            capabilities,
        });
        stream
            .write_all(&frame(Addr::Control, &hello))
            .map_err(|e| format!("hello write failed: {e}"))?;
        let mut fr = FrameReader::new();
        let first = read_one_frame(&mut stream, &mut fr, handshake_timeout)?;
        let welcome = match wire::decode_node(&first.envelope) {
            Ok(NodeMsg::Welcome {
                worker,
                n_workers,
                slots,
                heartbeat_ms,
                mem_budget,
            }) => NodeWelcome {
                worker,
                n_workers,
                slots,
                heartbeat_ms,
                mem_budget,
            },
            Ok(NodeMsg::Goodbye { reason }) => {
                return Err(format!("hub rejected registration: {reason}"))
            }
            Ok(other) => return Err(format!("expected Welcome, got {other:?}")),
            Err(e) => return Err(format!("bad Welcome frame: {e}")),
        };
        let (goodbye_tx, goodbye_rx) = unbounded();
        let shared = PlaneShared::new(
            Mode::Node {
                self_node: 1 + welcome.worker as u64,
                goodbye_tx,
            },
            None,
        );
        let write_stream = stream
            .try_clone()
            .map_err(|e| format!("socket clone failed: {e}"))?;
        let (tx, rx) = unbounded();
        shared.writers.lock().insert(0, tx);
        let wh = std::thread::Builder::new()
            .name("dtask-net-whub".into())
            .spawn(move || writer_loop(write_stream, rx, "hub".into()))
            .map_err(|e| format!("writer spawn failed: {e}"))?;
        shared.threads.lock().push(wh);
        let reader_shared = Arc::clone(&shared);
        let rh = std::thread::Builder::new()
            .name("dtask-net-rhub".into())
            .spawn(move || reader_loop(reader_shared, stream, Some(0), fr, "hub".into()))
            .map_err(|e| format!("reader spawn failed: {e}"))?;
        shared.threads.lock().push(rh);
        Ok((SocketPlane { shared }, welcome, goodbye_rx))
    }

    /// The plane's shared state (routing, deploy bookkeeping).
    pub(crate) fn shared(&self) -> Arc<PlaneShared> {
        Arc::clone(&self.shared)
    }
}

impl Drop for SocketPlane {
    fn drop(&mut self) {
        self.shared.shutdown();
        // Connection threads may still be registering handles while we
        // drain; loop until the list stays empty.
        loop {
            let handles: Vec<_> = self.shared.threads.lock().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_bytes() -> Vec<u8> {
        wire::encode(&crate::transport::Payload::Sched(
            crate::msg::SchedMsg::Heartbeat { client: 7 },
        ))
    }

    #[test]
    fn frame_reader_reassembles_across_every_split_point() {
        let env = env_bytes();
        let buf = frame(Addr::WorkerData(3), &env);
        for split in 1..buf.len() {
            let mut fr = FrameReader::new();
            fr.push(&buf[..split]);
            match fr.next_frame() {
                Ok(None) => {}
                other => panic!("split {split}: premature result {other:?}"),
            }
            fr.push(&buf[split..]);
            let f = fr.next_frame().unwrap().expect("complete frame");
            assert_eq!(f.to, Addr::WorkerData(3));
            assert_eq!(f.envelope, env);
            assert!(fr.next_frame().unwrap().is_none());
            fr.at_eof().unwrap();
        }
    }

    #[test]
    fn frame_reader_rejects_bad_preamble_tag_immediately() {
        let mut fr = FrameReader::new();
        fr.push(&[9]);
        assert_eq!(
            fr.next_frame().err(),
            Some(WireError::BadTag {
                what: "socket addr",
                tag: 9,
            })
        );
    }

    #[test]
    fn frame_reader_rejects_oversized_length() {
        let env = env_bytes();
        let mut buf = frame(Addr::Scheduler, &env);
        let bad_len = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        buf[PREAMBLE_BYTES + 4..FRAME_HEADER_BYTES].copy_from_slice(&bad_len);
        let mut fr = FrameReader::new();
        fr.push(&buf);
        assert_eq!(
            fr.next_frame().err(),
            Some(WireError::Malformed("oversized frame"))
        );
    }

    #[test]
    fn frame_reader_truncation_is_structured_at_eof() {
        let env = env_bytes();
        let buf = frame(Addr::Control, &env);
        let mut fr = FrameReader::new();
        fr.push(&buf[..buf.len() - 1]);
        assert!(fr.next_frame().unwrap().is_none());
        assert_eq!(fr.at_eof().err(), Some(WireError::Truncated));
    }

    #[test]
    fn frame_reader_flags_bad_magic_and_version_early() {
        let env = env_bytes();
        let mut buf = frame(Addr::Scheduler, &env);
        buf[PREAMBLE_BYTES] = 0x00;
        let mut fr = FrameReader::new();
        // Push only up to the first magic byte: the error must not wait for
        // a complete header.
        fr.push(&buf[..PREAMBLE_BYTES + 1]);
        assert_eq!(fr.next_frame().err(), Some(WireError::BadMagic));

        let mut buf = frame(Addr::Scheduler, &env);
        buf[PREAMBLE_BYTES + 2] = WIRE_VERSION + 3;
        let mut fr = FrameReader::new();
        fr.push(&buf);
        assert_eq!(
            fr.next_frame().err(),
            Some(WireError::BadVersion(WIRE_VERSION + 3))
        );
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let env = env_bytes();
        let mut stream_bytes = frame(Addr::Scheduler, &env);
        stream_bytes.extend_from_slice(&frame(Addr::Client(2), &env));
        let mut fr = FrameReader::new();
        fr.push(&stream_bytes);
        assert_eq!(fr.next_frame().unwrap().unwrap().to, Addr::Scheduler);
        assert_eq!(fr.next_frame().unwrap().unwrap().to, Addr::Client(2));
        assert!(fr.next_frame().unwrap().is_none());
    }
}
