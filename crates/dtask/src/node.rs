//! Worker-process runtime for the deployment layer: what the `dtask-node`
//! binary runs after parsing its command line.
//!
//! [`run_node`] dials a [`crate::Cluster::listen`] hub, performs the
//! versioned registration handshake ([`crate::wire::NodeMsg::Hello`] →
//! [`crate::wire::NodeMsg::Welcome`]), then brings up exactly the worker
//! actors an in-process cluster would have spawned as threads — one data
//! server plus the assigned number of executor slots over a shared inbox,
//! and (when the hub asks for it) a heartbeat pinger. All of them talk
//! through a normal [`crate::transport::Router`] whose backend is the
//! node's hub connection, so executor code is byte-for-byte the same code
//! that runs in-process.
//!
//! The call blocks until the hub says [`crate::wire::NodeMsg::Goodbye`]
//! (orderly cluster shutdown) or the connection dies, then tears the worker
//! down in the same dependency order the in-process cluster uses and
//! reports why it exited.

use crate::msg::{DataMsg, ExecMsg, SchedMsg};
use crate::net::SocketPlane;
use crate::spec::OpRegistry;
use crate::stats::SchedulerStats;
use crate::store::{ObjectStore, StoreConfig};
use crate::trace::TraceHandle;
use crate::transport::{Addr, ClusterChannels, FaultPlan, Router};
use crate::worker::{run_data_server, Executor, GatherMode};
use crossbeam::channel::unbounded;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a worker process announces and how it dials the hub.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Hub address, `HOST:PORT`.
    pub connect: String,
    /// Executor slots to announce. `0` (default) accepts the hub's
    /// cluster-wide slot setting.
    pub slots: usize,
    /// Local store budget to announce; the hub's cluster-wide budget (when
    /// set) overrides it in the `Welcome`.
    pub mem_budget: Option<u64>,
    /// Free-form capability strings, logged by the hub at attach (e.g.
    /// `gpu`, `highmem`); reserved for placement policies.
    pub capabilities: Vec<String>,
    /// How long to keep retrying the initial TCP connect — covers the hub
    /// coming up *after* its nodes, which process launchers routinely do.
    pub connect_timeout: Duration,
    /// Deadline for the `Welcome` once connected.
    pub handshake_timeout: Duration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            connect: "127.0.0.1:7711".into(),
            slots: 0,
            mem_budget: None,
            capabilities: Vec::new(),
            connect_timeout: Duration::from_secs(10),
            handshake_timeout: Duration::from_secs(10),
        }
    }
}

/// How a completed [`run_node`] went.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Worker id the hub assigned.
    pub worker: usize,
    /// Executor slots this node ran.
    pub slots: usize,
    /// Why the node exited (the hub's `Goodbye` reason, or a description
    /// of the lost connection).
    pub reason: String,
}

/// Attach to a hub and serve as worker until dismissed. Blocks for the
/// node's whole lifetime; returns how it ended, or an error if the
/// handshake never completed.
pub fn run_node(config: NodeConfig, registry: OpRegistry) -> Result<NodeReport, String> {
    let (plane, welcome, goodbye_rx) = SocketPlane::connect_node(
        &config.connect,
        config.slots,
        config.mem_budget,
        config.capabilities.clone(),
        config.connect_timeout,
        config.handshake_timeout,
    )?;
    let w = welcome.worker;
    let stats = Arc::new(SchedulerStats::new());

    // The router wants the full worker-count channel layout; only this
    // worker's receivers stay alive, every other slot is a dead end the
    // plane never delivers into (their traffic routes to the hub).
    let (sched_tx, _sched_rx) = unbounded::<SchedMsg>();
    let mut data_txs = Vec::with_capacity(welcome.n_workers);
    let mut exec_txs = Vec::with_capacity(welcome.n_workers);
    let mut steal_txs = Vec::with_capacity(welcome.n_workers);
    let mut my_rxs = None;
    for id in 0..welcome.n_workers {
        let (dtx, drx) = unbounded::<DataMsg>();
        let (etx, erx) = unbounded::<ExecMsg>();
        let (stx, srx) = unbounded::<ExecMsg>();
        data_txs.push(dtx);
        exec_txs.push(etx);
        steal_txs.push(stx);
        if id == w {
            my_rxs = Some((drx, erx, srx));
        }
    }
    let (data_rx, exec_rx, steal_rx) = my_rxs.ok_or("assigned worker id out of range")?;
    let exec_tx = exec_txs[w].clone();

    let store_cfg = StoreConfig {
        mem_budget: welcome.mem_budget.or(config.mem_budget),
        ..StoreConfig::default()
    };
    let store = Arc::new(ObjectStore::new(
        store_cfg,
        w,
        Arc::clone(&stats),
        TraceHandle::disabled(),
    ));

    let router = Router::new_socket(
        plane,
        welcome.n_workers,
        ClusterChannels {
            sched_tx,
            data_txs,
            exec_txs,
            steal_txs,
        },
        Arc::clone(&stats),
        TraceHandle::disabled(),
        FaultPlan::default(),
    );

    let data_endpoint = router.endpoint(Addr::WorkerData(w));
    let data_store = Arc::clone(&store);
    let data_thread = std::thread::Builder::new()
        .name(format!("dtask-node-{w}-data"))
        .spawn(move || run_data_server(data_store, data_rx, data_endpoint))
        .map_err(|e| format!("data server spawn failed: {e}"))?;

    let mut exec_threads = Vec::with_capacity(welcome.slots);
    for slot in 0..welcome.slots {
        let exec = Executor {
            id: w,
            store: Arc::clone(&store),
            rx: exec_rx.clone(),
            exec_tx: exec_tx.clone(),
            endpoint: router.endpoint(Addr::WorkerExec(w)),
            registry: registry.clone(),
            stats: Arc::clone(&stats),
            gather_mode: GatherMode::Concurrent,
            steal_poll: None,
            steal_rx: steal_rx.clone(),
            tracer: TraceHandle::disabled(),
            telemetry: None,
        };
        let handle = std::thread::Builder::new()
            .name(format!("dtask-node-{w}-exec-{slot}"))
            .spawn(move || exec.run())
            .map_err(|e| format!("executor spawn failed: {e}"))?;
        exec_threads.push(handle);
    }

    // Heartbeat pinger, if the hub's fault config asks for one. First ping
    // immediately: the scheduler starts tracking this worker's liveness at
    // its first heartbeat, so a node killed right after attach is still
    // detectable.
    let pinger = if welcome.heartbeat_ms > 0 {
        let period = Duration::from_millis(welcome.heartbeat_ms);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let hb_endpoint = router.endpoint(Addr::WorkerExec(w));
        let handle = std::thread::Builder::new()
            .name(format!("dtask-node-{w}-ping"))
            .spawn(move || {
                hb_endpoint.send_sched(SchedMsg::WorkerHeartbeat { worker: w });
                while !stop2.load(Ordering::SeqCst) {
                    // Sleep in small slices so stop is prompt.
                    let mut remaining = period;
                    while remaining > Duration::ZERO && !stop2.load(Ordering::SeqCst) {
                        let nap = remaining.min(Duration::from_millis(20));
                        std::thread::sleep(nap);
                        remaining = remaining.saturating_sub(nap);
                    }
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    hb_endpoint.send_sched(SchedMsg::WorkerHeartbeat { worker: w });
                }
            })
            .map_err(|e| format!("pinger spawn failed: {e}"))?;
        Some((stop, handle))
    } else {
        None
    };

    // Serve until dismissed (or orphaned).
    let reason = goodbye_rx
        .recv()
        .unwrap_or_else(|_| "plane closed".to_string());

    // Teardown, in the in-process dependency order. The hub link is gone,
    // so first unblock anything waiting on a cross-process reply — every
    // further outbound request fails fast as PeerGone.
    router.cancel_all_replies();
    if let Some((stop, handle)) = pinger {
        stop.store(true, Ordering::SeqCst);
        let _ = handle.join();
    }
    let control = router.endpoint(Addr::Control);
    for _ in 0..exec_threads.len() {
        control.send_exec(w, ExecMsg::Shutdown);
    }
    for t in exec_threads {
        let _ = t.join();
    }
    control.send_data(w, DataMsg::Shutdown);
    let _ = data_thread.join();
    Ok(NodeReport {
        worker: w,
        slots: welcome.slots,
        reason,
    })
}
