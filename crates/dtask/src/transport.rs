//! Pluggable transport layer: every inter-actor message crosses an
//! [`Endpoint`], and replies are id-routed — no live channel handle ever
//! travels inside a message enum.
//!
//! Four backends, selected per cluster via [`TransportConfig`]:
//!
//! | backend  | encoding | delay | purpose |
//! |----------|----------|-------|---------|
//! | `InProc` | none     | none  | zero-overhead default (plain channels)  |
//! | `Framed` | [`crate::wire`] round-trip per message | none | real bytes-on-the-wire accounting + serialization-tax measurement |
//! | `SimNet` | [`crate::wire`] for sizes | fat-tree latency/bandwidth via [`netsim`] | the DES network model injected into *live* cluster runs |
//! | `Tcp`    | [`crate::wire`] over real sockets ([`crate::net`]) | kernel loopback | every message crosses a nonblocking TCP socket with partial-read reassembly; same backend the multi-process deployment layer runs on |
//!
//! Framed and SimNet record per-lane message/byte counters into
//! [`crate::stats::SchedulerStats`] (`WireLane`), which surface through
//! `StatsSnapshot` and the trace layer; InProc deliberately records nothing
//! so the default path stays allocation- and codec-free.

use crate::msg::{ClientId, ClientMsg, DataMsg, ExecMsg, SchedMsg, WorkerId};
use crate::stats::{SchedulerStats, WireLane};
use crate::trace::{EventKind, TraceHandle};
use crate::wire;
use crate::Datum;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvError, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which transport backend a cluster's actors communicate over.
#[derive(Debug, Clone, Default)]
pub enum TransportConfig {
    /// Plain in-process channels — the zero-overhead default.
    #[default]
    InProc,
    /// Every message is encoded and decoded through the versioned wire
    /// format, so byte counters are real serialized sizes and round-trip
    /// fidelity is exercised on every send.
    Framed,
    /// Framed sizing plus fat-tree latency/bandwidth delays from the
    /// [`netsim`] network model, injected into the live run.
    SimNet(SimNetConfig),
    /// Every message travels as a routed frame over a real TCP socket
    /// (loopback listener, per-peer writer threads, partial-read
    /// reassembly — see [`crate::net`]). Per-lane accounting counts the
    /// same envelope bytes as `Framed`, so byte totals are directly
    /// comparable; this is also the backend worker processes attached via
    /// the deployment layer speak.
    Tcp,
}

impl TransportConfig {
    /// Does this backend push messages through the wire codec?
    pub fn is_framed(&self) -> bool {
        !matches!(self, TransportConfig::InProc)
    }
}

/// Parameters for the [`TransportConfig::SimNet`] backend.
#[derive(Debug, Clone)]
pub struct SimNetConfig {
    /// Fat-tree parameters. `nodes: 0` auto-sizes to scheduler + workers +
    /// a small pool of client nodes when the cluster is built.
    pub network: netsim::NetworkConfig,
    /// Simulated nanoseconds per real nanosecond: injected delays are the
    /// model's transfer times divided by this factor, so tests can keep the
    /// model's *relative* contention while compressing wall-clock. `1`
    /// means real-time emulation.
    pub time_scale: u64,
}

impl Default for SimNetConfig {
    fn default() -> Self {
        SimNetConfig {
            network: netsim::NetworkConfig {
                nodes: 0,
                ..netsim::NetworkConfig::default()
            },
            time_scale: 1_000,
        }
    }
}

/// Number of extra fat-tree nodes client actors are spread over when the
/// SimNet node count is auto-sized.
const SIMNET_CLIENT_NODES: usize = 4;

// ---- fault injection -------------------------------------------------------

/// Drop a deterministic fraction of the messages on one [`WireLane`].
#[derive(Debug, Clone, Copy)]
pub struct LaneDrop {
    /// Lane whose traffic is sampled.
    pub lane: WireLane,
    /// Fraction in `[0, 1]` of messages to drop (Bresenham-spread, so a
    /// fraction of `0.5` drops exactly every second message — deterministic
    /// and seed-free).
    pub fraction: f64,
}

/// A chaos-testing plan pluggable into a cluster's transport (drops,
/// heartbeat delays) and its lifecycle (worker kills).
///
/// All fields default to "no faults"; the plan is inert unless configured.
/// Message drops apply to any backend; heartbeat delay needs the delivery
/// pump of the [`TransportConfig::SimNet`] backend (the only backend with a
/// notion of in-flight time) and is ignored elsewhere.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Kill worker `.0` when the workload reaches step `.1`. The transport
    /// does not act on this itself: workload drivers poll
    /// [`crate::Cluster::fault_kill_due`] between steps and the cluster
    /// performs the kill.
    pub kill_worker: Option<(WorkerId, u64)>,
    /// Per-lane message drop fractions.
    pub drop: Vec<LaneDrop>,
    /// Extra in-flight delay for heartbeat messages (client and worker),
    /// applied by the SimNet delivery pump.
    pub delay_heartbeats: Option<Duration>,
}

impl FaultPlan {
    /// Does this plan inject anything at all?
    pub fn is_inert(&self) -> bool {
        self.kill_worker.is_none() && self.drop.is_empty() && self.delay_heartbeats.is_none()
    }
}

/// Runtime state of an active [`FaultPlan`]: per-lane send counters driving
/// the deterministic drop pattern.
struct FaultState {
    plan: FaultPlan,
    seen: [AtomicU64; crate::stats::N_WIRE_LANES],
}

impl FaultState {
    fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            seen: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Should the `n`-th message on this lane be dropped? Deterministic:
    /// message `n` (1-based) drops iff `floor(n·p)` advanced past
    /// `floor((n-1)·p)`, spreading drops evenly without randomness.
    fn should_drop(&self, lane: WireLane) -> bool {
        let Some(d) = self.plan.drop.iter().find(|d| d.lane == lane) else {
            return false;
        };
        let p = d.fraction.clamp(0.0, 1.0);
        if p <= 0.0 {
            return false;
        }
        let idx = WireLane::ALL.iter().position(|&l| l == lane).expect("lane");
        let n = self.seen[idx].fetch_add(1, Ordering::Relaxed) + 1;
        (n as f64 * p).floor() > ((n - 1) as f64 * p).floor()
    }

    /// Extra in-flight delay for this payload (heartbeats only).
    fn extra_delay(&self, payload: &Payload) -> Duration {
        match payload {
            Payload::Sched(SchedMsg::Heartbeat { .. } | SchedMsg::WorkerHeartbeat { .. }) => {
                self.plan.delay_heartbeats.unwrap_or(Duration::ZERO)
            }
            _ => Duration::ZERO,
        }
    }
}

/// Transport-level address of an actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Addr {
    /// The scheduler loop.
    Scheduler,
    /// Worker `w`'s data server.
    WorkerData(WorkerId),
    /// Worker `w`'s executor-slot inbox.
    WorkerExec(WorkerId),
    /// A connected client (or bridge).
    Client(ClientId),
    /// The cluster handle itself (introspection such as `worker_memory`).
    Control,
}

/// A serializable reply token: *where* to route a [`DataReply`] and the
/// correlation id identifying the waiting request. This is what replaced
/// the `Sender` handles that used to live inside [`DataMsg`] variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyTo {
    /// The requester's address (used for SimNet path costing).
    pub addr: Addr,
    /// Correlation id minted by [`Endpoint::reply_slot`].
    pub corr: u64,
}

/// Response to a [`DataMsg`] request, routed by correlation id.
#[derive(Debug, Clone)]
pub enum DataReply {
    /// A `Put` landed.
    PutAck,
    /// A `Get` result: the value, or why the key is not here.
    Value(Result<Datum, String>),
    /// Store statistics: `(stored keys, stored bytes)`.
    Stats {
        /// Number of stored keys.
        keys: u64,
        /// Sum of stored payload bytes.
        bytes: u64,
    },
}

impl DataReply {
    /// Interpret this reply as a `Get` result.
    pub fn into_value(self) -> Result<Datum, String> {
        match self {
            DataReply::Value(r) => r,
            other => Err(format!("protocol mismatch: expected value, got {other:?}")),
        }
    }
}

/// One routed message: what is being delivered, minus the destination
/// (which travels alongside). Public so the wire codec and tests can
/// construct and inspect transport frames.
#[derive(Clone)]
pub enum Payload {
    /// Into the scheduler.
    Sched(SchedMsg),
    /// Into a worker's executor inbox.
    Exec(ExecMsg),
    /// Into a worker's data server.
    Data(DataMsg),
    /// Into a client inbox.
    Client(ClientMsg),
    /// A correlated [`DataReply`].
    Reply {
        /// Correlation id from the originating [`ReplyTo`].
        corr: u64,
        /// The response.
        reply: DataReply,
    },
}

impl Payload {
    fn lane(&self) -> WireLane {
        match self {
            Payload::Sched(_) => WireLane::SchedIn,
            Payload::Exec(_) => WireLane::ExecIn,
            Payload::Data(_) => WireLane::DataIn,
            Payload::Client(_) => WireLane::ClientIn,
            Payload::Reply { .. } => WireLane::ReplyIn,
        }
    }
}

// ---- delivery fabric -------------------------------------------------------

/// The scheduler/worker channel ends a cluster hands its router at
/// construction (client and reply routes register dynamically).
pub(crate) struct ClusterChannels {
    pub(crate) sched_tx: Sender<SchedMsg>,
    pub(crate) data_txs: Vec<Sender<DataMsg>>,
    pub(crate) exec_txs: Vec<Sender<ExecMsg>>,
    /// Urgent per-worker lane for [`ExecMsg::Steal`]: a steal probe must
    /// overtake the very backlog it wants to drain, so it cannot share the
    /// FIFO executor inbox with `Execute` traffic.
    pub(crate) steal_txs: Vec<Sender<ExecMsg>>,
}

/// The raw channel ends every backend ultimately delivers into.
struct Fabric {
    sched_tx: Sender<SchedMsg>,
    data_txs: Vec<Sender<DataMsg>>,
    exec_txs: Vec<Sender<ExecMsg>>,
    steal_txs: Vec<Sender<ExecMsg>>,
    clients: Mutex<HashMap<ClientId, Sender<ClientMsg>>>,
    replies: Mutex<HashMap<u64, Sender<DataReply>>>,
}

impl Fabric {
    /// Hand a decoded payload to its destination channel. Channel-closed
    /// errors are swallowed (teardown races), except that a data request
    /// whose server is gone gets its reply slot cancelled so the requester
    /// unblocks with a disconnect instead of waiting forever.
    fn deliver(&self, to: Addr, payload: Payload) {
        match payload {
            Payload::Sched(m) => {
                let _ = self.sched_tx.send(m);
            }
            Payload::Exec(m) => {
                // Steal probes ride the urgent lane: a victim answers after
                // its current task, not after its whole queued backlog.
                let txs = if matches!(m, ExecMsg::Steal { .. }) {
                    &self.steal_txs
                } else {
                    &self.exec_txs
                };
                if let Some(tx) = worker_tx(txs, to_worker(to)) {
                    let _ = tx.send(m);
                }
            }
            Payload::Data(m) => {
                let cancel = match worker_tx(&self.data_txs, to_worker(to)) {
                    Some(tx) => tx.send(m).err().map(|e| e.0),
                    None => Some(m),
                };
                // Dead data server: drop the waiting reply slot so the
                // requester sees "worker hung up", not a hang.
                if let Some(
                    DataMsg::Put { ack: r, .. }
                    | DataMsg::Get { reply: r, .. }
                    | DataMsg::Fetch { reply: r, .. }
                    | DataMsg::Stats { reply: r },
                ) = cancel
                {
                    self.replies.lock().remove(&r.corr);
                }
            }
            Payload::Client(m) => {
                let tx = match to {
                    Addr::Client(id) => self.clients.lock().get(&id).cloned(),
                    _ => None,
                };
                if let Some(tx) = tx {
                    let _ = tx.send(m);
                }
            }
            Payload::Reply { corr, reply } => {
                if let Some(tx) = self.replies.lock().remove(&corr) {
                    let _ = tx.send(reply);
                }
            }
        }
    }
}

fn to_worker(to: Addr) -> Option<WorkerId> {
    match to {
        Addr::WorkerData(w) | Addr::WorkerExec(w) => Some(w),
        _ => None,
    }
}

fn worker_tx<T>(txs: &[Sender<T>], w: Option<WorkerId>) -> Option<&Sender<T>> {
    w.and_then(|w| txs.get(w))
}

// ---- SimNet backend --------------------------------------------------------

struct PumpJob {
    due: Instant,
    seq: u64,
    to: Addr,
    payload: Payload,
}

impl PartialEq for PumpJob {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for PumpJob {}
impl PartialOrd for PumpJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PumpJob {
    // Reversed: BinaryHeap pops the *earliest* due time; the send sequence
    // number breaks ties so simultaneous arrivals keep send order.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct SimNetState {
    net: Mutex<netsim::Network>,
    epoch: Instant,
    time_scale: u64,
    n_workers: usize,
    client_nodes: usize,
    seq: AtomicU64,
    pump_tx: Sender<PumpJob>,
}

impl SimNetState {
    fn node_of(&self, a: Addr) -> usize {
        match a {
            Addr::Scheduler | Addr::Control => 0,
            Addr::WorkerData(w) | Addr::WorkerExec(w) => 1 + w.min(self.n_workers - 1),
            Addr::Client(c) => 1 + self.n_workers + (c % self.client_nodes),
        }
    }

    /// Run the message through the fat-tree model; returns when (in real
    /// time, after scaling) it should be delivered.
    fn arrival(&self, from: Addr, to: Addr, bytes: u64) -> (Instant, u64) {
        let scale = self.time_scale.max(1);
        let now = Instant::now();
        let sim_now =
            (now.saturating_duration_since(self.epoch).as_nanos() as u64).saturating_mul(scale);
        let sim_arrival =
            self.net
                .lock()
                .send(sim_now, self.node_of(from), self.node_of(to), bytes);
        let delay = Duration::from_nanos(sim_arrival.saturating_sub(sim_now) / scale);
        (now + delay, self.seq.fetch_add(1, Ordering::Relaxed))
    }
}

/// Delivery pump: holds delayed messages until their simulated arrival
/// time, then hands them to the fabric. Exits once the router (the only
/// job sender) is gone and the backlog has drained.
fn pump_loop(rx: Receiver<PumpJob>, fabric: Arc<Fabric>) {
    let mut heap: BinaryHeap<PumpJob> = BinaryHeap::new();
    let mut open = true;
    while open || !heap.is_empty() {
        // Deliver everything due.
        while heap.peek().is_some_and(|j| j.due <= Instant::now()) {
            let job = heap.pop().expect("peeked");
            fabric.deliver(job.to, job.payload);
        }
        let next = match heap.peek() {
            Some(job) => job.due.saturating_duration_since(Instant::now()),
            // Idle with a closed inlet: done.
            None if !open => break,
            None => Duration::from_secs(3600),
        };
        match rx.recv_timeout(next) {
            Ok(job) => heap.push(job),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => open = false,
        }
    }
}

// ---- router ----------------------------------------------------------------

/// Socket backend: the shared routing state plus the owning handle whose
/// drop stops and joins the plane's threads alongside the router.
struct TcpBackend {
    shared: Arc<crate::net::PlaneShared>,
    _plane: crate::net::SocketPlane,
}

enum Backend {
    InProc,
    Framed,
    SimNet(SimNetState),
    Tcp(TcpBackend),
}

/// Wire the router-side callbacks into a socket plane: decode-and-deliver
/// into the fabric, reply-slot cancellation, and per-lane accounting for
/// hub-received frames.
fn install_socket_callbacks(
    shared: &crate::net::PlaneShared,
    fabric: &Arc<Fabric>,
    stats: &Arc<SchedulerStats>,
    trace: &TraceHandle,
) {
    let deliver_fabric = Arc::clone(fabric);
    let cancel_fabric = Arc::clone(fabric);
    let stats = Arc::clone(stats);
    let trace = trace.clone();
    shared.install(
        Box::new(move |to, envelope| match wire::decode(envelope) {
            Ok(payload) => deliver_fabric.deliver(to, payload),
            // A frame that framed/validated correctly but fails payload
            // decode is a codec bug on the sending side; drop it loudly.
            Err(e) => eprintln!("dtask-net: dropping undecodable envelope for {to:?}: {e}"),
        }),
        Box::new(move |corr| {
            cancel_fabric.replies.lock().remove(&corr);
        }),
        Box::new(move |lane, bytes| {
            stats.record_wire(lane, bytes);
            trace.instant(EventKind::WireSend, None, bytes);
        }),
    );
}

/// Shared message router for one cluster: owns the backend, the delivery
/// fabric, and the reply-correlation table. Actors talk to it through
/// per-actor [`Endpoint`]s.
pub struct Router {
    fabric: Arc<Fabric>,
    backend: Backend,
    stats: Arc<SchedulerStats>,
    trace: TraceHandle,
    next_corr: AtomicU64,
    n_workers: usize,
    /// Active fault-injection state; `None` when the plan is inert, so the
    /// fault-free hot path pays one branch.
    faults: Option<FaultState>,
}

impl Router {
    /// Build the router for a cluster's channel set. For SimNet this also
    /// spawns the delivery pump (a daemon thread that drains once the
    /// router is dropped).
    pub(crate) fn new(
        config: &TransportConfig,
        n_workers: usize,
        channels: ClusterChannels,
        stats: Arc<SchedulerStats>,
        trace: TraceHandle,
        faults: FaultPlan,
    ) -> Arc<Router> {
        let fabric = Arc::new(Fabric {
            sched_tx: channels.sched_tx,
            data_txs: channels.data_txs,
            exec_txs: channels.exec_txs,
            steal_txs: channels.steal_txs,
            clients: Mutex::new(HashMap::new()),
            replies: Mutex::new(HashMap::new()),
        });
        let backend = match config {
            TransportConfig::InProc => Backend::InProc,
            TransportConfig::Framed => Backend::Framed,
            TransportConfig::SimNet(sim) => {
                let mut net_cfg = sim.network.clone();
                let min_nodes = 1 + n_workers + SIMNET_CLIENT_NODES;
                if net_cfg.nodes < min_nodes {
                    net_cfg.nodes = min_nodes;
                }
                let client_nodes = (net_cfg.nodes - 1 - n_workers).max(1);
                let (pump_tx, pump_rx) = unbounded();
                let pump_fabric = Arc::clone(&fabric);
                std::thread::Builder::new()
                    .name("dtask-simnet-pump".into())
                    .spawn(move || pump_loop(pump_rx, pump_fabric))
                    .expect("spawn simnet pump");
                Backend::SimNet(SimNetState {
                    net: Mutex::new(netsim::Network::new(net_cfg)),
                    epoch: Instant::now(),
                    time_scale: sim.time_scale,
                    n_workers: n_workers.max(1),
                    client_nodes,
                    seq: AtomicU64::new(0),
                    pump_tx,
                })
            }
            TransportConfig::Tcp => {
                let plane =
                    crate::net::SocketPlane::loopback().expect("bind tcp loopback transport");
                let shared = plane.shared();
                install_socket_callbacks(&shared, &fabric, &stats, &trace);
                Backend::Tcp(TcpBackend {
                    shared,
                    _plane: plane,
                })
            }
        };
        Arc::new(Router {
            fabric,
            backend,
            stats,
            trace,
            next_corr: AtomicU64::new(1),
            n_workers,
            faults: (!faults.is_inert()).then(|| FaultState::new(faults)),
        })
    }

    /// Build a router on an already-constructed socket plane (deployment
    /// hub or attached worker node — see [`crate::Cluster::listen`] and
    /// [`crate::node`]). Same delivery fabric as [`Router::new`], but the
    /// backend routes over the plane's live connections instead of a
    /// private loopback listener.
    pub(crate) fn new_socket(
        plane: crate::net::SocketPlane,
        n_workers: usize,
        channels: ClusterChannels,
        stats: Arc<SchedulerStats>,
        trace: TraceHandle,
        faults: FaultPlan,
    ) -> Arc<Router> {
        let fabric = Arc::new(Fabric {
            sched_tx: channels.sched_tx,
            data_txs: channels.data_txs,
            exec_txs: channels.exec_txs,
            steal_txs: channels.steal_txs,
            clients: Mutex::new(HashMap::new()),
            replies: Mutex::new(HashMap::new()),
        });
        let shared = plane.shared();
        install_socket_callbacks(&shared, &fabric, &stats, &trace);
        Arc::new(Router {
            fabric,
            backend: Backend::Tcp(TcpBackend {
                shared,
                _plane: plane,
            }),
            stats,
            trace,
            next_corr: AtomicU64::new(1),
            n_workers,
            faults: (!faults.is_inert()).then(|| FaultState::new(faults)),
        })
    }

    /// The socket plane behind a `Tcp` backend (deploy bookkeeping:
    /// `await_workers`, `goodbye_all`, registration hook). `None` for the
    /// in-process backends.
    pub(crate) fn plane(&self) -> Option<Arc<crate::net::PlaneShared>> {
        match &self.backend {
            Backend::Tcp(tcp) => Some(Arc::clone(&tcp.shared)),
            _ => None,
        }
    }

    /// An endpoint speaking as `from`.
    pub fn endpoint(self: &Arc<Self>, from: Addr) -> Endpoint {
        Endpoint {
            from,
            router: Arc::clone(self),
        }
    }

    /// Number of workers behind this router.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Drop every outstanding reply slot: each waiter unblocks with a
    /// disconnect. Used by the node runtime when its hub link dies — any
    /// in-flight cross-process request can no longer be answered.
    pub(crate) fn cancel_all_replies(&self) {
        self.fabric.replies.lock().clear();
    }

    /// Register a client inbox route. Must happen before the client's
    /// `ClientConnect` is sent so notifications can never outrun the route.
    pub(crate) fn register_client(&self, id: ClientId, tx: Sender<ClientMsg>) {
        self.fabric.clients.lock().insert(id, tx);
    }

    /// Remove a client inbox route (client drop).
    pub(crate) fn unregister_client(&self, id: ClientId) {
        self.fabric.clients.lock().remove(&id);
    }

    fn dispatch(&self, from: Addr, to: Addr, payload: Payload) {
        if let Some(f) = &self.faults {
            if f.should_drop(payload.lane()) {
                // Lost "on the wire": never encoded, never delivered. The
                // counter is the only evidence — exactly like a real loss.
                self.stats.record_injected_drop();
                return;
            }
        }
        match &self.backend {
            Backend::InProc => self.fabric.deliver(to, payload),
            Backend::Framed => {
                let bytes = wire::encode(&payload);
                self.account(payload.lane(), bytes.len() as u64);
                // Deliver the *decoded* frame: every Framed message proves
                // round-trip fidelity, and any codec drift fails loudly.
                let decoded = wire::decode(&bytes)
                    .unwrap_or_else(|e| panic!("framed transport: wire round-trip failed: {e}"));
                self.fabric.deliver(to, decoded);
            }
            Backend::SimNet(sim) => {
                let bytes = wire::encode(&payload);
                self.account(payload.lane(), bytes.len() as u64);
                let decoded = wire::decode(&bytes)
                    .unwrap_or_else(|e| panic!("simnet transport: wire round-trip failed: {e}"));
                let (mut due, seq) = sim.arrival(from, to, bytes.len() as u64);
                if let Some(f) = &self.faults {
                    due += f.extra_delay(&decoded);
                }
                let _ = sim.pump_tx.send(PumpJob {
                    due,
                    seq,
                    to,
                    payload: decoded,
                });
            }
            Backend::Tcp(tcp) => {
                let bytes = wire::encode(&payload);
                self.account(payload.lane(), bytes.len() as u64);
                let meta = match &payload {
                    Payload::Data(
                        DataMsg::Put { ack: r, .. }
                        | DataMsg::Get { reply: r, .. }
                        | DataMsg::Fetch { reply: r, .. }
                        | DataMsg::Stats { reply: r },
                    ) => crate::net::RouteMeta::Request { corr: r.corr },
                    Payload::Reply { corr, .. } => crate::net::RouteMeta::Reply { corr: *corr },
                    _ => crate::net::RouteMeta::Plain,
                };
                match tcp.shared.route(to, &bytes, meta) {
                    crate::net::RouteOutcome::Sent => {}
                    crate::net::RouteOutcome::Local => {
                        let decoded = wire::decode(&bytes).unwrap_or_else(|e| {
                            panic!("tcp transport: wire round-trip failed: {e}")
                        });
                        self.fabric.deliver(to, decoded);
                    }
                    crate::net::RouteOutcome::PeerGone => {
                        // The destination's process is gone: cancel any
                        // reply slot riding the request, exactly like the
                        // fabric does for a dead in-process data server.
                        if let Payload::Data(
                            DataMsg::Put { ack: r, .. }
                            | DataMsg::Get { reply: r, .. }
                            | DataMsg::Fetch { reply: r, .. }
                            | DataMsg::Stats { reply: r },
                        ) = &payload
                        {
                            self.fabric.replies.lock().remove(&r.corr);
                        }
                    }
                }
            }
        }
    }

    fn account(&self, lane: WireLane, bytes: u64) {
        self.stats.record_wire(lane, bytes);
        self.trace.instant(EventKind::WireSend, None, bytes);
    }
}

// ---- endpoint --------------------------------------------------------------

/// A cluster actor's handle on the transport: all sends carry this actor's
/// [`Addr`] as the source (the SimNet backend costs paths with it).
#[derive(Clone)]
pub struct Endpoint {
    from: Addr,
    router: Arc<Router>,
}

impl Endpoint {
    /// This endpoint's address.
    pub fn addr(&self) -> Addr {
        self.from
    }

    /// Number of workers reachable through this transport.
    pub fn n_workers(&self) -> usize {
        self.router.n_workers()
    }

    /// A sibling endpoint speaking as a different actor (used by the
    /// cluster when constructing actors that share one router).
    pub fn for_addr(&self, from: Addr) -> Endpoint {
        Endpoint {
            from,
            router: Arc::clone(&self.router),
        }
    }

    /// Remove a client inbox route (called by `Client::drop`).
    pub(crate) fn unregister_client(&self, id: ClientId) {
        self.router.unregister_client(id);
    }

    /// Send into the scheduler.
    pub fn send_sched(&self, msg: SchedMsg) {
        self.router
            .dispatch(self.from, Addr::Scheduler, Payload::Sched(msg));
    }

    /// Send to worker `w`'s executor inbox.
    pub fn send_exec(&self, w: WorkerId, msg: ExecMsg) {
        self.router
            .dispatch(self.from, Addr::WorkerExec(w), Payload::Exec(msg));
    }

    /// Send to worker `w`'s data server.
    pub fn send_data(&self, w: WorkerId, msg: DataMsg) {
        self.router
            .dispatch(self.from, Addr::WorkerData(w), Payload::Data(msg));
    }

    /// Notify a client.
    pub fn send_client(&self, client: ClientId, msg: ClientMsg) {
        self.router
            .dispatch(self.from, Addr::Client(client), Payload::Client(msg));
    }

    /// Route a reply for a previously received request token.
    pub fn reply(&self, to: ReplyTo, reply: DataReply) {
        self.router.dispatch(
            self.from,
            to.addr,
            Payload::Reply {
                corr: to.corr,
                reply,
            },
        );
    }

    /// Open a one-shot reply slot: the returned token travels inside a
    /// request message; the returned receiver yields the correlated
    /// response. Dropping the receiver cancels the slot.
    pub fn reply_slot(&self) -> (ReplyTo, ReplyRx) {
        let corr = self.router.next_corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.router.fabric.replies.lock().insert(corr, tx);
        (
            ReplyTo {
                addr: self.from,
                corr,
            },
            ReplyRx {
                corr,
                rx,
                fabric: Arc::clone(&self.router.fabric),
            },
        )
    }
}

/// Receiving half of a one-shot reply slot (see [`Endpoint::reply_slot`]).
pub struct ReplyRx {
    corr: u64,
    rx: Receiver<DataReply>,
    fabric: Arc<Fabric>,
}

impl ReplyRx {
    /// Block until the reply arrives. Errors if the responder died (its
    /// side of the slot was cancelled).
    pub fn recv(&self) -> Result<DataReply, RecvError> {
        self.rx.recv()
    }
}

impl Drop for ReplyRx {
    fn drop(&mut self) {
        self.fabric.replies.lock().remove(&self.corr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;

    fn test_router(config: TransportConfig) -> (Arc<Router>, Receiver<SchedMsg>) {
        test_router_with_faults(config, FaultPlan::default())
    }

    fn test_router_with_faults(
        config: TransportConfig,
        faults: FaultPlan,
    ) -> (Arc<Router>, Receiver<SchedMsg>) {
        let (sched_tx, sched_rx) = unbounded();
        let router = Router::new(
            &config,
            2,
            ClusterChannels {
                sched_tx,
                data_txs: Vec::new(),
                exec_txs: Vec::new(),
                steal_txs: Vec::new(),
            },
            Arc::new(SchedulerStats::default()),
            TraceHandle::disabled(),
            faults,
        );
        (router, sched_rx)
    }

    #[test]
    fn inproc_records_no_wire_traffic() {
        let (router, rx) = test_router(TransportConfig::InProc);
        let ep = router.endpoint(Addr::Client(0));
        ep.send_sched(SchedMsg::Heartbeat { client: 0 });
        assert!(matches!(rx.recv().unwrap(), SchedMsg::Heartbeat { .. }));
        assert_eq!(router.stats.wire_total_messages(), 0);
        assert_eq!(router.stats.wire_total_bytes(), 0);
    }

    #[test]
    fn framed_counts_real_encoded_sizes() {
        let (router, rx) = test_router(TransportConfig::Framed);
        let ep = router.endpoint(Addr::Client(3));
        let msg = SchedMsg::WantResult {
            client: 3,
            key: Key::new("result-key"),
        };
        let expected = wire::encode(&Payload::Sched(msg.clone())).len() as u64;
        ep.send_sched(msg);
        match rx.recv().unwrap() {
            SchedMsg::WantResult { client, key } => {
                assert_eq!(client, 3);
                assert_eq!(key.as_str(), "result-key");
            }
            _ => panic!("wrong message"),
        }
        assert_eq!(router.stats.wire_messages(WireLane::SchedIn), 1);
        assert_eq!(router.stats.wire_bytes(WireLane::SchedIn), expected);
    }

    #[test]
    fn simnet_delivers_with_delay_and_accounts_bytes() {
        let (router, rx) = test_router(TransportConfig::SimNet(SimNetConfig::default()));
        let ep = router.endpoint(Addr::Client(0));
        ep.send_sched(SchedMsg::Heartbeat { client: 0 });
        // Arrives after a (scaled) network delay, not necessarily
        // immediately — allow a generous wait.
        let got = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(got, SchedMsg::Heartbeat { .. }));
        assert_eq!(router.stats.wire_messages(WireLane::SchedIn), 1);
        assert!(router.stats.wire_bytes(WireLane::SchedIn) > 0);
    }

    #[test]
    fn reply_slots_cancel_when_server_is_gone() {
        // No data servers registered at all: a Get must cancel its slot so
        // the requester unblocks instead of hanging.
        let (router, _rx) = test_router(TransportConfig::InProc);
        let ep = router.endpoint(Addr::Client(0));
        let (token, reply_rx) = ep.reply_slot();
        ep.send_data(
            5,
            DataMsg::Get {
                key: Key::new("x"),
                reply: token,
            },
        );
        assert!(reply_rx.recv().is_err(), "slot must be cancelled");
    }

    #[test]
    fn proxy_fetch_slots_cancel_when_holder_is_gone() {
        // A proxy resolution aimed at a dead holder must unblock the
        // requester the same way a Get does — PeerLost, never a hang.
        let (router, _rx) = test_router(TransportConfig::InProc);
        let ep = router.endpoint(Addr::Client(0));
        let (token, reply_rx) = ep.reply_slot();
        ep.send_data(
            5,
            DataMsg::Fetch {
                key: Key::new("proxy:c0:0"),
                reply: token,
            },
        );
        assert!(reply_rx.recv().is_err(), "fetch slot must be cancelled");
    }

    #[test]
    fn fault_plan_drops_deterministic_fraction_and_counts() {
        let plan = FaultPlan {
            drop: vec![LaneDrop {
                lane: WireLane::SchedIn,
                fraction: 0.5,
            }],
            ..FaultPlan::default()
        };
        let (router, rx) = test_router_with_faults(TransportConfig::Framed, plan);
        let ep = router.endpoint(Addr::Client(0));
        for _ in 0..10 {
            ep.send_sched(SchedMsg::Heartbeat { client: 0 });
        }
        let mut delivered = 0;
        while rx.try_recv().is_ok() {
            delivered += 1;
        }
        assert_eq!(delivered, 5, "half the lane must be dropped");
        assert_eq!(router.stats.injected_drops(), 5);
        // Dropped frames never hit the wire counters.
        assert_eq!(router.stats.wire_messages(WireLane::SchedIn), 5);
    }

    #[test]
    fn fault_plan_leaves_other_lanes_alone() {
        let plan = FaultPlan {
            drop: vec![LaneDrop {
                lane: WireLane::DataIn,
                fraction: 1.0,
            }],
            ..FaultPlan::default()
        };
        let (router, rx) = test_router_with_faults(TransportConfig::Framed, plan);
        let ep = router.endpoint(Addr::Client(0));
        ep.send_sched(SchedMsg::Heartbeat { client: 0 });
        assert!(rx.try_recv().is_ok(), "sched lane must be untouched");
        assert_eq!(router.stats.injected_drops(), 0);
    }

    #[test]
    fn simnet_heartbeat_delay_is_injected() {
        let plan = FaultPlan {
            delay_heartbeats: Some(Duration::from_millis(80)),
            ..FaultPlan::default()
        };
        let (router, rx) =
            test_router_with_faults(TransportConfig::SimNet(SimNetConfig::default()), plan);
        let ep = router.endpoint(Addr::Client(0));
        let t0 = Instant::now();
        ep.send_sched(SchedMsg::Heartbeat { client: 0 });
        let got = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(got, SchedMsg::Heartbeat { .. }));
        assert!(
            t0.elapsed() >= Duration::from_millis(80),
            "heartbeat must arrive late"
        );
        // Non-heartbeat traffic is not delayed by the heartbeat knob (it
        // only pays the network model's own latency, which at the default
        // time_scale is far under the injected 80 ms).
        let t1 = Instant::now();
        ep.send_sched(SchedMsg::ClientConnect { client: 0 });
        let _ = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(t1.elapsed() < Duration::from_millis(80));
    }

    #[test]
    fn tcp_delivers_over_real_sockets_and_matches_framed_bytes() {
        let (framed, framed_rx) = test_router(TransportConfig::Framed);
        let (tcp, tcp_rx) = test_router(TransportConfig::Tcp);
        let msg = SchedMsg::WantResult {
            client: 3,
            key: Key::new("result-key"),
        };
        framed.endpoint(Addr::Client(3)).send_sched(msg.clone());
        tcp.endpoint(Addr::Client(3)).send_sched(msg);
        assert!(matches!(
            framed_rx.recv().unwrap(),
            SchedMsg::WantResult { .. }
        ));
        // Tcp delivery crosses a real loopback socket; block until the
        // accept-side reader hands it back.
        assert!(matches!(
            tcp_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            SchedMsg::WantResult { client: 3, .. }
        ));
        // The 9-byte routing preamble is never accounted: per-lane byte
        // totals are envelope bytes, identical to Framed.
        assert_eq!(
            tcp.stats.wire_bytes(WireLane::SchedIn),
            framed.stats.wire_bytes(WireLane::SchedIn)
        );
        assert_eq!(tcp.stats.wire_messages(WireLane::SchedIn), 1);
    }

    #[test]
    fn tcp_reply_slots_cancel_when_server_is_gone() {
        // Same dead-peer contract as InProc/Framed, but the request now
        // crosses a socket before the missing data server is discovered.
        let (router, _rx) = test_router(TransportConfig::Tcp);
        let ep = router.endpoint(Addr::Client(0));
        let (token, reply_rx) = ep.reply_slot();
        ep.send_data(
            5,
            DataMsg::Get {
                key: Key::new("x"),
                reply: token,
            },
        );
        assert!(reply_rx.recv().is_err(), "slot must be cancelled");
    }

    #[test]
    fn tcp_reply_round_trip() {
        let (router, _rx) = test_router(TransportConfig::Tcp);
        let requester = router.endpoint(Addr::Control);
        let responder = router.endpoint(Addr::WorkerData(0));
        let (token, reply_rx) = requester.reply_slot();
        responder.reply(token, DataReply::Stats { keys: 2, bytes: 96 });
        match reply_rx.recv().unwrap() {
            DataReply::Stats { keys, bytes } => {
                assert_eq!((keys, bytes), (2, 96));
            }
            other => panic!("wrong reply: {other:?}"),
        }
        assert_eq!(router.stats.wire_messages(WireLane::ReplyIn), 1);
    }

    #[test]
    fn reply_round_trip_over_framed() {
        let (router, _rx) = test_router(TransportConfig::Framed);
        let requester = router.endpoint(Addr::Control);
        let responder = router.endpoint(Addr::WorkerData(0));
        let (token, reply_rx) = requester.reply_slot();
        responder.reply(token, DataReply::Stats { keys: 2, bytes: 96 });
        match reply_rx.recv().unwrap() {
            DataReply::Stats { keys, bytes } => {
                assert_eq!((keys, bytes), (2, 96));
            }
            other => panic!("wrong reply: {other:?}"),
        }
        assert_eq!(router.stats.wire_messages(WireLane::ReplyIn), 1);
    }
}
