//! Client handle: graph submission, futures, scatter, variables, queues.

use crate::datum::{Datum, DatumRef};
use crate::key::{Key, SessionId, DEFAULT_SESSION};
use crate::msg::{ClientId, ClientMsg, DataMsg, SchedMsg, TaskError, WorkerId};
use crate::optimize::{optimize, OptimizeConfig};
use crate::spec::TaskSpec;
use crate::stats::{MsgClass, SchedulerStats};
use crate::store::StoreConfig;
use crate::trace::{EventKind, TraceHandle};
use crate::transport::{DataReply, Endpoint};
use crossbeam::channel::Receiver;
use std::cell::{Cell, RefCell};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A connected client. Owns its notification inbox, so use one `Client` per
/// thread (clone-by-reconnect via [`crate::Cluster::client`]).
pub struct Client {
    pub(crate) id: ClientId,
    /// This client's session namespace. [`DEFAULT_SESSION`] (the
    /// single-tenant default) keeps every message byte-identical to the
    /// pre-tenancy protocol; any other session scopes every key this
    /// client creates and wraps every scheduler-bound message in
    /// [`SchedMsg::Scoped`].
    pub(crate) session: SessionId,
    /// Outbound route to the scheduler and worker data servers.
    pub(crate) endpoint: Endpoint,
    pub(crate) rx: Receiver<ClientMsg>,
    pub(crate) pending: RefCell<VecDeque<ClientMsg>>,
    pub(crate) stats: Arc<SchedulerStats>,
    pub(crate) scatter_cursor: AtomicUsize,
    pub(crate) optimize: OptimizeConfig,
    /// Keys this client registered as external tasks: the optimizer must
    /// never cull them or swallow them into a fused chain.
    pub(crate) external_keys: RefCell<HashSet<Key>>,
    /// Lifecycle event recorder (empty handle when tracing is off). Bridges
    /// relabel their trace row via [`TraceHandle::set_label`].
    pub(crate) tracer: TraceHandle,
    /// This client's heartbeat pinger (stop flag + thread), when one is
    /// running. The client owns and joins it: drop stops the thread and
    /// waits for it *before* sending the disconnect, so no ping can trail
    /// the goodbye and re-arm liveness tracking for a gone client.
    pub(crate) heartbeat: Option<(Arc<AtomicBool>, JoinHandle<()>)>,
    /// Out-of-band data plane config (the cluster's [`StoreConfig`]). With
    /// `proxies` on, large array values bound for the control path
    /// (variables, queue items) are published to a worker store instead and
    /// replaced by a [`DatumRef`] handle.
    pub(crate) store: StoreConfig,
    /// Monotonic per-client sequence for proxy keys (also the handle epoch).
    pub(crate) proxy_seq: AtomicUsize,
    /// Whether the scheduler acks scoped graph submissions with
    /// [`ClientMsg::SubmitOutcome`] (true only when tenancy is on *and* an
    /// admission cap is configured).
    pub(crate) await_submit_ack: bool,
    /// Test hook ([`Client::simulate_death`]): drop without the goodbye.
    pub(crate) dead: Cell<bool>,
}

/// A handle to one (eventual) task result.
pub struct DFuture<'a> {
    client: &'a Client,
    key: Key,
}

impl std::fmt::Debug for DFuture<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DFuture({})", self.key)
    }
}

impl Client {
    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// This client's session namespace (0 = the implicit single-tenant
    /// session).
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Scope a key into this client's session. The implicit session
    /// leaves keys untouched (hash- and byte-identical to the seed).
    fn scope(&self, key: Key) -> Key {
        if self.session == DEFAULT_SESSION {
            key
        } else {
            key.with_session(self.session)
        }
    }

    /// Send a scheduler message, tagged with this client's session when
    /// it has one. Single-tenant clients send the bare message — the wire
    /// stays byte-identical to the pre-tenancy protocol.
    fn send_sched(&self, msg: SchedMsg) {
        if self.session == DEFAULT_SESSION {
            self.endpoint.send_sched(msg);
        } else {
            self.endpoint.send_sched(SchedMsg::Scoped {
                session: self.session,
                inner: Box::new(msg),
            });
        }
    }

    /// Number of workers in the cluster.
    pub fn n_workers(&self) -> usize {
        self.endpoint.n_workers()
    }

    /// Shared statistics counters.
    pub fn stats(&self) -> &Arc<SchedulerStats> {
        &self.stats
    }

    /// This client's trace handle (empty when tracing is off). Bridges use
    /// it to record contract-setup/publish spans and to label their row.
    pub fn tracer(&self) -> &TraceHandle {
        &self.tracer
    }

    /// Submit a task graph. Returns immediately; use [`Client::future`] to
    /// wait on results.
    ///
    /// With the cluster's [`OptimizeConfig`] active, the graph is optimized
    /// first with *no declared outputs*: culling is skipped and only fusion
    /// runs (sinks always survive as stored keys; see
    /// [`Client::submit_with_outputs`] to declare outputs and enable
    /// culling).
    pub fn submit(&self, specs: Vec<TaskSpec>) {
        self.submit_with_outputs(specs, &[]);
    }

    /// Submit a task graph declaring which keys will actually be consumed.
    /// The ahead-of-time optimizer (when enabled in the cluster config)
    /// culls tasks unreachable from `outputs` and fuses strictly linear op
    /// chains; externally registered keys are always protected.
    ///
    /// Panics if the scheduler rejects the graph under an admission cap;
    /// use [`Client::try_submit_with_outputs`] to handle backpressure.
    pub fn submit_with_outputs(&self, specs: Vec<TaskSpec>, outputs: &[Key]) {
        if let Err(e) = self.try_submit_with_outputs(specs, outputs) {
            panic!("graph submission failed: {e}");
        }
    }

    /// Like [`Client::submit`], surfacing admission-control backpressure:
    /// with tenancy and a per-session in-flight cap configured, a graph
    /// that would exceed the cap is rejected whole and returned as
    /// [`SubmitError::Rejected`] — retry after some in-flight work
    /// completes. Without a cap this never fails (no ack round-trip).
    pub fn try_submit(&self, specs: Vec<TaskSpec>) -> Result<(), SubmitError> {
        self.try_submit_with_outputs(specs, &[])
    }

    /// [`Client::try_submit`] with declared outputs (enables culling).
    pub fn try_submit_with_outputs(
        &self,
        mut specs: Vec<TaskSpec>,
        outputs: &[Key],
    ) -> Result<(), SubmitError> {
        // Scope before optimizing, so the protected/external set (already
        // scoped at registration) matches spec keys.
        let scoped_outputs: Vec<Key>;
        let mut outputs = outputs;
        if self.session != DEFAULT_SESSION {
            for spec in &mut specs {
                spec.key = spec.key.with_session(self.session);
                for dep in &mut spec.deps {
                    *dep = dep.with_session(self.session);
                }
            }
            scoped_outputs = outputs
                .iter()
                .map(|k| k.with_session(self.session))
                .collect();
            outputs = &scoped_outputs;
        }
        if self.optimize.is_active() {
            let opt_t0 = self.tracer.start();
            let protected = self.external_keys.borrow();
            let (optimized, report) = optimize(specs, outputs, &protected, &self.optimize);
            specs = optimized;
            self.tracer
                .span(EventKind::Optimize, opt_t0, None, report.tasks_out as u64);
            self.stats.record_optimize(&report);
        }
        self.tracer
            .instant(EventKind::Submit, None, specs.len() as u64);
        self.send_sched(SchedMsg::SubmitGraph {
            client: self.id,
            specs,
        });
        if !self.await_submit_ack {
            return Ok(());
        }
        // One ack per scoped submission, in submission order on this
        // client's own channel — the next SubmitOutcome is ours.
        let outcome = self
            .wait_msg(None, |m| match m {
                ClientMsg::SubmitOutcome {
                    accepted,
                    inflight,
                    cap,
                } => Some((*accepted, *inflight, *cap)),
                _ => None,
            })
            .map_err(SubmitError::Channel)?;
        match outcome {
            (true, _, _) => Ok(()),
            (false, inflight, cap) => Err(SubmitError::Rejected { inflight, cap }),
        }
    }

    /// Future for any key (submitted, scattered, or external). The key is
    /// scoped into this client's session — tenants can only ever watch
    /// their own namespace.
    pub fn future(&self, key: impl Into<Key>) -> DFuture<'_> {
        DFuture {
            client: self,
            key: self.scope(key.into()),
        }
    }

    /// Register external tasks (paper §2.2): keys whose results an external
    /// environment will push later. Graphs depending on these keys may be
    /// submitted immediately afterwards — before any data exists.
    pub fn register_external(&self, keys: Vec<Key>) {
        let keys: Vec<Key> = keys.into_iter().map(|k| self.scope(k)).collect();
        self.external_keys.borrow_mut().extend(keys.iter().cloned());
        self.tracer
            .instant(EventKind::RegisterExternal, None, keys.len() as u64);
        self.send_sched(SchedMsg::RegisterExternal {
            client: self.id,
            keys,
        });
    }

    /// Keys this client has registered as external tasks (sorted, for
    /// deterministic inspection). The optimizer treats these as protected.
    pub fn external_keys(&self) -> Vec<Key> {
        let mut v: Vec<Key> = self.external_keys.borrow().iter().cloned().collect();
        v.sort();
        v
    }

    /// Classic Dask scatter: place data on workers, then tell the scheduler.
    /// Returns the chosen worker per item.
    pub fn scatter(&self, items: Vec<(Key, Datum)>, worker: Option<WorkerId>) -> Vec<WorkerId> {
        self.scatter_impl(items, worker, false)
    }

    /// The extended scatter of §2.2 (`keys=`, `external=true`): push blocks
    /// produced by the external environment; the scheduler handles each key
    /// like a finished task, cascading into pre-submitted graphs.
    pub fn scatter_external(
        &self,
        items: Vec<(Key, Datum)>,
        worker: Option<WorkerId>,
    ) -> Vec<WorkerId> {
        self.scatter_impl(items, worker, true)
    }

    fn scatter_impl(
        &self,
        items: Vec<(Key, Datum)>,
        worker: Option<WorkerId>,
        external: bool,
    ) -> Vec<WorkerId> {
        let scatter_t0 = self.tracer.start();
        let first_key = items.first().map(|(k, _)| k.clone());
        let mut total_bytes = 0u64;
        let mut placements = Vec::with_capacity(items.len());
        let mut entries = Vec::with_capacity(items.len());
        for (key, value) in items {
            let key = self.scope(key);
            let w = worker.unwrap_or_else(|| {
                self.scatter_cursor.fetch_add(1, Ordering::Relaxed) % self.endpoint.n_workers()
            });
            let nbytes = value.nbytes();
            total_bytes += nbytes;
            self.stats.record(MsgClass::ScatterData, nbytes);
            let (ack, ack_rx) = self.endpoint.reply_slot();
            self.endpoint.send_data(
                w,
                DataMsg::Put {
                    key: key.clone(),
                    value,
                    ack,
                },
            );
            // Wait for the worker to own the data before informing the
            // scheduler (otherwise a dependent task could be scheduled and
            // fetch-miss).
            let _ = ack_rx.recv();
            entries.push((key, w, nbytes));
            placements.push(w);
        }
        self.send_sched(SchedMsg::UpdateData {
            client: self.id,
            entries,
            external,
        });
        let kind = if external {
            EventKind::ScatterExternal
        } else {
            EventKind::Scatter
        };
        self.tracer
            .span(kind, scatter_t0, first_key.as_ref(), total_bytes);
        placements
    }

    /// Wait for many keys and gather their values in order. More efficient
    /// than sequential `future(..).result()` calls: all `WantResult`
    /// registrations go out before any wait begins.
    pub fn gather_many(&self, keys: &[Key]) -> Result<Vec<Datum>, TaskError> {
        let keys: Vec<Key> = keys.iter().map(|k| self.scope(k.clone())).collect();
        let keys = &keys[..];
        for key in keys {
            self.send_sched(SchedMsg::WantResult {
                client: self.id,
                key: key.clone(),
            });
        }
        let mut locations = Vec::with_capacity(keys.len());
        for key in keys {
            let k = key.clone();
            let loc = self
                .wait_msg(None, move |m| match m {
                    ClientMsg::KeyReady { key, location } if *key == k => Some(location.clone()),
                    _ => None,
                })
                .map_err(|we| TaskError::new(key.clone(), we.to_string()))??;
            locations.push(loc);
        }
        keys.iter()
            .zip(locations)
            .map(|(key, worker)| self.gather_from(worker, key))
            .collect()
    }

    /// Release keys cluster-wide (scheduler state + worker memory).
    pub fn release(&self, keys: Vec<Key>) {
        let keys = keys.into_iter().map(|k| self.scope(k)).collect();
        self.send_sched(SchedMsg::ReleaseKeys { keys });
    }

    /// Send one heartbeat now (the automatic pinger uses the same path).
    pub fn heartbeat(&self) {
        self.endpoint
            .send_sched(SchedMsg::Heartbeat { client: self.id });
    }

    // ---- notification plumbing -------------------------------------------

    /// Wait for a notification matching `pred`, buffering everything else.
    fn wait_msg<T>(
        &self,
        timeout: Option<Duration>,
        mut pred: impl FnMut(&ClientMsg) -> Option<T>,
    ) -> Result<T, WaitError> {
        // Scan buffered messages first.
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|m| pred(m).is_some()) {
                let msg = pending.remove(pos).expect("position valid");
                return Ok(pred(&msg).expect("pred matched"));
            }
        }
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            let msg = match deadline {
                None => self.rx.recv().map_err(|_| WaitError::Disconnected)?,
                Some(d) => {
                    let remaining = d
                        .checked_duration_since(std::time::Instant::now())
                        .ok_or(WaitError::Timeout)?;
                    self.rx.recv_timeout(remaining).map_err(|e| match e {
                        crossbeam::channel::RecvTimeoutError::Timeout => WaitError::Timeout,
                        crossbeam::channel::RecvTimeoutError::Disconnected => {
                            WaitError::Disconnected
                        }
                    })?
                }
            };
            if let Some(v) = pred(&msg) {
                return Ok(v);
            }
            self.pending.borrow_mut().push_back(msg);
        }
    }

    /// Fetch a key's value from a worker (data plane).
    fn gather_from(&self, worker: WorkerId, key: &Key) -> Result<Datum, TaskError> {
        let gather_t0 = self.tracer.start();
        let (reply, reply_rx) = self.endpoint.reply_slot();
        self.endpoint.send_data(
            worker,
            DataMsg::Get {
                key: key.clone(),
                reply,
            },
        );
        match reply_rx.recv().map(DataReply::into_value) {
            Ok(Ok(value)) => {
                self.stats.record(MsgClass::GatherData, value.nbytes());
                self.tracer.span(
                    EventKind::GatherToClient,
                    gather_t0,
                    Some(key),
                    value.nbytes(),
                );
                Ok(value)
            }
            Ok(Err(m)) => Err(TaskError::new(key.clone(), m)),
            // A dropped reply slot means the worker's data server died while
            // we were waiting: attribute the loss so callers can distinguish
            // it from an ordinary task failure.
            Err(_) => Err(TaskError::new(key.clone(), "worker hung up")
                .with_cause(crate::msg::ErrorCause::PeerLost)),
        }
    }

    // ---- out-of-band proxy plane -------------------------------------------

    /// Publish `value` out-of-band if the store config says so: put the
    /// payload on a worker's object store (data lane) and return a
    /// [`DatumRef`] handle for the control path. Values the config keeps
    /// inline (proxies off, scalars, small arrays) come back unchanged.
    fn publish_proxy(&self, value: Datum) -> Datum {
        if self.store.keep_inline(&value) {
            return value;
        }
        let Datum::Array(array) = &value else {
            unreachable!("keep_inline admits only arrays to the proxy plane");
        };
        let seq = self.proxy_seq.fetch_add(1, Ordering::Relaxed);
        let key = self.scope(Key::new(format!("proxy:c{}:{}", self.id, seq)));
        let holder =
            self.scatter_cursor.fetch_add(1, Ordering::Relaxed) % self.endpoint.n_workers();
        let shape = array.shape().to_vec();
        let nbytes = value.nbytes();
        let (ack, ack_rx) = self.endpoint.reply_slot();
        self.endpoint.send_data(
            holder,
            DataMsg::Put {
                key: key.clone(),
                value,
                ack,
            },
        );
        // Wait for the store to own the payload before the handle travels the
        // control path: a consumer must never resolve a handle into a miss.
        let _ = ack_rx.recv();
        self.stats.record_proxy_put(nbytes);
        Datum::Ref(DatumRef {
            key,
            shape,
            nbytes,
            holder,
            epoch: seq as u64,
        })
    }

    /// Resolve any [`DatumRef`] handles inside `value` (lists recurse) by
    /// fetching the payloads from their holders over the data lane. A holder
    /// that hangs up mid-fetch surfaces as [`WaitError::PeerLost`], never as
    /// a hang (the transport cancels the reply slot).
    fn resolve_proxies(&self, value: Datum) -> Result<Datum, WaitError> {
        match value {
            Datum::Ref(handle) => {
                let t0 = self.tracer.start();
                let (reply, reply_rx) = self.endpoint.reply_slot();
                self.endpoint.send_data(
                    handle.holder,
                    DataMsg::Fetch {
                        key: handle.key.clone(),
                        reply,
                    },
                );
                match reply_rx.recv().map(DataReply::into_value) {
                    Ok(Ok(payload)) => {
                        self.stats.record_proxy_fetch(payload.nbytes());
                        self.tracer.span(
                            EventKind::ProxyFetch,
                            t0,
                            Some(&handle.key),
                            payload.nbytes(),
                        );
                        Ok(payload)
                    }
                    // The holder answered but no longer has the payload: the
                    // entry was deleted under us (or never landed) — treat it
                    // like the holder being gone, the data is lost either way.
                    Ok(Err(_)) | Err(_) => Err(WaitError::PeerLost),
                }
            }
            Datum::List(items) => Ok(Datum::List(
                items
                    .into_iter()
                    .map(|d| self.resolve_proxies(d))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            other => Ok(other),
        }
    }

    // ---- variables ---------------------------------------------------------

    /// Set a distributed variable. With proxies enabled in the cluster's
    /// [`StoreConfig`], large array values are published to a worker store
    /// and only a handle rides the scheduler lane.
    pub fn var_set(&self, name: &str, value: Datum) {
        let value = self.publish_proxy(value);
        self.send_sched(SchedMsg::VariableSet {
            name: name.to_string(),
            value,
        });
    }

    /// Blocking read of a variable (waits for it to be set). Proxy handles
    /// resolve transparently to their payloads.
    pub fn var_get(&self, name: &str) -> Result<Datum, WaitError> {
        let value = self.var_get_raw(name)?;
        self.resolve_proxies(value)
    }

    /// Blocking read of a variable *without* proxy resolution: a proxied
    /// variable comes back as its [`DatumRef`] handle. This is what actually
    /// travelled the control path — introspection and tests use it to see
    /// handles (and their holders) directly.
    pub fn var_get_raw(&self, name: &str) -> Result<Datum, WaitError> {
        self.send_sched(SchedMsg::VariableGet {
            client: self.id,
            name: name.to_string(),
            wait: true,
        });
        self.wait_msg(None, |m| match m {
            ClientMsg::VariableValue {
                name: n,
                value,
                found: true,
            } if n == name => Some(value.clone()),
            _ => None,
        })
    }

    /// Non-blocking read of a variable. Proxy handles resolve transparently.
    pub fn var_try_get(&self, name: &str) -> Result<Option<Datum>, WaitError> {
        self.send_sched(SchedMsg::VariableGet {
            client: self.id,
            name: name.to_string(),
            wait: false,
        });
        let value = self.wait_msg(None, |m| match m {
            ClientMsg::VariableValue {
                name: n,
                value,
                found,
            } if n == name => Some(found.then(|| value.clone())),
            _ => None,
        })?;
        value.map(|v| self.resolve_proxies(v)).transpose()
    }

    /// Delete a variable.
    pub fn var_del(&self, name: &str) {
        self.send_sched(SchedMsg::VariableDel {
            name: name.to_string(),
        });
    }

    /// Handle for a named distributed variable.
    pub fn variable<'a>(&'a self, name: &str) -> Variable<'a> {
        Variable {
            client: self,
            name: name.to_string(),
        }
    }

    // ---- queues -------------------------------------------------------------

    /// Push onto a named distributed queue. With proxies enabled, large
    /// array items are published out-of-band and only a handle is queued.
    pub fn q_push(&self, name: &str, value: Datum) {
        self.tracer.instant(EventKind::QueueOp, None, 0);
        let value = self.publish_proxy(value);
        self.send_sched(SchedMsg::QueuePush {
            name: name.to_string(),
            value,
        });
    }

    /// Blocking pop from a named queue. A popped proxy handle resolves to
    /// its payload, then the store entry is deleted: queue items are
    /// consumed exactly once, so the pop owns the payload.
    pub fn q_pop(&self, name: &str) -> Result<Datum, WaitError> {
        self.tracer.instant(EventKind::QueueOp, None, 1);
        self.send_sched(SchedMsg::QueuePop {
            client: self.id,
            name: name.to_string(),
        });
        let value = self.wait_msg(None, |m| match m {
            ClientMsg::QueueItem { name: n, value } if n == name => Some(value.clone()),
            _ => None,
        })?;
        if let Datum::Ref(handle) = &value {
            let resolved = self.resolve_proxies(value.clone())?;
            self.endpoint.send_data(
                handle.holder,
                DataMsg::Delete {
                    keys: vec![handle.key.clone()],
                },
            );
            return Ok(resolved);
        }
        self.resolve_proxies(value)
    }

    /// Handle for a named distributed queue.
    pub fn queue<'a>(&'a self, name: &str) -> DQueue<'a> {
        DQueue {
            client: self,
            name: name.to_string(),
        }
    }

    /// Test hook: drop this client *without* the disconnect goodbye, as if
    /// its process died. The heartbeat pinger still stops (a dead process
    /// sends no pings), so the scheduler's liveness sweep — not an orderly
    /// teardown — must reclaim everything the client left behind.
    #[doc(hidden)]
    pub fn simulate_death(self) {
        self.dead.set(true);
        drop(self);
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Stop and *join* the pinger first: once drop returns, no thread is
        // left pinging on behalf of a client that said goodbye (a trailing
        // ping would re-arm liveness tracking until the timeout fired).
        if let Some((stop, thread)) = self.heartbeat.take() {
            stop.store(true, Ordering::SeqCst);
            let _ = thread.join();
        }
        if !self.dead.get() {
            self.send_sched(SchedMsg::ClientDisconnect { client: self.id });
        }
        self.endpoint.unregister_client(self.id);
    }
}

/// Errors surfaced by [`Client::try_submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The scheduler's admission control rejected the graph: accepting it
    /// would push this session past its in-flight task cap. `inflight` is
    /// the session's in-flight count at rejection time; retry once some of
    /// it completes.
    Rejected { inflight: u64, cap: u64 },
    /// The notification channel failed while waiting for the ack.
    Channel(WaitError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected { inflight, cap } => write!(
                f,
                "admission rejected: session has {inflight} tasks in flight (cap {cap})"
            ),
            SubmitError::Channel(e) => write!(f, "submission ack failed: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Errors while waiting on cluster notifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitError {
    /// The scheduler hung up (cluster shut down).
    Disconnected,
    /// The caller-provided timeout elapsed.
    Timeout,
    /// A proxied payload could not be resolved: its holder died (or the
    /// entry was deleted) between publication and this read.
    PeerLost,
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::Disconnected => write!(f, "cluster disconnected"),
            WaitError::Timeout => write!(f, "timed out"),
            WaitError::PeerLost => write!(f, "proxy holder hung up [peer lost]"),
        }
    }
}

impl std::error::Error for WaitError {}

impl DFuture<'_> {
    /// The key this future resolves.
    pub fn key(&self) -> &Key {
        &self.key
    }

    /// Block until the task completes and fetch its value.
    pub fn result(&self) -> Result<Datum, TaskError> {
        self.result_impl(None)
    }

    /// Like [`DFuture::result`] with a timeout.
    pub fn result_timeout(&self, timeout: Duration) -> Result<Datum, TaskError> {
        self.result_impl(Some(timeout))
    }

    /// Wait for completion without fetching the payload; returns the worker
    /// holding the result.
    pub fn wait(&self) -> Result<WorkerId, TaskError> {
        self.wait_impl(None)
    }

    fn wait_impl(&self, timeout: Option<Duration>) -> Result<WorkerId, TaskError> {
        self.client.send_sched(SchedMsg::WantResult {
            client: self.client.id,
            key: self.key.clone(),
        });
        let key = self.key.clone();
        match self.client.wait_msg(timeout, move |m| match m {
            ClientMsg::KeyReady { key: k, location } if *k == key => Some(location.clone()),
            _ => None,
        }) {
            Ok(Ok(worker)) => Ok(worker),
            Ok(Err(e)) => Err(e),
            Err(we) => Err(TaskError::new(self.key.clone(), we.to_string())),
        }
    }

    fn result_impl(&self, timeout: Option<Duration>) -> Result<Datum, TaskError> {
        let worker = self.wait_impl(timeout)?;
        self.client.gather_from(worker, &self.key)
    }
}

/// Named distributed variable (paper §2.1: the new protocol uses **two
/// variables** for contract setup instead of `nbr_ranks` queues).
pub struct Variable<'a> {
    client: &'a Client,
    name: String,
}

impl Variable<'_> {
    /// Set the value.
    pub fn set(&self, value: Datum) {
        self.client.var_set(&self.name, value);
    }

    /// Blocking get.
    pub fn get(&self) -> Result<Datum, WaitError> {
        self.client.var_get(&self.name)
    }

    /// Non-blocking get.
    pub fn try_get(&self) -> Result<Option<Datum>, WaitError> {
        self.client.var_try_get(&self.name)
    }

    /// Delete the variable.
    pub fn delete(&self) {
        self.client.var_del(&self.name);
    }
}

/// Named distributed queue (used by the DEISA1 per-rank metadata protocol).
pub struct DQueue<'a> {
    client: &'a Client,
    name: String,
}

impl DQueue<'_> {
    /// Push an item.
    pub fn push(&self, value: Datum) {
        self.client.q_push(&self.name, value);
    }

    /// Blocking pop.
    pub fn pop(&self) -> Result<Datum, WaitError> {
        self.client.q_pop(&self.name)
    }
}
