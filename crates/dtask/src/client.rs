//! Client handle: graph submission, futures, scatter, variables, queues.

use crate::datum::Datum;
use crate::key::Key;
use crate::msg::{ClientId, ClientMsg, DataMsg, SchedMsg, TaskError, WorkerId};
use crate::optimize::{optimize, OptimizeConfig};
use crate::spec::TaskSpec;
use crate::stats::{MsgClass, SchedulerStats};
use crate::trace::{EventKind, TraceHandle};
use crate::transport::{DataReply, Endpoint};
use crossbeam::channel::Receiver;
use std::cell::RefCell;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A connected client. Owns its notification inbox, so use one `Client` per
/// thread (clone-by-reconnect via [`crate::Cluster::client`]).
pub struct Client {
    pub(crate) id: ClientId,
    /// Outbound route to the scheduler and worker data servers.
    pub(crate) endpoint: Endpoint,
    pub(crate) rx: Receiver<ClientMsg>,
    pub(crate) pending: RefCell<VecDeque<ClientMsg>>,
    pub(crate) stats: Arc<SchedulerStats>,
    pub(crate) scatter_cursor: AtomicUsize,
    pub(crate) optimize: OptimizeConfig,
    /// Keys this client registered as external tasks: the optimizer must
    /// never cull them or swallow them into a fused chain.
    pub(crate) external_keys: RefCell<HashSet<Key>>,
    /// Lifecycle event recorder (empty handle when tracing is off). Bridges
    /// relabel their trace row via [`TraceHandle::set_label`].
    pub(crate) tracer: TraceHandle,
    /// Stop flag of this client's heartbeat pinger, when one is running. The
    /// thread itself is owned (and joined) by the cluster — satellite of the
    /// shutdown-ordering fix — so drop only signals it to stop.
    pub(crate) heartbeat_stop: Option<Arc<AtomicBool>>,
}

/// A handle to one (eventual) task result.
pub struct DFuture<'a> {
    client: &'a Client,
    key: Key,
}

impl std::fmt::Debug for DFuture<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DFuture({})", self.key)
    }
}

impl Client {
    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Number of workers in the cluster.
    pub fn n_workers(&self) -> usize {
        self.endpoint.n_workers()
    }

    /// Shared statistics counters.
    pub fn stats(&self) -> &Arc<SchedulerStats> {
        &self.stats
    }

    /// This client's trace handle (empty when tracing is off). Bridges use
    /// it to record contract-setup/publish spans and to label their row.
    pub fn tracer(&self) -> &TraceHandle {
        &self.tracer
    }

    /// Submit a task graph. Returns immediately; use [`Client::future`] to
    /// wait on results.
    ///
    /// With the cluster's [`OptimizeConfig`] active, the graph is optimized
    /// first with *no declared outputs*: culling is skipped and only fusion
    /// runs (sinks always survive as stored keys; see
    /// [`Client::submit_with_outputs`] to declare outputs and enable
    /// culling).
    pub fn submit(&self, specs: Vec<TaskSpec>) {
        self.submit_with_outputs(specs, &[]);
    }

    /// Submit a task graph declaring which keys will actually be consumed.
    /// The ahead-of-time optimizer (when enabled in the cluster config)
    /// culls tasks unreachable from `outputs` and fuses strictly linear op
    /// chains; externally registered keys are always protected.
    pub fn submit_with_outputs(&self, mut specs: Vec<TaskSpec>, outputs: &[Key]) {
        if self.optimize.is_active() {
            let opt_t0 = self.tracer.start();
            let protected = self.external_keys.borrow();
            let (optimized, report) = optimize(specs, outputs, &protected, &self.optimize);
            specs = optimized;
            self.tracer
                .span(EventKind::Optimize, opt_t0, None, report.tasks_out as u64);
            self.stats.record_optimize(&report);
        }
        self.tracer
            .instant(EventKind::Submit, None, specs.len() as u64);
        self.endpoint.send_sched(SchedMsg::SubmitGraph {
            client: self.id,
            specs,
        });
    }

    /// Future for any key (submitted, scattered, or external).
    pub fn future(&self, key: impl Into<Key>) -> DFuture<'_> {
        DFuture {
            client: self,
            key: key.into(),
        }
    }

    /// Register external tasks (paper §2.2): keys whose results an external
    /// environment will push later. Graphs depending on these keys may be
    /// submitted immediately afterwards — before any data exists.
    pub fn register_external(&self, keys: Vec<Key>) {
        self.external_keys.borrow_mut().extend(keys.iter().cloned());
        self.tracer
            .instant(EventKind::RegisterExternal, None, keys.len() as u64);
        self.endpoint.send_sched(SchedMsg::RegisterExternal {
            client: self.id,
            keys,
        });
    }

    /// Keys this client has registered as external tasks (sorted, for
    /// deterministic inspection). The optimizer treats these as protected.
    pub fn external_keys(&self) -> Vec<Key> {
        let mut v: Vec<Key> = self.external_keys.borrow().iter().cloned().collect();
        v.sort();
        v
    }

    /// Classic Dask scatter: place data on workers, then tell the scheduler.
    /// Returns the chosen worker per item.
    pub fn scatter(&self, items: Vec<(Key, Datum)>, worker: Option<WorkerId>) -> Vec<WorkerId> {
        self.scatter_impl(items, worker, false)
    }

    /// The extended scatter of §2.2 (`keys=`, `external=true`): push blocks
    /// produced by the external environment; the scheduler handles each key
    /// like a finished task, cascading into pre-submitted graphs.
    pub fn scatter_external(
        &self,
        items: Vec<(Key, Datum)>,
        worker: Option<WorkerId>,
    ) -> Vec<WorkerId> {
        self.scatter_impl(items, worker, true)
    }

    fn scatter_impl(
        &self,
        items: Vec<(Key, Datum)>,
        worker: Option<WorkerId>,
        external: bool,
    ) -> Vec<WorkerId> {
        let scatter_t0 = self.tracer.start();
        let first_key = items.first().map(|(k, _)| k.clone());
        let mut total_bytes = 0u64;
        let mut placements = Vec::with_capacity(items.len());
        let mut entries = Vec::with_capacity(items.len());
        for (key, value) in items {
            let w = worker.unwrap_or_else(|| {
                self.scatter_cursor.fetch_add(1, Ordering::Relaxed) % self.endpoint.n_workers()
            });
            let nbytes = value.nbytes();
            total_bytes += nbytes;
            self.stats.record(MsgClass::ScatterData, nbytes);
            let (ack, ack_rx) = self.endpoint.reply_slot();
            self.endpoint.send_data(
                w,
                DataMsg::Put {
                    key: key.clone(),
                    value,
                    ack,
                },
            );
            // Wait for the worker to own the data before informing the
            // scheduler (otherwise a dependent task could be scheduled and
            // fetch-miss).
            let _ = ack_rx.recv();
            entries.push((key, w, nbytes));
            placements.push(w);
        }
        self.endpoint.send_sched(SchedMsg::UpdateData {
            client: self.id,
            entries,
            external,
        });
        let kind = if external {
            EventKind::ScatterExternal
        } else {
            EventKind::Scatter
        };
        self.tracer
            .span(kind, scatter_t0, first_key.as_ref(), total_bytes);
        placements
    }

    /// Wait for many keys and gather their values in order. More efficient
    /// than sequential `future(..).result()` calls: all `WantResult`
    /// registrations go out before any wait begins.
    pub fn gather_many(&self, keys: &[Key]) -> Result<Vec<Datum>, TaskError> {
        for key in keys {
            self.endpoint.send_sched(SchedMsg::WantResult {
                client: self.id,
                key: key.clone(),
            });
        }
        let mut locations = Vec::with_capacity(keys.len());
        for key in keys {
            let k = key.clone();
            let loc = self
                .wait_msg(None, move |m| match m {
                    ClientMsg::KeyReady { key, location } if *key == k => Some(location.clone()),
                    _ => None,
                })
                .map_err(|we| TaskError::new(key.clone(), we.to_string()))??;
            locations.push(loc);
        }
        keys.iter()
            .zip(locations)
            .map(|(key, worker)| self.gather_from(worker, key))
            .collect()
    }

    /// Release keys cluster-wide (scheduler state + worker memory).
    pub fn release(&self, keys: Vec<Key>) {
        self.endpoint.send_sched(SchedMsg::ReleaseKeys { keys });
    }

    /// Send one heartbeat now (the automatic pinger uses the same path).
    pub fn heartbeat(&self) {
        self.endpoint
            .send_sched(SchedMsg::Heartbeat { client: self.id });
    }

    // ---- notification plumbing -------------------------------------------

    /// Wait for a notification matching `pred`, buffering everything else.
    fn wait_msg<T>(
        &self,
        timeout: Option<Duration>,
        mut pred: impl FnMut(&ClientMsg) -> Option<T>,
    ) -> Result<T, WaitError> {
        // Scan buffered messages first.
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|m| pred(m).is_some()) {
                let msg = pending.remove(pos).expect("position valid");
                return Ok(pred(&msg).expect("pred matched"));
            }
        }
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            let msg = match deadline {
                None => self.rx.recv().map_err(|_| WaitError::Disconnected)?,
                Some(d) => {
                    let remaining = d
                        .checked_duration_since(std::time::Instant::now())
                        .ok_or(WaitError::Timeout)?;
                    self.rx.recv_timeout(remaining).map_err(|e| match e {
                        crossbeam::channel::RecvTimeoutError::Timeout => WaitError::Timeout,
                        crossbeam::channel::RecvTimeoutError::Disconnected => {
                            WaitError::Disconnected
                        }
                    })?
                }
            };
            if let Some(v) = pred(&msg) {
                return Ok(v);
            }
            self.pending.borrow_mut().push_back(msg);
        }
    }

    /// Fetch a key's value from a worker (data plane).
    fn gather_from(&self, worker: WorkerId, key: &Key) -> Result<Datum, TaskError> {
        let gather_t0 = self.tracer.start();
        let (reply, reply_rx) = self.endpoint.reply_slot();
        self.endpoint.send_data(
            worker,
            DataMsg::Get {
                key: key.clone(),
                reply,
            },
        );
        match reply_rx.recv().map(DataReply::into_value) {
            Ok(Ok(value)) => {
                self.stats.record(MsgClass::GatherData, value.nbytes());
                self.tracer.span(
                    EventKind::GatherToClient,
                    gather_t0,
                    Some(key),
                    value.nbytes(),
                );
                Ok(value)
            }
            Ok(Err(m)) => Err(TaskError::new(key.clone(), m)),
            // A dropped reply slot means the worker's data server died while
            // we were waiting: attribute the loss so callers can distinguish
            // it from an ordinary task failure.
            Err(_) => Err(TaskError::new(key.clone(), "worker hung up")
                .with_cause(crate::msg::ErrorCause::PeerLost)),
        }
    }

    // ---- variables ---------------------------------------------------------

    /// Set a distributed variable.
    pub fn var_set(&self, name: &str, value: Datum) {
        self.endpoint.send_sched(SchedMsg::VariableSet {
            name: name.to_string(),
            value,
        });
    }

    /// Blocking read of a variable (waits for it to be set).
    pub fn var_get(&self, name: &str) -> Result<Datum, WaitError> {
        self.endpoint.send_sched(SchedMsg::VariableGet {
            client: self.id,
            name: name.to_string(),
            wait: true,
        });
        self.wait_msg(None, |m| match m {
            ClientMsg::VariableValue {
                name: n,
                value,
                found: true,
            } if n == name => Some(value.clone()),
            _ => None,
        })
    }

    /// Non-blocking read of a variable.
    pub fn var_try_get(&self, name: &str) -> Result<Option<Datum>, WaitError> {
        self.endpoint.send_sched(SchedMsg::VariableGet {
            client: self.id,
            name: name.to_string(),
            wait: false,
        });
        self.wait_msg(None, |m| match m {
            ClientMsg::VariableValue {
                name: n,
                value,
                found,
            } if n == name => Some(found.then(|| value.clone())),
            _ => None,
        })
    }

    /// Delete a variable.
    pub fn var_del(&self, name: &str) {
        self.endpoint.send_sched(SchedMsg::VariableDel {
            name: name.to_string(),
        });
    }

    /// Handle for a named distributed variable.
    pub fn variable<'a>(&'a self, name: &str) -> Variable<'a> {
        Variable {
            client: self,
            name: name.to_string(),
        }
    }

    // ---- queues -------------------------------------------------------------

    /// Push onto a named distributed queue.
    pub fn q_push(&self, name: &str, value: Datum) {
        self.tracer.instant(EventKind::QueueOp, None, 0);
        self.endpoint.send_sched(SchedMsg::QueuePush {
            name: name.to_string(),
            value,
        });
    }

    /// Blocking pop from a named queue.
    pub fn q_pop(&self, name: &str) -> Result<Datum, WaitError> {
        self.tracer.instant(EventKind::QueueOp, None, 1);
        self.endpoint.send_sched(SchedMsg::QueuePop {
            client: self.id,
            name: name.to_string(),
        });
        self.wait_msg(None, |m| match m {
            ClientMsg::QueueItem { name: n, value } if n == name => Some(value.clone()),
            _ => None,
        })
    }

    /// Handle for a named distributed queue.
    pub fn queue<'a>(&'a self, name: &str) -> DQueue<'a> {
        DQueue {
            client: self,
            name: name.to_string(),
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        if let Some(stop) = &self.heartbeat_stop {
            stop.store(true, Ordering::SeqCst);
        }
        self.endpoint
            .send_sched(SchedMsg::ClientDisconnect { client: self.id });
        self.endpoint.unregister_client(self.id);
    }
}

/// Errors while waiting on cluster notifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitError {
    /// The scheduler hung up (cluster shut down).
    Disconnected,
    /// The caller-provided timeout elapsed.
    Timeout,
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::Disconnected => write!(f, "cluster disconnected"),
            WaitError::Timeout => write!(f, "timed out"),
        }
    }
}

impl std::error::Error for WaitError {}

impl DFuture<'_> {
    /// The key this future resolves.
    pub fn key(&self) -> &Key {
        &self.key
    }

    /// Block until the task completes and fetch its value.
    pub fn result(&self) -> Result<Datum, TaskError> {
        self.result_impl(None)
    }

    /// Like [`DFuture::result`] with a timeout.
    pub fn result_timeout(&self, timeout: Duration) -> Result<Datum, TaskError> {
        self.result_impl(Some(timeout))
    }

    /// Wait for completion without fetching the payload; returns the worker
    /// holding the result.
    pub fn wait(&self) -> Result<WorkerId, TaskError> {
        self.wait_impl(None)
    }

    fn wait_impl(&self, timeout: Option<Duration>) -> Result<WorkerId, TaskError> {
        self.client.endpoint.send_sched(SchedMsg::WantResult {
            client: self.client.id,
            key: self.key.clone(),
        });
        let key = self.key.clone();
        match self.client.wait_msg(timeout, move |m| match m {
            ClientMsg::KeyReady { key: k, location } if *k == key => Some(location.clone()),
            _ => None,
        }) {
            Ok(Ok(worker)) => Ok(worker),
            Ok(Err(e)) => Err(e),
            Err(we) => Err(TaskError::new(self.key.clone(), we.to_string())),
        }
    }

    fn result_impl(&self, timeout: Option<Duration>) -> Result<Datum, TaskError> {
        let worker = self.wait_impl(timeout)?;
        self.client.gather_from(worker, &self.key)
    }
}

/// Named distributed variable (paper §2.1: the new protocol uses **two
/// variables** for contract setup instead of `nbr_ranks` queues).
pub struct Variable<'a> {
    client: &'a Client,
    name: String,
}

impl Variable<'_> {
    /// Set the value.
    pub fn set(&self, value: Datum) {
        self.client.var_set(&self.name, value);
    }

    /// Blocking get.
    pub fn get(&self) -> Result<Datum, WaitError> {
        self.client.var_get(&self.name)
    }

    /// Non-blocking get.
    pub fn try_get(&self) -> Result<Option<Datum>, WaitError> {
        self.client.var_try_get(&self.name)
    }

    /// Delete the variable.
    pub fn delete(&self) {
        self.client.var_del(&self.name);
    }
}

/// Named distributed queue (used by the DEISA1 per-rank metadata protocol).
pub struct DQueue<'a> {
    client: &'a Client,
    name: String,
}

impl DQueue<'_> {
    /// Push an item.
    pub fn push(&self, value: Datum) {
        self.client.q_push(&self.name, value);
    }

    /// Blocking pop.
    pub fn pop(&self) -> Result<Datum, WaitError> {
        self.client.q_pop(&self.name)
    }
}
