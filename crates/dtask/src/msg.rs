//! Message types exchanged between clients, the scheduler, and workers.
//!
//! No variant carries a live channel handle: replies are id-routed through
//! the transport layer via [`ReplyTo`] tokens (see [`crate::transport`]), so
//! every message can be serialized by the Framed/SimNet backends without
//! special-casing.

use crate::datum::Datum;
use crate::key::{Key, SessionId};
use crate::spec::TaskSpec;
use crate::transport::ReplyTo;
use std::sync::Arc;

/// Worker identifier (index into the cluster's worker table).
pub type WorkerId = usize;

/// Client identifier assigned at connect time.
pub type ClientId = usize;

/// Where a [`TaskError`] came from, relative to the task it is attached to.
///
/// The error's `key` always names the *originally failing* task; the cause
/// records how the failure reached the current task, so fused-chain
/// per-stage attribution and dependency cascades stay distinguishable after
/// a wire round-trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorCause {
    /// The task named by `key` failed while executing.
    Direct,
    /// An interior stage of a fused chain failed; `stored_key` is the spec
    /// key the scheduler tracks (the chain tail), while `key` names the
    /// failing stage.
    FusedStage {
        /// The fused spec's key (what the scheduler tracks).
        stored_key: Key,
    },
    /// The failure propagated through a dependency edge; `via` is the
    /// direct dependency that delivered it.
    Propagated {
        /// The dependency the error arrived through.
        via: Key,
    },
    /// The data (or the worker computing it) was lost with a dead peer and
    /// could not be recovered: an unreplicated external block vanished, or
    /// the bounded resubmission budget ran out. Unlike `Propagated`, this
    /// cause survives dependency-edge propagation unchanged, so the client
    /// at the bottom of the downstream cone still sees the loss attribution.
    PeerLost,
}

/// A task failure, delivered to futures and propagated to dependents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// The task that (originally) failed.
    pub key: Key,
    /// Failure description.
    pub message: String,
    /// How the failure relates to the task it is attached to.
    pub cause: ErrorCause,
}

impl TaskError {
    /// An error originating at `key` itself.
    pub fn new(key: impl Into<Key>, message: impl Into<String>) -> Self {
        TaskError {
            key: key.into(),
            message: message.into(),
            cause: ErrorCause::Direct,
        }
    }

    /// Same error with an explicit cause.
    pub fn with_cause(mut self, cause: ErrorCause) -> Self {
        self.cause = cause;
        self
    }

    /// This same failure as seen one dependency edge further downstream.
    /// A `PeerLost` cause is sticky: the loss attribution must reach the
    /// client even through a long dependent cone.
    pub fn propagated_via(&self, via: Key) -> Self {
        TaskError {
            key: self.key.clone(),
            message: self.message.clone(),
            cause: match self.cause {
                ErrorCause::PeerLost => ErrorCause::PeerLost,
                _ => ErrorCause::Propagated { via },
            },
        }
    }

    /// Did this failure originate somewhere other than the task it is
    /// attached to?
    pub fn is_propagated(&self) -> bool {
        matches!(self.cause, ErrorCause::Propagated { .. })
    }
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} failed: {}", self.key, self.message)?;
        // Keep the loss attribution visible through stringly-typed layers
        // (e.g. model-fetch helpers that map errors to `String`).
        if self.cause == ErrorCause::PeerLost {
            write!(f, " [peer lost]")?;
        }
        Ok(())
    }
}

impl std::error::Error for TaskError {}

/// Messages into the scheduler.
#[derive(Clone)]
pub enum SchedMsg {
    /// A new client connected; its notification route is registered with the
    /// transport router before this message is sent, so the scheduler only
    /// records the id.
    ClientConnect {
        /// Client id (assigned by the cluster).
        client: ClientId,
    },
    /// A client disconnected; pending waiters are dropped.
    ClientDisconnect {
        /// The disconnecting client.
        client: ClientId,
    },
    /// Submit a task graph (any number of interdependent specs).
    SubmitGraph {
        /// Submitting client.
        client: ClientId,
        /// The tasks.
        specs: Vec<TaskSpec>,
    },
    /// Register keys as **external tasks** (paper §2.2): tasks not
    /// schedulable nor runnable by this scheduler; their results will be
    /// pushed later by an external environment via `UpdateData`.
    RegisterExternal {
        /// Registering client.
        client: ClientId,
        /// External task keys.
        keys: Vec<Key>,
    },
    /// Out-of-band data landed on a worker (the second half of `scatter`).
    /// With `external: true` the scheduler handles each key like a finished
    /// task: `External → Memory` plus the full transition cascade.
    UpdateData {
        /// Reporting client.
        client: ClientId,
        /// `(key, worker that now holds it, payload bytes)`.
        entries: Vec<(Key, WorkerId, u64)>,
        /// DEISA mode flag (the `external=` argument of the extended scatter).
        external: bool,
    },
    /// Worker reports a task completed.
    TaskFinished {
        /// Executing worker.
        worker: WorkerId,
        /// Completed task.
        key: Key,
        /// Result size.
        nbytes: u64,
    },
    /// Worker gained replicas of keys it fetched from peers during a
    /// dependency gather. Future placement can then prefer the replica
    /// holder instead of re-fetching from the original producer.
    AddReplica {
        /// Worker that now holds copies.
        worker: WorkerId,
        /// `(key, nbytes)` of each newly cached block.
        entries: Vec<(Key, u64)>,
    },
    /// Worker reports a task failed. `stored_key` is the key the scheduler
    /// tracks (the spec key); `error.key` is the originating task, which for
    /// a fused chain may be an interior stage.
    TaskErred {
        /// Executing worker.
        worker: WorkerId,
        /// Key of the spec that failed (what the scheduler tracks).
        stored_key: Key,
        /// Origin and description of the failure.
        error: TaskError,
        /// Peer whose data connection hung up mid-gather, if that is what
        /// failed the task. Direct evidence of that peer's death — the
        /// scheduler acts on it immediately instead of waiting out the
        /// heartbeat timeout.
        failed_peer: Option<WorkerId>,
    },
    /// Client wants a notification when `key` completes (or errs).
    WantResult {
        /// Asking client.
        client: ClientId,
        /// Key of interest.
        key: Key,
    },
    /// Release keys: forget scheduler state and delete worker copies.
    ReleaseKeys {
        /// Keys to forget.
        keys: Vec<Key>,
    },
    /// Set a named distributed variable.
    VariableSet {
        /// Variable name.
        name: String,
        /// New value.
        value: Datum,
    },
    /// Read a variable; with `wait` the reply is deferred until set.
    VariableGet {
        /// Asking client.
        client: ClientId,
        /// Variable name.
        name: String,
        /// Block until the variable exists?
        wait: bool,
    },
    /// Delete a variable.
    VariableDel {
        /// Variable name.
        name: String,
    },
    /// Push onto a named distributed queue.
    QueuePush {
        /// Queue name.
        name: String,
        /// Item.
        value: Datum,
    },
    /// Pop from a named queue (reply deferred until an item exists).
    QueuePop {
        /// Asking client.
        client: ClientId,
        /// Queue name.
        name: String,
    },
    /// Periodic liveness ping from a client (bridges in DEISA1/2).
    Heartbeat {
        /// Pinging client.
        client: ClientId,
    },
    /// Periodic liveness ping from a worker. Off by default
    /// ([`crate::cluster::FaultConfig::worker_heartbeat`] is `Infinite`);
    /// when enabled the scheduler tracks per-worker `last_seen` and declares
    /// a worker dead after the configured `heartbeat_timeout`.
    WorkerHeartbeat {
        /// Pinging worker.
        worker: WorkerId,
    },
    /// An idle executor slot asks for work: the scheduler picks the most
    /// loaded live peer and tells it (via [`ExecMsg::Steal`]) to hand
    /// queued-but-unstarted assignments to this worker. Sent only when
    /// [`crate::policy::PolicyConfig::steal_poll`] is set.
    StealRequest {
        /// The idle (would-be thief) worker.
        worker: WorkerId,
    },
    /// A victim reports which queued assignments it forwarded to a thief.
    /// Empty `keys` means the victim had nothing unstarted to give (a steal
    /// miss). The scheduler re-points `assigned_to` for each key so loss
    /// recovery and load accounting follow the task to its new worker.
    Stolen {
        /// Worker the assignments were taken from.
        victim: WorkerId,
        /// Worker that received them.
        thief: WorkerId,
        /// Keys of the forwarded assignments.
        keys: Vec<Key>,
    },
    /// A worker process attached through the deployment layer (see
    /// [`crate::node`]): the hub completed the `Hello`/`Welcome` handshake
    /// and tells the scheduler to treat this worker slot as live. In-process
    /// clusters never send it — their workers are alive from construction.
    RegisterWorker {
        /// The id the hub assigned to the attaching process.
        worker: WorkerId,
        /// Executor slots the process announced.
        slots: usize,
    },
    /// Stop the scheduler loop.
    Shutdown,
    /// A tenant-scoped message: the scheduler handles `inner` inside the
    /// named session's namespace (string-named variable/queue operations are
    /// re-keyed per session; connect/disconnect bind the client to the
    /// session). Single-tenant clusters never wrap, so their wire bytes stay
    /// identical to the pre-tenancy format. Never nested.
    Scoped {
        /// The tenant session this message belongs to (never 0).
        session: SessionId,
        /// The wrapped message.
        inner: Box<SchedMsg>,
    },
}

/// One scheduler→worker assignment: the task, the placement of each
/// dependency that needs a remote fetch, and the assignment timestamp (the
/// executor measures queue delay — assign → slot dequeue — against it).
#[derive(Clone)]
pub struct Assignment {
    /// The task (shared with the scheduler's entry — no deep copy).
    pub spec: Arc<TaskSpec>,
    /// Placement of each dependency the scheduler believes is *not* already
    /// on the target worker (local deps resolve from its store and are
    /// omitted here).
    pub dep_locations: Vec<(Key, Vec<WorkerId>)>,
    /// When the scheduler's placement pass shipped this task. Not part of
    /// the wire format: the Framed/SimNet decoder re-stamps it at delivery,
    /// so queue delay measures slot wait, not transport latency.
    pub assigned_at: std::time::Instant,
}

/// Messages a worker's *executor slots* handle (one shared inbox per worker,
/// drained by every slot thread).
#[derive(Clone)]
pub enum ExecMsg {
    /// Run one assigned task.
    Execute(Assignment),
    /// A burst of assignments coalesced by the batched scheduler loop. The
    /// receiving slot runs the first task inline and re-enqueues the rest on
    /// the shared inbox so sibling slots pick them up concurrently.
    ExecuteBatch {
        /// Assignments in placement order.
        tasks: Vec<Assignment>,
    },
    /// The scheduler (answering a [`SchedMsg::StealRequest`]) tells this
    /// worker to forward up to `max` queued-but-unstarted assignments from
    /// its shared inbox to `thief`. The receiving slot drains its inbox,
    /// re-enqueues what it keeps, reports the forwarded keys with
    /// [`SchedMsg::Stolen`], and ships the assignments to the thief's inbox.
    Steal {
        /// Worker to forward the assignments to.
        thief: WorkerId,
        /// Upper bound on assignments to hand over.
        max: usize,
    },
    /// Stop one executor slot thread.
    Shutdown,
}

/// Messages a worker's *data server* handles (always responsive; this is the
/// comm half of the worker, so dependency fetches can never deadlock).
#[derive(Clone)]
pub enum DataMsg {
    /// Store a value (scatter landing). The ack fires after the store, so
    /// the sender can safely tell the scheduler the data exists.
    Put {
        /// Key to store under.
        key: Key,
        /// The value.
        value: Datum,
        /// Where to route the [`crate::transport::DataReply::PutAck`].
        ack: ReplyTo,
    },
    /// Fetch a value (peer dependency fetch or client gather).
    Get {
        /// Requested key.
        key: Key,
        /// Where to route the value (or the miss error).
        reply: ReplyTo,
    },
    /// Drop stored values.
    Delete {
        /// Keys to drop.
        keys: Vec<Key>,
    },
    /// Report store statistics (introspection / load-balance checks).
    Stats {
        /// Where to route the `(stored keys, stored bytes)` reply.
        reply: ReplyTo,
    },
    /// Drop every stored value belonging to one tenant session (teardown
    /// broadcast; cheaper and race-free vs. enumerating keys scheduler-side,
    /// since the store also holds proxy payloads the scheduler never saw).
    Sweep {
        /// The session whose entries are dropped.
        session: SessionId,
    },
    /// Resolve a proxy handle: fetch a store entry published out-of-band
    /// behind a [`crate::datum::DatumRef`]. Semantically a `Get`, but kept
    /// as its own variant so requester-side accounting can tell proxy
    /// resolution (`proxy_fetch_bytes`) apart from dependency gathers, and
    /// so the wire format can evolve the two independently.
    Fetch {
        /// Key of the store entry the handle points at.
        key: Key,
        /// Where to route the value (or the miss error).
        reply: ReplyTo,
    },
    /// Stop the data-server thread.
    Shutdown,
}

/// Notifications back to a client.
#[derive(Debug, Clone)]
pub enum ClientMsg {
    /// A watched key reached a terminal state.
    KeyReady {
        /// The key.
        key: Key,
        /// Where the data lives, or the task error.
        location: Result<WorkerId, TaskError>,
    },
    /// Variable read result.
    VariableValue {
        /// Variable name.
        name: String,
        /// The value (`Datum::Null` plus `found: false` when non-waiting get
        /// missed).
        value: Datum,
        /// Whether the variable existed.
        found: bool,
    },
    /// Queue pop result.
    QueueItem {
        /// Queue name.
        name: String,
        /// Popped value.
        value: Datum,
    },
    /// Admission-control verdict for a scoped `SubmitGraph`. Sent only when
    /// the cluster runs with a per-session in-flight cap; `accepted: false`
    /// means the graph was rejected wholesale (backpressure — the client
    /// surfaces the error instead of silently queuing).
    SubmitOutcome {
        /// Was the graph admitted?
        accepted: bool,
        /// The session's in-flight task count at decision time.
        inflight: u64,
        /// The configured per-session cap.
        cap: u64,
    },
}
