//! End-to-end task-lifecycle tracing.
//!
//! The paper's argument is about *where time and messages go* — contract
//! setup vs per-timestep metadata, gather vs compute, scheduler occupancy.
//! The aggregate counters in [`crate::stats::SchedulerStats`] measure the
//! totals; this module records the **per-event timeline** underneath them:
//! every task and external block's lifecycle
//!
//! ```text
//! submit → optimize → ready → assign → gather(per dep) → exec → report → gather-to-client
//! ```
//!
//! plus bridge-side events (contract setup, per-timestep block publish,
//! DEISA1 scatter/queue ops), each stamped with monotonic nanoseconds since
//! the recorder epoch.
//!
//! Design:
//! * **One bounded lock-free ring per actor** ([`EventRing`], the classic
//!   Vyukov bounded MPMC queue). Actors are the scheduler thread, every
//!   worker executor slot, and every client/bridge. Recording is a couple of
//!   atomics on the owner's ring; rings are drained only on snapshot
//!   ([`TraceRecorder::collect`]). A full ring drops the newest event and
//!   counts it — tracing never blocks the runtime.
//! * **Disabled ⇒ zero cost.** With [`TraceConfig::enabled`]`= false` every
//!   [`TraceHandle`] is empty: `start()` returns `None` without reading the
//!   clock and `span`/`instant` return after one branch — no allocation, no
//!   atomic, no fence on the hot path.
//! * **Exporters.** [`TraceLog::to_chrome_json`] emits Chrome trace-event
//!   JSON (open in Perfetto / `chrome://tracing`; one row per worker slot +
//!   scheduler + each client/bridge) and [`TraceLog::phase_report`] walks the
//!   spans to attribute end-to-end makespan to {contract setup,
//!   external-data wait, gather, compute, scheduler occupancy}.

use crate::json::Json;
use crate::key::Key;
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Event-recording configuration (part of [`crate::ClusterConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record lifecycle events? Off by default: a disabled recorder hands
    /// out empty handles whose record calls are a single branch.
    pub enabled: bool,
    /// Ring capacity per actor, in events (rounded up to a power of two).
    /// A full ring drops the newest event and counts the drop.
    pub capacity_per_actor: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity_per_actor: 1 << 14,
        }
    }
}

impl TraceConfig {
    /// Tracing on with the default per-actor capacity.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }
}

/// Who recorded an event (one ring — one Chrome trace row — per actor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceActor {
    /// The scheduler thread.
    Scheduler,
    /// One executor slot of one worker.
    WorkerSlot {
        /// Worker id.
        worker: usize,
        /// Slot index within the worker.
        slot: usize,
    },
    /// A client — analytics clients and bridges both connect as clients;
    /// bridges relabel their track via [`TraceHandle::set_label`].
    Client {
        /// Client id.
        id: usize,
    },
    /// The transport router (Framed/SimNet backends record per-message
    /// wire sizes here; senders on any thread share this one track).
    Transport,
    /// One worker's object store (the data server thread records store
    /// hit/miss/spill/fetch events here).
    Store {
        /// Worker id.
        worker: usize,
    },
}

/// Task/block lifecycle event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Client submitted a graph (instant; arg = specs sent).
    Submit,
    /// Ahead-of-time graph optimization (span; arg = tasks out).
    Optimize,
    /// Client registered external tasks (instant; arg = keys).
    RegisterExternal,
    /// Scheduler saw all deps of a task in memory (instant; key).
    TaskReady,
    /// Scheduler assigned a task to a worker (instant; key, arg = worker).
    Assign,
    /// One scheduler placement pass (span; arg = tasks assigned).
    AssignPass,
    /// One scheduler inbox burst handled (span; arg = messages).
    Ingest,
    /// One remote dependency fetched from a peer (span; key = dep,
    /// arg = peer worker asked).
    GatherDep,
    /// Whole dependency gather of one task (span; arg = remote deps).
    GatherBatch,
    /// Task op/fused-chain computation (span; key, arg = worker).
    Exec,
    /// Scheduler received a task completion/error report (instant; key,
    /// arg = worker).
    Report,
    /// Client fetched a result payload from a worker (span; key,
    /// arg = bytes).
    GatherToClient,
    /// Classic scatter (span; key = first key, arg = payload bytes).
    Scatter,
    /// Extended external scatter of §2.2 (span; key = first key,
    /// arg = payload bytes).
    ScatterExternal,
    /// Contract setup step — descriptor publish/wait, contract sign/wait
    /// (span; arg = rank or 0).
    ContractSetup,
    /// Per-timestep block publish by a bridge (span; key = block,
    /// arg = timestep).
    Publish,
    /// Distributed queue op (instant; arg = 0 push / 1 pop).
    QueueOp,
    /// One framed transport message sent (instant; arg = serialized
    /// bytes-on-the-wire). Only the Framed/SimNet backends emit these.
    WireSend,
    /// The liveness sweep declared a peer dead (instant; arg = worker id,
    /// or `u64::MAX - client id` for client peers).
    PeerLost,
    /// A task was re-queued after a peer loss (instant; key = task,
    /// arg = retry attempt number).
    Resubmit,
    /// Object store evicted an entry to disk under its memory budget
    /// (span; key = entry, arg = payload bytes written).
    StoreSpill,
    /// Object store restored a spilled entry into memory on access
    /// (span; key = entry, arg = payload bytes read).
    StoreRestore,
    /// Object store get of an absent key (instant; key).
    StoreMiss,
    /// A data server answered a peer/client `Fetch` of a store entry
    /// (instant; key = entry, arg = payload bytes served).
    StoreFetch,
    /// A consumer resolved a proxy handle via a data-lane fetch to its
    /// holder (span; key = entry, arg = payload bytes received).
    ProxyFetch,
    /// A queued assignment was re-pointed from a loaded victim to an idle
    /// thief (instant; key = task, arg = thief worker id).
    Steal,
    /// The online anomaly detector flagged a task execution as a straggler —
    /// its exec duration exceeded k× the robust per-op baseline (instant;
    /// key = task, arg = exec duration in nanoseconds).
    Straggler,
}

impl EventKind {
    /// Stable name (Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Submit => "submit",
            EventKind::Optimize => "optimize",
            EventKind::RegisterExternal => "register_external",
            EventKind::TaskReady => "ready",
            EventKind::Assign => "assign",
            EventKind::AssignPass => "assign_pass",
            EventKind::Ingest => "ingest",
            EventKind::GatherDep => "gather_dep",
            EventKind::GatherBatch => "gather",
            EventKind::Exec => "exec",
            EventKind::Report => "report",
            EventKind::GatherToClient => "gather_to_client",
            EventKind::Scatter => "scatter",
            EventKind::ScatterExternal => "scatter_external",
            EventKind::ContractSetup => "contract_setup",
            EventKind::Publish => "publish",
            EventKind::QueueOp => "queue_op",
            EventKind::WireSend => "wire_send",
            EventKind::PeerLost => "peer_lost",
            EventKind::Resubmit => "resubmit",
            EventKind::StoreSpill => "store_spill",
            EventKind::StoreRestore => "store_restore",
            EventKind::StoreMiss => "store_miss",
            EventKind::StoreFetch => "store_fetch",
            EventKind::ProxyFetch => "proxy_fetch",
            EventKind::Steal => "steal",
            EventKind::Straggler => "straggler",
        }
    }

    /// Name of the kind-specific `arg` payload (Chrome `args` field).
    fn arg_name(self) -> &'static str {
        match self {
            EventKind::Submit => "tasks",
            EventKind::Optimize => "tasks_out",
            EventKind::RegisterExternal => "keys",
            EventKind::TaskReady => "seq",
            EventKind::Assign | EventKind::Exec | EventKind::Report | EventKind::Steal => "worker",
            EventKind::AssignPass => "assigned",
            EventKind::Ingest => "messages",
            EventKind::GatherDep => "peer",
            EventKind::GatherBatch => "remote_deps",
            EventKind::GatherToClient | EventKind::Scatter | EventKind::ScatterExternal => "bytes",
            EventKind::ContractSetup => "rank",
            EventKind::Publish => "timestep",
            EventKind::QueueOp => "pop",
            EventKind::WireSend => "bytes",
            EventKind::PeerLost => "peer",
            EventKind::Resubmit => "retry",
            EventKind::StoreSpill
            | EventKind::StoreRestore
            | EventKind::StoreFetch
            | EventKind::ProxyFetch => "bytes",
            EventKind::StoreMiss => "seq",
            EventKind::Straggler => "dur_ns",
        }
    }
}

/// One recorded event. `dur_ns == 0` marks an instant.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Nanoseconds since the recorder epoch (span start for spans).
    pub t_ns: u64,
    /// Span duration (0 for instants).
    pub dur_ns: u64,
    /// The task/block key, when the event concerns one.
    pub key: Option<Key>,
    /// Kind-specific payload (see [`EventKind::arg_name`]).
    pub arg: u64,
}

// ---- lock-free bounded ring ------------------------------------------------

struct RingSlot {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<TraceEvent>>,
}

/// Bounded MPMC ring (Vyukov): producers are the owning actor thread,
/// consumers are snapshot drains — push and pop never block, a push into a
/// full ring fails (the event is dropped and counted).
pub struct EventRing {
    mask: usize,
    slots: Box<[RingSlot]>,
    /// Next push position (monotonically increasing, wrapped by `mask`).
    tail: AtomicUsize,
    /// Next pop position.
    head: AtomicUsize,
    /// Events discarded because the ring was full at push time.
    dropped: AtomicU64,
    /// Optional display label for this actor's trace row (e.g. a bridge
    /// rank); set off the hot path, read only at export.
    label: Mutex<Option<String>>,
}

// The UnsafeCell contents are only touched under the per-slot sequence
// protocol below, which establishes exclusive access.
unsafe impl Send for EventRing {}
unsafe impl Sync for EventRing {}

impl EventRing {
    fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots: Vec<RingSlot> = (0..cap)
            .map(|i| RingSlot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        EventRing {
            mask: cap - 1,
            slots: slots.into_boxed_slice(),
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            label: Mutex::new(None),
        }
    }

    /// Push one event; `false` (and a drop count) when full.
    pub fn push(&self, event: TraceEvent) -> bool {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match (seq as isize).wrapping_sub(tail as isize) {
                0 => {
                    match self.tail.compare_exchange_weak(
                        tail,
                        tail.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // We own the slot: write, then publish via seq.
                            unsafe { (*slot.value.get()).write(event) };
                            slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                            return true;
                        }
                        Err(t) => tail = t,
                    }
                }
                d if d < 0 => {
                    // Slot still holds an unconsumed event: ring is full.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                _ => tail = self.tail.load(Ordering::Relaxed),
            }
        }
    }

    /// Pop the oldest event, if any.
    pub fn pop(&self) -> Option<TraceEvent> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match (seq as isize).wrapping_sub(head.wrapping_add(1) as isize) {
                0 => {
                    match self.head.compare_exchange_weak(
                        head,
                        head.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let event = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.seq
                                .store(head.wrapping_add(self.mask + 1), Ordering::Release);
                            return Some(event);
                        }
                        Err(h) => head = h,
                    }
                }
                d if d < 0 => return None, // empty
                _ => head = self.head.load(Ordering::Relaxed),
            }
        }
    }

    /// Drain everything currently recorded.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        while let Some(e) = self.pop() {
            out.push(e);
        }
        out
    }

    /// Events lost to a full ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for EventRing {
    fn drop(&mut self) {
        // Release any events still sitting in slots (they own heap keys).
        while self.pop().is_some() {}
    }
}

// ---- recorder & handles ----------------------------------------------------

struct Registered {
    actor: TraceActor,
    ring: Arc<EventRing>,
}

struct TraceShared {
    epoch: Instant,
    capacity: usize,
    rings: Mutex<Vec<Registered>>,
}

/// The cluster-wide trace recorder. Disabled recorders are inert and free.
pub struct TraceRecorder {
    shared: Option<Arc<TraceShared>>,
}

impl TraceRecorder {
    /// Build from config. `enabled: false` yields an inert recorder.
    pub fn new(config: TraceConfig) -> Self {
        TraceRecorder {
            shared: config.enabled.then(|| {
                Arc::new(TraceShared {
                    epoch: Instant::now(),
                    capacity: config.capacity_per_actor,
                    rings: Mutex::new(Vec::new()),
                })
            }),
        }
    }

    /// An always-disabled recorder.
    pub fn disabled() -> Self {
        TraceRecorder { shared: None }
    }

    /// Is event recording on?
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Register an actor; returns its recording handle (empty when the
    /// recorder is disabled). Called at actor construction, never on the hot
    /// path.
    pub fn register(&self, actor: TraceActor) -> TraceHandle {
        let Some(shared) = &self.shared else {
            return TraceHandle { inner: None };
        };
        let ring = Arc::new(EventRing::new(shared.capacity));
        shared.rings.lock().push(Registered {
            actor,
            ring: Arc::clone(&ring),
        });
        TraceHandle {
            inner: Some(HandleInner {
                epoch: shared.epoch,
                ring,
            }),
        }
    }

    /// Total events lost to full rings across every registered actor, without
    /// draining anything. Snapshots surface this so a clipped trace is never
    /// mistaken for a complete one.
    pub fn dropped_total(&self) -> u64 {
        let Some(shared) = &self.shared else {
            return 0;
        };
        shared.rings.lock().iter().map(|r| r.ring.dropped()).sum()
    }

    /// Drain every ring into a [`TraceLog`] snapshot. Events recorded after
    /// the drain belong to the next `collect` call.
    pub fn collect(&self) -> TraceLog {
        let mut tracks = Vec::new();
        if let Some(shared) = &self.shared {
            for reg in shared.rings.lock().iter() {
                let mut events = reg.ring.drain();
                events.sort_by_key(|e| e.t_ns);
                tracks.push(TraceTrack {
                    actor: reg.actor,
                    label: reg.ring.label.lock().clone(),
                    dropped: reg.ring.dropped(),
                    events,
                });
            }
        }
        TraceLog { tracks }
    }
}

struct HandleInner {
    epoch: Instant,
    ring: Arc<EventRing>,
}

/// Per-actor recording handle. Cloning shares the ring.
pub struct TraceHandle {
    inner: Option<HandleInner>,
}

impl Clone for TraceHandle {
    fn clone(&self) -> Self {
        TraceHandle {
            inner: self.inner.as_ref().map(|i| HandleInner {
                epoch: i.epoch,
                ring: Arc::clone(&i.ring),
            }),
        }
    }
}

impl TraceHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        TraceHandle { inner: None }
    }

    /// Is this handle recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Name this actor's trace row (e.g. `bridge-rank0`). No-op when
    /// disabled; cold path.
    pub fn set_label(&self, label: impl Into<String>) {
        if let Some(inner) = &self.inner {
            *inner.ring.label.lock() = Some(label.into());
        }
    }

    /// Span start marker: reads the clock only when recording is on, so the
    /// disabled hot path never touches the clock.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Record a span opened by [`TraceHandle::start`]. When `started` is
    /// `None` (disabled recorder) this is a single branch.
    #[inline]
    pub fn span(&self, kind: EventKind, started: Option<Instant>, key: Option<&Key>, arg: u64) {
        let (Some(inner), Some(t0)) = (&self.inner, started) else {
            return;
        };
        let dur_ns = t0.elapsed().as_nanos() as u64;
        let t_ns = t0.saturating_duration_since(inner.epoch).as_nanos() as u64;
        inner.ring.push(TraceEvent {
            kind,
            t_ns,
            dur_ns,
            key: key.cloned(),
            arg,
        });
    }

    /// Record an instant event. Single branch when disabled.
    #[inline]
    pub fn instant(&self, kind: EventKind, key: Option<&Key>, arg: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let t_ns = inner.epoch.elapsed().as_nanos() as u64;
        inner.ring.push(TraceEvent {
            kind,
            t_ns,
            dur_ns: 0,
            key: key.cloned(),
            arg,
        });
    }
}

// ---- collected log, Chrome export, phase report ----------------------------

/// All events of one actor, drained at snapshot time.
pub struct TraceTrack {
    /// Who recorded these events.
    pub actor: TraceActor,
    /// Optional display label (bridges name themselves).
    pub label: Option<String>,
    /// Events lost to a full ring.
    pub dropped: u64,
    /// Events sorted by start time.
    pub events: Vec<TraceEvent>,
}

impl TraceTrack {
    fn display_name(&self) -> String {
        if let Some(label) = &self.label {
            return label.clone();
        }
        match self.actor {
            TraceActor::Scheduler => "scheduler".into(),
            TraceActor::WorkerSlot { worker, slot } => format!("w{worker}/slot{slot}"),
            TraceActor::Client { id } => format!("client-{id}"),
            TraceActor::Transport => "transport".into(),
            TraceActor::Store { worker } => format!("w{worker}/store"),
        }
    }
}

/// Chrome process ids: one process per actor family, so Perfetto groups the
/// scheduler, the worker slots, and the clients/bridges into three lanes.
const PID_SCHEDULER: u64 = 1;
const PID_WORKERS: u64 = 2;
const PID_CLIENTS: u64 = 3;
const PID_TRANSPORT: u64 = 4;

fn chrome_ids(actor: TraceActor) -> (u64, u64) {
    match actor {
        TraceActor::Scheduler => (PID_SCHEDULER, 0),
        TraceActor::WorkerSlot { worker, slot } => {
            (PID_WORKERS, ((worker as u64) << 8) | slot as u64)
        }
        TraceActor::Client { id } => (PID_CLIENTS, id as u64),
        TraceActor::Transport => (PID_TRANSPORT, 0),
        // Store tracks live in the workers lane, below every slot of their
        // worker (slot tids are small; 0xFF keeps the row distinct).
        TraceActor::Store { worker } => (PID_WORKERS, ((worker as u64) << 8) | 0xFF),
    }
}

/// A drained trace snapshot.
pub struct TraceLog {
    /// One track per registered actor.
    pub tracks: Vec<TraceTrack>,
}

impl TraceLog {
    /// Total events across all tracks.
    pub fn n_events(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Events of one kind across all tracks.
    pub fn events_of(&self, kind: EventKind) -> impl Iterator<Item = (&TraceTrack, &TraceEvent)> {
        self.tracks.iter().flat_map(move |t| {
            t.events
                .iter()
                .filter(move |e| e.kind == kind)
                .map(move |e| (t, e))
        })
    }

    /// Export as a Chrome trace-event document (load the written file in
    /// Perfetto or `chrome://tracing`). Timestamps are microseconds.
    pub fn to_chrome_json(&self) -> Json {
        let mut events: Vec<Json> = Vec::with_capacity(self.n_events() + 2 * self.tracks.len() + 3);
        for (pid, name) in [
            (PID_SCHEDULER, "scheduler"),
            (PID_WORKERS, "workers"),
            (PID_CLIENTS, "clients+bridges"),
        ] {
            events.push(
                Json::obj()
                    .set("ph", "M")
                    .set("name", "process_name")
                    .set("pid", pid)
                    .set("tid", 0u64)
                    .set("args", Json::obj().set("name", name)),
            );
        }
        for track in &self.tracks {
            let (pid, tid) = chrome_ids(track.actor);
            events.push(
                Json::obj()
                    .set("ph", "M")
                    .set("name", "thread_name")
                    .set("pid", pid)
                    .set("tid", tid)
                    .set("args", Json::obj().set("name", track.display_name())),
            );
            for e in &track.events {
                let mut args = Json::obj();
                if let Some(key) = &e.key {
                    args = args.set("key", key.as_str());
                }
                args = args.set(e.kind.arg_name(), e.arg);
                if track.dropped > 0 {
                    // Stamp once would do, but per-event is simpler to read.
                    args = args.set("ring_dropped", track.dropped);
                }
                let mut ev = Json::obj()
                    .set("name", e.kind.name())
                    .set("cat", "dtask")
                    .set("pid", pid)
                    .set("tid", tid)
                    .set("ts", e.t_ns as f64 / 1e3);
                if e.dur_ns == 0 {
                    ev = ev.set("ph", "i").set("s", "t");
                } else {
                    ev = ev.set("ph", "X").set("dur", e.dur_ns as f64 / 1e3);
                }
                events.push(ev.set("args", args));
            }
        }
        Json::obj()
            .set("traceEvents", Json::Arr(events))
            .set("displayTimeUnit", "ms")
    }

    /// Write the Chrome trace to a file (pretty JSON).
    pub fn write_chrome(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json().to_string_pretty())
    }

    /// Attribute the traced makespan to phases (see [`PhaseReport`]). The
    /// phases partition the makespan exactly: every nanosecond between the
    /// first and last event is attributed to exactly one phase, by priority
    /// compute > gather > scheduler > contract setup when spans overlap.
    pub fn phase_report(&self) -> PhaseReport {
        #[derive(Clone, Copy, PartialEq)]
        enum Cat {
            Compute = 0,
            Gather = 1,
            Sched = 2,
            Contract = 3,
        }
        let cat_of = |kind: EventKind| -> Option<Cat> {
            match kind {
                EventKind::Exec => Some(Cat::Compute),
                EventKind::GatherDep | EventKind::GatherBatch | EventKind::GatherToClient => {
                    Some(Cat::Gather)
                }
                EventKind::AssignPass | EventKind::Ingest | EventKind::Optimize => Some(Cat::Sched),
                EventKind::ContractSetup => Some(Cat::Contract),
                _ => None,
            }
        };

        let dropped: u64 = self.tracks.iter().map(|t| t.dropped).sum();
        let mut t_min = u64::MAX;
        let mut t_max = 0u64;
        let mut ext_deadline = 0u64; // last external block arrival
        let mut deltas: Vec<(u64, usize, i64)> = Vec::new();
        for track in &self.tracks {
            for e in &track.events {
                let end = e.t_ns + e.dur_ns;
                t_min = t_min.min(e.t_ns);
                t_max = t_max.max(end);
                if matches!(e.kind, EventKind::ScatterExternal | EventKind::Publish) {
                    ext_deadline = ext_deadline.max(end);
                }
                if let Some(cat) = cat_of(e.kind) {
                    if e.dur_ns > 0 {
                        deltas.push((e.t_ns, cat as usize, 1));
                        deltas.push((end, cat as usize, -1));
                    }
                }
            }
        }
        if t_min > t_max {
            // Empty log — but dropped events still deserve the caveat.
            return PhaseReport {
                dropped,
                ..PhaseReport::default()
            };
        }
        // Segment boundaries: every span edge plus the external deadline, so
        // no segment straddles the external-wait cutoff.
        let mut points: Vec<u64> = deltas.iter().map(|&(t, _, _)| t).collect();
        points.push(t_min);
        points.push(t_max);
        if ext_deadline > 0 {
            points.push(ext_deadline);
        }
        points.sort_unstable();
        points.dedup();
        deltas.sort_unstable_by_key(|&(t, _, _)| t);

        let mut report = PhaseReport {
            makespan_ns: t_max - t_min,
            dropped,
            ..PhaseReport::default()
        };
        let mut active = [0i64; 4];
        let mut di = 0usize;
        for w in points.windows(2) {
            let (a, b) = (w[0], w[1]);
            while di < deltas.len() && deltas[di].0 <= a {
                active[deltas[di].1] += deltas[di].2;
                di += 1;
            }
            let len = b - a;
            if active[Cat::Compute as usize] > 0 {
                report.compute_ns += len;
            } else if active[Cat::Gather as usize] > 0 {
                report.gather_ns += len;
            } else if active[Cat::Sched as usize] > 0 {
                report.scheduler_ns += len;
            } else if active[Cat::Contract as usize] > 0 {
                report.contract_setup_ns += len;
            } else if b <= ext_deadline {
                report.external_wait_ns += len;
            } else {
                report.other_ns += len;
            }
        }
        report
    }
}

/// Phase attribution of the traced makespan. The six phase fields are a
/// partition: they sum to [`PhaseReport::makespan_ns`] exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseReport {
    /// First event start → last event end.
    pub makespan_ns: u64,
    /// Contract-setup spans (descriptor/contract variable waits) with no
    /// higher-priority work running.
    pub contract_setup_ns: u64,
    /// Idle time before the last external block arrived — waiting on the
    /// external environment.
    pub external_wait_ns: u64,
    /// Dependency gathers (worker peer fetches + client result gathers).
    pub gather_ns: u64,
    /// Task computation (op / fused-chain execution).
    pub compute_ns: u64,
    /// Scheduler occupancy (placement passes, inbox bursts, graph
    /// optimization) not overlapped by worker activity.
    pub scheduler_ns: u64,
    /// Idle after the last external block (e.g. shutdown straggle).
    pub other_ns: u64,
    /// Events lost to full rings across the drained tracks. When nonzero the
    /// phase attribution under-counts whatever the dropped spans covered.
    pub dropped: u64,
}

impl PhaseReport {
    /// Sum of the six phase fields (equals `makespan_ns` by construction).
    pub fn phases_total_ns(&self) -> u64 {
        self.contract_setup_ns
            + self.external_wait_ns
            + self.gather_ns
            + self.compute_ns
            + self.scheduler_ns
            + self.other_ns
    }

    /// Render the per-phase breakdown as an aligned text table.
    pub fn to_table(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let pct = |ns: u64| {
            if self.makespan_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / self.makespan_ns as f64
            }
        };
        let mut out = String::new();
        out.push_str(&format!(
            "critical-path phase report (makespan {:.3} ms)\n",
            ms(self.makespan_ns)
        ));
        for (name, ns) in [
            ("contract setup", self.contract_setup_ns),
            ("external-data wait", self.external_wait_ns),
            ("gather", self.gather_ns),
            ("compute", self.compute_ns),
            ("scheduler occupancy", self.scheduler_ns),
            ("other idle", self.other_ns),
        ] {
            out.push_str(&format!(
                "  {name:<20} {:>10.3} ms  {:>5.1}%\n",
                ms(ns),
                pct(ns)
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "  CAVEAT: {} trace event(s) dropped by full rings — phases under-counted\n",
                self.dropped
            ));
        }
        out
    }

    /// JSON rendering (same schema as the snapshot documents).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("makespan_ns", self.makespan_ns)
            .set("contract_setup_ns", self.contract_setup_ns)
            .set("external_wait_ns", self.external_wait_ns)
            .set("gather_ns", self.gather_ns)
            .set("compute_ns", self.compute_ns)
            .set("scheduler_ns", self.scheduler_ns)
            .set("other_ns", self.other_ns)
            .set("dropped", self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, t_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            kind,
            t_ns,
            dur_ns,
            key: None,
            arg: 0,
        }
    }

    #[test]
    fn ring_push_pop_fifo_and_wraparound() {
        let ring = EventRing::new(4);
        for round in 0..3u64 {
            for i in 0..4u64 {
                assert!(ring.push(ev(EventKind::Exec, round * 10 + i, 0)));
            }
            assert!(!ring.push(ev(EventKind::Exec, 99, 0)), "full ring drops");
            for i in 0..4u64 {
                assert_eq!(ring.pop().unwrap().t_ns, round * 10 + i);
            }
            assert!(ring.pop().is_none());
        }
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn ring_concurrent_push_drain() {
        let ring = Arc::new(EventRing::new(1 << 10));
        let writer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    ring.push(ev(EventKind::Exec, i, 1));
                }
            })
        };
        // Drain concurrently while the writer runs, then settle: every event
        // was either popped or counted as dropped, never both, never lost.
        let mut seen = 0usize;
        while !writer.is_finished() {
            seen += ring.drain().len();
            std::thread::yield_now();
        }
        writer.join().unwrap();
        seen += ring.drain().len();
        let total = seen as u64 + ring.dropped();
        assert_eq!(total, 5_000);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let recorder = TraceRecorder::new(TraceConfig::default());
        assert!(!recorder.is_enabled());
        let handle = recorder.register(TraceActor::Scheduler);
        assert!(!handle.is_enabled());
        assert!(handle.start().is_none(), "no clock read when disabled");
        handle.instant(EventKind::Submit, None, 1);
        handle.span(EventKind::Exec, None, None, 0);
        assert_eq!(recorder.collect().n_events(), 0);
    }

    #[test]
    fn enabled_recorder_round_trips_events() {
        let recorder = TraceRecorder::new(TraceConfig::enabled());
        let sched = recorder.register(TraceActor::Scheduler);
        let slot = recorder.register(TraceActor::WorkerSlot { worker: 1, slot: 0 });
        let key = Key::new("k");
        sched.instant(EventKind::TaskReady, Some(&key), 0);
        let t0 = slot.start();
        assert!(t0.is_some());
        slot.span(EventKind::Exec, t0, Some(&key), 1);
        let log = recorder.collect();
        assert_eq!(log.n_events(), 2);
        let execs: Vec<_> = log.events_of(EventKind::Exec).collect();
        assert_eq!(execs.len(), 1);
        assert_eq!(execs[0].1.key.as_ref().unwrap().as_str(), "k");
        // Second collect sees only new events.
        assert_eq!(recorder.collect().n_events(), 0);
    }

    #[test]
    fn chrome_export_structure() {
        let recorder = TraceRecorder::new(TraceConfig::enabled());
        let h = recorder.register(TraceActor::WorkerSlot { worker: 0, slot: 2 });
        h.set_label("bridge-rank0");
        let t0 = h.start();
        h.span(EventKind::Exec, t0, Some(&Key::new("task-1")), 0);
        let doc = recorder.collect().to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 3 process_name + 1 thread_name + 1 span.
        assert_eq!(events.len(), 5);
        let span = events.last().unwrap();
        assert_eq!(span.get("name"), Some(&Json::Str("exec".into())));
        assert_eq!(span.get("ph"), Some(&Json::Str("X".into())));
        assert!(span.get("dur").is_some());
        let meta = &events[3];
        assert_eq!(meta.get("name"), Some(&Json::Str("thread_name".into())));
        assert_eq!(
            meta.get("args").and_then(|a| a.get("name")),
            Some(&Json::Str("bridge-rank0".into()))
        );
    }

    #[test]
    fn phase_report_partitions_makespan() {
        // Hand-built timeline: contract [0,10), ext wait [10,20) (uncovered,
        // publish ends at 20), gather [20,30), exec [30,50) overlapping a
        // sched pass [45,55), idle [55,60) after a final report at 60.
        let log = TraceLog {
            tracks: vec![TraceTrack {
                actor: TraceActor::Scheduler,
                label: None,
                dropped: 0,
                events: vec![
                    ev(EventKind::ContractSetup, 0, 10),
                    ev(EventKind::Publish, 18, 2),
                    ev(EventKind::GatherBatch, 20, 10),
                    ev(EventKind::Exec, 30, 20),
                    ev(EventKind::AssignPass, 45, 10),
                    ev(EventKind::Report, 60, 0),
                ],
            }],
        };
        let r = log.phase_report();
        assert_eq!(r.makespan_ns, 60);
        assert_eq!(r.phases_total_ns(), r.makespan_ns, "exact partition");
        assert_eq!(r.contract_setup_ns, 10);
        // Uncovered [10,18) is before the publish end (20) → external wait;
        // the publish span itself is uncovered-by-category but <= deadline.
        assert_eq!(r.external_wait_ns, 10);
        assert_eq!(r.gather_ns, 10);
        assert_eq!(r.compute_ns, 20);
        assert_eq!(r.scheduler_ns, 5, "only the part not overlapped by exec");
        assert_eq!(r.other_ns, 5);
        let table = r.to_table();
        assert!(table.contains("external-data wait"));
    }

    #[test]
    fn empty_log_reports_zero_makespan() {
        let log = TraceLog { tracks: vec![] };
        let r = log.phase_report();
        assert_eq!(r.makespan_ns, 0);
        assert_eq!(r.phases_total_ns(), 0);
    }

    #[test]
    fn dropped_total_counts_without_draining() {
        let recorder = TraceRecorder::new(TraceConfig {
            enabled: true,
            capacity_per_actor: 2,
        });
        let h = recorder.register(TraceActor::Scheduler);
        for i in 0..5u64 {
            h.instant(EventKind::Submit, None, i);
        }
        assert_eq!(recorder.dropped_total(), 3);
        // Non-draining: the ring still holds its 2 events.
        let log = recorder.collect();
        assert_eq!(log.n_events(), 2);
        assert_eq!(log.phase_report().dropped, 3);
        assert!(TraceRecorder::disabled().dropped_total() == 0);
    }

    #[test]
    fn phase_table_warns_on_dropped_events() {
        let log_with = |dropped: u64| TraceLog {
            tracks: vec![TraceTrack {
                actor: TraceActor::Scheduler,
                label: None,
                dropped,
                events: vec![ev(EventKind::Exec, 0, 10)],
            }],
        };
        assert!(!log_with(0).phase_report().to_table().contains("CAVEAT"));
        let report = log_with(7).phase_report();
        assert_eq!(report.dropped, 7);
        let table = report.to_table();
        assert!(table.contains("CAVEAT"));
        assert!(table.contains('7'));
    }
}
