//! Task specifications and the operation registry.
//!
//! A [`TaskSpec`] is the serializable description of a task: a target key, an
//! op name resolved against the [`OpRegistry`], parameters, and dependency
//! keys. This is the moral equivalent of a Dask graph entry
//! `key: (func, *args)`; keeping functions behind a registry (rather than
//! shipping closures) mirrors the constraint that every worker must be able
//! to deserialize the function.

use crate::datum::Datum;
use crate::key::Key;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// The function type behind an op: `(params, dep values in dependency order)
/// -> result or error text`.
pub type OpFn = dyn Fn(&Datum, &[Datum]) -> Result<Datum, String> + Send + Sync;

/// Where one input of a fused stage comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FusedInput {
    /// Index into the fused spec's `deps` (an outside-the-chain dependency).
    Dep(usize),
    /// Result of an earlier stage in the same fused spec.
    Stage(usize),
}

/// One original task folded into a fused chain.
#[derive(Clone)]
pub struct FusedStage {
    /// The original task key (kept for error attribution).
    pub key: Key,
    /// Registered op name.
    pub op: String,
    /// Op parameters.
    pub params: Datum,
    /// Where each argument comes from, in argument order.
    pub inputs: Vec<FusedInput>,
}

/// What a task computes: a single registered op, or a fused chain of ops
/// produced by the graph optimizer (`dtask::optimize`). A fused chain runs
/// inline on one executor slot; only the final stage's result is stored,
/// under the spec's key.
#[derive(Clone)]
pub enum Value {
    /// One registered op call.
    Op {
        /// Registered op name.
        op: String,
        /// Op parameters (available to the function besides dep values).
        params: Datum,
    },
    /// A linear chain of ops collapsed into one task. The last stage's key
    /// equals the spec key.
    Fused {
        /// Stages in execution order.
        stages: Vec<FusedStage>,
    },
}

/// Description of one task in a graph.
#[derive(Clone)]
pub struct TaskSpec {
    /// Key under which the result is stored.
    pub key: Key,
    /// What to compute.
    pub value: Value,
    /// Keys of tasks whose outputs this task consumes, in argument order
    /// (for fused specs: the deduplicated union of outside-chain deps).
    pub deps: Vec<Key>,
}

impl std::fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.value {
            Value::Op { op, .. } => write!(
                f,
                "TaskSpec({} = {}({} deps))",
                self.key,
                op,
                self.deps.len()
            ),
            Value::Fused { stages } => write!(
                f,
                "TaskSpec({} = fused[{}]({} deps))",
                self.key,
                stages
                    .iter()
                    .map(|s| s.op.as_str())
                    .collect::<Vec<_>>()
                    .join("|"),
                self.deps.len()
            ),
        }
    }
}

impl TaskSpec {
    /// Convenience constructor for a single-op task.
    pub fn new(key: impl Into<Key>, op: impl Into<String>, params: Datum, deps: Vec<Key>) -> Self {
        TaskSpec {
            key: key.into(),
            value: Value::Op {
                op: op.into(),
                params,
            },
            deps,
        }
    }

    /// Constructor for a fused chain (used by the optimizer).
    pub fn fused(key: impl Into<Key>, stages: Vec<FusedStage>, deps: Vec<Key>) -> Self {
        TaskSpec {
            key: key.into(),
            value: Value::Fused { stages },
            deps,
        }
    }

    /// Number of original tasks this spec stands for (1 unless fused).
    pub fn n_stages(&self) -> usize {
        match &self.value {
            Value::Op { .. } => 1,
            Value::Fused { stages } => stages.len(),
        }
    }
}

/// Registry of named operations shared by all workers in a cluster.
///
/// Ships with a small standard library of ops that `darray`/`dml` build on;
/// applications register their own with [`OpRegistry::register`].
#[derive(Clone, Default)]
pub struct OpRegistry {
    ops: Arc<RwLock<HashMap<String, Arc<OpFn>>>>,
}

impl OpRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        OpRegistry::default()
    }

    /// Registry preloaded with the standard ops (`identity`, `const`,
    /// `list`, `sum_scalars`).
    pub fn with_std_ops() -> Self {
        let reg = OpRegistry::new();
        reg.register("identity", |_p, deps| {
            deps.first()
                .cloned()
                .ok_or_else(|| "identity needs one dependency".to_string())
        });
        reg.register("const", |p, _deps| Ok(p.clone()));
        reg.register("list", |_p, deps| Ok(Datum::List(deps.to_vec())));
        reg.register("sum_scalars", |_p, deps| {
            let mut acc = 0.0;
            for d in deps {
                acc += d
                    .as_f64()
                    .ok_or_else(|| "sum_scalars: non-numeric dependency".to_string())?;
            }
            Ok(Datum::F64(acc))
        });
        reg
    }

    /// Register (or replace) an op.
    pub fn register<F>(&self, name: &str, f: F)
    where
        F: Fn(&Datum, &[Datum]) -> Result<Datum, String> + Send + Sync + 'static,
    {
        self.ops.write().insert(name.to_string(), Arc::new(f));
    }

    /// Look up an op.
    pub fn get(&self, name: &str) -> Option<Arc<OpFn>> {
        self.ops.read().get(name).cloned()
    }

    /// Registered op names (sorted, for diagnostics).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.ops.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_ops_behave() {
        let reg = OpRegistry::with_std_ops();
        let id = reg.get("identity").unwrap();
        assert!(matches!(
            id(&Datum::Null, &[Datum::I64(7)]),
            Ok(Datum::I64(7))
        ));
        assert!(id(&Datum::Null, &[]).is_err());

        let c = reg.get("const").unwrap();
        assert!(matches!(c(&Datum::F64(1.5), &[]), Ok(Datum::F64(v)) if v == 1.5));

        let sum = reg.get("sum_scalars").unwrap();
        let r = sum(&Datum::Null, &[Datum::F64(1.0), Datum::I64(2)]).unwrap();
        assert_eq!(r.as_f64(), Some(3.0));
        assert!(sum(&Datum::Null, &[Datum::Str("x".into())]).is_err());
    }

    #[test]
    fn register_and_replace() {
        let reg = OpRegistry::new();
        assert!(reg.get("f").is_none());
        reg.register("f", |_, _| Ok(Datum::I64(1)));
        assert_eq!(
            reg.get("f").unwrap()(&Datum::Null, &[]).unwrap().as_i64(),
            Some(1)
        );
        reg.register("f", |_, _| Ok(Datum::I64(2)));
        assert_eq!(
            reg.get("f").unwrap()(&Datum::Null, &[]).unwrap().as_i64(),
            Some(2)
        );
    }

    #[test]
    fn registry_is_shared_between_clones() {
        let reg = OpRegistry::new();
        let clone = reg.clone();
        reg.register("late", |_, _| Ok(Datum::Null));
        assert!(clone.get("late").is_some());
        assert_eq!(clone.names(), vec!["late".to_string()]);
    }
}
