//! Message and byte accounting.
//!
//! The paper's scalability argument is a *message-count* argument: DEISA1
//! sends `2 · timesteps · ranks + heartbeats` metadata messages to the
//! centralized scheduler, the external-task version only `1 + ranks` at
//! startup. These counters make those formulas measurable in the real
//! runtime (integration tests assert them) and calibrate the DES models.

use crate::optimize::OptimizeReport;
use std::sync::atomic::{AtomicU64, Ordering};

/// Classes of messages arriving at the scheduler, plus data-plane traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgClass {
    /// `SubmitGraph` messages.
    GraphSubmit,
    /// Individual task specs received across all submissions.
    TaskSubmitted,
    /// `RegisterExternal` messages.
    RegisterExternal,
    /// `UpdateData` messages from classic scatter (metadata-bearing).
    UpdateData,
    /// `UpdateData` messages in external mode (§2.2): completion
    /// notifications of external tasks — the paper does not count these as
    /// metadata.
    UpdateDataExternal,
    /// `TaskFinished`/`TaskErred` worker reports.
    TaskReport,
    /// `WantResult` requests.
    WantResult,
    /// Variable operations (set/get/del).
    Variable,
    /// Queue operations (push/pop).
    Queue,
    /// Heartbeats.
    Heartbeat,
    /// Scatter payload messages client→worker (data plane).
    ScatterData,
    /// Gather payload messages worker→client (data plane).
    GatherData,
    /// Peer dependency fetches worker→worker (data plane).
    PeerFetch,
    /// `AddReplica` reports from workers that cached remote blocks.
    AddReplica,
}

const N_CLASSES: usize = 14;

fn idx(class: MsgClass) -> usize {
    match class {
        MsgClass::GraphSubmit => 0,
        MsgClass::TaskSubmitted => 1,
        MsgClass::RegisterExternal => 2,
        MsgClass::UpdateData => 3,
        MsgClass::UpdateDataExternal => 12,
        MsgClass::TaskReport => 4,
        MsgClass::WantResult => 5,
        MsgClass::Variable => 6,
        MsgClass::Queue => 7,
        MsgClass::Heartbeat => 8,
        MsgClass::ScatterData => 9,
        MsgClass::GatherData => 10,
        MsgClass::PeerFetch => 11,
        MsgClass::AddReplica => 13,
    }
}

/// Cluster-wide counters, shared via `Arc` by every actor.
#[derive(Debug, Default)]
pub struct SchedulerStats {
    counts: [AtomicU64; N_CLASSES],
    bytes: [AtomicU64; N_CLASSES],
    /// Dependency-gather batches that needed ≥1 remote fetch.
    gather_batches: AtomicU64,
    /// Remote dependencies fetched across all gathers.
    gather_deps: AtomicU64,
    /// Wall time spent waiting on remote dependency gathers.
    gather_wait_ns: AtomicU64,
    /// Wall time executor slots spent running tasks (gather + compute).
    exec_busy_ns: AtomicU64,
    /// Wall time executor slots spent blocked on an empty inbox.
    exec_idle_ns: AtomicU64,
    /// Tasks in client-submitted graphs before optimization.
    optimize_tasks_in: AtomicU64,
    /// Specs actually sent to the scheduler after cull + fuse.
    optimize_tasks_out: AtomicU64,
    /// Tasks dropped by the cull pass.
    optimize_culled: AtomicU64,
    /// Fused chains produced.
    fused_chains: AtomicU64,
    /// Original tasks absorbed into fused chains.
    fused_stages: AtomicU64,
    /// Fused-chain length histogram, bucketed by [`size_bucket`].
    fused_chain_hist: [AtomicU64; N_SIZE_BUCKETS],
    /// Scheduler inbox bursts drained.
    ingest_bursts: AtomicU64,
    /// Messages absorbed across all bursts.
    ingest_msgs: AtomicU64,
    /// Burst-size histogram, bucketed by [`size_bucket`].
    burst_hist: [AtomicU64; N_SIZE_BUCKETS],
    /// Placement passes run (once per burst in batched mode).
    assign_passes: AtomicU64,
    /// Wall time spent inside placement passes.
    assign_pass_ns: AtomicU64,
    /// Tasks assigned to workers.
    assign_tasks: AtomicU64,
    /// `Execute`/`ExecuteBatch` messages sent to workers.
    assign_messages: AtomicU64,
}

/// Histogram bucket count shared by the fused-chain and burst histograms.
pub const N_SIZE_BUCKETS: usize = 6;

/// Bucket a size into `[≤1, 2, 3–4, 5–8, 9–16, >16]`.
pub fn size_bucket(n: u64) -> usize {
    match n {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        _ => 5,
    }
}

/// Human-readable labels for [`size_bucket`] (reports and bench output).
pub const SIZE_BUCKET_LABELS: [&str; N_SIZE_BUCKETS] = ["<=1", "2", "3-4", "5-8", "9-16", ">16"];

impl SchedulerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        SchedulerStats::default()
    }

    /// Record one message of `class` carrying `nbytes` payload.
    pub fn record(&self, class: MsgClass, nbytes: u64) {
        self.counts[idx(class)].fetch_add(1, Ordering::Relaxed);
        self.bytes[idx(class)].fetch_add(nbytes, Ordering::Relaxed);
    }

    /// Record `n` messages at once.
    pub fn record_n(&self, class: MsgClass, n: u64, nbytes: u64) {
        self.counts[idx(class)].fetch_add(n, Ordering::Relaxed);
        self.bytes[idx(class)].fetch_add(nbytes, Ordering::Relaxed);
    }

    /// Message count of one class.
    pub fn count(&self, class: MsgClass) -> u64 {
        self.counts[idx(class)].load(Ordering::Relaxed)
    }

    /// Byte volume of one class.
    pub fn bytes(&self, class: MsgClass) -> u64 {
        self.bytes[idx(class)].load(Ordering::Relaxed)
    }

    /// Record one dependency-gather batch: `deps` remote fetches resolved in
    /// `wait_ns` of wall time (concurrent fetches overlap inside one batch).
    pub fn record_gather(&self, deps: u64, wait_ns: u64) {
        self.gather_batches.fetch_add(1, Ordering::Relaxed);
        self.gather_deps.fetch_add(deps, Ordering::Relaxed);
        self.gather_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
    }

    /// Record time an executor slot spent running a task.
    pub fn record_exec_busy(&self, ns: u64) {
        self.exec_busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record time an executor slot spent waiting for work.
    pub fn record_exec_idle(&self, ns: u64) {
        self.exec_idle_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of gather batches that hit the network (≥1 remote dep).
    pub fn gather_batches(&self) -> u64 {
        self.gather_batches.load(Ordering::Relaxed)
    }

    /// Remote dependencies fetched across all gathers.
    pub fn gather_deps(&self) -> u64 {
        self.gather_deps.load(Ordering::Relaxed)
    }

    /// Total nanoseconds spent waiting on dependency gathers.
    pub fn gather_wait_ns(&self) -> u64 {
        self.gather_wait_ns.load(Ordering::Relaxed)
    }

    /// Total nanoseconds executor slots spent running tasks.
    pub fn exec_busy_ns(&self) -> u64 {
        self.exec_busy_ns.load(Ordering::Relaxed)
    }

    /// Total nanoseconds executor slots spent blocked on an empty inbox.
    pub fn exec_idle_ns(&self) -> u64 {
        self.exec_idle_ns.load(Ordering::Relaxed)
    }

    /// Fold one graph-optimizer report into the counters.
    pub fn record_optimize(&self, report: &OptimizeReport) {
        self.optimize_tasks_in
            .fetch_add(report.tasks_in as u64, Ordering::Relaxed);
        self.optimize_tasks_out
            .fetch_add(report.tasks_out as u64, Ordering::Relaxed);
        self.optimize_culled
            .fetch_add(report.culled as u64, Ordering::Relaxed);
        self.fused_chains
            .fetch_add(report.fused_chain_lengths.len() as u64, Ordering::Relaxed);
        for &len in &report.fused_chain_lengths {
            self.fused_stages.fetch_add(len as u64, Ordering::Relaxed);
            self.fused_chain_hist[size_bucket(len as u64)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one scheduler inbox burst of `n` messages.
    pub fn record_burst(&self, n: u64) {
        self.ingest_bursts.fetch_add(1, Ordering::Relaxed);
        self.ingest_msgs.fetch_add(n, Ordering::Relaxed);
        self.burst_hist[size_bucket(n)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one placement pass taking `ns` wall time.
    pub fn record_assign_pass(&self, ns: u64) {
        self.assign_passes.fetch_add(1, Ordering::Relaxed);
        self.assign_pass_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record `tasks` assignments shipped in `messages` worker messages.
    pub fn record_assign(&self, tasks: u64, messages: u64) {
        self.assign_tasks.fetch_add(tasks, Ordering::Relaxed);
        self.assign_messages.fetch_add(messages, Ordering::Relaxed);
    }

    /// Tasks in submitted graphs before optimization.
    pub fn optimize_tasks_in(&self) -> u64 {
        self.optimize_tasks_in.load(Ordering::Relaxed)
    }

    /// Specs sent to the scheduler after optimization.
    pub fn optimize_tasks_out(&self) -> u64 {
        self.optimize_tasks_out.load(Ordering::Relaxed)
    }

    /// Tasks dropped by the cull pass.
    pub fn optimize_culled(&self) -> u64 {
        self.optimize_culled.load(Ordering::Relaxed)
    }

    /// Fused chains produced across all submissions.
    pub fn fused_chains(&self) -> u64 {
        self.fused_chains.load(Ordering::Relaxed)
    }

    /// Original tasks absorbed into fused chains (chain lengths summed).
    pub fn fused_stages(&self) -> u64 {
        self.fused_stages.load(Ordering::Relaxed)
    }

    /// Fused-chain length histogram (see [`SIZE_BUCKET_LABELS`]).
    pub fn fused_chain_hist(&self) -> [u64; N_SIZE_BUCKETS] {
        std::array::from_fn(|i| self.fused_chain_hist[i].load(Ordering::Relaxed))
    }

    /// Scheduler inbox bursts drained.
    pub fn ingest_bursts(&self) -> u64 {
        self.ingest_bursts.load(Ordering::Relaxed)
    }

    /// Messages absorbed across all bursts.
    pub fn ingest_msgs(&self) -> u64 {
        self.ingest_msgs.load(Ordering::Relaxed)
    }

    /// Burst-size histogram (see [`SIZE_BUCKET_LABELS`]).
    pub fn burst_hist(&self) -> [u64; N_SIZE_BUCKETS] {
        std::array::from_fn(|i| self.burst_hist[i].load(Ordering::Relaxed))
    }

    /// Placement passes run.
    pub fn assign_passes(&self) -> u64 {
        self.assign_passes.load(Ordering::Relaxed)
    }

    /// Total nanoseconds spent inside placement passes.
    pub fn assign_pass_ns(&self) -> u64 {
        self.assign_pass_ns.load(Ordering::Relaxed)
    }

    /// Tasks assigned to workers.
    pub fn assign_tasks(&self) -> u64 {
        self.assign_tasks.load(Ordering::Relaxed)
    }

    /// `Execute`/`ExecuteBatch` messages sent to workers.
    pub fn assign_messages(&self) -> u64 {
        self.assign_messages.load(Ordering::Relaxed)
    }

    /// Fraction of executor-slot wall time spent busy, in `[0, 1]`.
    pub fn executor_utilization(&self) -> f64 {
        let busy = self.exec_busy_ns() as f64;
        let idle = self.exec_idle_ns() as f64;
        if busy + idle == 0.0 {
            0.0
        } else {
            busy / (busy + idle)
        }
    }

    /// Total *control-plane* messages that hit the scheduler (everything
    /// except the data-plane classes). This is the load the paper's formulas
    /// count.
    pub fn scheduler_control_messages(&self) -> u64 {
        use MsgClass::*;
        [
            GraphSubmit,
            RegisterExternal,
            UpdateData,
            UpdateDataExternal,
            TaskReport,
            AddReplica,
            WantResult,
            Variable,
            Queue,
            Heartbeat,
        ]
        .into_iter()
        .map(|c| self.count(c))
        .sum()
    }

    /// Metadata messages *originating at bridges/clients* per the paper's
    /// accounting (§2.1): classic-scatter metadata + queue ops + variable
    /// ops + heartbeats. External-task completion notifications are data
    /// plane and excluded, exactly as the paper counts them.
    pub fn bridge_metadata_messages(&self) -> u64 {
        use MsgClass::*;
        [UpdateData, Variable, Queue, Heartbeat]
            .into_iter()
            .map(|c| self.count(c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read() {
        let s = SchedulerStats::new();
        s.record(MsgClass::UpdateData, 100);
        s.record(MsgClass::UpdateData, 50);
        s.record_n(MsgClass::Heartbeat, 3, 0);
        assert_eq!(s.count(MsgClass::UpdateData), 2);
        assert_eq!(s.bytes(MsgClass::UpdateData), 150);
        assert_eq!(s.count(MsgClass::Heartbeat), 3);
        assert_eq!(s.count(MsgClass::ScatterData), 0);
    }

    #[test]
    fn pipeline_counters_accumulate() {
        let s = SchedulerStats::new();
        assert_eq!(s.executor_utilization(), 0.0);
        s.record_gather(3, 1_000);
        s.record_gather(1, 500);
        s.record_exec_busy(300);
        s.record_exec_idle(100);
        assert_eq!(s.gather_batches(), 2);
        assert_eq!(s.gather_deps(), 4);
        assert_eq!(s.gather_wait_ns(), 1_500);
        assert_eq!(s.exec_busy_ns(), 300);
        assert_eq!(s.exec_idle_ns(), 100);
        assert!((s.executor_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn control_plane_totals_exclude_data_plane() {
        let s = SchedulerStats::new();
        s.record(MsgClass::GraphSubmit, 0);
        s.record(MsgClass::ScatterData, 1 << 20);
        s.record(MsgClass::GatherData, 1 << 20);
        s.record(MsgClass::PeerFetch, 1 << 20);
        assert_eq!(s.scheduler_control_messages(), 1);
        assert_eq!(s.bridge_metadata_messages(), 0);
    }
}
