//! Message and byte accounting.
//!
//! The paper's scalability argument is a *message-count* argument: DEISA1
//! sends `2 · timesteps · ranks + heartbeats` metadata messages to the
//! centralized scheduler, the external-task version only `1 + ranks` at
//! startup. These counters make those formulas measurable in the real
//! runtime (integration tests assert them) and calibrate the DES models.

use crate::key::SessionId;
use crate::optimize::OptimizeReport;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Classes of messages arriving at the scheduler, plus data-plane traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgClass {
    /// `SubmitGraph` messages.
    GraphSubmit,
    /// Individual task specs received across all submissions.
    TaskSubmitted,
    /// `RegisterExternal` messages.
    RegisterExternal,
    /// `UpdateData` messages from classic scatter (metadata-bearing).
    UpdateData,
    /// `UpdateData` messages in external mode (§2.2): completion
    /// notifications of external tasks — the paper does not count these as
    /// metadata.
    UpdateDataExternal,
    /// `TaskFinished`/`TaskErred` worker reports.
    TaskReport,
    /// `WantResult` requests.
    WantResult,
    /// Variable operations (set/get/del).
    Variable,
    /// Queue operations (push/pop).
    Queue,
    /// Heartbeats.
    Heartbeat,
    /// Scatter payload messages client→worker (data plane).
    ScatterData,
    /// Gather payload messages worker→client (data plane).
    GatherData,
    /// Peer dependency fetches worker→worker (data plane).
    PeerFetch,
    /// `AddReplica` reports from workers that cached remote blocks.
    AddReplica,
    /// Worker liveness pings (off unless failure detection is enabled; never
    /// part of the paper's bridge-metadata accounting).
    WorkerHeartbeat,
}

const N_CLASSES: usize = 15;

impl MsgClass {
    /// Every class, in a stable order (snapshot serialization iterates this).
    pub const ALL: [MsgClass; N_CLASSES] = [
        MsgClass::GraphSubmit,
        MsgClass::TaskSubmitted,
        MsgClass::RegisterExternal,
        MsgClass::UpdateData,
        MsgClass::UpdateDataExternal,
        MsgClass::TaskReport,
        MsgClass::WantResult,
        MsgClass::Variable,
        MsgClass::Queue,
        MsgClass::Heartbeat,
        MsgClass::ScatterData,
        MsgClass::GatherData,
        MsgClass::PeerFetch,
        MsgClass::AddReplica,
        MsgClass::WorkerHeartbeat,
    ];

    /// Stable snake_case name (snapshot / Prometheus label).
    pub fn name(self) -> &'static str {
        match self {
            MsgClass::GraphSubmit => "graph_submit",
            MsgClass::TaskSubmitted => "task_submitted",
            MsgClass::RegisterExternal => "register_external",
            MsgClass::UpdateData => "update_data",
            MsgClass::UpdateDataExternal => "update_data_external",
            MsgClass::TaskReport => "task_report",
            MsgClass::WantResult => "want_result",
            MsgClass::Variable => "variable",
            MsgClass::Queue => "queue",
            MsgClass::Heartbeat => "heartbeat",
            MsgClass::ScatterData => "scatter_data",
            MsgClass::GatherData => "gather_data",
            MsgClass::PeerFetch => "peer_fetch",
            MsgClass::AddReplica => "add_replica",
            MsgClass::WorkerHeartbeat => "worker_heartbeat",
        }
    }
}

/// Destination lanes of the framed transport backends. One lane per
/// payload family, so "scheduler inbound" — the paper's bottleneck — is a
/// single counter read. Only the Framed/SimNet backends record here;
/// InProc stays at zero by design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireLane {
    /// Messages into the scheduler (the centralized bottleneck).
    SchedIn,
    /// Assignments into worker executor inboxes.
    ExecIn,
    /// Requests into worker data servers.
    DataIn,
    /// Notifications into client inboxes.
    ClientIn,
    /// Correlated replies (acks, gather payloads, stats).
    ReplyIn,
}

/// Number of [`WireLane`]s.
pub const N_WIRE_LANES: usize = 5;

impl WireLane {
    /// Every lane, in a stable order (snapshot serialization iterates this).
    pub const ALL: [WireLane; N_WIRE_LANES] = [
        WireLane::SchedIn,
        WireLane::ExecIn,
        WireLane::DataIn,
        WireLane::ClientIn,
        WireLane::ReplyIn,
    ];

    /// Stable snake_case name (snapshot / Prometheus label).
    pub fn name(self) -> &'static str {
        match self {
            WireLane::SchedIn => "sched_in",
            WireLane::ExecIn => "exec_in",
            WireLane::DataIn => "data_in",
            WireLane::ClientIn => "client_in",
            WireLane::ReplyIn => "reply_in",
        }
    }
}

fn lane_idx(lane: WireLane) -> usize {
    match lane {
        WireLane::SchedIn => 0,
        WireLane::ExecIn => 1,
        WireLane::DataIn => 2,
        WireLane::ClientIn => 3,
        WireLane::ReplyIn => 4,
    }
}

/// Buckets of one [`LatencyHist`]: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also takes 0 ns); the last bucket
/// absorbs everything from ~34 s up.
pub const N_LAT_BUCKETS: usize = 36;

/// A log₂-bucketed latency histogram over nanosecond samples. Recording is a
/// couple of relaxed `fetch_add`s — the same cost class as the message
/// counters, so the histograms stay on even when event tracing is off.
#[derive(Debug)]
pub struct LatencyHist {
    buckets: [AtomicU64; N_LAT_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

/// Bucket index of one nanosecond sample.
fn lat_bucket(ns: u64) -> usize {
    (63 - (ns | 1).leading_zeros() as usize).min(N_LAT_BUCKETS - 1)
}

impl LatencyHist {
    /// Record one sample.
    pub fn record(&self, ns: u64) {
        self.buckets[lat_bucket(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Mean sample in nanoseconds; `0.0` for an empty histogram (never NaN).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns() as f64 / n as f64
        }
    }

    /// Approximate quantile (`0.0..=1.0`): upper bound of the bucket holding
    /// the q-th sample. `0` for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << N_LAT_BUCKETS
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> [u64; N_LAT_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

fn idx(class: MsgClass) -> usize {
    match class {
        MsgClass::GraphSubmit => 0,
        MsgClass::TaskSubmitted => 1,
        MsgClass::RegisterExternal => 2,
        MsgClass::UpdateData => 3,
        MsgClass::UpdateDataExternal => 12,
        MsgClass::TaskReport => 4,
        MsgClass::WantResult => 5,
        MsgClass::Variable => 6,
        MsgClass::Queue => 7,
        MsgClass::Heartbeat => 8,
        MsgClass::ScatterData => 9,
        MsgClass::GatherData => 10,
        MsgClass::PeerFetch => 11,
        MsgClass::AddReplica => 13,
        MsgClass::WorkerHeartbeat => 14,
    }
}

/// Cluster-wide counters, shared via `Arc` by every actor.
#[derive(Debug, Default)]
pub struct SchedulerStats {
    counts: [AtomicU64; N_CLASSES],
    bytes: [AtomicU64; N_CLASSES],
    /// Framed/SimNet transport: messages per destination lane.
    wire_msgs: [AtomicU64; N_WIRE_LANES],
    /// Framed/SimNet transport: real serialized bytes per destination lane.
    wire_bytes: [AtomicU64; N_WIRE_LANES],
    /// Dependency-gather batches that needed ≥1 remote fetch.
    gather_batches: AtomicU64,
    /// Remote dependencies fetched across all gathers.
    gather_deps: AtomicU64,
    /// Wall time spent waiting on remote dependency gathers.
    gather_wait_ns: AtomicU64,
    /// Wall time executor slots spent running tasks (gather + compute).
    exec_busy_ns: AtomicU64,
    /// Wall time executor slots spent blocked on an empty inbox.
    exec_idle_ns: AtomicU64,
    /// Tasks in client-submitted graphs before optimization.
    optimize_tasks_in: AtomicU64,
    /// Specs actually sent to the scheduler after cull + fuse.
    optimize_tasks_out: AtomicU64,
    /// Tasks dropped by the cull pass.
    optimize_culled: AtomicU64,
    /// Fused chains produced.
    fused_chains: AtomicU64,
    /// Original tasks absorbed into fused chains.
    fused_stages: AtomicU64,
    /// Fused-chain length histogram, bucketed by [`size_bucket`].
    fused_chain_hist: [AtomicU64; N_SIZE_BUCKETS],
    /// Scheduler inbox bursts drained.
    ingest_bursts: AtomicU64,
    /// Messages absorbed across all bursts.
    ingest_msgs: AtomicU64,
    /// Burst-size histogram, bucketed by [`size_bucket`].
    burst_hist: [AtomicU64; N_SIZE_BUCKETS],
    /// Placement passes run (once per burst in batched mode).
    assign_passes: AtomicU64,
    /// Wall time spent inside placement passes.
    assign_pass_ns: AtomicU64,
    /// Tasks assigned to workers.
    assign_tasks: AtomicU64,
    /// `Execute`/`ExecuteBatch` messages sent to workers.
    assign_messages: AtomicU64,
    /// Latency of each dependency-gather batch (wall wait per batch).
    gather_wait_hist: LatencyHist,
    /// Latency of each task execution (op/fused-chain compute time).
    exec_hist: LatencyHist,
    /// Queue delay: scheduler assignment → executor slot dequeue, per task.
    queue_delay_hist: LatencyHist,
    /// Latency of each placement pass.
    assign_pass_hist: LatencyHist,
    /// Peers (workers or clients) declared dead by the liveness sweep.
    fault_peers_lost: AtomicU64,
    /// Distinct peers whose heartbeats the scheduler has tracked.
    fault_peers_tracked: AtomicU64,
    /// Tasks re-queued after their worker died or a gather hit a dead peer.
    fault_tasks_resubmitted: AtomicU64,
    /// Tasks that ran out of their bounded retry budget and erred.
    fault_retries_exhausted: AtomicU64,
    /// External blocks lost with their only replica (unrecoverable).
    fault_external_blocks_lost: AtomicU64,
    /// Memory results whose spec allowed a recompute after data loss.
    fault_recomputes: AtomicU64,
    /// Messages dropped by an injected [`FaultPlan`](crate::transport::FaultPlan).
    fault_injected_drops: AtomicU64,
    /// Workers killed by fault injection.
    fault_injected_kills: AtomicU64,
    /// `StealRequest` messages from idle workers.
    steal_requests: AtomicU64,
    /// Steal attempts that found nothing to take (no loaded peer, or the
    /// victim's queue drained before the steal arrived).
    steal_misses: AtomicU64,
    /// Assignments successfully re-pointed from a victim to a thief.
    tasks_stolen: AtomicU64,
    /// Object-store gets served from memory.
    store_hits: AtomicU64,
    /// Object-store gets of absent keys.
    store_misses: AtomicU64,
    /// Entries evicted from memory to disk under the store budget.
    store_spills: AtomicU64,
    /// Spilled entries restored back into memory on access.
    store_restores: AtomicU64,
    /// Payload bytes written to spill files.
    store_spill_bytes: AtomicU64,
    /// Payloads published out-of-band in place of inline control values.
    proxy_puts: AtomicU64,
    /// Payload bytes published out-of-band (kept off the control path).
    proxy_put_bytes: AtomicU64,
    /// Proxy handles resolved via a data-lane `Fetch` to the holder.
    proxy_fetches: AtomicU64,
    /// Payload bytes moved by proxy resolution on the data lane.
    proxy_fetch_bytes: AtomicU64,
    /// Task executions flagged as stragglers by the online detector
    /// (exec duration > k× the robust per-op baseline).
    stragglers_flagged: AtomicU64,
    /// Client notifications the scheduler dropped because the target client
    /// was no longer registered (disconnected or declared dead mid-flight).
    notifies_dropped: AtomicU64,
    /// Graphs rejected by per-session admission control (all tenants).
    admission_rejections: AtomicU64,
    /// Per-tenant counters, keyed by session id. Touched only on the
    /// multi-tenant path (scoped messages), so single-tenant clusters never
    /// take this lock and their accounting stays identical to the seed.
    tenants: Mutex<HashMap<SessionId, TenantCounters>>,
}

/// Per-session (tenant) counters surfaced in `StatsSnapshot` and `/metrics`.
/// These live outside [`MsgClass`] so the paper's control/bridge message
/// accounting is never polluted by tenancy bookkeeping.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TenantCounters {
    /// Task specs submitted by this session (post-optimizer).
    pub tasks: u64,
    /// Result bytes produced by this session's tasks.
    pub bytes: u64,
    /// Tasks currently in flight (submitted, not yet terminal) — a gauge.
    pub queue_depth: u64,
    /// Graphs rejected by admission control.
    pub admission_rejections: u64,
}

/// Histogram bucket count shared by the fused-chain and burst histograms.
pub const N_SIZE_BUCKETS: usize = 6;

/// Bucket a size into `[≤1, 2, 3–4, 5–8, 9–16, >16]`.
pub fn size_bucket(n: u64) -> usize {
    match n {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        _ => 5,
    }
}

/// Human-readable labels for [`size_bucket`] (reports and bench output).
pub const SIZE_BUCKET_LABELS: [&str; N_SIZE_BUCKETS] = ["<=1", "2", "3-4", "5-8", "9-16", ">16"];

impl SchedulerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        SchedulerStats::default()
    }

    /// Record one message of `class` carrying `nbytes` payload.
    pub fn record(&self, class: MsgClass, nbytes: u64) {
        self.counts[idx(class)].fetch_add(1, Ordering::Relaxed);
        self.bytes[idx(class)].fetch_add(nbytes, Ordering::Relaxed);
    }

    /// Record `n` messages at once.
    pub fn record_n(&self, class: MsgClass, n: u64, nbytes: u64) {
        self.counts[idx(class)].fetch_add(n, Ordering::Relaxed);
        self.bytes[idx(class)].fetch_add(nbytes, Ordering::Relaxed);
    }

    /// Message count of one class.
    pub fn count(&self, class: MsgClass) -> u64 {
        self.counts[idx(class)].load(Ordering::Relaxed)
    }

    /// Byte volume of one class.
    pub fn bytes(&self, class: MsgClass) -> u64 {
        self.bytes[idx(class)].load(Ordering::Relaxed)
    }

    /// Record one dependency-gather batch: `deps` remote fetches resolved in
    /// `wait_ns` of wall time (concurrent fetches overlap inside one batch).
    pub fn record_gather(&self, deps: u64, wait_ns: u64) {
        self.gather_batches.fetch_add(1, Ordering::Relaxed);
        self.gather_deps.fetch_add(deps, Ordering::Relaxed);
        self.gather_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
        self.gather_wait_hist.record(wait_ns);
    }

    /// Record time an executor slot spent running a task.
    pub fn record_exec_busy(&self, ns: u64) {
        self.exec_busy_ns.fetch_add(ns, Ordering::Relaxed);
        self.exec_hist.record(ns);
    }

    /// Record one task's queue delay: scheduler assignment → slot dequeue.
    pub fn record_queue_delay(&self, ns: u64) {
        self.queue_delay_hist.record(ns);
    }

    /// Record time an executor slot spent waiting for work.
    pub fn record_exec_idle(&self, ns: u64) {
        self.exec_idle_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of gather batches that hit the network (≥1 remote dep).
    pub fn gather_batches(&self) -> u64 {
        self.gather_batches.load(Ordering::Relaxed)
    }

    /// Remote dependencies fetched across all gathers.
    pub fn gather_deps(&self) -> u64 {
        self.gather_deps.load(Ordering::Relaxed)
    }

    /// Total nanoseconds spent waiting on dependency gathers.
    pub fn gather_wait_ns(&self) -> u64 {
        self.gather_wait_ns.load(Ordering::Relaxed)
    }

    /// Total nanoseconds executor slots spent running tasks.
    pub fn exec_busy_ns(&self) -> u64 {
        self.exec_busy_ns.load(Ordering::Relaxed)
    }

    /// Total nanoseconds executor slots spent blocked on an empty inbox.
    pub fn exec_idle_ns(&self) -> u64 {
        self.exec_idle_ns.load(Ordering::Relaxed)
    }

    /// Fold one graph-optimizer report into the counters.
    pub fn record_optimize(&self, report: &OptimizeReport) {
        self.optimize_tasks_in
            .fetch_add(report.tasks_in as u64, Ordering::Relaxed);
        self.optimize_tasks_out
            .fetch_add(report.tasks_out as u64, Ordering::Relaxed);
        self.optimize_culled
            .fetch_add(report.culled as u64, Ordering::Relaxed);
        self.fused_chains
            .fetch_add(report.fused_chain_lengths.len() as u64, Ordering::Relaxed);
        for &len in &report.fused_chain_lengths {
            self.fused_stages.fetch_add(len as u64, Ordering::Relaxed);
            self.fused_chain_hist[size_bucket(len as u64)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one scheduler inbox burst of `n` messages.
    pub fn record_burst(&self, n: u64) {
        self.ingest_bursts.fetch_add(1, Ordering::Relaxed);
        self.ingest_msgs.fetch_add(n, Ordering::Relaxed);
        self.burst_hist[size_bucket(n)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one placement pass taking `ns` wall time.
    pub fn record_assign_pass(&self, ns: u64) {
        self.assign_passes.fetch_add(1, Ordering::Relaxed);
        self.assign_pass_ns.fetch_add(ns, Ordering::Relaxed);
        self.assign_pass_hist.record(ns);
    }

    /// Record `tasks` assignments shipped in `messages` worker messages.
    pub fn record_assign(&self, tasks: u64, messages: u64) {
        self.assign_tasks.fetch_add(tasks, Ordering::Relaxed);
        self.assign_messages.fetch_add(messages, Ordering::Relaxed);
    }

    /// Tasks in submitted graphs before optimization.
    pub fn optimize_tasks_in(&self) -> u64 {
        self.optimize_tasks_in.load(Ordering::Relaxed)
    }

    /// Specs sent to the scheduler after optimization.
    pub fn optimize_tasks_out(&self) -> u64 {
        self.optimize_tasks_out.load(Ordering::Relaxed)
    }

    /// Tasks dropped by the cull pass.
    pub fn optimize_culled(&self) -> u64 {
        self.optimize_culled.load(Ordering::Relaxed)
    }

    /// Fused chains produced across all submissions.
    pub fn fused_chains(&self) -> u64 {
        self.fused_chains.load(Ordering::Relaxed)
    }

    /// Original tasks absorbed into fused chains (chain lengths summed).
    pub fn fused_stages(&self) -> u64 {
        self.fused_stages.load(Ordering::Relaxed)
    }

    /// Fused-chain length histogram (see [`SIZE_BUCKET_LABELS`]).
    pub fn fused_chain_hist(&self) -> [u64; N_SIZE_BUCKETS] {
        std::array::from_fn(|i| self.fused_chain_hist[i].load(Ordering::Relaxed))
    }

    /// Scheduler inbox bursts drained.
    pub fn ingest_bursts(&self) -> u64 {
        self.ingest_bursts.load(Ordering::Relaxed)
    }

    /// Messages absorbed across all bursts.
    pub fn ingest_msgs(&self) -> u64 {
        self.ingest_msgs.load(Ordering::Relaxed)
    }

    /// Burst-size histogram (see [`SIZE_BUCKET_LABELS`]).
    pub fn burst_hist(&self) -> [u64; N_SIZE_BUCKETS] {
        std::array::from_fn(|i| self.burst_hist[i].load(Ordering::Relaxed))
    }

    /// Placement passes run.
    pub fn assign_passes(&self) -> u64 {
        self.assign_passes.load(Ordering::Relaxed)
    }

    /// Total nanoseconds spent inside placement passes.
    pub fn assign_pass_ns(&self) -> u64 {
        self.assign_pass_ns.load(Ordering::Relaxed)
    }

    /// Tasks assigned to workers.
    pub fn assign_tasks(&self) -> u64 {
        self.assign_tasks.load(Ordering::Relaxed)
    }

    /// `Execute`/`ExecuteBatch` messages sent to workers.
    pub fn assign_messages(&self) -> u64 {
        self.assign_messages.load(Ordering::Relaxed)
    }

    /// Gather-wait latency histogram (one sample per gather batch).
    pub fn gather_wait_hist(&self) -> &LatencyHist {
        &self.gather_wait_hist
    }

    /// Task-execution latency histogram.
    pub fn exec_hist(&self) -> &LatencyHist {
        &self.exec_hist
    }

    /// Queue-delay (assign → dequeue) latency histogram.
    pub fn queue_delay_hist(&self) -> &LatencyHist {
        &self.queue_delay_hist
    }

    /// Placement-pass latency histogram.
    pub fn assign_pass_hist(&self) -> &LatencyHist {
        &self.assign_pass_hist
    }

    /// Fraction of executor-slot wall time spent busy, in `[0, 1]`.
    /// An idle cluster (no slot activity yet) reports `0.0`, never NaN.
    pub fn executor_utilization(&self) -> f64 {
        let busy = self.exec_busy_ns() as f64;
        let idle = self.exec_idle_ns() as f64;
        if busy + idle == 0.0 {
            0.0
        } else {
            busy / (busy + idle)
        }
    }

    /// `a / b` with an empty-run guard: `0.0` when `b == 0`, never NaN.
    fn ratio(a: u64, b: u64) -> f64 {
        if b == 0 {
            0.0
        } else {
            a as f64 / b as f64
        }
    }

    /// Mean messages absorbed per inbox burst (`0.0` before any burst).
    pub fn avg_msgs_per_burst(&self) -> f64 {
        Self::ratio(self.ingest_msgs(), self.ingest_bursts())
    }

    /// Mean remote dependencies per gather batch (`0.0` with no gathers).
    pub fn avg_gather_deps(&self) -> f64 {
        Self::ratio(self.gather_deps(), self.gather_batches())
    }

    /// Mean gather wait per batch in ns (`0.0` with no gathers).
    pub fn avg_gather_wait_ns(&self) -> f64 {
        Self::ratio(self.gather_wait_ns(), self.gather_batches())
    }

    /// Mean placement-pass time in ns (`0.0` with no passes).
    pub fn avg_assign_pass_ns(&self) -> f64 {
        Self::ratio(self.assign_pass_ns(), self.assign_passes())
    }

    /// Mean tasks shipped per scheduler→worker message (`0.0` when idle).
    pub fn avg_tasks_per_assign_message(&self) -> f64 {
        Self::ratio(self.assign_tasks(), self.assign_messages())
    }

    /// Total *control-plane* messages that hit the scheduler (everything
    /// except the data-plane classes). This is the load the paper's formulas
    /// count.
    pub fn scheduler_control_messages(&self) -> u64 {
        use MsgClass::*;
        [
            GraphSubmit,
            RegisterExternal,
            UpdateData,
            UpdateDataExternal,
            TaskReport,
            AddReplica,
            WantResult,
            Variable,
            Queue,
            Heartbeat,
            WorkerHeartbeat,
        ]
        .into_iter()
        .map(|c| self.count(c))
        .sum()
    }

    /// Record one framed transport message of `bytes` serialized size.
    pub fn record_wire(&self, lane: WireLane, bytes: u64) {
        self.wire_msgs[lane_idx(lane)].fetch_add(1, Ordering::Relaxed);
        self.wire_bytes[lane_idx(lane)].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Framed messages sent on one lane.
    pub fn wire_messages(&self, lane: WireLane) -> u64 {
        self.wire_msgs[lane_idx(lane)].load(Ordering::Relaxed)
    }

    /// Serialized bytes sent on one lane.
    pub fn wire_bytes(&self, lane: WireLane) -> u64 {
        self.wire_bytes[lane_idx(lane)].load(Ordering::Relaxed)
    }

    /// Framed messages across all lanes (`0` under InProc).
    pub fn wire_total_messages(&self) -> u64 {
        WireLane::ALL.iter().map(|&l| self.wire_messages(l)).sum()
    }

    /// Serialized bytes across all lanes (`0` under InProc).
    pub fn wire_total_bytes(&self) -> u64 {
        WireLane::ALL.iter().map(|&l| self.wire_bytes(l)).sum()
    }

    /// Metadata messages *originating at bridges/clients* per the paper's
    /// accounting (§2.1): classic-scatter metadata + queue ops + variable
    /// ops + heartbeats. External-task completion notifications are data
    /// plane and excluded, exactly as the paper counts them.
    pub fn bridge_metadata_messages(&self) -> u64 {
        use MsgClass::*;
        [UpdateData, Variable, Queue, Heartbeat]
            .into_iter()
            .map(|c| self.count(c))
            .sum()
    }

    // ---- fault tolerance ---------------------------------------------------

    /// Record one peer declared dead by the liveness sweep.
    pub fn record_peer_lost(&self) {
        self.fault_peers_lost.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the first heartbeat seen from a previously untracked peer.
    pub fn record_peer_tracked(&self) {
        self.fault_peers_tracked.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one task re-queued for a surviving worker.
    pub fn record_task_resubmitted(&self) {
        self.fault_tasks_resubmitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one task whose bounded retry budget ran out.
    pub fn record_retries_exhausted(&self) {
        self.fault_retries_exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one unreplicated external block lost with a dead worker.
    pub fn record_external_block_lost(&self) {
        self.fault_external_blocks_lost
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record one lost result re-queued for recompute from its spec.
    pub fn record_recompute(&self) {
        self.fault_recomputes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one message dropped by fault injection.
    pub fn record_injected_drop(&self) {
        self.fault_injected_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one worker killed by fault injection.
    pub fn record_injected_kill(&self) {
        self.fault_injected_kills.fetch_add(1, Ordering::Relaxed);
    }

    /// Peers declared dead.
    pub fn peers_lost(&self) -> u64 {
        self.fault_peers_lost.load(Ordering::Relaxed)
    }

    /// Distinct peers whose heartbeats have been tracked.
    pub fn peers_tracked(&self) -> u64 {
        self.fault_peers_tracked.load(Ordering::Relaxed)
    }

    /// Tasks re-queued after a peer loss.
    pub fn tasks_resubmitted(&self) -> u64 {
        self.fault_tasks_resubmitted.load(Ordering::Relaxed)
    }

    /// Tasks failed after exhausting their retry budget.
    pub fn retries_exhausted(&self) -> u64 {
        self.fault_retries_exhausted.load(Ordering::Relaxed)
    }

    /// External blocks lost beyond recovery.
    pub fn external_blocks_lost(&self) -> u64 {
        self.fault_external_blocks_lost.load(Ordering::Relaxed)
    }

    /// Lost results re-queued for recompute.
    pub fn recomputes(&self) -> u64 {
        self.fault_recomputes.load(Ordering::Relaxed)
    }

    /// Messages dropped by fault injection.
    pub fn injected_drops(&self) -> u64 {
        self.fault_injected_drops.load(Ordering::Relaxed)
    }

    /// Workers killed by fault injection.
    pub fn injected_kills(&self) -> u64 {
        self.fault_injected_kills.load(Ordering::Relaxed)
    }

    // ---- work stealing ------------------------------------------------------

    /// Record one `StealRequest` received from an idle worker.
    pub fn record_steal_request(&self) {
        self.steal_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one steal attempt that found nothing to take.
    pub fn record_steal_miss(&self) {
        self.steal_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one assignment re-pointed from a victim to a thief.
    pub fn record_task_stolen(&self) {
        self.tasks_stolen.fetch_add(1, Ordering::Relaxed);
    }

    /// Steal requests received from idle workers.
    pub fn steal_requests(&self) -> u64 {
        self.steal_requests.load(Ordering::Relaxed)
    }

    /// Steal attempts that came up empty.
    pub fn steal_misses(&self) -> u64 {
        self.steal_misses.load(Ordering::Relaxed)
    }

    /// Assignments successfully stolen.
    pub fn tasks_stolen(&self) -> u64 {
        self.tasks_stolen.load(Ordering::Relaxed)
    }

    // ---- object store / proxy data plane -----------------------------------

    /// Record one store get served from memory.
    pub fn record_store_hit(&self) {
        self.store_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one store get of an absent key.
    pub fn record_store_miss(&self) {
        self.store_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one entry spilled to disk (`bytes` of payload written).
    pub fn record_store_spill(&self, bytes: u64) {
        self.store_spills.fetch_add(1, Ordering::Relaxed);
        self.store_spill_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one spilled entry restored into memory.
    pub fn record_store_restore(&self) {
        self.store_restores.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one payload published out-of-band (proxy put).
    pub fn record_proxy_put(&self, bytes: u64) {
        self.proxy_puts.fetch_add(1, Ordering::Relaxed);
        self.proxy_put_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one proxy handle resolved via a data-lane fetch.
    pub fn record_proxy_fetch(&self, bytes: u64) {
        self.proxy_fetches.fetch_add(1, Ordering::Relaxed);
        self.proxy_fetch_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Store gets served from memory.
    pub fn store_hits(&self) -> u64 {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// Store gets of absent keys.
    pub fn store_misses(&self) -> u64 {
        self.store_misses.load(Ordering::Relaxed)
    }

    /// Entries spilled to disk under the memory budget.
    pub fn store_spills(&self) -> u64 {
        self.store_spills.load(Ordering::Relaxed)
    }

    /// Spilled entries restored back into memory.
    pub fn store_restores(&self) -> u64 {
        self.store_restores.load(Ordering::Relaxed)
    }

    /// Payload bytes written to spill files.
    pub fn store_spill_bytes(&self) -> u64 {
        self.store_spill_bytes.load(Ordering::Relaxed)
    }

    /// Payloads published out-of-band.
    pub fn proxy_puts(&self) -> u64 {
        self.proxy_puts.load(Ordering::Relaxed)
    }

    /// Payload bytes published out-of-band.
    pub fn proxy_put_bytes(&self) -> u64 {
        self.proxy_put_bytes.load(Ordering::Relaxed)
    }

    /// Proxy handles resolved via data-lane fetches.
    pub fn proxy_fetches(&self) -> u64 {
        self.proxy_fetches.load(Ordering::Relaxed)
    }

    /// Payload bytes moved by proxy resolution.
    pub fn proxy_fetch_bytes(&self) -> u64 {
        self.proxy_fetch_bytes.load(Ordering::Relaxed)
    }

    // ---- telemetry / anomaly detection --------------------------------------

    /// Record one task execution flagged as a straggler.
    pub fn record_straggler(&self) {
        self.stragglers_flagged.fetch_add(1, Ordering::Relaxed);
    }

    /// Task executions flagged as stragglers.
    pub fn stragglers_flagged(&self) -> u64 {
        self.stragglers_flagged.load(Ordering::Relaxed)
    }

    // ---- multi-tenant serving ------------------------------------------------

    /// Record one client notification dropped because the target client was
    /// no longer registered.
    pub fn record_notify_dropped(&self) {
        self.notifies_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Client notifications dropped on unregistered clients.
    pub fn notifies_dropped(&self) -> u64 {
        self.notifies_dropped.load(Ordering::Relaxed)
    }

    /// Record one graph rejected by per-session admission control.
    pub fn record_admission_rejection(&self, session: SessionId) {
        self.admission_rejections.fetch_add(1, Ordering::Relaxed);
        self.tenants
            .lock()
            .entry(session)
            .or_default()
            .admission_rejections += 1;
    }

    /// Graphs rejected by admission control, all tenants.
    pub fn admission_rejections(&self) -> u64 {
        self.admission_rejections.load(Ordering::Relaxed)
    }

    /// Record `n` tasks submitted by one session.
    pub fn record_tenant_tasks(&self, session: SessionId, n: u64) {
        self.tenants.lock().entry(session).or_default().tasks += n;
    }

    /// Record `bytes` of results produced by one session.
    pub fn record_tenant_bytes(&self, session: SessionId, bytes: u64) {
        self.tenants.lock().entry(session).or_default().bytes += bytes;
    }

    /// Update one session's in-flight task gauge.
    pub fn set_tenant_queue_depth(&self, session: SessionId, depth: u64) {
        self.tenants.lock().entry(session).or_default().queue_depth = depth;
    }

    /// One tenant's counters (zeroed default if never seen).
    pub fn tenant(&self, session: SessionId) -> TenantCounters {
        self.tenants
            .lock()
            .get(&session)
            .cloned()
            .unwrap_or_default()
    }

    /// All tenant counters, sorted by session id (snapshot serialization).
    pub fn tenant_snapshot(&self) -> Vec<(SessionId, TenantCounters)> {
        let mut v: Vec<_> = self
            .tenants
            .lock()
            .iter()
            .map(|(s, c)| (*s, c.clone()))
            .collect();
        v.sort_by_key(|(s, _)| *s);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read() {
        let s = SchedulerStats::new();
        s.record(MsgClass::UpdateData, 100);
        s.record(MsgClass::UpdateData, 50);
        s.record_n(MsgClass::Heartbeat, 3, 0);
        assert_eq!(s.count(MsgClass::UpdateData), 2);
        assert_eq!(s.bytes(MsgClass::UpdateData), 150);
        assert_eq!(s.count(MsgClass::Heartbeat), 3);
        assert_eq!(s.count(MsgClass::ScatterData), 0);
    }

    #[test]
    fn pipeline_counters_accumulate() {
        let s = SchedulerStats::new();
        assert_eq!(s.executor_utilization(), 0.0);
        s.record_gather(3, 1_000);
        s.record_gather(1, 500);
        s.record_exec_busy(300);
        s.record_exec_idle(100);
        assert_eq!(s.gather_batches(), 2);
        assert_eq!(s.gather_deps(), 4);
        assert_eq!(s.gather_wait_ns(), 1_500);
        assert_eq!(s.exec_busy_ns(), 300);
        assert_eq!(s.exec_idle_ns(), 100);
        assert!((s.executor_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn latency_hist_buckets_and_quantiles() {
        let h = LatencyHist::default();
        // Empty histogram: every derived value is defined and finite.
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile_ns(0.99), 0);
        h.record(0);
        h.record(1);
        h.record(1_000); // bucket 9 ([512, 1024))
        h.record(1_000_000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_ns(), 1_001_001);
        assert!((h.mean_ns() - 250_250.25).abs() < 1e-6);
        // Rank 2 of 4 is still in bucket 0 (upper bound 2 ns); rank 3 is the
        // 1_000 ns sample, reported as its bucket's upper bound.
        assert_eq!(h.quantile_ns(0.5), 2);
        assert_eq!(h.quantile_ns(0.75), 1 << 10);
        assert!(h.quantile_ns(1.0) >= 1 << 20);
        let buckets = h.buckets();
        assert_eq!(buckets.iter().sum::<u64>(), 4);
        assert_eq!(buckets[0], 2, "0 and 1 ns share bucket 0");
    }

    #[test]
    fn huge_latency_lands_in_last_bucket() {
        let h = LatencyHist::default();
        h.record(u64::MAX);
        assert_eq!(h.buckets()[N_LAT_BUCKETS - 1], 1);
    }

    #[test]
    fn zero_denominator_ratios_are_zero_not_nan() {
        let s = SchedulerStats::new();
        for v in [
            s.executor_utilization(),
            s.avg_msgs_per_burst(),
            s.avg_gather_deps(),
            s.avg_gather_wait_ns(),
            s.avg_assign_pass_ns(),
            s.avg_tasks_per_assign_message(),
        ] {
            assert_eq!(v, 0.0, "idle-cluster ratio must be exactly 0.0");
        }
    }

    #[test]
    fn hists_track_their_recorders() {
        let s = SchedulerStats::new();
        s.record_gather(2, 5_000);
        s.record_exec_busy(10_000);
        s.record_queue_delay(700);
        s.record_assign_pass(300);
        assert_eq!(s.gather_wait_hist().count(), 1);
        assert_eq!(s.exec_hist().count(), 1);
        assert_eq!(s.queue_delay_hist().count(), 1);
        assert_eq!(s.assign_pass_hist().count(), 1);
        assert_eq!(s.queue_delay_hist().sum_ns(), 700);
    }

    #[test]
    fn wire_lanes_accumulate_independently() {
        let s = SchedulerStats::new();
        assert_eq!(s.wire_total_messages(), 0);
        s.record_wire(WireLane::SchedIn, 64);
        s.record_wire(WireLane::SchedIn, 36);
        s.record_wire(WireLane::ReplyIn, 12);
        assert_eq!(s.wire_messages(WireLane::SchedIn), 2);
        assert_eq!(s.wire_bytes(WireLane::SchedIn), 100);
        assert_eq!(s.wire_messages(WireLane::ExecIn), 0);
        assert_eq!(s.wire_total_messages(), 3);
        assert_eq!(s.wire_total_bytes(), 112);
        let names: std::collections::HashSet<_> = WireLane::ALL.iter().map(|l| l.name()).collect();
        assert_eq!(names.len(), N_WIRE_LANES);
    }

    #[test]
    fn msg_class_names_are_unique() {
        let names: std::collections::HashSet<_> = MsgClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), MsgClass::ALL.len());
    }

    #[test]
    fn fault_counters_accumulate_and_start_zero() {
        let s = SchedulerStats::new();
        assert_eq!(s.peers_lost(), 0);
        assert_eq!(s.tasks_resubmitted(), 0);
        assert_eq!(s.injected_drops(), 0);
        s.record_peer_tracked();
        s.record_peer_lost();
        s.record_task_resubmitted();
        s.record_task_resubmitted();
        s.record_retries_exhausted();
        s.record_external_block_lost();
        s.record_recompute();
        s.record_injected_drop();
        s.record_injected_kill();
        assert_eq!(s.peers_tracked(), 1);
        assert_eq!(s.peers_lost(), 1);
        assert_eq!(s.tasks_resubmitted(), 2);
        assert_eq!(s.retries_exhausted(), 1);
        assert_eq!(s.external_blocks_lost(), 1);
        assert_eq!(s.recomputes(), 1);
        assert_eq!(s.injected_drops(), 1);
        assert_eq!(s.injected_kills(), 1);
    }

    #[test]
    fn steal_counters_accumulate_and_stay_out_of_control_accounting() {
        let s = SchedulerStats::new();
        assert_eq!(s.steal_requests(), 0);
        assert_eq!(s.steal_misses(), 0);
        assert_eq!(s.tasks_stolen(), 0);
        s.record_steal_request();
        s.record_steal_request();
        s.record_steal_miss();
        s.record_task_stolen();
        s.record_task_stolen();
        s.record_task_stolen();
        assert_eq!(s.steal_requests(), 2);
        assert_eq!(s.steal_misses(), 1);
        assert_eq!(s.tasks_stolen(), 3);
        // Steal bookkeeping lives outside MsgClass: the paper's control and
        // metadata message accounting must be byte-identical to the seed when
        // stealing is off, and unpolluted by these counters when it is on.
        assert_eq!(s.scheduler_control_messages(), 0);
        assert_eq!(s.bridge_metadata_messages(), 0);
    }

    #[test]
    fn store_counters_accumulate_and_start_zero() {
        let s = SchedulerStats::new();
        assert_eq!(s.store_hits(), 0);
        assert_eq!(s.store_spills(), 0);
        assert_eq!(s.proxy_fetch_bytes(), 0);
        s.record_store_hit();
        s.record_store_hit();
        s.record_store_miss();
        s.record_store_spill(512);
        s.record_store_spill(256);
        s.record_store_restore();
        s.record_proxy_put(1024);
        s.record_proxy_fetch(1024);
        s.record_proxy_fetch(2048);
        assert_eq!(s.store_hits(), 2);
        assert_eq!(s.store_misses(), 1);
        assert_eq!(s.store_spills(), 2);
        assert_eq!(s.store_spill_bytes(), 768);
        assert_eq!(s.store_restores(), 1);
        assert_eq!(s.proxy_puts(), 1);
        assert_eq!(s.proxy_put_bytes(), 1024);
        assert_eq!(s.proxy_fetches(), 2);
        assert_eq!(s.proxy_fetch_bytes(), 3072);
        // Store traffic is data plane: it never shows up in the paper's
        // control-message accounting.
        assert_eq!(s.scheduler_control_messages(), 0);
        assert_eq!(s.bridge_metadata_messages(), 0);
    }

    #[test]
    fn straggler_counter_accumulates_and_stays_out_of_control_accounting() {
        let s = SchedulerStats::new();
        assert_eq!(s.stragglers_flagged(), 0);
        s.record_straggler();
        s.record_straggler();
        assert_eq!(s.stragglers_flagged(), 2);
        // Telemetry flags are observability metadata, never paper-accounted
        // control or bridge messages.
        assert_eq!(s.scheduler_control_messages(), 0);
        assert_eq!(s.bridge_metadata_messages(), 0);
    }

    #[test]
    fn tenant_counters_accumulate_and_stay_out_of_control_accounting() {
        let s = SchedulerStats::new();
        assert_eq!(s.notifies_dropped(), 0);
        assert_eq!(s.admission_rejections(), 0);
        assert!(s.tenant_snapshot().is_empty());
        s.record_notify_dropped();
        s.record_tenant_tasks(2, 5);
        s.record_tenant_tasks(1, 3);
        s.record_tenant_bytes(2, 4096);
        s.set_tenant_queue_depth(2, 7);
        s.record_admission_rejection(2);
        assert_eq!(s.notifies_dropped(), 1);
        assert_eq!(s.admission_rejections(), 1);
        assert_eq!(s.tenant(1).tasks, 3);
        let t2 = s.tenant(2);
        assert_eq!(
            (t2.tasks, t2.bytes, t2.queue_depth, t2.admission_rejections),
            (5, 4096, 7, 1)
        );
        let snap = s.tenant_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, 1, "sorted by session id");
        assert_eq!(s.tenant(99), TenantCounters::default());
        // Tenancy bookkeeping lives outside MsgClass: the paper's control
        // and bridge-metadata accounting stays untouched.
        assert_eq!(s.scheduler_control_messages(), 0);
        assert_eq!(s.bridge_metadata_messages(), 0);
    }

    #[test]
    fn worker_heartbeats_stay_out_of_bridge_metadata() {
        let s = SchedulerStats::new();
        s.record(MsgClass::WorkerHeartbeat, 0);
        assert_eq!(s.bridge_metadata_messages(), 0);
        assert_eq!(s.scheduler_control_messages(), 1);
    }

    #[test]
    fn control_plane_totals_exclude_data_plane() {
        let s = SchedulerStats::new();
        s.record(MsgClass::GraphSubmit, 0);
        s.record(MsgClass::ScatterData, 1 << 20);
        s.record(MsgClass::GatherData, 1 << 20);
        s.record(MsgClass::PeerFetch, 1 << 20);
        assert_eq!(s.scheduler_control_messages(), 1);
        assert_eq!(s.bridge_metadata_messages(), 0);
    }
}
