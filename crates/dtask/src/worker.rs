//! Worker: executor slots + always-responsive data-server thread.
//!
//! Splitting the worker into compute and comm halves mirrors the
//! comm/executor split of a Dask worker and makes peer dependency fetches
//! deadlock-free: the data server never blocks on task execution, so two
//! workers can fetch from each other while both executors are busy.
//!
//! The execution pipeline is built around three ideas:
//!
//! 1. **Concurrent dependency gather** — all missing dependencies of a task
//!    are requested from peers *at once* (one reply channel each) and then
//!    collected, so the gather latency is the slowest single fetch instead of
//!    the sum of all fetches ([`GatherMode::Concurrent`]).
//! 2. **Executor slots** — a worker runs a pool of executor threads draining
//!    one shared inbox, so a task blocked in a gather (or in a blocking op)
//!    does not stall the tasks queued behind it.
//! 3. **Replica feedback** — blocks cached during a gather are reported to
//!    the scheduler ([`SchedMsg::AddReplica`]) so later placement decisions
//!    see the new copies and stop re-fetching.

use crate::datum::{Datum, DatumRef};
use crate::key::Key;
use crate::msg::ErrorCause;
use crate::msg::{Assignment, DataMsg, ExecMsg, SchedMsg, TaskError, WorkerId};
use crate::spec::{FusedInput, OpRegistry, TaskSpec, Value};
use crate::stats::{MsgClass, SchedulerStats};
use crate::store::ObjectStore;
use crate::telemetry::TelemetryHub;
use crate::trace::{EventKind, TraceHandle};
use crate::transport::{DataReply, Endpoint, ReplyRx};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared object store of one worker (data server + every executor slot).
pub type WorkerStore = Arc<ObjectStore>;

/// How an executor resolves a task's missing dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GatherMode {
    /// One peer request at a time; wait for each reply before the next.
    Serial,
    /// Fan out every request up front, then collect the replies.
    #[default]
    Concurrent,
}

/// The data-server half: serves `Put`/`Get`/`Delete` until shutdown.
/// Replies are routed back through the transport via the [`ReplyTo`] token
/// carried by each request, so requesters never hand us a live channel.
///
/// [`ReplyTo`]: crate::transport::ReplyTo
pub fn run_data_server(store: WorkerStore, rx: Receiver<DataMsg>, endpoint: Endpoint) {
    while let Ok(msg) = rx.recv() {
        match msg {
            DataMsg::Put { key, value, ack } => {
                store.insert(key, value);
                endpoint.reply(ack, DataReply::PutAck);
            }
            DataMsg::Get { key, reply } => {
                let value = store.get(&key);
                endpoint.reply(
                    reply,
                    DataReply::Value(value.ok_or_else(|| format!("key {key} not on this worker"))),
                );
            }
            DataMsg::Fetch { key, reply } => {
                // Proxy-handle resolution: the same store lookup as `Get`
                // (spilled entries restore transparently), but served and
                // traced as data-plane traffic.
                let value = store.get(&key);
                if let Some(v) = &value {
                    store.note_fetch_served(&key, v.nbytes());
                }
                endpoint.reply(
                    reply,
                    DataReply::Value(
                        value.ok_or_else(|| format!("proxied key {key} not on this worker")),
                    ),
                );
            }
            DataMsg::Delete { keys } => {
                store.remove(&keys);
            }
            DataMsg::Sweep { session } => {
                store.remove_session(session);
            }
            DataMsg::Stats { reply } => {
                let (keys, bytes) = store.report();
                endpoint.reply(
                    reply,
                    DataReply::Stats {
                        keys: keys as u64,
                        bytes,
                    },
                );
            }
            DataMsg::Shutdown => break,
        }
    }
}

/// A failed dependency resolution, with the signal recovery needs: which
/// candidate (if any) *hung up* mid-request (the transport cancels the reply
/// slot when a data server dies) as opposed to merely not holding the key.
/// The scheduler resubmits hung-up gathers — and treats the hung peer's id as
/// direct evidence of death, ahead of the heartbeat timeout; plain misses
/// stay hard errors.
struct GatherError {
    message: String,
    /// First peer that hung up mid-request, if any.
    hung_peer: Option<WorkerId>,
}

/// A task failure as reported to the scheduler: the originating key (an
/// interior fused stage, possibly), the message, and — when a dead peer
/// rather than the computation itself is to blame — the peer that hung up.
struct TaskFailure {
    origin: Key,
    message: String,
    hung_peer: Option<WorkerId>,
}

/// One in-flight peer fetch of the concurrent gather.
struct PendingFetch<'a> {
    /// Index into the task's input vector.
    slot: usize,
    /// The dependency key.
    key: &'a Key,
    /// Candidate holders (excluding this worker).
    candidates: Vec<WorkerId>,
    /// Position in `candidates` of the peer already asked.
    asked: usize,
    /// Reply slot of the outstanding request.
    reply_rx: ReplyRx,
    /// Trace span start of this fetch (request launch), when tracing is on.
    trace_t0: Option<Instant>,
}

/// One executor slot: runs tasks, fetching dependencies from peers as needed.
/// A worker spawns several of these over one cloned inbox [`Receiver`].
pub struct Executor {
    /// This worker's id.
    pub id: WorkerId,
    /// Local store (shared with the data server and sibling slots).
    pub store: WorkerStore,
    /// Inbox of execution requests (shared by all slots of this worker).
    pub rx: Receiver<ExecMsg>,
    /// Loopback sender onto the shared inbox: a slot receiving an
    /// `ExecuteBatch` re-enqueues the tail here so sibling slots run it
    /// concurrently instead of the whole batch serializing on one slot.
    /// Deliberately bypasses the transport — batch fan-out is intra-worker
    /// requeueing, not traffic between actors, so it must not count as
    /// bytes-on-the-wire.
    pub exec_tx: Sender<ExecMsg>,
    /// Outbound route to the scheduler (completion/replica reports) and to
    /// peer data servers (dependency fetches).
    pub endpoint: Endpoint,
    /// Shared op registry.
    pub registry: OpRegistry,
    /// Shared counters.
    pub stats: Arc<SchedulerStats>,
    /// Dependency gather strategy.
    pub gather_mode: GatherMode,
    /// Work-stealing idle poll: with `Some(poll)`, a slot that waits `poll`
    /// without receiving work sends a [`SchedMsg::StealRequest`] and keeps
    /// waiting. `None` (the default) keeps the loop on a plain blocking
    /// `recv` — zero overhead, identical to the pre-stealing runtime.
    pub steal_poll: Option<Duration>,
    /// Urgent lane carrying [`ExecMsg::Steal`] probes. Shared (cloned)
    /// across this worker's slots like the main inbox, but drained with
    /// priority between tasks: a probe queued behind a deep backlog on the
    /// FIFO inbox would only ever find an empty queue.
    pub steal_rx: Receiver<ExecMsg>,
    /// Lifecycle event recorder for this slot (empty when tracing is off).
    pub tracer: TraceHandle,
    /// Live-telemetry hub: exec durations feed the online straggler
    /// detector. `None` when telemetry is off — the exec path then pays a
    /// single branch and never reads the clock for it.
    pub telemetry: Option<Arc<TelemetryHub>>,
}

impl Executor {
    /// Run until `Shutdown`.
    pub fn run(self) {
        'outer: loop {
            // Answer pending steal probes before picking up the next task:
            // this is what lets a thief drain a victim that is busy for the
            // length of its whole backlog.
            self.drain_steals();
            let idle_from = Instant::now();
            let msg = match self.steal_poll {
                None => match self.rx.recv() {
                    Ok(msg) => msg,
                    Err(_) => break,
                },
                Some(poll) => loop {
                    // Idle for a full poll interval: ask the scheduler to
                    // route a loaded peer's queued work here, keep waiting.
                    match self.rx.recv_timeout(poll) {
                        Ok(msg) => break msg,
                        Err(RecvTimeoutError::Timeout) => {
                            self.drain_steals();
                            self.endpoint
                                .send_sched(SchedMsg::StealRequest { worker: self.id });
                        }
                        Err(RecvTimeoutError::Disconnected) => break 'outer,
                    }
                },
            };
            self.stats
                .record_exec_idle(idle_from.elapsed().as_nanos() as u64);
            match msg {
                ExecMsg::Execute(assignment) => self.run_one(assignment),
                ExecMsg::ExecuteBatch { tasks } => {
                    // Run the head inline; fan the tail back onto the shared
                    // inbox so idle sibling slots pick it up immediately.
                    let mut it = tasks.into_iter();
                    if let Some(head) = it.next() {
                        for assignment in it {
                            let _ = self.exec_tx.send(ExecMsg::Execute(assignment));
                        }
                        self.run_one(head);
                    }
                }
                ExecMsg::Steal { thief, max } => self.forward_stolen(thief, max),
                ExecMsg::Shutdown => break,
            }
        }
    }

    /// Answer every steal probe waiting on the urgent lane. The first one
    /// takes whatever the inbox holds; later probes naturally report empty
    /// `Stolen` replies, which the scheduler books as misses.
    fn drain_steals(&self) {
        while let Ok(msg) = self.steal_rx.try_recv() {
            if let ExecMsg::Steal { thief, max } = msg {
                self.forward_stolen(thief, max);
            }
        }
    }

    /// Victim half of the steal protocol: drain queued-but-unstarted
    /// assignments from this worker's shared inbox, hand up to `max` of
    /// them to `thief`, and re-enqueue everything else. The forwarded keys
    /// are reported to the scheduler first ([`SchedMsg::Stolen`]) so
    /// `assigned_to` re-points before the thief can report completion.
    fn forward_stolen(&self, thief: WorkerId, max: usize) {
        let mut stolen: Vec<Assignment> = Vec::new();
        let mut keep: Vec<ExecMsg> = Vec::new();
        while stolen.len() < max {
            match self.rx.try_recv() {
                Ok(ExecMsg::Execute(a)) => stolen.push(a),
                Ok(ExecMsg::ExecuteBatch { mut tasks }) => {
                    let need = max - stolen.len();
                    if tasks.len() > need {
                        let rest = tasks.split_off(need);
                        keep.push(ExecMsg::ExecuteBatch { tasks: rest });
                    }
                    stolen.extend(tasks);
                }
                Ok(ExecMsg::Steal { thief: other, .. }) => {
                    // A second concurrent steal aimed at this worker: what
                    // was available is already going to the first thief.
                    // Answer the miss so the scheduler's books balance.
                    self.endpoint.send_sched(SchedMsg::Stolen {
                        victim: self.id,
                        thief: other,
                        keys: Vec::new(),
                    });
                }
                Ok(msg @ ExecMsg::Shutdown) => {
                    // Keep the slot-count invariant: the shutdown must still
                    // reach a sibling (or come back to us).
                    keep.push(msg);
                    break;
                }
                Err(_) => break,
            }
        }
        for msg in keep {
            let _ = self.exec_tx.send(msg);
        }
        self.endpoint.send_sched(SchedMsg::Stolen {
            victim: self.id,
            thief,
            keys: stolen.iter().map(|a| a.spec.key.clone()).collect(),
        });
        match stolen.len() {
            0 => {}
            1 => {
                let assignment = stolen.pop().expect("len checked");
                self.endpoint.send_exec(thief, ExecMsg::Execute(assignment));
            }
            _ => {
                self.endpoint
                    .send_exec(thief, ExecMsg::ExecuteBatch { tasks: stolen });
            }
        }
    }

    /// Execute one task and report the outcome to the scheduler.
    fn run_one(&self, assignment: Assignment) {
        // Queue delay: scheduler placement → this slot picking the task up.
        self.stats
            .record_queue_delay(assignment.assigned_at.elapsed().as_nanos() as u64);
        let Assignment {
            spec,
            dep_locations,
            ..
        } = assignment;
        let busy_from = Instant::now();
        let key = spec.key.clone();
        match self.execute(&spec, &dep_locations) {
            Ok(result) => {
                let nbytes = result.nbytes();
                self.store.insert(key.clone(), result);
                self.endpoint.send_sched(SchedMsg::TaskFinished {
                    worker: self.id,
                    key,
                    nbytes,
                });
            }
            Err(failure) => {
                // Peer loss outranks the other attributions — it tells the
                // scheduler the failure is environmental (retryable), not a
                // property of the task. Otherwise an origin differing from
                // the spec key means an interior fused stage failed.
                let cause = if failure.hung_peer.is_some() {
                    ErrorCause::PeerLost
                } else if failure.origin == key {
                    ErrorCause::Direct
                } else {
                    ErrorCause::FusedStage {
                        stored_key: key.clone(),
                    }
                };
                self.endpoint.send_sched(SchedMsg::TaskErred {
                    worker: self.id,
                    stored_key: key,
                    error: TaskError::new(failure.origin, failure.message).with_cause(cause),
                    failed_peer: failure.hung_peer,
                });
            }
        }
        self.stats
            .record_exec_busy(busy_from.elapsed().as_nanos() as u64);
    }

    /// Ask `peer` for `key`; returns the reply slot of the request. A dead
    /// peer surfaces as a recv error on the slot (the transport cancels it),
    /// never as a hang.
    fn request_from_peer(&self, peer: WorkerId, key: &Key) -> ReplyRx {
        let (reply, reply_rx) = self.endpoint.reply_slot();
        self.endpoint.send_data(
            peer,
            DataMsg::Get {
                key: key.clone(),
                reply,
            },
        );
        reply_rx
    }

    /// Cache a fetched block locally (a replica, like Dask's dependency
    /// gather) and account for the transfer.
    fn cache_replica(&self, key: &Key, value: &Datum, replicas: &mut Vec<(Key, u64)>) {
        self.stats.record(MsgClass::PeerFetch, value.nbytes());
        self.store.insert(key.clone(), value.clone());
        replicas.push((key.clone(), value.nbytes()));
    }

    /// Resolve one dependency serially: local store first, then each peer in
    /// turn. Used by [`GatherMode::Serial`] and as the fallback when a
    /// concurrent fetch's first candidate fails.
    fn fetch_dep_serial(
        &self,
        key: &Key,
        candidates: &[WorkerId],
        skip: usize,
        replicas: &mut Vec<(Key, u64)>,
    ) -> Result<Datum, GatherError> {
        if let Some(v) = self.store.get(key) {
            return Ok(v);
        }
        let mut hung_peer = None;
        for (i, &peer) in candidates.iter().enumerate() {
            if i < skip {
                continue;
            }
            let t0 = self.tracer.start();
            let reply_rx = self.request_from_peer(peer, key);
            match reply_rx.recv().map(DataReply::into_value) {
                Ok(Ok(value)) => {
                    self.tracer
                        .span(EventKind::GatherDep, t0, Some(key), peer as u64);
                    self.cache_replica(key, &value, replicas);
                    return Ok(value);
                }
                // The peer answered "don't have it": a routing miss.
                Ok(Err(_)) => continue,
                // The peer hung up mid-request (reply slot cancelled): it
                // died holding our dependency.
                Err(_) => {
                    hung_peer.get_or_insert(peer);
                    continue;
                }
            }
        }
        Err(GatherError {
            message: format!(
                "dependency {key} unavailable (tried {} peers{})",
                candidates.len(),
                if hung_peer.is_some() {
                    ", ≥1 hung up"
                } else {
                    ""
                }
            ),
            hung_peer,
        })
    }

    /// Resolve every dependency of `spec`. Local blocks come straight from
    /// the store; the rest are gathered from peers per [`GatherMode`]. On
    /// success the inputs are ordered like `spec.deps`.
    fn gather_deps(
        &self,
        spec: &TaskSpec,
        dep_locations: &[(Key, Vec<WorkerId>)],
        replicas: &mut Vec<(Key, u64)>,
    ) -> Result<Vec<Datum>, GatherError> {
        let mut inputs: Vec<Option<Datum>> = vec![None; spec.deps.len()];
        let mut missing: Vec<(usize, &Key)> = Vec::new();
        for (i, dep) in spec.deps.iter().enumerate() {
            match self.store.get(dep) {
                Some(v) => inputs[i] = Some(v),
                None => missing.push((i, dep)),
            }
        }
        if !missing.is_empty() {
            let gather_from = Instant::now();
            let batch_t0 = self.tracer.start();
            let n_remote = missing.len() as u64;
            let candidates_of = |key: &Key| -> Vec<WorkerId> {
                dep_locations
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, locs)| locs.iter().copied().filter(|&w| w != self.id).collect())
                    .unwrap_or_default()
            };
            match self.gather_mode {
                GatherMode::Serial => {
                    for (slot, key) in missing {
                        inputs[slot] =
                            Some(self.fetch_dep_serial(key, &candidates_of(key), 0, replicas)?);
                    }
                }
                GatherMode::Concurrent => {
                    // Phase 1: fan out one request per missing dep to its
                    // first candidate holder.
                    let mut pending: Vec<PendingFetch> = Vec::with_capacity(missing.len());
                    for (slot, key) in missing {
                        let candidates = candidates_of(key);
                        let trace_t0 = self.tracer.start();
                        match candidates.first() {
                            // A dead first candidate answers with a recv
                            // error on the slot (the transport cancels it),
                            // which phase 2's fallback handles like a miss.
                            Some(&peer) => {
                                let reply_rx = self.request_from_peer(peer, key);
                                pending.push(PendingFetch {
                                    slot,
                                    key,
                                    candidates,
                                    asked: 0,
                                    reply_rx,
                                    trace_t0,
                                });
                            }
                            // No candidate at all: the serial path below
                            // re-checks the local store (a scatter may have
                            // landed meanwhile) before giving up.
                            None => {
                                inputs[slot] =
                                    Some(self.fetch_dep_serial(key, &candidates, 0, replicas)?)
                            }
                        }
                    }
                    // Phase 2: collect replies; a failed fetch falls back to
                    // the remaining candidates serially.
                    for fetch in pending {
                        match fetch.reply_rx.recv().map(DataReply::into_value) {
                            Ok(Ok(value)) => {
                                self.tracer.span(
                                    EventKind::GatherDep,
                                    fetch.trace_t0,
                                    Some(fetch.key),
                                    fetch.candidates[fetch.asked] as u64,
                                );
                                self.cache_replica(fetch.key, &value, replicas);
                                inputs[fetch.slot] = Some(value);
                            }
                            outcome => {
                                // A recv error (vs. a "don't have it" reply)
                                // means the asked peer hung up — keep that
                                // attribution even if the serial fallback
                                // fails for a different reason.
                                let hung = outcome.is_err().then(|| fetch.candidates[fetch.asked]);
                                inputs[fetch.slot] = Some(
                                    self.fetch_dep_serial(
                                        fetch.key,
                                        &fetch.candidates,
                                        fetch.asked + 1,
                                        replicas,
                                    )
                                    .map_err(|mut e| {
                                        if e.hung_peer.is_none() {
                                            e.hung_peer = hung;
                                        }
                                        e
                                    })?,
                                );
                            }
                        }
                    }
                }
            }
            self.tracer
                .span(EventKind::GatherBatch, batch_t0, Some(&spec.key), n_remote);
            self.stats
                .record_gather(n_remote, gather_from.elapsed().as_nanos() as u64);
        }
        Ok(inputs
            .into_iter()
            .map(|v| v.expect("every dependency resolved or we returned Err"))
            .collect())
    }

    /// Resolve every [`DatumRef`] handle inside `value` (recursing into
    /// lists) to its payload: the local store first (zero-copy on the
    /// holder), then a concurrent [`DataMsg::Fetch`] fan-out to the holders.
    /// A holder that hangs up mid-fetch is reported like a hung gather peer,
    /// so the scheduler gets the same direct death evidence.
    fn resolve_params(&self, params: &Datum) -> Result<Datum, GatherError> {
        if !params.contains_ref() {
            return Ok(params.clone());
        }
        let mut handles: Vec<DatumRef> = Vec::new();
        collect_refs(params, &mut handles);
        let mut resolved: HashMap<Key, Datum> = HashMap::new();
        let mut pending: Vec<(DatumRef, ReplyRx, Option<Instant>)> = Vec::new();
        for handle in handles {
            if let Some(v) = self.store.get(&handle.key) {
                resolved.insert(handle.key.clone(), v);
                continue;
            }
            let t0 = self.tracer.start();
            let (reply, reply_rx) = self.endpoint.reply_slot();
            self.endpoint.send_data(
                handle.holder,
                DataMsg::Fetch {
                    key: handle.key.clone(),
                    reply,
                },
            );
            pending.push((handle, reply_rx, t0));
        }
        for (handle, reply_rx, t0) in pending {
            match reply_rx.recv().map(DataReply::into_value) {
                Ok(Ok(value)) => {
                    self.stats.record_proxy_fetch(value.nbytes());
                    self.tracer
                        .span(EventKind::ProxyFetch, t0, Some(&handle.key), value.nbytes());
                    resolved.insert(handle.key.clone(), value);
                }
                Ok(Err(miss)) => {
                    return Err(GatherError {
                        message: format!(
                            "proxy {} unresolvable at worker {}: {miss}",
                            handle.key, handle.holder
                        ),
                        hung_peer: None,
                    });
                }
                // The holder hung up mid-fetch (reply slot cancelled): it
                // died holding the payload.
                Err(_) => {
                    return Err(GatherError {
                        message: format!(
                            "proxy {} lost: holder worker {} hung up",
                            handle.key, handle.holder
                        ),
                        hung_peer: Some(handle.holder),
                    });
                }
            }
        }
        Ok(substitute_refs(params, &resolved))
    }

    /// Run one registered op under a panic guard.
    fn run_op(&self, op_name: &str, params: &Datum, inputs: &[Datum]) -> Result<Datum, String> {
        let op = self
            .registry
            .get(op_name)
            .ok_or_else(|| format!("unknown op '{op_name}'"))?;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| op(params, inputs)))
            .unwrap_or_else(|p| {
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<panic>".into());
                Err(format!("op '{op_name}' panicked: {msg}"))
            })
    }

    /// Run a task. Errors carry the key of the *originating* computation —
    /// for a fused chain that is the failing interior stage, not the spec
    /// key, so error attribution matches the unfused graph exactly.
    fn execute(
        &self,
        spec: &TaskSpec,
        dep_locations: &[(Key, Vec<WorkerId>)],
    ) -> Result<Datum, TaskFailure> {
        let mut replicas = Vec::new();
        let gathered = self.gather_deps(spec, dep_locations, &mut replicas);
        // Report new replicas even if some other dependency failed: the
        // cached blocks exist either way and placement should know.
        if !replicas.is_empty() {
            self.endpoint.send_sched(SchedMsg::AddReplica {
                worker: self.id,
                entries: replicas,
            });
        }
        let inputs = gathered.map_err(|e| TaskFailure {
            origin: spec.key.clone(),
            message: e.message,
            hung_peer: e.hung_peer,
        })?;
        // Proxy-handle parameters resolve out-of-band *before* the exec span
        // starts: the fetches are data movement, not computation. One
        // resolved datum per op — `[params]` for a plain op, one per stage
        // for a fused chain.
        let stage_params: Vec<Datum> = match &spec.value {
            Value::Op { params, .. } => vec![self.resolve_params(params)],
            Value::Fused { stages } => stages
                .iter()
                .map(|stage| self.resolve_params(&stage.params))
                .collect(),
        }
        .into_iter()
        .collect::<Result<_, _>>()
        .map_err(|e| TaskFailure {
            origin: spec.key.clone(),
            message: e.message,
            hung_peer: e.hung_peer,
        })?;
        // The exec span covers op computation only — the gather above records
        // its own spans, keeping the lifecycle phases distinct in the trace.
        // The straggler detector times the same region with its own clock
        // read: telemetry and tracing toggle independently.
        let exec_t0 = self.tracer.start();
        let straggle_t0 = self.telemetry.as_ref().map(|_| Instant::now());
        let fail = |origin: &Key, message: String| TaskFailure {
            origin: origin.clone(),
            message,
            hung_peer: None,
        };
        let result = match &spec.value {
            Value::Op { op, .. } => self
                .run_op(op, &stage_params[0], &inputs)
                .map_err(|m| fail(&spec.key, m)),
            Value::Fused { stages } => {
                // Evaluate the chain inline; intermediate results live only
                // on this slot's stack — one store insert, one TaskFinished.
                let mut results: Vec<Datum> = Vec::with_capacity(stages.len());
                for (s_idx, stage) in stages.iter().enumerate() {
                    let stage_inputs: Vec<Datum> = stage
                        .inputs
                        .iter()
                        .map(|input| match *input {
                            FusedInput::Dep(i) => inputs[i].clone(),
                            FusedInput::Stage(s) => results[s].clone(),
                        })
                        .collect();
                    let r = self
                        .run_op(&stage.op, &stage_params[s_idx], &stage_inputs)
                        .map_err(|m| fail(&stage.key, m))?;
                    results.push(r);
                }
                results
                    .pop()
                    .ok_or_else(|| fail(&spec.key, "fused spec with zero stages".to_string()))
            }
        };
        self.tracer
            .span(EventKind::Exec, exec_t0, Some(&spec.key), self.id as u64);
        if let (Some(hub), Some(t0)) = (&self.telemetry, straggle_t0) {
            let dur_ns = t0.elapsed().as_nanos() as u64;
            let op_kind = match &spec.value {
                Value::Op { op, .. } => op.as_str(),
                Value::Fused { .. } => "fused",
            };
            if hub.observe_exec(op_kind, &spec.key, self.id, dur_ns) {
                self.tracer
                    .instant(EventKind::Straggler, Some(&spec.key), dur_ns);
            }
        }
        result
    }
}

/// Collect the distinct [`DatumRef`] handles inside `value` (lists recurse).
fn collect_refs(value: &Datum, out: &mut Vec<DatumRef>) {
    match value {
        Datum::Ref(r) if !out.iter().any(|h| h.key == r.key) => out.push(r.clone()),
        Datum::List(items) => {
            for item in items {
                collect_refs(item, out);
            }
        }
        _ => {}
    }
}

/// Rebuild `value` with every handle replaced by its resolved payload.
fn substitute_refs(value: &Datum, resolved: &HashMap<Key, Datum>) -> Datum {
    match value {
        Datum::Ref(r) => resolved
            .get(&r.key)
            .expect("resolve_params resolved every handle")
            .clone(),
        Datum::List(items) => {
            Datum::List(items.iter().map(|d| substitute_refs(d, resolved)).collect())
        }
        other => other.clone(),
    }
}
