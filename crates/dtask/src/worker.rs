//! Worker: executor thread + always-responsive data-server thread.
//!
//! Splitting the worker into two threads mirrors the comm/executor split of a
//! Dask worker and makes peer dependency fetches deadlock-free: the data
//! server never blocks on task execution, so two workers can fetch from each
//! other while both executors are busy.

use crate::datum::Datum;
use crate::key::Key;
use crate::msg::{DataMsg, ExecMsg, SchedMsg, WorkerId};
use crate::spec::OpRegistry;
use crate::stats::{MsgClass, SchedulerStats};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared key→value store of one worker.
pub type WorkerStore = Arc<Mutex<HashMap<Key, Datum>>>;

/// The data-server half: serves `Put`/`Get`/`Delete` until shutdown.
pub fn run_data_server(store: WorkerStore, rx: Receiver<DataMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            DataMsg::Put { key, value, ack } => {
                store.lock().insert(key, value);
                let _ = ack.send(());
            }
            DataMsg::Get { key, reply } => {
                let value = store.lock().get(&key).cloned();
                let _ = reply.send(value.ok_or_else(|| format!("key {key} not on this worker")));
            }
            DataMsg::Delete { keys } => {
                let mut guard = store.lock();
                for key in keys {
                    guard.remove(&key);
                }
            }
            DataMsg::Stats { reply } => {
                let guard = store.lock();
                let keys = guard.len();
                let bytes = guard.values().map(|d| d.nbytes()).sum();
                let _ = reply.send((keys, bytes));
            }
            DataMsg::Shutdown => break,
        }
    }
}

/// The executor half: runs tasks, fetching dependencies from peers as needed.
pub struct Executor {
    /// This worker's id.
    pub id: WorkerId,
    /// Local store (shared with the data server).
    pub store: WorkerStore,
    /// Inbox of execution requests.
    pub rx: Receiver<ExecMsg>,
    /// Scheduler channel for completion reports.
    pub sched_tx: Sender<SchedMsg>,
    /// Data channels of every worker (peer fetches).
    pub peer_data: Vec<Sender<DataMsg>>,
    /// Shared op registry.
    pub registry: OpRegistry,
    /// Shared counters.
    pub stats: Arc<SchedulerStats>,
}

impl Executor {
    /// Run until `Shutdown`.
    pub fn run(self) {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                ExecMsg::Execute { spec, dep_locations } => {
                    let key = spec.key.clone();
                    match self.execute(spec, &dep_locations) {
                        Ok(result) => {
                            let nbytes = result.nbytes();
                            self.store.lock().insert(key.clone(), result);
                            let _ = self.sched_tx.send(SchedMsg::TaskFinished {
                                worker: self.id,
                                key,
                                nbytes,
                            });
                        }
                        Err(error) => {
                            let _ = self.sched_tx.send(SchedMsg::TaskErred {
                                worker: self.id,
                                key,
                                error,
                            });
                        }
                    }
                }
                ExecMsg::Shutdown => break,
            }
        }
    }

    /// Resolve one dependency: local store first, then peers.
    fn fetch_dep(&self, key: &Key, locations: &[WorkerId]) -> Result<Datum, String> {
        if let Some(v) = self.store.lock().get(key).cloned() {
            return Ok(v);
        }
        for &peer in locations {
            if peer == self.id {
                continue;
            }
            let (reply_tx, reply_rx) = bounded(1);
            if self.peer_data[peer]
                .send(DataMsg::Get {
                    key: key.clone(),
                    reply: reply_tx,
                })
                .is_err()
            {
                continue;
            }
            match reply_rx.recv() {
                Ok(Ok(value)) => {
                    self.stats.record(MsgClass::PeerFetch, value.nbytes());
                    // Cache locally (replica), like Dask's dependency gather.
                    self.store.lock().insert(key.clone(), value.clone());
                    return Ok(value);
                }
                Ok(Err(_)) | Err(_) => continue,
            }
        }
        Err(format!(
            "dependency {key} unavailable (tried {} peers)",
            locations.len()
        ))
    }

    fn execute(
        &self,
        spec: crate::spec::TaskSpec,
        dep_locations: &[(Key, Vec<WorkerId>)],
    ) -> Result<Datum, String> {
        let op = self
            .registry
            .get(&spec.op)
            .ok_or_else(|| format!("unknown op '{}'", spec.op))?;
        let mut inputs = Vec::with_capacity(spec.deps.len());
        for dep in &spec.deps {
            let locations = dep_locations
                .iter()
                .find(|(k, _)| k == dep)
                .map(|(_, locs)| locs.as_slice())
                .unwrap_or(&[]);
            inputs.push(self.fetch_dep(dep, locations)?);
        }
        let params = spec.params.clone();
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| op(&params, &inputs)))
            .unwrap_or_else(|p| {
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<panic>".into());
                Err(format!("op '{}' panicked: {msg}", spec.op))
            })
    }
}
