//! The centralized scheduler: task-state machine and placement.
//!
//! State machine (superset of Dask's, with the paper's addition):
//!
//! ```text
//!            register_external
//!    ┌──────────────────────────► External ──┐ update_data(external=true)
//!    │                                        ▼ (handled like task-finished)
//!  (new) ── submit ──► Waiting ──► Ready ──► Processing ──► Memory
//!    │                                        │
//!    └── scatter/update_data ─────────────────┴──► Erred
//! ```
//!
//! The crucial behaviour from §2.2 of the paper: when an `UpdateData` with
//! `external = true` arrives, the scheduler does **not** merely record the
//! data (classic `scatter`); it transitions the task `External → Memory` and
//! then runs the same dependent-unblocking cascade as `handle_task_finished`,
//! so graphs submitted *before the data existed* start flowing.

use crate::datum::Datum;
use crate::key::{Key, SessionId, DEFAULT_SESSION};
use crate::msg::{ClientId, ClientMsg, DataMsg, ErrorCause, SchedMsg, TaskError, WorkerId};
use crate::policy::{PolicyConfig, SchedulingPolicy, WorkerState};
use crate::spec::TaskSpec;
use crate::stats::{MsgClass, SchedulerStats};
use crate::telemetry::TelemetryHub;
use crate::trace::{EventKind, TraceHandle};
use crate::transport::Endpoint;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the scheduler loop drains its inbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// One message per iteration, `assign_ready` after each — the classic
    /// Dask-style loop (and the A/B baseline).
    PerMessage,
    /// Drain up to `max_burst` queued messages per iteration (`recv` then
    /// bounded `try_recv`), coalesce `AddReplica`/heartbeat bookkeeping
    /// within the burst, run `assign_ready` once at the end, and send each
    /// worker one `ExecMsg::ExecuteBatch` instead of one message per task.
    Batched {
        /// Upper bound on messages absorbed per burst (≥ 1).
        max_burst: usize,
    },
}

impl Default for IngestMode {
    fn default() -> Self {
        IngestMode::Batched { max_burst: 64 }
    }
}

/// Failure-detection and recovery parameters for the scheduler loop.
///
/// The paper's DEISA variants map onto `heartbeat_timeout` directly:
/// DEISA1 pings every 5 s and DEISA2 every 60 s, so a finite timeout of a
/// few intervals detects their silence; DEISA3 sends no heartbeats at all —
/// `None` (the default) reproduces that trade of fault tolerance for the
/// `1 + R` message count, and the liveness sweep never runs.
#[derive(Debug, Clone)]
pub struct LivenessConfig {
    /// Declare a peer (worker or heartbeating client) dead after this long
    /// without a heartbeat. `None` disables failure detection entirely.
    pub heartbeat_timeout: Option<Duration>,
    /// Bounded resubmission budget per task; once exceeded the task errs
    /// with [`ErrorCause::PeerLost`].
    pub max_retries: u32,
    /// Base of the exponential backoff between resubmissions (the n-th
    /// retry waits `base · 2^(n-1)`).
    pub retry_backoff: Duration,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig {
            heartbeat_timeout: None,
            max_retries: 3,
            retry_backoff: Duration::from_millis(10),
        }
    }
}

/// Scheduler-side task states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Paper §2.2: known to the scheduler, produced by an external
    /// environment; not schedulable nor runnable here.
    External,
    /// Waiting on dependencies.
    Waiting,
    /// All dependencies in memory; queued for placement.
    Ready,
    /// Sent to a worker.
    Processing,
    /// Result available on ≥1 worker.
    Memory,
    /// Failed (or a dependency failed).
    Erred,
}

struct TaskEntry {
    spec: Option<Arc<TaskSpec>>,
    state: TaskState,
    deps: Vec<Key>,
    dependents: Vec<Key>,
    /// Number of dependencies not yet in memory.
    n_waiting: usize,
    who_has: Vec<WorkerId>,
    nbytes: u64,
    error: Option<TaskError>,
    /// Clients to notify on completion.
    waiters: Vec<ClientId>,
    /// Worker this task is processing on (recovery needs to know which
    /// in-flight tasks died with a worker).
    assigned_to: Option<WorkerId>,
    /// Resubmissions consumed after peer losses (bounded by
    /// [`LivenessConfig::max_retries`]; reset on success).
    retries: u32,
}

impl TaskEntry {
    fn bare(state: TaskState) -> Self {
        TaskEntry {
            spec: None,
            state,
            deps: Vec::new(),
            dependents: Vec::new(),
            n_waiting: 0,
            who_has: Vec::new(),
            nbytes: 0,
            error: None,
            waiters: Vec::new(),
            assigned_to: None,
            retries: 0,
        }
    }
}

#[derive(Default)]
struct QueueEntry {
    items: VecDeque<Datum>,
    poppers: VecDeque<ClientId>,
}

/// Per-tenant scheduler state. Only sessions other than
/// [`DEFAULT_SESSION`] get an entry — the single-tenant path never
/// touches this map.
#[derive(Default)]
struct SessionState {
    /// Every task key this session has submitted, registered, or
    /// scattered; teardown releases exactly this set.
    task_keys: HashSet<Key>,
    /// Submitted task keys not yet Memory/Erred — the admission-control
    /// denominator. A set, not a counter, so duplicate completion
    /// reports cannot drift it.
    inflight: HashSet<Key>,
}

/// The scheduler loop state.
pub struct Scheduler {
    rx: Receiver<SchedMsg>,
    /// Outbound route to every other actor (worker exec/data inboxes and
    /// client notification queues), via whichever transport backend the
    /// cluster was built with.
    endpoint: Endpoint,
    tasks: HashMap<Key, TaskEntry>,
    /// Placement policy: owns the ready queue (ordering) and the per-task
    /// worker decision. See [`crate::policy`].
    policy: Box<dyn SchedulingPolicy>,
    /// Worker-side stealing on? When set, assignments carry the *full*
    /// dependency placement (including deps the target already holds), so a
    /// stolen task can still locate every input from its new worker.
    steal_enabled: bool,
    /// Per-worker flag: a [`crate::msg::ExecMsg::Steal`] probe is in flight
    /// against this victim and has not been answered with `Stolen` yet. An
    /// idle thief polls faster than a victim finishes a task; without the
    /// guard every poll would queue another redundant probe.
    steal_inflight: Vec<bool>,
    workers: Vec<WorkerState>,
    /// Connected clients; notifications to unknown ids are dropped
    /// (and counted — see [`SchedulerStats::notifies_dropped`]).
    clients: HashSet<ClientId>,
    /// Variables, namespaced per session. Single-tenant traffic lives
    /// entirely under [`DEFAULT_SESSION`], so tenants never observe
    /// each other's names.
    variables: HashMap<(SessionId, String), Datum>,
    /// Clients blocked in `VariableGet { wait: true }` per variable.
    var_waiters: HashMap<(SessionId, String), Vec<ClientId>>,
    queues: HashMap<(SessionId, String), QueueEntry>,
    /// Per-tenant state; empty until a scoped client connects.
    sessions: HashMap<SessionId, SessionState>,
    /// Which session each scoped client belongs to. A session tears
    /// down when its last client disconnects or is swept dead.
    client_session: HashMap<ClientId, SessionId>,
    /// Per-session in-flight task cap. `None` (default) admits
    /// everything and never sends `SubmitOutcome` acks.
    admission_cap: Option<usize>,
    stats: Arc<SchedulerStats>,
    /// Lifecycle event recorder (empty handle when tracing is off).
    tracer: TraceHandle,
    /// Inbox drain strategy.
    ingest: IngestMode,
    /// Set by handlers that may have produced ready tasks; the run loop
    /// drains the ready queue once per burst instead of once per message.
    pending_schedule: bool,
    /// Failure-detection and retry policy.
    liveness: LivenessConfig,
    /// Default executor-slot count per worker, kept for workers that
    /// register dynamically without announcing a slot count.
    default_slots: usize,
    /// Last heartbeat per client (only clients that heartbeat are tracked,
    /// and only they can be declared dead).
    client_last_seen: HashMap<ClientId, Instant>,
    /// Tasks parked between a peer loss and their resubmission, with the
    /// instant each becomes due (unordered: the set stays tiny).
    backoff: Vec<(Instant, Key)>,
    /// When the liveness sweep last ran.
    last_sweep: Instant,
    /// Live-telemetry hub to publish gauges into (ready-queue depth, live
    /// workers, heartbeat gap ages), once per loop iteration. `None` when
    /// telemetry is off — the loop then pays a single branch.
    telemetry: Option<Arc<TelemetryHub>>,
}

impl Scheduler {
    /// Build a scheduler over its inbox and its transport endpoint (the
    /// worker table size comes from the endpoint's router).
    /// `slots_per_worker` is the executor-slot count of each worker (≥1),
    /// used to weight load comparisons during placement.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rx: Receiver<SchedMsg>,
        endpoint: Endpoint,
        slots_per_worker: usize,
        ingest: IngestMode,
        liveness: LivenessConfig,
        policy: PolicyConfig,
        stats: Arc<SchedulerStats>,
        tracer: TraceHandle,
        telemetry: Option<Arc<TelemetryHub>>,
        admission_cap: Option<usize>,
    ) -> Self {
        let slots = slots_per_worker.max(1);
        let n_workers = endpoint.n_workers();
        Scheduler {
            rx,
            endpoint,
            tasks: HashMap::new(),
            steal_enabled: policy.steal_enabled(),
            steal_inflight: vec![false; n_workers],
            policy: policy.build(),
            workers: (0..n_workers)
                .map(|_| WorkerState {
                    processing: 0,
                    slots,
                    alive: true,
                    last_seen: None,
                })
                .collect(),
            clients: HashSet::new(),
            variables: HashMap::new(),
            var_waiters: HashMap::new(),
            queues: HashMap::new(),
            sessions: HashMap::new(),
            client_session: HashMap::new(),
            admission_cap,
            stats,
            tracer,
            ingest,
            pending_schedule: false,
            liveness,
            default_slots: slots,
            client_last_seen: HashMap::new(),
            backoff: Vec::new(),
            last_sweep: Instant::now(),
            telemetry,
        }
    }

    /// Deployment mode: start with every worker slot *offline* (not
    /// schedulable) until a process attaches and registers through
    /// [`SchedMsg::RegisterWorker`]. The liveness sweep never declares an
    /// offline worker dead (it has no `last_seen`), so a slow-to-attach
    /// node is simply "not yet here", not a failure.
    pub fn with_offline_workers(mut self) -> Self {
        for w in &mut self.workers {
            w.alive = false;
        }
        self
    }

    /// Run until `Shutdown`.
    ///
    /// Each iteration blocks for one message, then (in batched mode) drains
    /// up to `max_burst - 1` more without blocking. Within a burst,
    /// `AddReplica` entries are merged per worker and heartbeats are counted
    /// inline without a full handler pass; everything else is handled in
    /// arrival order. The ready
    /// queue is drained **once** per burst, so a burst carrying `k` task
    /// completions pays one placement pass instead of `k`.
    pub fn run(mut self) {
        let max_burst = match self.ingest {
            IngestMode::PerMessage => 1,
            IngestMode::Batched { max_burst } => max_burst.max(1),
        };
        let mut burst: Vec<SchedMsg> = Vec::with_capacity(max_burst);
        loop {
            // With liveness off and no parked retries this is a plain
            // blocking `recv` — the fast path pays nothing for the fault
            // machinery. Otherwise block only until the next sweep/backoff
            // deadline so failures are detected even on an idle inbox.
            let first = match self.wakeup_deadline() {
                None => match self.rx.recv() {
                    Ok(msg) => Some(msg),
                    Err(_) => break,
                },
                Some(deadline) => {
                    let wait = deadline.saturating_duration_since(Instant::now());
                    match self.rx.recv_timeout(wait) {
                        Ok(msg) => Some(msg),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            };
            let mut shutdown = false;
            if let Some(first) = first {
                burst.push(first);
                while burst.len() < max_burst {
                    match self.rx.try_recv() {
                        Ok(msg) => burst.push(msg),
                        Err(_) => break,
                    }
                }
                self.stats.record_burst(burst.len() as u64);
                let burst_len = burst.len() as u64;
                let ingest_t0 = self.tracer.start();
                let mut replicas: HashMap<WorkerId, Vec<(Key, u64)>> = HashMap::new();
                for msg in burst.drain(..) {
                    match msg {
                        SchedMsg::AddReplica { worker, entries } if max_burst > 1 => {
                            // Coalesce: one map update pass per worker per burst.
                            // Replicas only ever *add* placement options, so
                            // applying them at burst end is order-safe.
                            self.stats.record(MsgClass::AddReplica, 0);
                            replicas.entry(worker).or_default().extend(entries);
                        }
                        SchedMsg::Heartbeat { client } if max_burst > 1 => {
                            // Counted here, not deferred to burst end: a
                            // synchronous reply handled later in this same
                            // burst (e.g. a variable get) must not let the
                            // client observe a stale heartbeat count. This
                            // arm is the only counter in batched mode — the
                            // per-message handler never sees these.
                            self.stats.record(MsgClass::Heartbeat, 0);
                            self.note_client_heartbeat(client);
                        }
                        msg => {
                            if !self.handle(msg) {
                                shutdown = true;
                                break;
                            }
                        }
                    }
                }
                for (worker, entries) in replicas.drain() {
                    self.apply_replicas(worker, entries);
                }
                self.tracer
                    .span(EventKind::Ingest, ingest_t0, None, burst_len);
            }
            self.tick_faults();
            if self.pending_schedule {
                self.pending_schedule = false;
                let assign_from = Instant::now();
                let pass_t0 = self.tracer.start();
                let n_assigned = self.schedule();
                self.tracer
                    .span(EventKind::AssignPass, pass_t0, None, n_assigned);
                self.stats
                    .record_assign_pass(assign_from.elapsed().as_nanos() as u64);
            }
            self.publish_telemetry();
            if shutdown {
                break;
            }
        }
    }

    /// Refresh the telemetry gauges: ready-queue depth, live-worker count,
    /// and the oldest worker/client heartbeat ages. One branch when
    /// telemetry is off; a few Relaxed stores when on.
    fn publish_telemetry(&self) {
        let Some(hub) = &self.telemetry else {
            return;
        };
        let now = Instant::now();
        let gap_ns = |seen: Instant| now.saturating_duration_since(seen).as_nanos() as u64;
        let workers_alive = self.workers.iter().filter(|w| w.alive).count() as u64;
        let worker_gap = self
            .workers
            .iter()
            .filter(|w| w.alive)
            .filter_map(|w| w.last_seen.map(gap_ns))
            .max()
            .unwrap_or(0);
        let client_gap = self
            .client_last_seen
            .values()
            .map(|&seen| gap_ns(seen))
            .max()
            .unwrap_or(0);
        hub.publish_scheduler(
            self.policy.len() as u64,
            workers_alive,
            self.sessions.len() as u64,
            worker_gap,
            client_gap,
        );
    }

    /// Next instant the loop must wake even if the inbox stays empty:
    /// the earliest parked resubmission, or the next liveness sweep.
    /// `None` (the default configuration) means "block forever".
    fn wakeup_deadline(&self) -> Option<Instant> {
        let backoff_due = self.backoff.iter().map(|(due, _)| *due).min();
        let sweep_due = self
            .liveness
            .heartbeat_timeout
            .map(|t| self.last_sweep + Self::sweep_every(t));
        match (backoff_due, sweep_due) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Sweep cadence: a quarter of the timeout keeps detection latency
    /// within ~1.25× the configured timeout without busy-waking.
    fn sweep_every(timeout: Duration) -> Duration {
        (timeout / 4).max(Duration::from_millis(1))
    }

    /// Run the periodic fault work: due resubmissions, then the liveness
    /// sweep. No-ops (without reading the clock for the sweep) when the
    /// fault machinery is idle.
    fn tick_faults(&mut self) {
        self.drain_backoff();
        if let Some(timeout) = self.liveness.heartbeat_timeout {
            if self.last_sweep.elapsed() >= Self::sweep_every(timeout) {
                self.last_sweep = Instant::now();
                self.sweep_liveness(timeout);
            }
        }
    }

    fn notify(&self, client: ClientId, msg: ClientMsg) {
        if self.clients.contains(&client) {
            self.endpoint.send_client(client, msg);
        } else {
            // A silently vanished notification is indistinguishable from
            // a hung client; count it so operators can tell the two
            // apart from `/metrics`.
            self.stats.record_notify_dropped();
        }
    }

    /// Drop the out-of-band payloads behind any proxy handles inside
    /// `value`: a deleted or overwritten control-path value is the last
    /// reference to its store entries.
    fn release_proxied(&self, value: &Datum) {
        match value {
            Datum::Ref(handle) => self.endpoint.send_data(
                handle.holder,
                DataMsg::Delete {
                    keys: vec![handle.key.clone()],
                },
            ),
            Datum::List(items) => {
                for item in items {
                    self.release_proxied(item);
                }
            }
            _ => {}
        }
    }

    /// Route one inbox message: unwrap the session tag (if any) and
    /// dispatch. Untagged messages — the entire single-tenant protocol —
    /// run under [`DEFAULT_SESSION`], which takes none of the tenant
    /// bookkeeping paths.
    fn handle(&mut self, msg: SchedMsg) -> bool {
        match msg {
            SchedMsg::Scoped { session, inner } => self.handle_in(session, *inner),
            msg => self.handle_in(DEFAULT_SESSION, msg),
        }
    }

    fn handle_in(&mut self, session: SessionId, msg: SchedMsg) -> bool {
        match msg {
            SchedMsg::Scoped { session, inner } => {
                // Never sent nested; unwrap defensively rather than drop.
                return self.handle_in(session, *inner);
            }
            SchedMsg::ClientConnect { client } => {
                self.clients.insert(client);
                if session != DEFAULT_SESSION {
                    self.client_session.insert(client, session);
                    self.sessions.entry(session).or_default();
                }
            }
            SchedMsg::ClientDisconnect { client } => {
                self.drop_client(client);
            }
            SchedMsg::SubmitGraph { client, specs } => {
                self.stats.record(MsgClass::GraphSubmit, 0);
                if session != DEFAULT_SESSION {
                    if let Some(cap) = self.admission_cap {
                        let inflight = self.sessions.entry(session).or_default().inflight.len();
                        if inflight + specs.len() > cap {
                            // Backpressure, not silent queuing: the graph
                            // is dropped whole and the client told so.
                            self.stats.record_admission_rejection(session);
                            self.notify(
                                client,
                                ClientMsg::SubmitOutcome {
                                    accepted: false,
                                    inflight: inflight as u64,
                                    cap: cap as u64,
                                },
                            );
                            return true;
                        }
                    }
                    let st = self.sessions.entry(session).or_default();
                    for spec in &specs {
                        st.task_keys.insert(spec.key.clone());
                        st.inflight.insert(spec.key.clone());
                    }
                    let depth = st.inflight.len() as u64;
                    self.stats.record_tenant_tasks(session, specs.len() as u64);
                    self.stats.set_tenant_queue_depth(session, depth);
                    if let Some(cap) = self.admission_cap {
                        self.notify(
                            client,
                            ClientMsg::SubmitOutcome {
                                accepted: true,
                                inflight: depth,
                                cap: cap as u64,
                            },
                        );
                    }
                }
                self.stats
                    .record_n(MsgClass::TaskSubmitted, specs.len() as u64, 0);
                self.submit_graph(specs);
            }
            SchedMsg::RegisterExternal { client: _, keys } => {
                self.stats.record(MsgClass::RegisterExternal, 0);
                if session != DEFAULT_SESSION {
                    let st = self.sessions.entry(session).or_default();
                    for key in &keys {
                        st.task_keys.insert(key.clone());
                    }
                }
                for key in keys {
                    self.tasks
                        .entry(key)
                        .or_insert_with(|| TaskEntry::bare(TaskState::External));
                }
            }
            SchedMsg::UpdateData {
                client: _,
                entries,
                external,
            } => {
                if session != DEFAULT_SESSION {
                    let st = self.sessions.entry(session).or_default();
                    for (key, _, _) in &entries {
                        st.task_keys.insert(key.clone());
                    }
                }
                let nbytes: u64 = entries.iter().map(|(_, _, b)| *b).sum();
                let class = if external {
                    MsgClass::UpdateDataExternal
                } else {
                    MsgClass::UpdateData
                };
                self.stats.record(class, nbytes);
                for (key, worker, nbytes) in entries {
                    self.handle_update_data(key, worker, nbytes, external);
                }
                self.pending_schedule = true;
            }
            SchedMsg::TaskFinished {
                worker,
                key,
                nbytes,
            } => {
                self.stats.record(MsgClass::TaskReport, 0);
                if !self.worker_alive(worker) {
                    // Stale report from a declared-dead worker: its data is
                    // unreachable, so recording the replica would route
                    // future gathers into a black hole.
                    return true;
                }
                self.tracer
                    .instant(EventKind::Report, Some(&key), worker as u64);
                self.workers[worker].processing = self.workers[worker].processing.saturating_sub(1);
                self.handle_task_finished(key, worker, nbytes);
                self.pending_schedule = true;
            }
            SchedMsg::AddReplica { worker, entries } => {
                // Per-message path (batched bursts intercept this upstream).
                self.stats.record(MsgClass::AddReplica, 0);
                if self.worker_alive(worker) {
                    self.apply_replicas(worker, entries);
                }
            }
            SchedMsg::TaskErred {
                worker,
                stored_key,
                error,
                failed_peer,
            } => {
                self.stats.record(MsgClass::TaskReport, 0);
                if !self.worker_alive(worker) {
                    return true;
                }
                self.tracer
                    .instant(EventKind::Report, Some(&stored_key), worker as u64);
                self.workers[worker].processing = self.workers[worker].processing.saturating_sub(1);
                // A hung-up data connection is direct evidence of that peer's
                // death: run the full loss recovery now rather than burning
                // this task's retry budget waiting out the heartbeat timeout.
                // Valid even with liveness off — the evidence is the
                // transport's, not a missed heartbeat.
                if let Some(peer) = failed_peer {
                    if peer != worker && self.worker_alive(peer) {
                        self.on_worker_lost(peer);
                    }
                }
                if matches!(error.cause, ErrorCause::PeerLost)
                    && self
                        .tasks
                        .get(&stored_key)
                        .is_some_and(|e| e.state == TaskState::Processing)
                {
                    // A gather hit a dead peer mid-fetch: environmental, not
                    // deterministic — resubmit to a survivor instead of
                    // failing the downstream cone.
                    self.retry_or_fail(stored_key);
                } else {
                    // `error.key` names the originating task (an interior
                    // fused stage, possibly); the scheduler entry to fail is
                    // the spec key it tracks.
                    self.mark_erred(stored_key, error);
                }
                self.pending_schedule = true;
            }
            SchedMsg::WantResult { client, key } => {
                self.stats.record(MsgClass::WantResult, 0);
                match self.tasks.get_mut(&key) {
                    Some(entry) => match entry.state {
                        TaskState::Memory => {
                            let loc = entry.who_has[0];
                            self.notify(
                                client,
                                ClientMsg::KeyReady {
                                    key,
                                    location: Ok(loc),
                                },
                            );
                        }
                        TaskState::Erred => {
                            let e = entry.error.clone().expect("erred tasks carry an error");
                            self.notify(
                                client,
                                ClientMsg::KeyReady {
                                    key,
                                    location: Err(e),
                                },
                            );
                        }
                        _ => entry.waiters.push(client),
                    },
                    None => {
                        // Unknown key: treat as a future that may appear later
                        // (external graphs can be registered after a watch in
                        // principle), but simplest correct behaviour for this
                        // runtime: report an error.
                        self.notify(
                            client,
                            ClientMsg::KeyReady {
                                key: key.clone(),
                                location: Err(TaskError::new(key, "unknown key")),
                            },
                        );
                    }
                }
            }
            SchedMsg::ReleaseKeys { keys } => {
                self.release_keys(keys);
            }
            SchedMsg::VariableSet { name, value } => {
                self.stats.record(MsgClass::Variable, value.nbytes());
                let slot = (session, name);
                // Overwriting a proxied variable orphans its out-of-band
                // payload: tell the holder's store to drop it.
                if let Some(old) = self.variables.get(&slot) {
                    self.release_proxied(old);
                }
                // Wake waiters.
                if let Some(waiters) = self.var_waiters.remove(&slot) {
                    for client in waiters {
                        self.notify(
                            client,
                            ClientMsg::VariableValue {
                                name: slot.1.clone(),
                                value: value.clone(),
                                found: true,
                            },
                        );
                    }
                }
                self.variables.insert(slot, value);
            }
            SchedMsg::VariableGet { client, name, wait } => {
                self.stats.record(MsgClass::Variable, 0);
                // Lookup is namespaced: another tenant's identically named
                // variable is invisible — a miss here is a clean not-found.
                match self.variables.get(&(session, name.clone())) {
                    Some(v) => self.notify(
                        client,
                        ClientMsg::VariableValue {
                            name,
                            value: v.clone(),
                            found: true,
                        },
                    ),
                    None if wait => {
                        self.var_waiters
                            .entry((session, name))
                            .or_default()
                            .push(client);
                    }
                    None => self.notify(
                        client,
                        ClientMsg::VariableValue {
                            name,
                            value: Datum::Null,
                            found: false,
                        },
                    ),
                }
            }
            SchedMsg::VariableDel { name } => {
                self.stats.record(MsgClass::Variable, 0);
                if let Some(old) = self.variables.remove(&(session, name)) {
                    self.release_proxied(&old);
                }
            }
            SchedMsg::QueuePush { name, value } => {
                self.stats.record(MsgClass::Queue, value.nbytes());
                let q = self.queues.entry((session, name.clone())).or_default();
                if let Some(client) = q.poppers.pop_front() {
                    self.notify(client, ClientMsg::QueueItem { name, value });
                } else {
                    q.items.push_back(value);
                }
            }
            SchedMsg::QueuePop { client, name } => {
                self.stats.record(MsgClass::Queue, 0);
                let q = self.queues.entry((session, name.clone())).or_default();
                if let Some(value) = q.items.pop_front() {
                    self.notify(client, ClientMsg::QueueItem { name, value });
                } else {
                    q.poppers.push_back(client);
                }
            }
            SchedMsg::Heartbeat { client } => {
                self.stats.record(MsgClass::Heartbeat, 0);
                self.note_client_heartbeat(client);
            }
            SchedMsg::WorkerHeartbeat { worker } => {
                self.stats.record(MsgClass::WorkerHeartbeat, 0);
                self.note_worker_heartbeat(worker);
            }
            SchedMsg::StealRequest { worker } => {
                self.handle_steal_request(worker);
            }
            SchedMsg::Stolen {
                victim,
                thief,
                keys,
            } => {
                self.handle_stolen(victim, thief, keys);
            }
            SchedMsg::RegisterWorker { worker, slots } => {
                self.register_worker(worker, slots);
            }
            SchedMsg::Shutdown => return false,
        }
        true
    }

    /// Forget a set of keys: unlink dependency edges, fail orphaned
    /// dependents, and delete the payloads from every holding worker.
    /// Shared by the explicit `ReleaseKeys` message and session teardown.
    fn release_keys(&mut self, keys: Vec<Key>) {
        let mut per_worker: HashMap<WorkerId, Vec<Key>> = HashMap::new();
        let mut orphans: Vec<(Key, TaskError)> = Vec::new();
        for key in keys {
            if key.session() != DEFAULT_SESSION {
                if let Some(st) = self.sessions.get_mut(&key.session()) {
                    st.task_keys.remove(&key);
                    st.inflight.remove(&key);
                }
            }
            if let Some(entry) = self.tasks.remove(&key) {
                // Unlink the edge from each dependency's dependents
                // list, so a later resubmission of this key does not
                // find (and double-wire) a stale edge.
                for dep in &entry.deps {
                    if let Some(dep_entry) = self.tasks.get_mut(dep) {
                        dep_entry.dependents.retain(|k| k != &key);
                    }
                }
                // Dependents still waiting on this key can never run
                // now: fail them instead of leaving them hung.
                for dependent in entry.dependents {
                    if let Some(d) = self.tasks.get(&dependent) {
                        if d.state == TaskState::Waiting {
                            orphans.push((
                                dependent.clone(),
                                TaskError::new(
                                    key.clone(),
                                    format!("dependency {key} was released"),
                                ),
                            ));
                        }
                    }
                }
                for w in entry.who_has {
                    per_worker.entry(w).or_default().push(key.clone());
                }
            }
        }
        for (key, err) in orphans {
            self.mark_erred(key, err);
        }
        for (w, keys) in per_worker {
            self.endpoint.send_data(w, DataMsg::Delete { keys });
        }
    }

    /// Forget a client — connection set, liveness tracking, parked
    /// variable/queue waiter slots — and, when it was the last client of
    /// a scoped session, tear the whole session down. Shared by the
    /// `ClientDisconnect` handler and the liveness sweep, so an orderly
    /// departure and a detected death release exactly the same state.
    fn drop_client(&mut self, client: ClientId) {
        self.clients.remove(&client);
        self.client_last_seen.remove(&client);
        for waiters in self.var_waiters.values_mut() {
            waiters.retain(|c| *c != client);
        }
        for q in self.queues.values_mut() {
            q.poppers.retain(|c| *c != client);
        }
        if let Some(session) = self.client_session.remove(&client) {
            if !self.client_session.values().any(|&s| s == session) {
                self.teardown_session(session);
            }
        }
    }

    /// Release everything a session owns: its task entries (through the
    /// same path as an explicit `ReleaseKeys`), variables, queue items,
    /// backoff-parked retries, and the out-of-band payloads on every
    /// worker's store. All of it is keyed by session, so other tenants
    /// are untouched.
    fn teardown_session(&mut self, session: SessionId) {
        debug_assert_ne!(
            session, DEFAULT_SESSION,
            "the implicit session never tears down"
        );
        let st = self.sessions.remove(&session).unwrap_or_default();
        self.release_keys(st.task_keys.into_iter().collect());
        let doomed: Vec<(SessionId, String)> = self
            .variables
            .keys()
            .filter(|(s, _)| *s == session)
            .cloned()
            .collect();
        for slot in doomed {
            if let Some(old) = self.variables.remove(&slot) {
                self.release_proxied(&old);
            }
        }
        self.var_waiters.retain(|(s, _), _| *s != session);
        let dead_queues: Vec<(SessionId, String)> = self
            .queues
            .keys()
            .filter(|(s, _)| *s == session)
            .cloned()
            .collect();
        for slot in dead_queues {
            if let Some(q) = self.queues.remove(&slot) {
                for item in q.items {
                    self.release_proxied(&item);
                }
            }
        }
        // Parked retries for released tasks would resurrect nothing
        // (their entries are gone), but dropping them keeps the backoff
        // list from waking the loop for a dead tenant.
        self.backoff.retain(|(_, key)| key.session() != session);
        self.stats.set_tenant_queue_depth(session, 0);
        // Belt and braces on the data plane: the Delete fan-out above
        // only reaches payloads the scheduler knew about; a sweep per
        // worker also catches session-scoped strays (proxy payloads
        // published out-of-band, spilled entries).
        for worker in 0..self.workers.len() {
            if self.workers[worker].alive {
                self.endpoint.send_data(worker, DataMsg::Sweep { session });
            }
        }
    }

    /// Insert a graph: wire dependencies, count unfinished deps, queue roots.
    fn submit_graph(&mut self, specs: Vec<TaskSpec>) {
        // Specs are shared (scheduler entry + execute message), not copied.
        let specs: Vec<Arc<TaskSpec>> = specs.into_iter().map(Arc::new).collect();
        // Priority policies derive per-graph ranks (e.g. b-levels) before any
        // of these keys can reach the ready queue.
        self.policy.graph_submitted(&specs);
        // First pass: create entries for every spec key (so intra-graph deps
        // resolve regardless of order).
        for spec in &specs {
            match self.tasks.get_mut(&spec.key) {
                Some(entry) => {
                    // Resubmission of a known key: keep the existing state
                    // (Memory results are reused, like Dask).
                    if entry.spec.is_none()
                        && entry.state != TaskState::External
                        && entry.state != TaskState::Memory
                    {
                        entry.spec = Some(Arc::clone(spec));
                    }
                }
                None => {
                    let mut e = TaskEntry::bare(TaskState::Waiting);
                    e.spec = Some(Arc::clone(spec));
                    e.deps = spec.deps.clone();
                    self.tasks.insert(spec.key.clone(), e);
                }
            }
        }
        // Second pass: wire dependency edges and counts.
        let mut newly_ready = Vec::new();
        for spec in &specs {
            let state = self.tasks[&spec.key].state;
            if state != TaskState::Waiting {
                continue; // already memory/external/etc.
            }
            let mut n_waiting = 0usize;
            let mut missing = None;
            // Duplicate deps (e.g. `f(x, x)`) wire exactly one edge, and the
            // completion cascade decrements `n_waiting` once per edge — so
            // count each distinct dependency once.
            let mut seen: std::collections::HashSet<&Key> = std::collections::HashSet::new();
            for dep in &spec.deps {
                if !seen.insert(dep) {
                    continue;
                }
                let dep_entry = self.tasks.entry(dep.clone()).or_insert_with(|| {
                    // Dependency the scheduler has never heard of (e.g. a
                    // released key, or data a bridge will push later):
                    // treat it as an implicit external task awaiting data
                    // rather than failing the submission.
                    TaskEntry::bare(TaskState::External)
                });
                if !dep_entry.dependents.contains(&spec.key) {
                    dep_entry.dependents.push(spec.key.clone());
                }
                match dep_entry.state {
                    TaskState::Memory => {}
                    TaskState::Erred => {
                        // Carry the upstream origin forward and record which
                        // dependency edge delivered it.
                        missing = Some(match dep_entry.error.clone() {
                            Some(e) => e.propagated_via(dep.clone()),
                            None => TaskError::new(dep.clone(), "upstream error"),
                        });
                    }
                    _ => n_waiting += 1,
                }
            }
            if let Some(err) = missing {
                self.mark_erred(spec.key.clone(), err);
                continue;
            }
            let entry = self.tasks.get_mut(&spec.key).expect("created above");
            entry.n_waiting = n_waiting;
            if n_waiting == 0 {
                entry.state = TaskState::Ready;
                self.tracer
                    .instant(EventKind::TaskReady, Some(&spec.key), 0);
                newly_ready.push(spec.key.clone());
            }
        }
        for key in newly_ready {
            self.policy.push(key);
        }
        self.pending_schedule = true;
    }

    /// Record replica placements reported by a worker's dependency gather.
    /// Only keys still in memory count — a released key may still be
    /// reported by an in-flight gather and must stay forgotten.
    fn apply_replicas(&mut self, worker: WorkerId, entries: Vec<(Key, u64)>) {
        for (key, nbytes) in entries {
            if let Some(entry) = self.tasks.get_mut(&key) {
                if entry.state == TaskState::Memory && !entry.who_has.contains(&worker) {
                    entry.who_has.push(worker);
                    if entry.nbytes == 0 {
                        entry.nbytes = nbytes;
                    }
                }
            }
        }
    }

    /// Classic-scatter or external-task data arrival.
    fn handle_update_data(&mut self, key: Key, worker: WorkerId, nbytes: u64, external: bool) {
        if !self.worker_alive(worker) {
            // The announced holder is already declared dead: the data there
            // is unreachable. With a surviving live replica this is just a
            // stale announcement — drop it; with none, the key (and its
            // cone) is lost with the peer.
            let has_live_replica = self.tasks.get(&key).is_some_and(|e| {
                e.state == TaskState::Memory && e.who_has.iter().any(|&w| self.worker_alive(w))
            });
            if has_live_replica {
                return;
            }
            self.stats.record_external_block_lost();
            self.mark_erred(
                key.clone(),
                TaskError::new(key, format!("data landed on dead worker {worker}"))
                    .with_cause(ErrorCause::PeerLost),
            );
            return;
        }
        let state = self.tasks.get(&key).map(|e| e.state);
        match state {
            Some(TaskState::Memory) => {
                // Replica announcement.
                let entry = self.tasks.get_mut(&key).expect("checked above");
                if !entry.who_has.contains(&worker) {
                    entry.who_has.push(worker);
                }
            }
            Some(TaskState::External) | None => {
                // The paper's path: treat exactly like a finished task. With
                // external=false this is a plain Dask scatter of a fresh key
                // (no dependents can exist yet); with external=true the
                // transition cascade unblocks pre-submitted graphs.
                let _ = external;
                self.handle_task_finished(key, worker, nbytes);
            }
            Some(_) => {
                // Data arrived for a key the scheduler planned to compute:
                // accept it and cancel the computation (last write wins).
                self.handle_task_finished(key, worker, nbytes);
            }
        }
    }

    /// Shared completion path for worker-computed AND external tasks. This is
    /// `handle_task_finished` from §2.2: update structures, then transition
    /// dependents.
    fn handle_task_finished(&mut self, key: Key, worker: WorkerId, nbytes: u64) {
        if key.session() != DEFAULT_SESSION && !self.sessions.contains_key(&key.session()) {
            // Completion report for a torn-down session: the tenant is
            // gone, so the result is garbage. Scrub it from the worker
            // instead of resurrecting a task entry the teardown already
            // released.
            self.endpoint
                .send_data(worker, DataMsg::Delete { keys: vec![key] });
            return;
        }
        let entry = self
            .tasks
            .entry(key.clone())
            .or_insert_with(|| TaskEntry::bare(TaskState::External));
        if entry.state == TaskState::Memory {
            // Duplicate completion report (replica): record and stop — the
            // dependent cascade must run exactly once.
            if !entry.who_has.contains(&worker) {
                entry.who_has.push(worker);
            }
            return;
        }
        entry.state = TaskState::Memory;
        if !entry.who_has.contains(&worker) {
            entry.who_has.push(worker);
        }
        entry.nbytes = nbytes;
        entry.assigned_to = None;
        entry.retries = 0;
        let waiters = std::mem::take(&mut entry.waiters);
        let dependents = entry.dependents.clone();
        if key.session() != DEFAULT_SESSION {
            if let Some(st) = self.sessions.get_mut(&key.session()) {
                st.inflight.remove(&key);
                self.stats
                    .set_tenant_queue_depth(key.session(), st.inflight.len() as u64);
            }
            self.stats.record_tenant_bytes(key.session(), nbytes);
        }
        for client in waiters {
            self.notify(
                client,
                ClientMsg::KeyReady {
                    key: key.clone(),
                    location: Ok(worker),
                },
            );
        }
        // Transition cascade: unblock dependents.
        for dep_key in dependents {
            if let Some(dep_entry) = self.tasks.get_mut(&dep_key) {
                if dep_entry.state == TaskState::Waiting {
                    dep_entry.n_waiting = dep_entry.n_waiting.saturating_sub(1);
                    if dep_entry.n_waiting == 0 {
                        dep_entry.state = TaskState::Ready;
                        self.tracer.instant(EventKind::TaskReady, Some(&dep_key), 0);
                        self.policy.push(dep_key);
                    }
                }
            }
        }
    }

    /// Mark a task and (transitively) its dependents as erred.
    fn mark_erred(&mut self, key: Key, error: TaskError) {
        let mut stack = vec![(key, error, true)];
        while let Some((key, error, is_root)) = stack.pop() {
            let Some(entry) = self.tasks.get_mut(&key) else {
                continue;
            };
            if entry.state == TaskState::Erred {
                continue;
            }
            if !is_root && entry.state == TaskState::Memory {
                // A dependent that already computed holds a valid result; a
                // late upstream failure (e.g. a lost replica of an input)
                // must not destroy it. Only the root of a cascade may
                // transition out of Memory.
                continue;
            }
            entry.state = TaskState::Erred;
            entry.error = Some(error.clone());
            let waiters = std::mem::take(&mut entry.waiters);
            let dependents = entry.dependents.clone();
            if key.session() != DEFAULT_SESSION {
                if let Some(st) = self.sessions.get_mut(&key.session()) {
                    st.inflight.remove(&key);
                    self.stats
                        .set_tenant_queue_depth(key.session(), st.inflight.len() as u64);
                }
            }
            for client in waiters {
                self.notify(
                    client,
                    ClientMsg::KeyReady {
                        key: key.clone(),
                        location: Err(error.clone()),
                    },
                );
            }
            for dep in dependents {
                // Dependents see the same origin, one propagation edge
                // further downstream (`via` names the direct dependency).
                stack.push((dep.clone(), error.propagated_via(key.clone()), false));
            }
        }
    }

    fn worker_alive(&self, worker: WorkerId) -> bool {
        self.workers.get(worker).is_some_and(|w| w.alive)
    }

    /// Liveness bookkeeping for a client ping (both ingest paths call this,
    /// so `last_seen` is identical under `PerMessage` and `Batched`).
    fn note_client_heartbeat(&mut self, client: ClientId) {
        // A ping from an already-departed client (its pinger racing the
        // disconnect) must not resurrect liveness tracking — a stale
        // `last_seen` entry would sit there until the sweep timeout.
        if !self.clients.contains(&client) {
            return;
        }
        if self
            .client_last_seen
            .insert(client, Instant::now())
            .is_none()
        {
            self.stats.record_peer_tracked();
        }
    }

    /// Liveness bookkeeping for a worker ping. Heartbeats from a worker
    /// already declared dead are ignored: its replica map and in-flight
    /// assignments were already torn down, so there is no safe resurrection.
    fn note_worker_heartbeat(&mut self, worker: WorkerId) {
        let Some(entry) = self.workers.get_mut(worker) else {
            return;
        };
        if !entry.alive {
            return;
        }
        if entry.last_seen.is_none() {
            self.stats.record_peer_tracked();
        }
        entry.last_seen = Some(Instant::now());
    }

    /// A worker process attached through the deployment hub: bring its slot
    /// online (growing the table if the id is past the configured count)
    /// and record its announced capacity. Liveness tracking starts with the
    /// worker's first heartbeat, exactly as for in-process workers — the
    /// node sends one immediately after its handshake — so a registered
    /// worker whose pings are disabled is never falsely swept dead.
    fn register_worker(&mut self, worker: WorkerId, slots: usize) {
        while self.workers.len() <= worker {
            self.workers.push(WorkerState {
                processing: 0,
                slots: self.default_slots,
                alive: false,
                last_seen: None,
            });
            self.steal_inflight.push(false);
        }
        let entry = &mut self.workers[worker];
        if slots > 0 {
            entry.slots = slots;
        }
        entry.processing = 0;
        entry.alive = true;
        // Tasks queued while no worker was attached become placeable now.
        self.pending_schedule = true;
    }

    /// Move due parked tasks back into the ready queue.
    fn drain_backoff(&mut self) {
        if self.backoff.is_empty() {
            return;
        }
        let now = Instant::now();
        let (due, parked): (Vec<_>, Vec<_>) = std::mem::take(&mut self.backoff)
            .into_iter()
            .partition(|(at, _)| *at <= now);
        self.backoff = parked;
        for (_, key) in due {
            let Some(entry) = self.tasks.get(&key) else {
                continue;
            };
            // Only still-Ready tasks resubmit; anything released or failed
            // in the meantime just drops off the backoff list.
            if entry.state != TaskState::Ready {
                continue;
            }
            self.stats.record_task_resubmitted();
            self.tracer
                .instant(EventKind::Resubmit, Some(&key), entry.retries as u64);
            // Through the policy queue, not a raw FIFO append: a priority
            // policy must rank resubmissions like any other ready task.
            self.policy.push(key);
            self.pending_schedule = true;
        }
    }

    /// Declare workers and heartbeating clients dead when their last
    /// heartbeat is older than `timeout`.
    fn sweep_liveness(&mut self, timeout: Duration) {
        let now = Instant::now();
        for worker in 0..self.workers.len() {
            let w = &self.workers[worker];
            // A worker that never heartbeat is not tracked (liveness may be
            // on while worker pings are off); silence alone is not death.
            let dead = w.alive
                && w.last_seen
                    .is_some_and(|seen| now.duration_since(seen) > timeout);
            if dead {
                self.on_worker_lost(worker);
            }
        }
        let lost_clients: Vec<ClientId> = self
            .client_last_seen
            .iter()
            .filter(|(_, seen)| now.duration_since(**seen) > timeout)
            .map(|(c, _)| *c)
            .collect();
        for client in lost_clients {
            if self.clients.contains(&client) {
                self.stats.record_peer_lost();
                // Client ids share the worker arg space in trace events;
                // they live at the top of the u64 range to stay distinct.
                self.tracer
                    .instant(EventKind::PeerLost, None, u64::MAX - client as u64);
            }
            // Same teardown as an orderly disconnect: a death must not
            // leak the variables, queues, or store payloads an explicit
            // goodbye would have released.
            self.drop_client(client);
        }
    }

    /// Tear down a dead worker: purge its replicas, then recover every task
    /// it took down — in-flight assignments resubmit (bounded retries) and
    /// results whose only replica it held either recompute (spec known) or
    /// fail their downstream cone with a `PeerLost` attribution.
    fn on_worker_lost(&mut self, worker: WorkerId) {
        self.workers[worker].alive = false;
        self.workers[worker].processing = 0;
        self.stats.record_peer_lost();
        self.tracer
            .instant(EventKind::PeerLost, None, worker as u64);
        let mut lost_inflight = Vec::new();
        let mut lost_results = Vec::new();
        for (key, entry) in self.tasks.iter_mut() {
            entry.who_has.retain(|&w| w != worker);
            match entry.state {
                TaskState::Processing if entry.assigned_to == Some(worker) => {
                    lost_inflight.push(key.clone());
                }
                TaskState::Memory if entry.who_has.is_empty() => {
                    lost_results.push(key.clone());
                }
                _ => {}
            }
        }
        for key in lost_inflight {
            self.retry_or_fail(key);
        }
        for key in lost_results {
            self.recover_lost_result(key, worker);
        }
        self.pending_schedule = true;
    }

    /// Resubmit a task whose assignment (or gather) died with a peer, with
    /// exponential backoff; past the retry budget it errs with `PeerLost`.
    fn retry_or_fail(&mut self, key: Key) {
        let Some(entry) = self.tasks.get_mut(&key) else {
            return;
        };
        entry.retries += 1;
        entry.assigned_to = None;
        let retries = entry.retries;
        if retries > self.liveness.max_retries {
            self.stats.record_retries_exhausted();
            let error = TaskError::new(
                key.clone(),
                format!(
                    "peer lost; {} resubmission(s) exhausted",
                    self.liveness.max_retries
                ),
            )
            .with_cause(ErrorCause::PeerLost);
            self.mark_erred(key, error);
            return;
        }
        // Re-derive readiness: the loss that killed this attempt may also
        // have taken an input out of Memory (recompute in progress), and a
        // resubmission without it would fail hard. Non-Memory deps park the
        // task as Waiting instead — the recompute cascade re-readies it.
        let deps = entry.deps.clone();
        let mut seen: HashSet<&Key> = HashSet::new();
        let n_waiting = deps
            .iter()
            .filter(|d| seen.insert(d))
            .filter(|d| {
                self.tasks
                    .get(*d)
                    .is_none_or(|e| e.state != TaskState::Memory)
            })
            .count();
        let entry = self.tasks.get_mut(&key).expect("present above");
        if n_waiting > 0 {
            entry.state = TaskState::Waiting;
            entry.n_waiting = n_waiting;
            return;
        }
        // Park as Ready but *outside* the ready queue — `schedule` only
        // drains the queue, so the task cannot run before its backoff is
        // due. `drain_backoff` re-queues it.
        entry.state = TaskState::Ready;
        let delay = self.liveness.retry_backoff * 2u32.saturating_pow(retries.saturating_sub(1));
        self.backoff.push((Instant::now() + delay, key));
    }

    /// A Memory result lost its last replica. Prefer recompute when the
    /// spec is known (who_has refetch is moot — there is nowhere left to
    /// fetch from); external blocks have no recipe and must fail.
    fn recover_lost_result(&mut self, key: Key, worker: WorkerId) {
        let entry = self.tasks.get(&key).expect("caller checked presence");
        if entry.spec.is_none() {
            // External (or scattered) block: the environment produced it,
            // only the dead worker held it. Unrecoverable by design.
            self.stats.record_external_block_lost();
            self.mark_erred(
                key.clone(),
                TaskError::new(
                    key,
                    format!("external block lost with worker {worker}; no surviving replica"),
                )
                .with_cause(ErrorCause::PeerLost),
            );
            return;
        }
        self.stats.record_recompute();
        // Dependents that already consumed this result must wait for the
        // recompute (only those not yet running; in-flight ones that trip
        // on the missing input come back through the retry path).
        let dependents = self.tasks[&key].dependents.clone();
        for d in dependents {
            if let Some(de) = self.tasks.get_mut(&d) {
                match de.state {
                    TaskState::Waiting => de.n_waiting += 1,
                    TaskState::Ready => {
                        // Possibly still in the ready queue; the demotion
                        // makes `schedule` skip that stale entry.
                        de.state = TaskState::Waiting;
                        de.n_waiting = 1;
                    }
                    _ => {}
                }
            }
        }
        // Re-derive readiness from the surviving dependency states. If this
        // task's own inputs were also lost, their `recover_lost_result`
        // pass re-demotes us via the dependent loop above — order within
        // the lost set does not matter.
        let deps = self.tasks[&key].deps.clone();
        let mut seen: HashSet<&Key> = HashSet::new();
        let mut n_waiting = 0usize;
        let mut upstream_err = None;
        for dep in &deps {
            if !seen.insert(dep) {
                continue;
            }
            match self.tasks.get(dep) {
                Some(de) if de.state == TaskState::Memory => {}
                Some(de) if de.state == TaskState::Erred => {
                    upstream_err = Some(match de.error.clone() {
                        Some(e) => e.propagated_via(dep.clone()),
                        None => TaskError::new(dep.clone(), "upstream error"),
                    });
                }
                Some(_) => n_waiting += 1,
                None => {
                    upstream_err = Some(
                        TaskError::new(
                            dep.clone(),
                            format!("dependency {dep} released; cannot recompute"),
                        )
                        .with_cause(ErrorCause::PeerLost),
                    );
                }
            }
        }
        if let Some(err) = upstream_err {
            self.mark_erred(key, err);
            return;
        }
        let entry = self.tasks.get_mut(&key).expect("checked above");
        entry.n_waiting = n_waiting;
        entry.assigned_to = None;
        entry.error = None;
        if n_waiting == 0 {
            entry.state = TaskState::Ready;
            self.tracer.instant(EventKind::TaskReady, Some(&key), 0);
            self.policy.push(key);
        } else {
            entry.state = TaskState::Waiting;
        }
    }

    /// An idle worker asked for work: point the most-loaded live peer that
    /// has more assignments than slots (i.e. queued-but-unstarted work) at
    /// it via [`crate::msg::ExecMsg::Steal`]. The victim answers with
    /// `Stolen`; no peer with surplus is an immediate miss.
    fn handle_steal_request(&mut self, thief: WorkerId) {
        self.stats.record_steal_request();
        if !self.worker_alive(thief) {
            return;
        }
        let victim = (0..self.workers.len())
            .filter(|&w| w != thief && self.workers[w].alive && !self.steal_inflight[w])
            .filter(|&w| self.workers[w].processing > self.workers[w].slots)
            .max_by(|&a, &b| WorkerState::load_cmp(&self.workers[a], &self.workers[b]));
        let Some(victim) = victim else {
            self.stats.record_steal_miss();
            return;
        };
        // Take half the surplus: enough to matter, and the victim keeps its
        // slots busy even if its queue estimate was stale.
        let surplus = self.workers[victim].processing - self.workers[victim].slots;
        let max = (surplus / 2).max(1);
        self.steal_inflight[victim] = true;
        self.endpoint
            .send_exec(victim, crate::msg::ExecMsg::Steal { thief, max });
    }

    /// A victim reported the assignments it forwarded. Re-point each task
    /// that is still in flight on the victim; anything that completed,
    /// erred, or was recovered while the steal raced stays untouched (the
    /// thief's duplicate completion report is deduplicated like a replica).
    fn handle_stolen(&mut self, victim: WorkerId, thief: WorkerId, keys: Vec<Key>) {
        if victim >= self.workers.len() || thief >= self.workers.len() {
            return;
        }
        self.steal_inflight[victim] = false;
        if keys.is_empty() {
            self.stats.record_steal_miss();
            return;
        }
        let thief_alive = self.worker_alive(thief);
        for key in keys {
            let Some(entry) = self.tasks.get_mut(&key) else {
                continue;
            };
            if entry.state != TaskState::Processing || entry.assigned_to != Some(victim) {
                continue;
            }
            self.workers[victim].processing = self.workers[victim].processing.saturating_sub(1);
            if !thief_alive {
                // The thief died between asking and receiving: the forwarded
                // assignment went into a black hole. Recover like any other
                // in-flight loss.
                self.retry_or_fail(key);
                self.pending_schedule = true;
                continue;
            }
            entry.assigned_to = Some(thief);
            self.workers[thief].processing += 1;
            self.stats.record_task_stolen();
            self.tracer
                .instant(EventKind::Steal, Some(&key), thief as u64);
        }
    }

    /// Drain the ready queue, assigning tasks to workers. In batched ingest
    /// mode, assignments are coalesced into one `ExecMsg::ExecuteBatch` per
    /// worker (the receiving slot fans the tail back out to its siblings);
    /// per-message mode keeps the classic one-`Execute`-per-task protocol.
    /// Returns the number of tasks assigned this pass.
    fn schedule(&mut self) -> u64 {
        let batch_assign = !matches!(self.ingest, IngestMode::PerMessage);
        let mut per_worker: Vec<Vec<crate::msg::Assignment>> =
            (0..self.workers.len()).map(|_| Vec::new()).collect();
        let mut n_assigned = 0u64;
        // One timestamp per pass: every assignment in the pass shares it, so
        // queue-delay measurement costs one clock read per pass, not per task.
        let assigned_at = Instant::now();
        while let Some(key) = self.policy.pop() {
            let Some(entry) = self.tasks.get(&key) else {
                continue;
            };
            if entry.state != TaskState::Ready {
                continue;
            }
            let spec = Arc::clone(
                entry
                    .spec
                    .as_ref()
                    .expect("ready tasks have specs (external tasks are never ready)"),
            );
            // Split the borrow: the policy mutates itself while reading the
            // task table and worker states through shared references.
            let worker = {
                let Self {
                    ref mut policy,
                    ref tasks,
                    ref workers,
                    ..
                } = *self;
                let lookup = |dep: &Key, f: &mut dyn FnMut(u64, &[WorkerId])| {
                    if let Some(e) = tasks.get(dep) {
                        f(e.nbytes, &e.who_has);
                    }
                };
                policy.decide_worker(&spec, workers, &lookup)
            };
            let Some(worker) = worker else {
                // Every worker is gone: nothing can ever run this.
                self.stats.record_retries_exhausted();
                self.mark_erred(
                    key.clone(),
                    TaskError::new(key, "no live workers remain").with_cause(ErrorCause::PeerLost),
                );
                continue;
            };
            // Ship locations only for deps the target worker does not hold:
            // local deps resolve from its store, so cloning their (possibly
            // long) `who_has` lists here would be pure overhead. Dead
            // workers are filtered so gathers never try a known black hole.
            // With stealing on, *every* dep location ships — a stolen task
            // must locate inputs the original target held locally.
            let steal_enabled = self.steal_enabled;
            let dep_locations: Vec<(Key, Vec<WorkerId>)> = spec
                .deps
                .iter()
                .filter_map(|d| {
                    let e = self.tasks.get(d)?;
                    if !steal_enabled && e.who_has.contains(&worker) {
                        return None;
                    }
                    Some((
                        d.clone(),
                        e.who_has
                            .iter()
                            .copied()
                            .filter(|&w| self.workers[w].alive)
                            .collect(),
                    ))
                })
                .collect();
            let entry = self.tasks.get_mut(&key).expect("checked above");
            entry.state = TaskState::Processing;
            entry.assigned_to = Some(worker);
            self.workers[worker].processing += 1;
            n_assigned += 1;
            self.tracer
                .instant(EventKind::Assign, Some(&key), worker as u64);
            let assignment = crate::msg::Assignment {
                spec,
                dep_locations,
                assigned_at,
            };
            if batch_assign {
                per_worker[worker].push(assignment);
            } else {
                self.endpoint
                    .send_exec(worker, crate::msg::ExecMsg::Execute(assignment));
            }
        }
        if batch_assign {
            let mut n_messages = 0u64;
            for (worker, mut tasks) in per_worker.into_iter().enumerate() {
                match tasks.len() {
                    0 => continue,
                    1 => {
                        let assignment = tasks.pop().expect("len checked");
                        self.endpoint
                            .send_exec(worker, crate::msg::ExecMsg::Execute(assignment));
                    }
                    _ => {
                        self.endpoint
                            .send_exec(worker, crate::msg::ExecMsg::ExecuteBatch { tasks });
                    }
                }
                n_messages += 1;
            }
            self.stats.record_assign(n_assigned, n_messages);
        } else {
            self.stats.record_assign(n_assigned, n_assigned);
        }
        n_assigned
    }
}
