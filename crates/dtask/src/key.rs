//! Task keys.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Session (tenant) identifier. `0` is the implicit default session every
/// key belongs to unless explicitly scoped — single-tenant clusters never
/// see any other value, which keeps their hashing and wire bytes identical
/// to the pre-tenancy runtime.
pub type SessionId = u32;

/// The implicit session id of unscoped keys.
pub const DEFAULT_SESSION: SessionId = 0;

/// A task key: globally unique name of a task/data item, cheap to clone.
///
/// DEISA's naming scheme (paper §2.4.1) builds keys like
/// `deisa-temp@(1,3,5)` — prefix, field name, and spatiotemporal block
/// position; see `deisa-core::naming`.
///
/// Keys are namespaced by a [`SessionId`]: two tenants submitting the same
/// key *text* produce distinct keys, so their graphs never collide in the
/// scheduler's maps. Session 0 is the implicit single-tenant namespace.
///
/// The hash of the text is computed once at construction and cached, so the
/// scheduler's hot maps (`tasks`, `who_has`, waiter sets) never rehash the
/// full string on lookup.
#[derive(Clone)]
pub struct Key {
    text: Arc<str>,
    hash: u64,
    session: SessionId,
}

/// FNV-1a over the key bytes; stable and cheap for short task names.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Key {
    /// Create a key in the implicit default session.
    pub fn new(s: impl AsRef<str>) -> Self {
        Key::scoped(DEFAULT_SESSION, s)
    }

    /// Create a key namespaced to `session`. Session 0 is byte- and
    /// hash-identical to [`Key::new`].
    pub fn scoped(session: SessionId, s: impl AsRef<str>) -> Self {
        let text: Arc<str> = Arc::from(s.as_ref());
        let mut hash = fnv1a(text.as_bytes());
        if session != DEFAULT_SESSION {
            // Mix the session only when non-zero so default-session hashes
            // stay exactly what they were before tenancy existed.
            hash ^= (session as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        Key {
            text,
            hash,
            session,
        }
    }

    /// This key's text, re-scoped to another session.
    pub fn with_session(&self, session: SessionId) -> Self {
        if session == self.session {
            self.clone()
        } else {
            let mut hash = fnv1a(self.text.as_bytes());
            if session != DEFAULT_SESSION {
                hash ^= (session as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            Key {
                text: Arc::clone(&self.text),
                hash,
                session,
            }
        }
    }

    /// The key text.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The session this key belongs to (0 = implicit default).
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The precomputed hash (exposed for tests and diagnostics).
    pub fn cached_hash(&self) -> u64 {
        self.hash
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        // Hash first: a cheap u64 compare rejects almost all mismatches
        // before touching the string bytes. Clones share the allocation, so
        // the pointer check settles the common equal case for free.
        self.hash == other.hash
            && self.session == other.session
            && (Arc::ptr_eq(&self.text, &other.text) || self.text == other.text)
    }
}

impl Eq for Key {}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.session
            .cmp(&other.session)
            .then_with(|| self.text.cmp(&other.text))
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.session == DEFAULT_SESSION {
            write!(f, "Key({})", self.text)
        } else {
            write!(f, "Key(s{}:{})", self.session, self.text)
        }
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_and_hash() {
        let a = Key::new("x-1");
        let b = Key::from("x-1".to_string());
        let c: Key = "x-2".into();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    fn clone_is_cheap_and_shares() {
        let a = Key::new("shared");
        let b = a.clone();
        assert_eq!(a.as_str().as_ptr(), b.as_str().as_ptr());
    }

    #[test]
    fn cached_hash_matches_across_constructions() {
        let a = Key::new("deisa-temp@(1,3,5)");
        let b = Key::from("deisa-temp@(1,3,5)");
        assert_eq!(a.cached_hash(), b.cached_hash());
        assert_ne!(a.cached_hash(), Key::new("other").cached_hash());
    }

    #[test]
    fn ordering_is_textual() {
        let mut v = [Key::new("b"), Key::new("a"), Key::new("c")];
        v.sort();
        let s: Vec<&str> = v.iter().map(|k| k.as_str()).collect();
        assert_eq!(s, vec!["a", "b", "c"]);
    }

    #[test]
    fn display() {
        assert_eq!(
            Key::new("deisa-temp@(1,3,5)").to_string(),
            "deisa-temp@(1,3,5)"
        );
    }

    #[test]
    fn sessions_namespace_identical_text() {
        let base = Key::new("sink");
        let s1 = Key::scoped(1, "sink");
        let s2 = Key::scoped(2, "sink");
        assert_ne!(base, s1);
        assert_ne!(s1, s2);
        assert_eq!(s1, Key::scoped(1, "sink"));
        assert_ne!(s1.cached_hash(), s2.cached_hash());
        let mut set = HashSet::new();
        set.insert(base.clone());
        set.insert(s1.clone());
        set.insert(s2.clone());
        assert_eq!(set.len(), 3);
        assert!(set.contains(&Key::scoped(1, "sink")));
    }

    #[test]
    fn default_session_is_hash_identical_to_scoped_zero() {
        let a = Key::new("x");
        let b = Key::scoped(0, "x");
        assert_eq!(a, b);
        assert_eq!(a.cached_hash(), b.cached_hash());
        assert_eq!(a.session(), 0);
        assert_eq!(Key::scoped(7, "x").session(), 7);
    }

    #[test]
    fn with_session_rescopes_text() {
        let k = Key::new("block");
        let scoped = k.with_session(3);
        assert_eq!(scoped, Key::scoped(3, "block"));
        assert_eq!(scoped.as_str(), "block");
        assert_eq!(scoped.with_session(0), k);
    }
}
