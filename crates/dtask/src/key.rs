//! Task keys.

use std::fmt;
use std::sync::Arc;

/// A task key: globally unique name of a task/data item, cheap to clone.
///
/// DEISA's naming scheme (paper §2.4.1) builds keys like
/// `deisa-temp@(1,3,5)` — prefix, field name, and spatiotemporal block
/// position; see `deisa-core::naming`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(Arc<str>);

impl Key {
    /// Create a key from any string-like value.
    pub fn new(s: impl AsRef<str>) -> Self {
        Key(Arc::from(s.as_ref()))
    }

    /// The key text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({})", self.0)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key(Arc::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_and_hash() {
        let a = Key::new("x-1");
        let b = Key::from("x-1".to_string());
        let c: Key = "x-2".into();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    fn clone_is_cheap_and_shares() {
        let a = Key::new("shared");
        let b = a.clone();
        assert_eq!(a.as_str().as_ptr(), b.as_str().as_ptr());
    }

    #[test]
    fn display() {
        assert_eq!(
            Key::new("deisa-temp@(1,3,5)").to_string(),
            "deisa-temp@(1,3,5)"
        );
    }
}
