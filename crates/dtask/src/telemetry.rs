//! Live telemetry plane: flight recorder, HTTP exporter, straggler detector.
//!
//! Everything else observability-wise in this runtime is post-mortem —
//! [`crate::trace::TraceRecorder::collect`] drains rings after the run and
//! [`crate::snapshot::StatsSnapshot`] is captured on demand. A production
//! in-transit cluster needs a *live* operator view while the simulation is
//! coupled. This module provides one, in three parts:
//!
//! * **Flight recorder.** A sampler thread captures counter deltas from
//!   [`crate::stats::SchedulerStats`] every [`TelemetryConfig::sample_every`]
//!   into a bounded time-series ring of [`FlightSample`]s: tasks/s reported,
//!   per-[`WireLane`] bytes/s, ready-queue depth + per-interval high
//!   watermark, steal and miss rates, store spill pressure, and heartbeat
//!   gap ages published by the scheduler.
//! * **HTTP exporter.** A minimal std-only server
//!   ([`std::net::TcpListener`], no deps — the first real socket in the
//!   codebase, a stepping stone toward cross-process deployment) answering
//!   `GET /metrics` (Prometheus exposition), `/snapshot.json`,
//!   `/flight.json`, `/alerts.json`, and `/health`.
//! * **Straggler detector.** Per-op-kind exec-duration baselines (bounded
//!   recent window, median/MAD) flag executions exceeding
//!   k×baseline online: a [`EventKind::Straggler`] trace instant, the
//!   `stragglers_flagged` counter, and a structured [`Alert`].
//!
//! All of it sits behind [`TelemetryConfig`] on
//! [`crate::ClusterConfig`], **off by default** with zero behavioral delta:
//! a disabled config spawns no threads, binds no socket, and hands the
//! scheduler and executors no hub to publish into.

use crate::json::Json;
use crate::key::Key;
use crate::snapshot::StatsSnapshot;
use crate::stats::{MsgClass, SchedulerStats, WireLane, N_WIRE_LANES};
use crate::trace::TraceRecorder;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Live-telemetry configuration (part of [`crate::ClusterConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Run the telemetry plane? Off by default: no sampler thread, no
    /// socket, no detector — asserted byte-identical to seed behavior.
    pub enabled: bool,
    /// Flight-recorder sampling interval.
    pub sample_every: Duration,
    /// Flight ring capacity in samples; the oldest sample is evicted (and
    /// counted) when full.
    pub flight_capacity: usize,
    /// Serve the HTTP endpoints? (`enabled` must also be set.)
    pub serve_http: bool,
    /// TCP port for the exporter; `0` asks the OS for a free port
    /// ([`crate::Cluster::telemetry_addr`] reports what was bound).
    pub http_port: u16,
    /// Address the exporter binds. Loopback by default; set `0.0.0.0` (or a
    /// specific interface) so a remote scraper can reach a worker node's
    /// `/metrics` in multi-process deployments.
    pub bind_addr: std::net::IpAddr,
    /// Straggler threshold multiplier: flag an execution whose duration
    /// exceeds `max(k × median, median + 4×1.4826×MAD)` for its op kind.
    pub straggler_k: f64,
    /// Baseline samples required per op kind before flagging anything.
    pub straggler_min_samples: usize,
    /// Absolute duration floor in nanoseconds — executions faster than this
    /// are never stragglers regardless of baseline (keeps microsecond ops
    /// from flagging on scheduler jitter).
    pub straggler_min_ns: u64,
    /// Recent-duration window per op kind feeding the median/MAD baseline.
    pub straggler_window: usize,
    /// Raise a [`AlertKind::QueueDepth`] alert when the per-interval
    /// ready-queue high watermark reaches this depth (rising edge only).
    pub queue_depth_alert: Option<u64>,
    /// Raise a [`AlertKind::HeartbeatGap`] alert when the oldest worker or
    /// client heartbeat is staler than this (rising edge only).
    pub heartbeat_gap_alert: Option<Duration>,
    /// Alert ring capacity; the oldest alert is evicted when full.
    pub alert_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            sample_every: Duration::from_millis(25),
            flight_capacity: 512,
            serve_http: true,
            http_port: 0,
            bind_addr: std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            straggler_k: 4.0,
            straggler_min_samples: 8,
            straggler_min_ns: 1_000_000,
            straggler_window: 64,
            queue_depth_alert: None,
            heartbeat_gap_alert: None,
            alert_capacity: 256,
        }
    }
}

impl TelemetryConfig {
    /// Telemetry on with the default sampling interval and exporter.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            ..TelemetryConfig::default()
        }
    }
}

// ---- alerts -----------------------------------------------------------------

/// What kind of anomaly an [`Alert`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// A task execution exceeded k× its op-kind baseline.
    Straggler,
    /// The ready-queue high watermark crossed the configured depth.
    QueueDepth,
    /// A worker or client heartbeat went stale past the configured gap.
    HeartbeatGap,
}

impl AlertKind {
    /// Stable snake_case name (JSON `kind` field).
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::Straggler => "straggler",
            AlertKind::QueueDepth => "queue_depth",
            AlertKind::HeartbeatGap => "heartbeat_gap",
        }
    }
}

/// One structured anomaly record, queryable over `/alerts.json`.
#[derive(Debug, Clone)]
pub struct Alert {
    /// What was detected.
    pub kind: AlertKind,
    /// Milliseconds since the telemetry epoch.
    pub t_ms: f64,
    /// The task key, when the alert concerns one.
    pub key: Option<String>,
    /// The worker involved, when one is identifiable.
    pub worker: Option<usize>,
    /// Observed value (straggler: duration ms; queue: depth; gap: ms).
    pub value: f64,
    /// The threshold the value exceeded, in the same unit.
    pub threshold: f64,
}

impl Alert {
    /// JSON rendering (one element of `/alerts.json`'s `alerts` array).
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj()
            .set("kind", self.kind.name())
            .set("t_ms", self.t_ms);
        if let Some(key) = &self.key {
            doc = doc.set("key", key.as_str());
        }
        if let Some(worker) = self.worker {
            doc = doc.set("worker", worker);
        }
        doc.set("value", self.value)
            .set("threshold", self.threshold)
    }
}

// ---- flight recorder --------------------------------------------------------

/// One flight-recorder interval: rollup rates computed from counter deltas
/// between two consecutive samples, plus scheduler-published gauges.
#[derive(Debug, Clone)]
pub struct FlightSample {
    /// Milliseconds since the telemetry epoch at sample time.
    pub t_ms: f64,
    /// Actual interval length (the sampler is best-effort, not isochronous).
    pub dt_ms: f64,
    /// Task completion/error reports per second over the interval.
    pub tasks_per_s: f64,
    /// Serialized bytes/s per wire lane (zero under the InProc transport).
    pub lane_bytes_per_s: [f64; N_WIRE_LANES],
    /// Ready-queue depth at sample time (scheduler gauge).
    pub queue_depth: u64,
    /// Ready-queue high watermark over the interval.
    pub queue_depth_peak: u64,
    /// Live workers at sample time (scheduler gauge).
    pub workers_alive: u64,
    /// Active client sessions at sample time (scheduler gauge; 0 on
    /// single-tenant clusters, which never register a session).
    pub sessions_active: u64,
    /// Successful steals per second.
    pub steals_per_s: f64,
    /// Steal misses per second.
    pub steal_misses_per_s: f64,
    /// Store spills per second (spill pressure).
    pub spills_per_s: f64,
    /// Spilled payload bytes per second.
    pub spill_bytes_per_s: f64,
    /// Cumulative stragglers flagged up to this sample.
    pub stragglers_flagged: u64,
    /// Oldest worker heartbeat age in ms (0 with no tracked workers).
    pub worker_gap_ms: f64,
    /// Oldest client heartbeat age in ms (0 with no heartbeating clients).
    pub client_gap_ms: f64,
}

impl FlightSample {
    /// JSON rendering (one element of `/flight.json`'s `samples` array).
    pub fn to_json(&self) -> Json {
        let lanes = WireLane::ALL
            .iter()
            .zip(self.lane_bytes_per_s.iter())
            .fold(Json::obj(), |doc, (lane, rate)| doc.set(lane.name(), *rate));
        Json::obj()
            .set("t_ms", self.t_ms)
            .set("dt_ms", self.dt_ms)
            .set("tasks_per_s", self.tasks_per_s)
            .set("lane_bytes_per_s", lanes)
            .set("queue_depth", self.queue_depth)
            .set("queue_depth_peak", self.queue_depth_peak)
            .set("workers_alive", self.workers_alive)
            .set("sessions_active", self.sessions_active)
            .set("steals_per_s", self.steals_per_s)
            .set("steal_misses_per_s", self.steal_misses_per_s)
            .set("spills_per_s", self.spills_per_s)
            .set("spill_bytes_per_s", self.spill_bytes_per_s)
            .set("stragglers_flagged", self.stragglers_flagged)
            .set("worker_gap_ms", self.worker_gap_ms)
            .set("client_gap_ms", self.client_gap_ms)
    }
}

/// Per-op-kind exec-duration baseline: a bounded window of recent durations
/// summarized by median/MAD at flag time (the window is small, so sorting a
/// copy on each observation is cheaper than maintaining order).
struct OpBaseline {
    window: VecDeque<u64>,
    samples: u64,
}

impl OpBaseline {
    fn median_mad(&self) -> (f64, f64) {
        let mut durs: Vec<u64> = self.window.iter().copied().collect();
        durs.sort_unstable();
        let median = mid(&durs);
        let mut devs: Vec<u64> = durs
            .iter()
            .map(|&d| (d as f64 - median).abs() as u64)
            .collect();
        devs.sort_unstable();
        (median, mid(&devs))
    }
}

fn mid(sorted: &[u64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2] as f64
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) as f64 / 2.0
    }
}

/// The delta cursor one sampler keeps between two `sample` calls.
struct SamplerCursor {
    t_prev: Instant,
    tasks: u64,
    lane_bytes: [u64; N_WIRE_LANES],
    steals: u64,
    steal_misses: u64,
    spills: u64,
    spill_bytes: u64,
}

// ---- the hub ----------------------------------------------------------------

/// Shared live-telemetry state: scheduler-published gauges, the straggler
/// detector, and the bounded flight/alert rings. One per cluster, handed to
/// the scheduler, every executor slot, the sampler thread, and the HTTP
/// exporter. Absent entirely (no `Arc`, no atomics touched) when telemetry
/// is off.
pub struct TelemetryHub {
    config: TelemetryConfig,
    stats: Arc<SchedulerStats>,
    epoch: Instant,
    // Scheduler-published gauges (Relaxed; refreshed once per ingest loop).
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
    workers_alive: AtomicU64,
    sessions_active: AtomicU64,
    worker_gap_ns: AtomicU64,
    client_gap_ns: AtomicU64,
    // Straggler baselines, keyed by op kind.
    baselines: Mutex<HashMap<String, OpBaseline>>,
    // Bounded rings.
    flight: Mutex<VecDeque<FlightSample>>,
    flight_evicted: AtomicU64,
    alerts: Mutex<VecDeque<Alert>>,
    alerts_total: AtomicU64,
    // Rising-edge latches for threshold alerts (avoid one alert per sample
    // while the condition persists).
    queue_latched: AtomicBool,
    gap_latched: AtomicBool,
}

impl TelemetryHub {
    /// Fresh hub (the config is assumed `enabled`; a disabled config should
    /// never construct one).
    pub fn new(config: TelemetryConfig, stats: Arc<SchedulerStats>) -> Self {
        TelemetryHub {
            config,
            stats,
            epoch: Instant::now(),
            queue_depth: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
            workers_alive: AtomicU64::new(0),
            sessions_active: AtomicU64::new(0),
            worker_gap_ns: AtomicU64::new(0),
            client_gap_ns: AtomicU64::new(0),
            baselines: Mutex::new(HashMap::new()),
            flight: Mutex::new(VecDeque::new()),
            flight_evicted: AtomicU64::new(0),
            alerts: Mutex::new(VecDeque::new()),
            alerts_total: AtomicU64::new(0),
            queue_latched: AtomicBool::new(false),
            gap_latched: AtomicBool::new(false),
        }
    }

    /// The config this hub runs under.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Milliseconds since the hub was built.
    fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_nanos() as f64 / 1e6
    }

    // ---- scheduler gauges ---------------------------------------------------

    /// Publish the scheduler-side gauges: ready-queue depth, live workers,
    /// and the oldest worker/client heartbeat ages. Called once per scheduler
    /// loop iteration; a handful of Relaxed stores.
    pub fn publish_scheduler(
        &self,
        queue_depth: u64,
        workers_alive: u64,
        sessions_active: u64,
        worker_gap_ns: u64,
        client_gap_ns: u64,
    ) {
        self.queue_depth.store(queue_depth, Ordering::Relaxed);
        self.queue_depth_peak
            .fetch_max(queue_depth, Ordering::Relaxed);
        self.workers_alive.store(workers_alive, Ordering::Relaxed);
        self.sessions_active
            .store(sessions_active, Ordering::Relaxed);
        self.worker_gap_ns.store(worker_gap_ns, Ordering::Relaxed);
        self.client_gap_ns.store(client_gap_ns, Ordering::Relaxed);
    }

    // ---- straggler detection ------------------------------------------------

    /// Observe one completed execution of `op` and decide — against the
    /// baseline *before* this observation joins it — whether it straggled.
    /// On a flag: bumps `stragglers_flagged` and raises an [`Alert`]; the
    /// caller owns the trace instant (the event belongs on the executing
    /// slot's track).
    pub fn observe_exec(&self, op: &str, key: &Key, worker: usize, dur_ns: u64) -> bool {
        let flagged = {
            let mut baselines = self.baselines.lock();
            let base = baselines
                .entry(op.to_string())
                .or_insert_with(|| OpBaseline {
                    window: VecDeque::with_capacity(self.config.straggler_window),
                    samples: 0,
                });
            let flagged = base.samples >= self.config.straggler_min_samples as u64
                && dur_ns >= self.config.straggler_min_ns
                && {
                    let (median, mad) = base.median_mad();
                    let threshold =
                        (self.config.straggler_k * median).max(median + 4.0 * 1.4826 * mad);
                    dur_ns as f64 > threshold
                };
            if base.window.len() == self.config.straggler_window {
                base.window.pop_front();
            }
            base.window.push_back(dur_ns);
            base.samples += 1;
            flagged
        };
        if flagged {
            self.stats.record_straggler();
            self.raise(Alert {
                kind: AlertKind::Straggler,
                t_ms: self.now_ms(),
                key: Some(key.as_str().to_string()),
                worker: Some(worker),
                value: dur_ns as f64 / 1e6,
                threshold: self.config.straggler_k,
            });
        }
        flagged
    }

    // ---- alerts -------------------------------------------------------------

    fn raise(&self, alert: Alert) {
        self.alerts_total.fetch_add(1, Ordering::Relaxed);
        let mut alerts = self.alerts.lock();
        if alerts.len() == self.config.alert_capacity {
            alerts.pop_front();
        }
        alerts.push_back(alert);
    }

    /// Current contents of the alert ring, oldest first.
    pub fn alerts(&self) -> Vec<Alert> {
        self.alerts.lock().iter().cloned().collect()
    }

    /// Alerts raised since startup (including any evicted from the ring).
    pub fn alerts_total(&self) -> u64 {
        self.alerts_total.load(Ordering::Relaxed)
    }

    /// The `/alerts.json` document.
    pub fn alerts_json(&self) -> Json {
        Json::obj().set("total", self.alerts_total()).set(
            "alerts",
            Json::Arr(self.alerts().iter().map(Alert::to_json).collect()),
        )
    }

    // ---- flight recorder ----------------------------------------------------

    /// Take one flight sample: counter deltas since `cursor`, gauge reads,
    /// threshold-alert checks. Called by the sampler thread.
    fn sample(&self, cursor: &mut SamplerCursor) {
        let now = Instant::now();
        let dt = now.saturating_duration_since(cursor.t_prev);
        let dt_s = dt.as_secs_f64().max(1e-9);
        cursor.t_prev = now;

        let tasks = self.stats.count(MsgClass::TaskReport);
        let steals = self.stats.tasks_stolen();
        let steal_misses = self.stats.steal_misses();
        let spills = self.stats.store_spills();
        let spill_bytes = self.stats.store_spill_bytes();
        let mut lane_bytes = [0u64; N_WIRE_LANES];
        let mut lane_bytes_per_s = [0.0f64; N_WIRE_LANES];
        for (i, &lane) in WireLane::ALL.iter().enumerate() {
            lane_bytes[i] = self.stats.wire_bytes(lane);
            lane_bytes_per_s[i] = (lane_bytes[i] - cursor.lane_bytes[i]) as f64 / dt_s;
        }

        let queue_depth_peak = self.queue_depth_peak.swap(0, Ordering::Relaxed);
        let worker_gap_ns = self.worker_gap_ns.load(Ordering::Relaxed);
        let client_gap_ns = self.client_gap_ns.load(Ordering::Relaxed);
        let sample = FlightSample {
            t_ms: self.now_ms(),
            dt_ms: dt.as_nanos() as f64 / 1e6,
            tasks_per_s: (tasks - cursor.tasks) as f64 / dt_s,
            lane_bytes_per_s,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_peak,
            workers_alive: self.workers_alive.load(Ordering::Relaxed),
            sessions_active: self.sessions_active.load(Ordering::Relaxed),
            steals_per_s: (steals - cursor.steals) as f64 / dt_s,
            steal_misses_per_s: (steal_misses - cursor.steal_misses) as f64 / dt_s,
            spills_per_s: (spills - cursor.spills) as f64 / dt_s,
            spill_bytes_per_s: (spill_bytes - cursor.spill_bytes) as f64 / dt_s,
            stragglers_flagged: self.stats.stragglers_flagged(),
            worker_gap_ms: worker_gap_ns as f64 / 1e6,
            client_gap_ms: client_gap_ns as f64 / 1e6,
        };
        cursor.tasks = tasks;
        cursor.lane_bytes = lane_bytes;
        cursor.steals = steals;
        cursor.steal_misses = steal_misses;
        cursor.spills = spills;
        cursor.spill_bytes = spill_bytes;

        if let Some(depth) = self.config.queue_depth_alert {
            self.edge_alert(
                &self.queue_latched,
                queue_depth_peak >= depth,
                Alert {
                    kind: AlertKind::QueueDepth,
                    t_ms: sample.t_ms,
                    key: None,
                    worker: None,
                    value: queue_depth_peak as f64,
                    threshold: depth as f64,
                },
            );
        }
        if let Some(gap) = self.config.heartbeat_gap_alert {
            let worst_ns = worker_gap_ns.max(client_gap_ns);
            self.edge_alert(
                &self.gap_latched,
                worst_ns as u128 >= gap.as_nanos(),
                Alert {
                    kind: AlertKind::HeartbeatGap,
                    t_ms: sample.t_ms,
                    key: None,
                    worker: None,
                    value: worst_ns as f64 / 1e6,
                    threshold: gap.as_nanos() as f64 / 1e6,
                },
            );
        }

        let mut flight = self.flight.lock();
        if flight.len() == self.config.flight_capacity {
            flight.pop_front();
            self.flight_evicted.fetch_add(1, Ordering::Relaxed);
        }
        flight.push_back(sample);
    }

    /// Raise `alert` only on the rising edge of `condition`.
    fn edge_alert(&self, latch: &AtomicBool, condition: bool, alert: Alert) {
        if condition {
            if !latch.swap(true, Ordering::Relaxed) {
                self.raise(alert);
            }
        } else {
            latch.store(false, Ordering::Relaxed);
        }
    }

    /// Current contents of the flight ring, oldest first.
    pub fn flight(&self) -> Vec<FlightSample> {
        self.flight.lock().iter().cloned().collect()
    }

    /// Samples evicted from a full flight ring.
    pub fn flight_evicted(&self) -> u64 {
        self.flight_evicted.load(Ordering::Relaxed)
    }

    /// The `/flight.json` document.
    pub fn flight_json(&self) -> Json {
        Json::obj()
            .set(
                "sample_every_ms",
                self.config.sample_every.as_nanos() as f64 / 1e6,
            )
            .set("evicted", self.flight_evicted())
            .set(
                "samples",
                Json::Arr(self.flight().iter().map(FlightSample::to_json).collect()),
            )
    }
}

/// Sampler thread body: flight-sample the hub every
/// [`TelemetryConfig::sample_every`] until `stop`, napping in small slices
/// so shutdown is prompt.
pub fn run_sampler(hub: Arc<TelemetryHub>, stop: Arc<AtomicBool>) {
    let interval = hub.config.sample_every;
    let nap = Duration::from_millis(5).min(interval);
    let mut cursor = SamplerCursor {
        t_prev: Instant::now(),
        tasks: 0,
        lane_bytes: [0; N_WIRE_LANES],
        steals: 0,
        steal_misses: 0,
        spills: 0,
        spill_bytes: 0,
    };
    let mut next = Instant::now() + interval;
    while !stop.load(Ordering::Relaxed) {
        if Instant::now() >= next {
            hub.sample(&mut cursor);
            next += interval;
            // Never try to catch up a long stall with a burst of samples.
            if next < Instant::now() {
                next = Instant::now() + interval;
            }
        }
        std::thread::sleep(nap);
    }
    // One final sample so short runs always leave a non-empty flight.
    hub.sample(&mut cursor);
}

// ---- HTTP exporter ----------------------------------------------------------

/// Bind the exporter socket (nonblocking, so the serve loop can poll its
/// stop flag). `port` 0 lets the OS choose; the bound address is returned
/// for discovery.
pub fn bind_exporter(
    addr: std::net::IpAddr,
    port: u16,
) -> std::io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind((addr, port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    Ok((listener, addr))
}

/// Exporter thread body: accept-poll `listener` until `stop`, answering one
/// request per connection (scrape traffic; no keep-alive).
pub fn run_exporter(
    listener: TcpListener,
    hub: Arc<TelemetryHub>,
    stats: Arc<SchedulerStats>,
    tracer: Arc<TraceRecorder>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => handle_request(stream, &hub, &stats, &tracer),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_request(
    mut stream: TcpStream,
    hub: &TelemetryHub,
    stats: &SchedulerStats,
    tracer: &TraceRecorder,
) {
    // The accepted stream inherits nonblocking from the listener on some
    // platforms; force blocking reads with a timeout instead.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));

    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = match std::str::from_utf8(&buf)
        .ok()
        .and_then(|text| text.lines().next())
    {
        Some(line) => line,
        None => return,
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return,
    };
    if method != "GET" {
        respond(
            &mut stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
        return;
    }
    // Strip any query string; scrapers sometimes append one.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            let body = StatsSnapshot::capture_with_tracer(stats, tracer).to_prometheus();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/snapshot.json" => {
            let body = StatsSnapshot::capture_with_tracer(stats, tracer)
                .to_json()
                .to_string_pretty();
            respond(&mut stream, 200, "application/json", &body);
        }
        "/flight.json" => {
            respond(
                &mut stream,
                200,
                "application/json",
                &hub.flight_json().to_string_pretty(),
            );
        }
        "/alerts.json" => {
            respond(
                &mut stream,
                200,
                "application/json",
                &hub.alerts_json().to_string_pretty(),
            );
        }
        "/health" => respond(&mut stream, 200, "text/plain; charset=utf-8", "ok\n"),
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_hub(config: TelemetryConfig) -> Arc<TelemetryHub> {
        Arc::new(TelemetryHub::new(config, Arc::new(SchedulerStats::new())))
    }

    #[test]
    fn config_defaults_off() {
        let config = TelemetryConfig::default();
        assert!(!config.enabled);
        assert!(TelemetryConfig::enabled().enabled);
        assert_eq!(config.sample_every, Duration::from_millis(25));
    }

    #[test]
    fn straggler_detector_flags_deterministically() {
        let config = TelemetryConfig {
            straggler_min_samples: 4,
            straggler_min_ns: 0,
            ..TelemetryConfig::enabled()
        };
        let hub = test_hub(config);
        let key = Key::new("t");
        // Build a tight baseline; nothing flags while it forms.
        for _ in 0..8 {
            assert!(!hub.observe_exec("sum", &key, 0, 1_000));
        }
        // Small jitter stays unflagged (within k×median).
        assert!(!hub.observe_exec("sum", &key, 0, 2_000));
        // A 50× outlier flags: counter + alert with the task key.
        let slow = Key::new("slow");
        assert!(hub.observe_exec("sum", &slow, 1, 50_000));
        assert_eq!(hub.stats.stragglers_flagged(), 1);
        let alerts = hub.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::Straggler);
        assert_eq!(alerts[0].key.as_deref(), Some("slow"));
        assert_eq!(alerts[0].worker, Some(1));
        // A different op kind has its own (empty) baseline: never flags.
        assert!(!hub.observe_exec("matmul", &key, 0, 50_000));
    }

    #[test]
    fn straggler_respects_min_duration_floor() {
        let config = TelemetryConfig {
            straggler_min_samples: 2,
            straggler_min_ns: 1_000_000,
            ..TelemetryConfig::enabled()
        };
        let hub = test_hub(config);
        let key = Key::new("t");
        for _ in 0..8 {
            hub.observe_exec("sum", &key, 0, 100);
        }
        // 100× the baseline but under the 1 ms floor: not a straggler.
        assert!(!hub.observe_exec("sum", &key, 0, 10_000));
        assert_eq!(hub.alerts_total(), 0);
    }

    #[test]
    fn threshold_alerts_fire_on_rising_edge_only() {
        let config = TelemetryConfig {
            queue_depth_alert: Some(10),
            flight_capacity: 4,
            ..TelemetryConfig::enabled()
        };
        let hub = test_hub(config);
        let mut cursor = SamplerCursor {
            t_prev: Instant::now(),
            tasks: 0,
            lane_bytes: [0; N_WIRE_LANES],
            steals: 0,
            steal_misses: 0,
            spills: 0,
            spill_bytes: 0,
        };
        hub.publish_scheduler(15, 2, 0, 0, 0);
        hub.sample(&mut cursor); // crossing: one alert
        hub.publish_scheduler(20, 2, 0, 0, 0);
        hub.sample(&mut cursor); // still high: latched, no new alert
        hub.publish_scheduler(1, 2, 0, 0, 0);
        hub.sample(&mut cursor); // back below: latch resets
        hub.publish_scheduler(12, 2, 0, 0, 0);
        hub.sample(&mut cursor); // second crossing: second alert
        let alerts = hub.alerts();
        assert_eq!(alerts.len(), 2);
        assert!(alerts.iter().all(|a| a.kind == AlertKind::QueueDepth));
        assert_eq!(alerts[0].value, 15.0);
        assert_eq!(alerts[1].value, 12.0);
    }

    #[test]
    fn flight_ring_is_bounded_and_counts_evictions() {
        let config = TelemetryConfig {
            flight_capacity: 3,
            ..TelemetryConfig::enabled()
        };
        let hub = test_hub(config);
        let mut cursor = SamplerCursor {
            t_prev: Instant::now(),
            tasks: 0,
            lane_bytes: [0; N_WIRE_LANES],
            steals: 0,
            steal_misses: 0,
            spills: 0,
            spill_bytes: 0,
        };
        for _ in 0..5 {
            hub.sample(&mut cursor);
        }
        assert_eq!(hub.flight().len(), 3);
        assert_eq!(hub.flight_evicted(), 2);
        let doc = hub.flight_json();
        assert_eq!(doc.get("evicted").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("samples").and_then(Json::as_arr).unwrap().len(), 3);
    }

    #[test]
    fn flight_sample_rates_reflect_counter_deltas() {
        let hub = test_hub(TelemetryConfig::enabled());
        let mut cursor = SamplerCursor {
            t_prev: Instant::now() - Duration::from_secs(1),
            tasks: 0,
            lane_bytes: [0; N_WIRE_LANES],
            steals: 0,
            steal_misses: 0,
            spills: 0,
            spill_bytes: 0,
        };
        for _ in 0..10 {
            hub.stats.record(MsgClass::TaskReport, 0);
        }
        hub.stats.record_wire(WireLane::SchedIn, 1000);
        hub.stats.record_store_spill(4096);
        hub.publish_scheduler(3, 2, 1, 7_000_000, 0);
        hub.sample(&mut cursor);
        let s = &hub.flight()[0];
        // dt ≈ 1 s, so rates ≈ deltas (loose bounds: wall clock moved a bit).
        assert!(
            s.tasks_per_s > 5.0 && s.tasks_per_s <= 10.5,
            "{}",
            s.tasks_per_s
        );
        assert!(s.lane_bytes_per_s[0] > 500.0);
        assert!(s.spills_per_s > 0.5);
        assert!(s.spill_bytes_per_s > 2000.0);
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.workers_alive, 2);
        assert!((s.worker_gap_ms - 7.0).abs() < 1e-9);
        // Second sample with no new activity: rates drop to zero.
        std::thread::sleep(Duration::from_millis(2));
        hub.sample(&mut cursor);
        let s2 = &hub.flight()[1];
        assert_eq!(s2.tasks_per_s, 0.0);
        assert_eq!(s2.lane_bytes_per_s[0], 0.0);
    }

    #[test]
    fn exporter_serves_all_endpoints() {
        let hub = test_hub(TelemetryConfig::enabled());
        let stats = Arc::clone(&hub.stats);
        let tracer = Arc::new(TraceRecorder::disabled());
        let stop = Arc::new(AtomicBool::new(false));
        let (listener, addr) =
            bind_exporter(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST), 0).unwrap();
        let server = {
            let (hub, stats, tracer, stop) = (
                Arc::clone(&hub),
                stats,
                Arc::clone(&tracer),
                Arc::clone(&stop),
            );
            std::thread::spawn(move || run_exporter(listener, hub, stats, tracer, stop))
        };
        let get = |path: &str| -> (u16, String) {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            let mut response = String::new();
            conn.read_to_string(&mut response).unwrap();
            let status: u16 = response
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap();
            let body = response
                .split_once("\r\n\r\n")
                .map(|(_, b)| b.to_string())
                .unwrap_or_default();
            (status, body)
        };

        let (status, body) = get("/health");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = get("/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE dtask_messages_total counter"));
        assert!(body.ends_with('\n'));

        let (status, body) = get("/snapshot.json");
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        assert!(doc.get("messages").is_some());

        let (status, body) = get("/flight.json?x=1");
        assert_eq!(status, 200);
        assert!(Json::parse(&body).unwrap().get("samples").is_some());

        let (status, body) = get("/alerts.json");
        assert_eq!(status, 200);
        assert!(Json::parse(&body).unwrap().get("alerts").is_some());

        let (status, _) = get("/nope");
        assert_eq!(status, 404);

        stop.store(true, Ordering::Relaxed);
        server.join().unwrap();
    }
}
