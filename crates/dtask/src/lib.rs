//! `dtask` — a distributed task framework in the mould of Dask distributed.
//!
//! The paper extends the *Dask distributed* scheduler. To reproduce that
//! extension faithfully we first need the thing being extended, so this crate
//! implements a complete (single-process, multi-threaded) distributed task
//! framework with the same three actors and the same protocol structure:
//!
//! * **Client** ([`client::Client`]) — builds task graphs out of
//!   [`spec::TaskSpec`]s and submits them; gets [`client::DFuture`]s back;
//!   can [`client::Client::scatter`] out-of-band data to workers; talks to
//!   the scheduler for [`client::Variable`]s and [`client::DQueue`]s.
//! * **Scheduler** ([`scheduler`]) — a single thread owning the task-state
//!   machine (`Waiting → Ready → Processing → Memory | Erred`, plus the
//!   DEISA `External` state, see below), worker/client bookkeeping, data
//!   placement (`who_has`), variables, queues, and heartbeat tracking.
//! * **Workers** ([`worker`]) — execute tasks, store results in their local
//!   memory, fetch dependencies from peer workers, and serve data to clients.
//!
//! Tasks are described by an op-code IR ([`spec::TaskSpec`]: op name +
//! parameters + dependency keys) resolved against an [`spec::OpRegistry`]
//! shared by every worker — the moral equivalent of every Dask worker being
//! able to unpickle the same functions.
//!
//! ## External tasks (the paper's §2.2, implemented here)
//!
//! The paper's core contribution is a new **external** task state inside the
//! scheduler: a task that is *not schedulable nor runnable by Dask* — its
//! result is produced by an external environment (the MPI simulation) and
//! pushed to a worker later. This crate implements that state natively:
//!
//! * [`client::Client::register_external`] creates a future with a caller-
//!   chosen key and puts the scheduler-side task in `External` state;
//! * task graphs may depend on external keys **before any data exists**;
//! * [`client::Client::scatter_external`] (the extended `scatter` with
//!   `keys=`/`external=` of §2.2) pushes a block to a chosen worker and the
//!   scheduler then handles it *exactly like a finished task*: it updates
//!   `who_has` and runs the normal transition cascade, unblocking dependents.
//!
//! The `deisa-core` crate builds bridges/adaptor/contracts on these
//! primitives. Every message to the scheduler is counted by class in
//! [`stats::SchedulerStats`], which is how the integration tests verify the
//! paper's metadata-message formulas.

pub mod client;
pub mod cluster;
pub mod datum;
pub mod json;
pub mod key;
pub mod msg;
pub mod net;
pub mod node;
pub mod optimize;
pub mod policy;
pub mod scheduler;
pub mod snapshot;
pub mod spec;
pub mod stats;
pub mod store;
pub mod telemetry;
pub mod trace;
pub mod transport;
pub mod wire;
pub mod worker;

pub use client::{Client, DFuture, DQueue, SubmitError, Variable, WaitError};
pub use cluster::{
    Cluster, ClusterConfig, DeployConfig, FaultConfig, HeartbeatInterval, TenancyConfig,
};
pub use datum::{Datum, DatumRef};
pub use json::Json;
pub use key::{Key, SessionId, DEFAULT_SESSION};
pub use msg::{ErrorCause, TaskError};
pub use net::{
    Frame, FrameReader, NodeWelcome, FRAME_HEADER_BYTES, MAX_FRAME_BYTES, PREAMBLE_BYTES,
};
pub use node::{run_node, NodeConfig, NodeReport};
pub use optimize::{optimize, OptimizeConfig, OptimizeReport};
pub use policy::{PolicyConfig, PolicyKind, SchedulingPolicy, WorkerState};
pub use scheduler::{IngestMode, LivenessConfig};
pub use snapshot::{HistSnapshot, StatsSnapshot, WireLaneSnapshot};
pub use spec::{OpRegistry, TaskSpec};
pub use stats::{LatencyHist, MsgClass, SchedulerStats, WireLane};
pub use store::{ObjectStore, StoreConfig};
pub use telemetry::{Alert, AlertKind, FlightSample, TelemetryConfig, TelemetryHub};
pub use trace::{
    EventKind, PhaseReport, TraceActor, TraceConfig, TraceEvent, TraceHandle, TraceLog,
    TraceRecorder,
};
pub use transport::{
    Addr, DataReply, Endpoint, FaultPlan, LaneDrop, ReplyRx, ReplyTo, SimNetConfig, TransportConfig,
};
pub use wire::{NodeMsg, WireError, WIRE_VERSION};
pub use worker::GatherMode;
