//! `Datum` — the value type flowing through tasks.
//!
//! Task inputs/outputs and `scatter` payloads are all `Datum`s. Arrays are
//! `Arc`-shared so moving a block from a worker store into a task execution
//! never copies the buffer within the process.

use crate::key::Key;
use crate::msg::WorkerId;
use linalg::NDArray;
use std::sync::Arc;

/// A pass-by-reference **handle** to a payload resident in a worker's object
/// store (the paper's out-of-band data plane). A `DatumRef` travels over the
/// control path in place of the bulk value; consumers resolve it lazily with
/// a data-lane `Fetch` to `holder` (or a local store lookup). The handle
/// carries enough metadata — shape, payload size, and the holder's location
/// epoch — for scheduling and accounting decisions without touching the
/// payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatumRef {
    /// Store key of the payload on the holder.
    pub key: Key,
    /// Shape of the referenced array (empty for non-array payloads).
    pub shape: Vec<usize>,
    /// Payload size in bytes (what resolving this handle will transfer).
    pub nbytes: u64,
    /// Worker whose object store holds the payload.
    pub holder: WorkerId,
    /// Location epoch: bumped each time the payload is (re)published, so a
    /// stale handle can be told apart from the current placement.
    pub epoch: u64,
}

/// A value produced or consumed by tasks.
#[derive(Debug, Clone)]
pub enum Datum {
    /// Floating-point scalar.
    F64(f64),
    /// Integer scalar.
    I64(i64),
    /// Boolean scalar.
    Bool(bool),
    /// Text.
    Str(String),
    /// Dense array block (the common case).
    Array(Arc<NDArray>),
    /// Heterogeneous list.
    List(Vec<Datum>),
    /// Raw bytes (opaque payloads).
    Bytes(bytes::Bytes),
    /// Proxy handle to a store-resident payload (see [`DatumRef`]).
    Ref(DatumRef),
    /// Absent/unit value.
    Null,
}

impl Datum {
    /// Approximate in-memory payload size in bytes, used for bandwidth and
    /// data-locality accounting (Dask's `nbytes`). Dense-block sizing is
    /// shared with the DES cost models via [`netsim::sizing`].
    pub fn nbytes(&self) -> u64 {
        match self {
            Datum::F64(_) | Datum::I64(_) => netsim::sizing::F64_BYTES,
            Datum::Bool(_) => 1,
            Datum::Str(s) => netsim::sizing::str_nbytes(s.len()),
            Datum::Array(a) => netsim::sizing::f64_block_bytes(a.len()),
            Datum::List(items) => {
                netsim::sizing::list_nbytes(items.iter().map(Datum::nbytes).sum())
            }
            Datum::Bytes(b) => b.len() as u64,
            Datum::Ref(r) => netsim::sizing::ref_handle_bytes(r.key.as_str().len(), r.shape.len()),
            Datum::Null => 0,
        }
    }

    /// Array view, if this datum is an array.
    pub fn as_array(&self) -> Option<&Arc<NDArray>> {
        match self {
            Datum::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Float view (also converts integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::F64(v) => Some(*v),
            Datum::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Datum::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// List view.
    pub fn as_list(&self) -> Option<&[Datum]> {
        match self {
            Datum::List(items) => Some(items),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Proxy-handle view, if this datum is a [`DatumRef`].
    pub fn as_ref_handle(&self) -> Option<&DatumRef> {
        match self {
            Datum::Ref(r) => Some(r),
            _ => None,
        }
    }

    /// Whether this datum (or, for lists, any nested child) is a proxy
    /// handle that a consumer would need to resolve before use.
    pub fn contains_ref(&self) -> bool {
        match self {
            Datum::Ref(_) => true,
            Datum::List(items) => items.iter().any(Datum::contains_ref),
            _ => false,
        }
    }
}

impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::F64(v)
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::I64(v)
    }
}

impl From<NDArray> for Datum {
    fn from(v: NDArray) -> Self {
        Datum::Array(Arc::new(v))
    }
}

impl From<Arc<NDArray>> for Datum {
    fn from(v: Arc<NDArray>) -> Self {
        Datum::Array(v)
    }
}

impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Str(v.to_string())
    }
}

impl From<Vec<Datum>> for Datum {
    fn from(v: Vec<Datum>) -> Self {
        Datum::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nbytes_accounting() {
        assert_eq!(Datum::F64(1.0).nbytes(), 8);
        assert_eq!(Datum::from(NDArray::zeros(&[4, 4])).nbytes(), 128);
        // Containers charge the shared netsim::sizing envelope: the string is
        // 8 (envelope) + 3 (bytes), the list wraps its children in one more.
        assert_eq!(Datum::Str("abc".into()).nbytes(), 11);
        assert_eq!(
            Datum::List(vec![Datum::I64(1), Datum::Str("abc".into())]).nbytes(),
            27
        );
        assert_eq!(Datum::Null.nbytes(), 0);
    }

    #[test]
    fn ref_handle_nbytes_is_payload_independent() {
        // The handle for a 1 GiB block weighs the same as for a 1 KiB block:
        // key + dims + fixed metadata, never the payload.
        let small = Datum::Ref(DatumRef {
            key: Key::new("blk"),
            shape: vec![4, 4],
            nbytes: 128,
            holder: 0,
            epoch: 1,
        });
        let huge = Datum::Ref(DatumRef {
            key: Key::new("blk"),
            shape: vec![4, 4],
            nbytes: 1 << 30,
            holder: 2,
            epoch: 7,
        });
        assert_eq!(small.nbytes(), huge.nbytes());
        assert_eq!(
            small.nbytes(),
            netsim::sizing::ref_handle_bytes("blk".len(), 2)
        );
        assert!(small.contains_ref());
        assert!(Datum::List(vec![Datum::F64(0.0), huge]).contains_ref());
        assert!(!Datum::List(vec![Datum::F64(0.0)]).contains_ref());
    }

    #[test]
    fn array_sharing() {
        let a = Arc::new(NDArray::zeros(&[2]));
        let d = Datum::from(Arc::clone(&a));
        let cloned = d.clone();
        assert!(Arc::ptr_eq(cloned.as_array().unwrap(), &a));
    }

    #[test]
    fn views() {
        assert_eq!(Datum::I64(3).as_f64(), Some(3.0));
        assert_eq!(Datum::F64(2.5).as_i64(), None);
        assert_eq!(Datum::from("hi").as_str(), Some("hi"));
        assert!(Datum::Null.as_list().is_none());
    }
}
