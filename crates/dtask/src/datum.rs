//! `Datum` — the value type flowing through tasks.
//!
//! Task inputs/outputs and `scatter` payloads are all `Datum`s. Arrays are
//! `Arc`-shared so moving a block from a worker store into a task execution
//! never copies the buffer within the process.

use linalg::NDArray;
use std::sync::Arc;

/// A value produced or consumed by tasks.
#[derive(Debug, Clone)]
pub enum Datum {
    /// Floating-point scalar.
    F64(f64),
    /// Integer scalar.
    I64(i64),
    /// Boolean scalar.
    Bool(bool),
    /// Text.
    Str(String),
    /// Dense array block (the common case).
    Array(Arc<NDArray>),
    /// Heterogeneous list.
    List(Vec<Datum>),
    /// Raw bytes (opaque payloads).
    Bytes(bytes::Bytes),
    /// Absent/unit value.
    Null,
}

impl Datum {
    /// Approximate in-memory payload size in bytes, used for bandwidth and
    /// data-locality accounting (Dask's `nbytes`). Dense-block sizing is
    /// shared with the DES cost models via [`netsim::sizing`].
    pub fn nbytes(&self) -> u64 {
        match self {
            Datum::F64(_) | Datum::I64(_) => netsim::sizing::F64_BYTES,
            Datum::Bool(_) => 1,
            Datum::Str(s) => s.len() as u64,
            Datum::Array(a) => netsim::sizing::f64_block_bytes(a.len()),
            Datum::List(items) => items.iter().map(Datum::nbytes).sum(),
            Datum::Bytes(b) => b.len() as u64,
            Datum::Null => 0,
        }
    }

    /// Array view, if this datum is an array.
    pub fn as_array(&self) -> Option<&Arc<NDArray>> {
        match self {
            Datum::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Float view (also converts integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::F64(v) => Some(*v),
            Datum::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Datum::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// List view.
    pub fn as_list(&self) -> Option<&[Datum]> {
        match self {
            Datum::List(items) => Some(items),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::F64(v)
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::I64(v)
    }
}

impl From<NDArray> for Datum {
    fn from(v: NDArray) -> Self {
        Datum::Array(Arc::new(v))
    }
}

impl From<Arc<NDArray>> for Datum {
    fn from(v: Arc<NDArray>) -> Self {
        Datum::Array(v)
    }
}

impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Str(v.to_string())
    }
}

impl From<Vec<Datum>> for Datum {
    fn from(v: Vec<Datum>) -> Self {
        Datum::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nbytes_accounting() {
        assert_eq!(Datum::F64(1.0).nbytes(), 8);
        assert_eq!(Datum::from(NDArray::zeros(&[4, 4])).nbytes(), 128);
        assert_eq!(
            Datum::List(vec![Datum::I64(1), Datum::Str("abc".into())]).nbytes(),
            11
        );
        assert_eq!(Datum::Null.nbytes(), 0);
    }

    #[test]
    fn array_sharing() {
        let a = Arc::new(NDArray::zeros(&[2]));
        let d = Datum::from(Arc::clone(&a));
        let cloned = d.clone();
        assert!(Arc::ptr_eq(cloned.as_array().unwrap(), &a));
    }

    #[test]
    fn views() {
        assert_eq!(Datum::I64(3).as_f64(), Some(3.0));
        assert_eq!(Datum::F64(2.5).as_i64(), None);
        assert_eq!(Datum::from("hi").as_str(), Some("hi"));
        assert!(Datum::Null.as_list().is_none());
    }
}
